//! First-order optimizers over a [`Graph`]'s trainable parameters.

use crate::scalar::Scalar;
use crate::{Graph, VarId};

/// Adam (Kingma & Ba) with bias correction — the optimizer used for all
/// deep-prior in-painting runs.
///
/// Like the graph, the optimizer is generic over the working precision:
/// hyperparameters are supplied as `f32` (lossless to widen) while the
/// moment buffers and update arithmetic run entirely in `S`.
///
/// # Example
///
/// ```
/// use dhf_tensor::{Graph, Tensor, optim::Adam};
/// let mut g: Graph = Graph::new();
/// let w = g.param(Tensor::scalar(5.0));
/// let t = g.input(Tensor::scalar(1.0));
/// let m = g.input(Tensor::scalar(1.0));
/// let loss = g.mse_masked(w, t, m);
/// let mut opt = Adam::new(0.1);
/// for _ in 0..300 {
///     g.forward();
///     g.backward(loss);
///     opt.step(&mut g);
/// }
/// assert!((g.value(w).data()[0] - 1.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct Adam<S: Scalar = f32> {
    lr: S,
    beta1: S,
    beta2: S,
    eps: S,
    t: u64,
    state: Vec<MomentPair<S>>,
}

#[derive(Debug, Clone)]
struct MomentPair<S: Scalar> {
    id: VarId,
    m: Vec<S>,
    v: Vec<S>,
}

impl<S: Scalar> Adam<S> {
    /// Creates Adam with the given learning rate and the standard defaults
    /// `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr: S::from_f32(lr),
            beta1: S::from_f32(0.9),
            beta2: S::from_f32(0.999),
            eps: S::from_f32(1e-8),
            t: 0,
            state: Vec::new(),
        }
    }

    /// Creates Adam with explicit moment coefficients.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam {
            lr: S::from_f32(lr),
            beta1: S::from_f32(beta1),
            beta2: S::from_f32(beta2),
            eps: S::from_f32(1e-8),
            t: 0,
            state: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr.to_f32()
    }

    /// Replaces the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = S::from_f32(lr);
    }

    /// Applies one update using the gradients currently stored in `graph`.
    ///
    /// Moment buffers are allocated lazily on first use and keyed by
    /// parameter handle, so the same optimizer must be reused with the same
    /// graph.
    pub fn step(&mut self, graph: &mut Graph<S>) {
        if self.state.is_empty() {
            for &id in graph.params() {
                let n = graph.value(id).numel();
                self.state.push(MomentPair { id, m: vec![S::ZERO; n], v: vec![S::ZERO; n] });
            }
        }
        self.t += 1;
        let bc1 = S::ONE - self.beta1.powi(self.t as i32);
        let bc2 = S::ONE - self.beta2.powi(self.t as i32);
        for pair in &mut self.state {
            let (value, grad) = graph.param_value_and_grad(pair.id);
            let vd = value.data_mut();
            let gd = grad.data();
            for i in 0..vd.len() {
                let g = gd[i];
                pair.m[i] = self.beta1 * pair.m[i] + (S::ONE - self.beta1) * g;
                pair.v[i] = self.beta2 * pair.v[i] + (S::ONE - self.beta2) * g * g;
                let mhat = pair.m[i] / bc1;
                let vhat = pair.v[i] / bc2;
                vd[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd<S: Scalar = f32> {
    lr: S,
    momentum: S,
    velocity: Vec<(VarId, Vec<S>)>,
}

impl<S: Scalar> Sgd<S> {
    /// Creates SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Sgd { lr: S::from_f32(lr), momentum: S::ZERO, velocity: Vec::new() }
    }

    /// Creates SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr: S::from_f32(lr), momentum: S::from_f32(momentum), velocity: Vec::new() }
    }

    /// Applies one update using the gradients currently stored in `graph`.
    pub fn step(&mut self, graph: &mut Graph<S>) {
        if self.velocity.is_empty() {
            for &id in graph.params() {
                let n = graph.value(id).numel();
                self.velocity.push((id, vec![S::ZERO; n]));
            }
        }
        for (id, vel) in &mut self.velocity {
            let (value, grad) = graph.param_value_and_grad(*id);
            let vd = value.data_mut();
            let gd = grad.data();
            for i in 0..vd.len() {
                vel[i] = self.momentum * vel[i] - self.lr * gd[i];
                vd[i] += vel[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Loss (w - 3)² through the graph; both optimizers must drive w → 3.
    fn quadratic_graph() -> (Graph, VarId, VarId) {
        let mut g: Graph = Graph::new();
        let w = g.param(Tensor::scalar(0.0));
        let target = g.input(Tensor::scalar(3.0));
        let mask = g.input(Tensor::scalar(1.0));
        let loss = g.mse_masked(w, target, mask);
        (g, w, loss)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (mut g, w, loss) = quadratic_graph();
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            g.forward();
            g.backward(loss);
            opt.step(&mut g);
        }
        assert!((g.value(w).data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut g, w, loss) = quadratic_graph();
        let mut opt = Sgd::with_momentum(0.1, 0.5);
        for _ in 0..300 {
            g.forward();
            g.backward(loss);
            opt.step(&mut g);
        }
        assert!((g.value(w).data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_in_f64_too() {
        let mut g: Graph<f64> = Graph::new();
        let w = g.param(Tensor::scalar(0.0));
        let target = g.input(Tensor::scalar(3.0));
        let mask = g.input(Tensor::scalar(1.0));
        let loss = g.mse_masked(w, target, mask);
        let mut opt: Adam<f64> = Adam::new(0.2);
        for _ in 0..200 {
            g.forward();
            g.backward(loss);
            opt.step(&mut g);
        }
        assert!((g.value(w).data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_handles_multiple_parameters() {
        let mut g: Graph = Graph::new();
        let a = g.param(Tensor::from_vec(&[2], vec![0.0, 0.0]));
        let b = g.param(Tensor::from_vec(&[2], vec![5.0, 5.0]));
        let s = g.add(a, b);
        let target = g.input(Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let mask = g.input(Tensor::from_vec(&[2], vec![1.0, 1.0]));
        let loss = g.mse_masked(s, target, mask);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            g.forward();
            g.backward(loss);
            opt.step(&mut g);
        }
        g.forward();
        assert!(g.value(loss).data()[0] < 1e-3);
    }

    #[test]
    fn learning_rate_can_be_decayed() {
        let mut opt: Adam = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
