//! Dense row-major f32 tensors.

use rand::Rng;

/// A dense, row-major, heap-allocated f32 array with shape metadata.
///
/// Shapes follow the conventions of the NN stack: images are
/// `[channels, freq, time]`, convolution weights are
/// `[out_ch, in_ch, k_freq, k_time]`, biases are `[channels]`, and scalars
/// are `[1]`.
///
/// # Example
///
/// ```
/// use dhf_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![value; shape.iter().product()] }
    }

    /// Creates a scalar tensor of shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: vec![1], data: vec![value] }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// Samples i.i.d. uniform values in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// Samples i.i.d. standard-normal values scaled by `std`.
    pub fn rand_normal<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        // Box–Muller; rand's distributions feature is avoided on purpose.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape: shape.to_vec(), data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow of the flat data buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(self.numel(), shape.iter().product::<usize>(), "reshape element count mismatch");
        self.shape = shape.to_vec();
        self
    }

    /// Flat index of `[c, h, w]` in a rank-3 tensor.
    ///
    /// # Panics
    ///
    /// Debug-panics if the tensor is not rank 3 or the index is out of range.
    #[inline]
    pub fn idx3(&self, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 3);
        debug_assert!(c < self.shape[0] && h < self.shape[1] && w < self.shape[2]);
        (c * self.shape[1] + h) * self.shape[2] + w
    }

    /// Value at `[c, h, w]`.
    #[inline]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx3(c, h, w)]
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Ensures this tensor has `shape`, reallocating only when needed, and
    /// zero-fills it.
    pub fn reset_to(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        if self.data.len() != n {
            self.data = vec![0.0; n];
        } else {
            self.fill_zero();
        }
        if self.shape != shape {
            self.shape = shape.to_vec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_shapes() {
        assert_eq!(Tensor::zeros(&[2, 3, 4]).numel(), 24);
        assert_eq!(Tensor::filled(&[3], 2.0).data(), &[2.0, 2.0, 2.0]);
        assert_eq!(Tensor::scalar(5.0).shape(), &[1]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn idx3_is_row_major() {
        let t = Tensor::from_vec(&[2, 2, 3], (0..12).map(|i| i as f32).collect());
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 2), 5.0);
        assert_eq!(t.at3(1, 0, 0), 6.0);
        assert_eq!(t.at3(1, 1, 1), 10.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data()[4], 5.0);
    }

    #[test]
    fn rand_normal_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_normal(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn reset_to_reuses_allocation() {
        let mut t = Tensor::filled(&[4], 1.0);
        let ptr = t.data().as_ptr();
        t.reset_to(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[0.0; 4]);
        assert_eq!(t.data().as_ptr(), ptr);
    }

    #[test]
    fn map_and_reductions() {
        let t = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 2.0 / 3.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.map(|v| v * v).data(), &[1.0, 4.0, 9.0]);
    }
}
