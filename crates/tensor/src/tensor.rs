//! Dense row-major tensors, generic over the element [`Scalar`].

use crate::scalar::Scalar;
use rand::Rng;

/// A dense, row-major, heap-allocated array with shape metadata.
///
/// The element type defaults to `f32` (the production compute path); an
/// `f64` instantiation exists as the accuracy reference. Shapes follow the
/// conventions of the NN stack: images are `[channels, freq, time]`,
/// convolution weights are `[out_ch, in_ch, k_freq, k_time]`, biases are
/// `[channels]`, and scalars are `[1]`.
///
/// # Example
///
/// ```
/// use dhf_tensor::Tensor;
/// let t: Tensor = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor<S: Scalar = f32> {
    shape: Vec<usize>,
    data: Vec<S>,
}

impl<S: Scalar> Tensor<S> {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![S::ZERO; shape.iter().product()] }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: &[usize], value: S) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![value; shape.iter().product()] }
    }

    /// Creates a scalar tensor of shape `[1]`.
    pub fn scalar(value: S) -> Self {
        Tensor { shape: vec![1], data: vec![value] }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// Samples i.i.d. uniform values in `[lo, hi)`.
    ///
    /// Draws are always made in `f32` and widened, so the same seed yields
    /// the same initial weights in every precision (the f64 reference then
    /// differs from the f32 path only through arithmetic, not inputs).
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| S::from_f32(rng.gen_range(lo..hi))).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// Samples i.i.d. standard-normal values scaled by `std`.
    ///
    /// Like [`Tensor::rand_uniform`], draws are made in `f32` and widened so
    /// initialization is precision-invariant per seed.
    pub fn rand_normal<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        // Box–Muller; rand's distributions feature is avoided on purpose.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(S::from_f32(r * theta.cos() * std));
            if data.len() < n {
                data.push(S::from_f32(r * theta.sin() * std));
            }
        }
        Tensor { shape: shape.to_vec(), data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow of the flat data buffer.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable borrow of the flat data buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(self.numel(), shape.iter().product::<usize>(), "reshape element count mismatch");
        self.shape = shape.to_vec();
        self
    }

    /// Flat index of `[c, h, w]` in a rank-3 tensor.
    ///
    /// # Panics
    ///
    /// Debug-panics if the tensor is not rank 3 or the index is out of range.
    #[inline]
    pub fn idx3(&self, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 3);
        debug_assert!(c < self.shape[0] && h < self.shape[1] && w < self.shape[2]);
        (c * self.shape[1] + h) * self.shape[2] + w
    }

    /// Value at `[c, h, w]`.
    #[inline]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> S {
        self.data[self.idx3(c, h, w)]
    }

    /// Sum of all elements.
    pub fn sum(&self) -> S {
        self.data.iter().copied().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> S {
        if self.data.is_empty() {
            S::ZERO
        } else {
            self.sum() / S::from_usize(self.numel())
        }
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> S {
        self.data.iter().fold(S::ZERO, |m, &v| m.max(v.abs()))
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(S) -> S) -> Tensor<S> {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Converts every element into another precision.
    pub fn cast<T: Scalar>(&self) -> Tensor<T> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| T::from_f64(v.to_f64())).collect(),
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = S::ZERO);
    }

    /// Ensures this tensor has `shape`, reallocating only when needed, and
    /// zero-fills it.
    pub fn reset_to(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        if self.data.len() != n {
            self.data = vec![S::ZERO; n];
        } else {
            self.fill_zero();
        }
        if self.shape != shape {
            self.shape = shape.to_vec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_shapes() {
        assert_eq!(Tensor::<f32>::zeros(&[2, 3, 4]).numel(), 24);
        assert_eq!(Tensor::filled(&[3], 2.0f32).data(), &[2.0, 2.0, 2.0]);
        assert_eq!(Tensor::scalar(5.0f32).shape(), &[1]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0f32; 3]);
    }

    #[test]
    fn idx3_is_row_major() {
        let t: Tensor = Tensor::from_vec(&[2, 2, 3], (0..12).map(|i| i as f32).collect());
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 2), 5.0);
        assert_eq!(t.at3(1, 0, 0), 6.0);
        assert_eq!(t.at3(1, 1, 1), 10.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0f32, 2., 3., 4., 5., 6.]).reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data()[4], 5.0);
    }

    #[test]
    fn rand_normal_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let t: Tensor = Tensor::rand_normal(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t: Tensor = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn rand_draws_are_precision_invariant_per_seed() {
        let mut rng32 = StdRng::seed_from_u64(11);
        let mut rng64 = StdRng::seed_from_u64(11);
        let a: Tensor<f32> = Tensor::rand_normal(&[64], 0.7, &mut rng32);
        let b: Tensor<f64> = Tensor::rand_normal(&[64], 0.7, &mut rng64);
        for (&x, &y) in a.data().iter().zip(b.data()) {
            assert_eq!(x as f64, y);
        }
        let mut rng32 = StdRng::seed_from_u64(12);
        let mut rng64 = StdRng::seed_from_u64(12);
        let a: Tensor<f32> = Tensor::rand_uniform(&[64], -0.3, 0.3, &mut rng32);
        let b: Tensor<f64> = Tensor::rand_uniform(&[64], -0.3, 0.3, &mut rng64);
        for (&x, &y) in a.data().iter().zip(b.data()) {
            assert_eq!(x as f64, y);
        }
    }

    #[test]
    fn cast_round_trips_f32_exactly() {
        let t: Tensor<f32> = Tensor::from_vec(&[3], vec![0.1, -2.5, 3.0e-20]);
        let wide: Tensor<f64> = t.cast();
        let back: Tensor<f32> = wide.cast();
        assert_eq!(t, back);
    }

    #[test]
    fn reset_to_reuses_allocation() {
        let mut t = Tensor::filled(&[4], 1.0f32);
        let ptr = t.data().as_ptr();
        t.reset_to(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[0.0; 4]);
        assert_eq!(t.data().as_ptr(), ptr);
    }

    #[test]
    fn map_and_reductions() {
        let t = Tensor::from_vec(&[3], vec![1.0f32, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 2.0 / 3.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.map(|v| v * v).data(), &[1.0, 4.0, 9.0]);
    }
}
