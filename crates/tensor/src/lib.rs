//! Minimal tensor library with reverse-mode automatic differentiation,
//! purpose-built for the DHF deep prior.
//!
//! The published system trains a small U-Net on a *single* masked
//! spectrogram. General-purpose Rust DL frameworks were judged too immature
//! for the paper's custom *dilated harmonic convolution* (frequency
//! neighbourhoods at integer multiples `k·ω/anchor` instead of adjacent
//! bins, Eqs. 1/2/8), so this crate implements exactly the operator set the
//! network needs:
//!
//! * [`Scalar`] — the element abstraction: every structure defaults to the
//!   production `f32` path; the `f64` instantiation is the accuracy
//!   reference used to measure the f32 error budget. There is no silent
//!   f64 widening inside the f32 kernels (reductions that need extra
//!   headroom use compensated summation in the working precision).
//! * [`Tensor`] — dense row-major array with shape metadata.
//! * [`Graph`] — a define-once/run-many autograd arena: insertion order is
//!   execution order, [`Graph::forward`] re-evaluates the whole graph (new
//!   leaf values included), [`Graph::backward`] fills gradients.
//! * Operators: elementwise arithmetic, activations, zero-padded 2-D
//!   convolution with independent frequency/time dilation, **harmonic
//!   convolution** with configurable anchor, time-only average pooling,
//!   frequency max-pooling (for the Zhang-baseline ablation), nearest
//!   upsampling, channel concatenation, instance normalization, and a
//!   masked mean-squared-error loss.
//! * [`optim`] — Adam and SGD over the graph's trainable leaves.
//!
//! # Example: fit a tiny network to a constant image
//!
//! ```
//! use dhf_tensor::{Graph, Tensor, optim::Adam};
//!
//! let mut g: Graph = Graph::new();
//! let x = g.input(Tensor::filled(&[1, 4, 4], 1.0));
//! let w = g.param(Tensor::filled(&[1, 1, 3, 3], 0.0));
//! let y = g.conv2d(x, w, 1, 1);
//! let target = g.input(Tensor::filled(&[1, 4, 4], 0.9));
//! let mask = g.input(Tensor::filled(&[1, 4, 4], 1.0));
//! let loss = g.mse_masked(y, target, mask);
//!
//! let mut adam = Adam::new(0.1);
//! for _ in 0..500 {
//!     g.forward();
//!     g.backward(loss);
//!     adam.step(&mut g);
//! }
//! g.forward();
//! assert!(g.value(loss).data()[0] < 1e-3);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod scalar;
mod tensor;

pub mod init;
pub mod ops;
pub mod optim;

pub use graph::{Graph, Op, VarId};
pub use scalar::Scalar;
pub use tensor::Tensor;

/// Errors produced when constructing or combining tensors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: Vec<usize>,
        /// Shape of the right/second operand.
        right: Vec<usize>,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::InvalidParameter(name) => write!(f, "invalid parameter `{name}`"),
        }
    }
}

impl std::error::Error for TensorError {}
