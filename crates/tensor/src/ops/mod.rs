//! Operator kernels (forward and backward) used by the autograd [`Graph`].
//!
//! Kernels are plain functions over [`Tensor`] buffers so they can be tested
//! in isolation; the graph layer is responsible for shape bookkeeping and
//! gradient accumulation order.
//!
//! [`Graph`]: crate::Graph
//! [`Tensor`]: crate::Tensor

pub mod conv;
pub mod harmonic;
pub mod norm;
pub mod pool;
