//! Zero-padded ("same") 2-D convolution with independent dilation per axis.
//!
//! Input layout `[in_ch, H, W]`, weight layout `[out_ch, in_ch, KH, KW]`,
//! output `[out_ch, H, W]`. Kernel extents must be odd so the padding that
//! keeps spatial size is well defined.

use crate::scalar::Scalar;
use crate::Tensor;

/// Validates shapes and returns `(cin, h, w, cout, kh, kw)`.
///
/// # Panics
///
/// Panics on rank or extent mismatches, or even kernel extents.
pub fn check_shapes<S: Scalar>(
    x: &Tensor<S>,
    w: &Tensor<S>,
) -> (usize, usize, usize, usize, usize, usize) {
    assert_eq!(x.shape().len(), 3, "conv2d input must be [C,H,W], got {:?}", x.shape());
    assert_eq!(w.shape().len(), 4, "conv2d weight must be [Cout,Cin,KH,KW], got {:?}", w.shape());
    let (cin, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (cout, wcin, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    assert_eq!(cin, wcin, "conv2d channel mismatch: input {cin}, weight {wcin}");
    assert!(kh % 2 == 1 && kw % 2 == 1, "conv2d kernel extents must be odd");
    (cin, h, wd, cout, kh, kw)
}

/// Forward convolution. `out` must be pre-shaped to `[cout, H, W]`.
pub fn forward<S: Scalar>(
    x: &Tensor<S>,
    w: &Tensor<S>,
    dil_h: usize,
    dil_w: usize,
    out: &mut Tensor<S>,
) {
    let (cin, h, wd, cout, kh, kw) = check_shapes(x, w);
    debug_assert_eq!(out.shape(), &[cout, h, wd]);
    let pad_h = (kh / 2) * dil_h;
    let pad_w = (kw / 2) * dil_w;
    let xd = x.data();
    let wdat = w.data();
    let od = out.data_mut();
    od.iter_mut().for_each(|v| *v = S::ZERO);

    for co in 0..cout {
        for ci in 0..cin {
            let wbase = ((co * cin) + ci) * kh * kw;
            let xbase = ci * h * wd;
            for ki in 0..kh {
                // Input row corresponding to output row `oh`:
                // ih = oh + ki*dil_h - pad_h
                let row_off = ki * dil_h;
                for kj in 0..kw {
                    let wv = wdat[wbase + ki * kw + kj];
                    if wv == S::ZERO {
                        continue;
                    }
                    let col_off = kj * dil_w;
                    // Valid output rows: 0 <= oh + row_off - pad_h < h.
                    let oh_lo = pad_h.saturating_sub(row_off);
                    let oh_hi = (h + pad_h).saturating_sub(row_off).min(h);
                    let ow_lo = pad_w.saturating_sub(col_off);
                    let ow_hi = (wd + pad_w).saturating_sub(col_off).min(wd);
                    for oh in oh_lo..oh_hi {
                        let ih = oh + row_off - pad_h;
                        let orow = (co * h + oh) * wd;
                        let irow = xbase + ih * wd;
                        for ow in ow_lo..ow_hi {
                            let iw = ow + col_off - pad_w;
                            od[orow + ow] += xd[irow + iw] * wv;
                        }
                    }
                }
            }
        }
    }
}

/// Backward pass: accumulates `∂L/∂x` into `grad_x` and `∂L/∂w` into
/// `grad_w` given upstream `grad_out`.
#[allow(clippy::too_many_arguments)]
pub fn backward<S: Scalar>(
    x: &Tensor<S>,
    w: &Tensor<S>,
    grad_out: &Tensor<S>,
    dil_h: usize,
    dil_w: usize,
    grad_x: &mut Tensor<S>,
    grad_w: &mut Tensor<S>,
) {
    let (cin, h, wd, cout, kh, kw) = check_shapes(x, w);
    debug_assert_eq!(grad_out.shape(), &[cout, h, wd]);
    let pad_h = (kh / 2) * dil_h;
    let pad_w = (kw / 2) * dil_w;
    let xd = x.data();
    let wdat = w.data();
    let god = grad_out.data();
    let gxd = grad_x.data_mut();

    // ∂L/∂x and ∂L/∂w in one sweep over the same index space as forward.
    for co in 0..cout {
        for ci in 0..cin {
            let wbase = ((co * cin) + ci) * kh * kw;
            let xbase = ci * h * wd;
            for ki in 0..kh {
                let row_off = ki * dil_h;
                for kj in 0..kw {
                    let col_off = kj * dil_w;
                    let oh_lo = pad_h.saturating_sub(row_off);
                    let oh_hi = (h + pad_h).saturating_sub(row_off).min(h);
                    let ow_lo = pad_w.saturating_sub(col_off);
                    let ow_hi = (wd + pad_w).saturating_sub(col_off).min(wd);
                    let wv = wdat[wbase + ki * kw + kj];
                    let mut gw_acc = S::ZERO;
                    for oh in oh_lo..oh_hi {
                        let ih = oh + row_off - pad_h;
                        let orow = (co * h + oh) * wd;
                        let irow = xbase + ih * wd;
                        for ow in ow_lo..ow_hi {
                            let iw = ow + col_off - pad_w;
                            let g = god[orow + ow];
                            gxd[irow + iw] += g * wv;
                            gw_acc += g * xd[irow + iw];
                        }
                    }
                    grad_w.data_mut()[wbase + ki * kw + kj] += gw_acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_reproduces_input() {
        let x = Tensor::from_vec(&[1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.data_mut()[4] = 1.0; // centre tap
        let mut out = Tensor::zeros(&[1, 3, 3]);
        forward(&x, &w, 1, 1, &mut out);
        assert_eq!(out.data(), x.data());
    }

    #[test]
    fn box_kernel_averages_neighbours() {
        let x = Tensor::filled(&[1, 4, 4], 1.0);
        let w = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let mut out = Tensor::zeros(&[1, 4, 4]);
        forward(&x, &w, 1, 1, &mut out);
        // Interior points see all 9 taps; corners only 4.
        assert_eq!(out.at3(0, 1, 1), 9.0);
        assert_eq!(out.at3(0, 0, 0), 4.0);
        assert_eq!(out.at3(0, 0, 1), 6.0);
    }

    #[test]
    fn dilation_reaches_further() {
        // 5 columns, kernel [1,1,1,3] with dilation 2 spans columns ±2.
        let x = Tensor::from_vec(&[1, 1, 5], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let w = Tensor::from_vec(&[1, 1, 1, 3], vec![1.0, 0.0, 1.0]);
        let mut out = Tensor::zeros(&[1, 1, 5]);
        forward(&x, &w, 1, 2, &mut out);
        // out[t] = x[t-2] + x[t+2] (zero padded)
        assert_eq!(out.data(), &[3.0, 4.0, 6.0, 2.0, 3.0]);
    }

    #[test]
    fn multi_channel_sums_over_input_channels() {
        let x = Tensor::from_vec(&[2, 1, 2], vec![1.0, 2.0, 10.0, 20.0]);
        // One output channel, centre taps 1 for both input channels.
        let mut w = Tensor::zeros(&[1, 2, 1, 1]);
        w.data_mut()[0] = 1.0;
        w.data_mut()[1] = 1.0;
        let mut out = Tensor::zeros(&[1, 1, 2]);
        forward(&x, &w, 1, 1, &mut out);
        assert_eq!(out.data(), &[11.0, 22.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::from_vec(&[2, 3, 4], (0..24).map(|v| (v as f32 * 0.3).sin()).collect());
        let w = Tensor::from_vec(
            &[2, 2, 3, 3],
            (0..36).map(|v| (v as f32 * 0.7).cos() * 0.2).collect(),
        );
        let mut out = Tensor::zeros(&[2, 3, 4]);
        forward(&x, &w, 1, 1, &mut out);
        // Loss = sum(out); upstream gradient of ones.
        let go = Tensor::filled(&[2, 3, 4], 1.0);
        let mut gx = Tensor::zeros(&[2, 3, 4]);
        let mut gw = Tensor::zeros(&[2, 2, 3, 3]);
        backward(&x, &w, &go, 1, 1, &mut gx, &mut gw);

        let eps = 1e-3f32;
        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            let mut o = Tensor::zeros(&[2, 3, 4]);
            forward(x, w, 1, 1, &mut o);
            o.sum()
        };
        for i in (0..24).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let num = (loss(&xp, &w) - loss(&x, &w)) / eps;
            assert!((num - gx.data()[i]).abs() < 1e-2, "gx[{i}]: {num} vs {}", gx.data()[i]);
        }
        for i in (0..36).step_by(7) {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let num = (loss(&x, &wp) - loss(&x, &w)) / eps;
            assert!((num - gw.data()[i]).abs() < 1e-2, "gw[{i}]: {num} vs {}", gw.data()[i]);
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn mismatched_channels_panic() {
        let x: Tensor = Tensor::zeros(&[2, 3, 3]);
        let w = Tensor::zeros(&[1, 3, 3, 3]);
        let mut out = Tensor::zeros(&[1, 3, 3]);
        forward(&x, &w, 1, 1, &mut out);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_panics() {
        let x: Tensor = Tensor::zeros(&[1, 3, 3]);
        let w = Tensor::zeros(&[1, 1, 2, 2]);
        let mut out = Tensor::zeros(&[1, 3, 3]);
        forward(&x, &w, 1, 1, &mut out);
    }
}
