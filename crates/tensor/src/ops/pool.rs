//! Pooling and upsampling kernels.
//!
//! The SpAc LU-Net pools **only along time**: the paper forbids pooling in
//! frequency so every harmonic row keeps its exact position ("no frequency
//! folding"). Frequency max-pooling is provided solely for the Figure-3
//! ablation that reproduces the Zhang et al. baseline behaviour.

use crate::scalar::Scalar;
use crate::Tensor;

/// Average pooling along the time (last) axis by an integer factor.
///
/// # Panics
///
/// Panics unless the input is `[C,F,T]` with `T` divisible by `factor`.
pub fn avg_pool_time_forward<S: Scalar>(x: &Tensor<S>, factor: usize, out: &mut Tensor<S>) {
    assert_eq!(x.shape().len(), 3, "pool input must be [C,F,T]");
    assert!(factor >= 1);
    let (c, f, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(t % factor, 0, "time extent {t} not divisible by pool factor {factor}");
    let to = t / factor;
    debug_assert_eq!(out.shape(), &[c, f, to]);
    let xd = x.data();
    let od = out.data_mut();
    let inv = S::ONE / S::from_usize(factor);
    for cf in 0..c * f {
        let ibase = cf * t;
        let obase = cf * to;
        for ot in 0..to {
            let mut acc = S::ZERO;
            for j in 0..factor {
                acc += xd[ibase + ot * factor + j];
            }
            od[obase + ot] = acc * inv;
        }
    }
}

/// Backward of [`avg_pool_time_forward`]: spreads each upstream gradient
/// uniformly over its window.
pub fn avg_pool_time_backward<S: Scalar>(
    grad_out: &Tensor<S>,
    factor: usize,
    grad_x: &mut Tensor<S>,
) {
    let (c, f, to) = (grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2]);
    let t = to * factor;
    debug_assert_eq!(grad_x.shape(), &[c, f, t]);
    let god = grad_out.data();
    let gxd = grad_x.data_mut();
    let inv = S::ONE / S::from_usize(factor);
    for cf in 0..c * f {
        let ibase = cf * t;
        let obase = cf * to;
        for ot in 0..to {
            let g = god[obase + ot] * inv;
            for j in 0..factor {
                gxd[ibase + ot * factor + j] += g;
            }
        }
    }
}

/// Max pooling along the frequency axis; records flat argmax indices into
/// `argmax` (same element count as `out`) for the backward pass.
///
/// # Panics
///
/// Panics unless the input is `[C,F,T]` with `F` divisible by `factor`.
pub fn max_pool_freq_forward<S: Scalar>(
    x: &Tensor<S>,
    factor: usize,
    out: &mut Tensor<S>,
    argmax: &mut Vec<usize>,
) {
    assert_eq!(x.shape().len(), 3, "pool input must be [C,F,T]");
    assert!(factor >= 1);
    let (c, f, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(f % factor, 0, "freq extent {f} not divisible by pool factor {factor}");
    let fo = f / factor;
    debug_assert_eq!(out.shape(), &[c, fo, t]);
    argmax.clear();
    argmax.resize(c * fo * t, 0);
    let xd = x.data();
    let od = out.data_mut();
    for ci in 0..c {
        for ofq in 0..fo {
            for ti in 0..t {
                let mut best = S::neg_infinity();
                let mut best_idx = 0usize;
                for j in 0..factor {
                    let idx = (ci * f + ofq * factor + j) * t + ti;
                    if xd[idx] > best {
                        best = xd[idx];
                        best_idx = idx;
                    }
                }
                let oidx = (ci * fo + ofq) * t + ti;
                od[oidx] = best;
                argmax[oidx] = best_idx;
            }
        }
    }
}

/// Backward of [`max_pool_freq_forward`]: routes gradients to the argmax.
pub fn max_pool_freq_backward<S: Scalar>(
    grad_out: &Tensor<S>,
    argmax: &[usize],
    grad_x: &mut Tensor<S>,
) {
    let god = grad_out.data();
    let gxd = grad_x.data_mut();
    for (o, &src) in argmax.iter().enumerate() {
        gxd[src] += god[o];
    }
}

/// Nearest-neighbour upsampling along time by an integer factor.
pub fn upsample_time_forward<S: Scalar>(x: &Tensor<S>, factor: usize, out: &mut Tensor<S>) {
    let (c, f, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    debug_assert_eq!(out.shape(), &[c, f, t * factor]);
    let xd = x.data();
    let od = out.data_mut();
    for cf in 0..c * f {
        for ti in 0..t {
            let v = xd[cf * t + ti];
            for j in 0..factor {
                od[cf * t * factor + ti * factor + j] = v;
            }
        }
    }
}

/// Backward of [`upsample_time_forward`]: sums gradients over each window.
pub fn upsample_time_backward<S: Scalar>(
    grad_out: &Tensor<S>,
    factor: usize,
    grad_x: &mut Tensor<S>,
) {
    let (c, f, t) = (grad_x.shape()[0], grad_x.shape()[1], grad_x.shape()[2]);
    debug_assert_eq!(grad_out.shape(), &[c, f, t * factor]);
    let god = grad_out.data();
    let gxd = grad_x.data_mut();
    for cf in 0..c * f {
        for ti in 0..t {
            let mut acc = S::ZERO;
            for j in 0..factor {
                acc += god[cf * t * factor + ti * factor + j];
            }
            gxd[cf * t + ti] += acc;
        }
    }
}

/// Nearest-neighbour upsampling along frequency by an integer factor.
pub fn upsample_freq_forward<S: Scalar>(x: &Tensor<S>, factor: usize, out: &mut Tensor<S>) {
    let (c, f, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    debug_assert_eq!(out.shape(), &[c, f * factor, t]);
    let xd = x.data();
    let od = out.data_mut();
    for ci in 0..c {
        for fq in 0..f {
            for j in 0..factor {
                let orow = (ci * f * factor + fq * factor + j) * t;
                let irow = (ci * f + fq) * t;
                od[orow..orow + t].copy_from_slice(&xd[irow..irow + t]);
            }
        }
    }
}

/// Backward of [`upsample_freq_forward`].
pub fn upsample_freq_backward<S: Scalar>(
    grad_out: &Tensor<S>,
    factor: usize,
    grad_x: &mut Tensor<S>,
) {
    let (c, f, t) = (grad_x.shape()[0], grad_x.shape()[1], grad_x.shape()[2]);
    debug_assert_eq!(grad_out.shape(), &[c, f * factor, t]);
    let god = grad_out.data();
    let gxd = grad_x.data_mut();
    for ci in 0..c {
        for fq in 0..f {
            let irow = (ci * f + fq) * t;
            for j in 0..factor {
                let orow = (ci * f * factor + fq * factor + j) * t;
                for ti in 0..t {
                    gxd[irow + ti] += god[orow + ti];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_time_halves_and_averages() {
        let x = Tensor::from_vec(&[1, 1, 6], vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0]);
        let mut out = Tensor::zeros(&[1, 1, 3]);
        avg_pool_time_forward(&x, 2, &mut out);
        assert_eq!(out.data(), &[2.0, 6.0, 3.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let go = Tensor::from_vec(&[1, 1, 2], vec![4.0, 8.0]);
        let mut gx = Tensor::zeros(&[1, 1, 4]);
        avg_pool_time_backward(&go, 2, &mut gx);
        assert_eq!(gx.data(), &[2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn max_pool_freq_takes_max_and_routes_gradient() {
        let x = Tensor::from_vec(&[1, 4, 2], vec![1.0, 9.0, 5.0, 2.0, 0.0, 1.0, 7.0, 3.0]);
        let mut out = Tensor::zeros(&[1, 2, 2]);
        let mut argmax = Vec::new();
        max_pool_freq_forward(&x, 2, &mut out, &mut argmax);
        assert_eq!(out.data(), &[5.0, 9.0, 7.0, 3.0]);
        let go = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut gx = Tensor::zeros(&[1, 4, 2]);
        max_pool_freq_backward(&go, &argmax, &mut gx);
        assert_eq!(gx.data(), &[0.0, 2.0, 1.0, 0.0, 0.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn upsample_time_repeats_and_backward_sums() {
        let x = Tensor::from_vec(&[1, 1, 2], vec![3.0, 5.0]);
        let mut out = Tensor::zeros(&[1, 1, 4]);
        upsample_time_forward(&x, 2, &mut out);
        assert_eq!(out.data(), &[3.0, 3.0, 5.0, 5.0]);
        let go = Tensor::from_vec(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let mut gx = Tensor::zeros(&[1, 1, 2]);
        upsample_time_backward(&go, 2, &mut gx);
        assert_eq!(gx.data(), &[3.0, 7.0]);
    }

    #[test]
    fn upsample_freq_repeats_rows() {
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = Tensor::zeros(&[1, 4, 2]);
        upsample_freq_forward(&x, 2, &mut out);
        assert_eq!(out.data(), &[1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 3.0, 4.0]);
        let go = Tensor::filled(&[1, 4, 2], 1.0);
        let mut gx = Tensor::zeros(&[1, 2, 2]);
        upsample_freq_backward(&go, 2, &mut gx);
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_then_upsample_round_trip_on_constant() {
        let x = Tensor::filled(&[2, 3, 8], 1.5);
        let mut pooled = Tensor::zeros(&[2, 3, 4]);
        avg_pool_time_forward(&x, 2, &mut pooled);
        let mut up = Tensor::zeros(&[2, 3, 8]);
        upsample_time_forward(&pooled, 2, &mut up);
        assert_eq!(up.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn avg_pool_rejects_indivisible_time() {
        let x: Tensor = Tensor::zeros(&[1, 1, 5]);
        let mut out = Tensor::zeros(&[1, 1, 2]);
        avg_pool_time_forward(&x, 2, &mut out);
    }
}
