//! Instance normalization over `[C,F,T]` images.
//!
//! Each channel is normalized by its own spatial mean and variance, then
//! scaled and shifted by per-channel affine parameters. This is the
//! normalization used between the deep prior's convolution blocks (batch
//! size is always one, so batch norm degenerates to instance norm anyway).

use crate::scalar::Scalar;
use crate::Tensor;

/// Forward instance norm.
///
/// `aux` receives `[mean_0, inv_std_0, mean_1, inv_std_1, …]` for the
/// backward pass.
///
/// # Panics
///
/// Panics unless `x` is `[C,F,T]` and `gamma`/`beta` are `[C]`.
pub fn forward<S: Scalar>(
    x: &Tensor<S>,
    gamma: &Tensor<S>,
    beta: &Tensor<S>,
    eps: f32,
    out: &mut Tensor<S>,
    aux: &mut Vec<S>,
) {
    assert_eq!(x.shape().len(), 3, "instance norm input must be [C,F,T]");
    let (c, f, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(gamma.shape(), &[c], "gamma must be [C]");
    assert_eq!(beta.shape(), &[c], "beta must be [C]");
    let eps = S::from_f32(eps);
    let area = S::from_usize(f * t);
    let xd = x.data();
    let od = out.data_mut();
    aux.clear();
    aux.resize(2 * c, S::ZERO);
    for ci in 0..c {
        let base = ci * f * t;
        let slice = &xd[base..base + f * t];
        let mean = slice.iter().copied().sum::<S>() / area;
        let var = slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<S>() / area;
        let inv_std = S::ONE / (var + eps).sqrt();
        aux[2 * ci] = mean;
        aux[2 * ci + 1] = inv_std;
        let g = gamma.data()[ci];
        let b = beta.data()[ci];
        for (o, &v) in od[base..base + f * t].iter_mut().zip(slice) {
            *o = g * (v - mean) * inv_std + b;
        }
    }
}

/// Backward instance norm: accumulates gradients for `x`, `gamma`, `beta`.
#[allow(clippy::too_many_arguments)]
pub fn backward<S: Scalar>(
    x: &Tensor<S>,
    gamma: &Tensor<S>,
    grad_out: &Tensor<S>,
    aux: &[S],
    grad_x: &mut Tensor<S>,
    grad_gamma: &mut Tensor<S>,
    grad_beta: &mut Tensor<S>,
) {
    let (c, f, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let area = S::from_usize(f * t);
    let xd = x.data();
    let god = grad_out.data();
    let gxd = grad_x.data_mut();
    for ci in 0..c {
        let base = ci * f * t;
        let mean = aux[2 * ci];
        let inv_std = aux[2 * ci + 1];
        let g = gamma.data()[ci];
        // Accumulate the three reductions.
        let mut sum_dy = S::ZERO;
        let mut sum_dy_xhat = S::ZERO;
        for i in 0..f * t {
            let xhat = (xd[base + i] - mean) * inv_std;
            let dy = god[base + i];
            sum_dy += dy;
            sum_dy_xhat += dy * xhat;
        }
        grad_beta.data_mut()[ci] += sum_dy;
        grad_gamma.data_mut()[ci] += sum_dy_xhat;
        let k1 = sum_dy / area;
        let k2 = sum_dy_xhat / area;
        for i in 0..f * t {
            let xhat = (xd[base + i] - mean) * inv_std;
            gxd[base + i] += g * inv_std * (god[base + i] - k1 - xhat * k2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_normalizes_each_channel() {
        let x = Tensor::from_vec(&[2, 1, 4], vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let gamma = Tensor::filled(&[2], 1.0);
        let beta = Tensor::zeros(&[2]);
        let mut out = Tensor::zeros(&[2, 1, 4]);
        let mut aux = Vec::new();
        forward(&x, &gamma, &beta, 1e-5, &mut out, &mut aux);
        // Channel 0: zero mean, unit variance.
        let ch0 = &out.data()[..4];
        let mean: f32 = ch0.iter().sum::<f32>() / 4.0;
        let var: f32 = ch0.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
        // Constant channel stays ~zero (epsilon regularized).
        assert!(out.data()[4..].iter().all(|&v| v.abs() < 1e-3));
    }

    #[test]
    fn affine_parameters_scale_and_shift() {
        let x = Tensor::from_vec(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let gamma = Tensor::filled(&[1], 2.0);
        let beta = Tensor::filled(&[1], 5.0);
        let mut out = Tensor::zeros(&[1, 1, 4]);
        let mut aux = Vec::new();
        forward(&x, &gamma, &beta, 1e-5, &mut out, &mut aux);
        let mean: f32 = out.data().iter().sum::<f32>() / 4.0;
        assert!((mean - 5.0).abs() < 1e-5);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::from_vec(&[2, 2, 3], (0..12).map(|v| (v as f32 * 0.43).sin()).collect());
        let gamma = Tensor::from_vec(&[2], vec![1.3, 0.7]);
        let beta = Tensor::from_vec(&[2], vec![0.1, -0.2]);
        let eps = 1e-5;
        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let mut o = Tensor::zeros(&[2, 2, 3]);
            let mut aux = Vec::new();
            forward(x, g, b, eps, &mut o, &mut aux);
            o.data().iter().enumerate().map(|(i, &v)| v * ((i % 3) as f32 + 1.0)).sum()
        };
        let mut go = Tensor::zeros(&[2, 2, 3]);
        for (i, v) in go.data_mut().iter_mut().enumerate() {
            *v = (i % 3) as f32 + 1.0;
        }
        let mut out = Tensor::zeros(&[2, 2, 3]);
        let mut aux = Vec::new();
        forward(&x, &gamma, &beta, eps, &mut out, &mut aux);
        let mut gx = Tensor::zeros(&[2, 2, 3]);
        let mut gg = Tensor::zeros(&[2]);
        let mut gb = Tensor::zeros(&[2]);
        backward(&x, &gamma, &go, &aux, &mut gx, &mut gg, &mut gb);

        let h = 1e-3f32;
        let base = loss(&x, &gamma, &beta);
        for i in 0..12 {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let num = (loss(&xp, &gamma, &beta) - base) / h;
            assert!((num - gx.data()[i]).abs() < 0.05, "gx[{i}]: {num} vs {}", gx.data()[i]);
        }
        for i in 0..2 {
            let mut gp = gamma.clone();
            gp.data_mut()[i] += h;
            let num = (loss(&x, &gp, &beta) - base) / h;
            assert!((num - gg.data()[i]).abs() < 0.05, "gg[{i}]");
            let mut bp = beta.clone();
            bp.data_mut()[i] += h;
            let num = (loss(&x, &gamma, &bp) - base) / h;
            assert!((num - gb.data()[i]).abs() < 0.05, "gb[{i}]");
        }
    }
}
