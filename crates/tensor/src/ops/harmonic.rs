//! Dilated harmonic convolution (paper Eqs. 1, 2 and 8).
//!
//! Where a standard convolution looks at *adjacent* frequency bins, the
//! harmonic convolution's frequency neighbourhood at bin `ω` is the set of
//! integer multiples `round(k·ω / anchor)` for `k = 1..=H`:
//!
//! * `anchor = 1` (the paper's *Spectrally Accurate* setting) visits only
//!   forward harmonics `ω, 2ω, 3ω, …`;
//! * `anchor > 1` (the Zhang et al. baseline) also visits fractional —
//!   "backward" — positions like `ω/2`, which the paper shows weakens the
//!   prior.
//!
//! The time dimension uses ordinary taps spaced `dil_t` apart (Eq. 8), so a
//! pattern-aligned source, constant in frequency, is predicted from its own
//! past and future at the *same* bin.
//!
//! Input layout `[in_ch, F, T]`, weight `[out_ch, in_ch, H, KT]` (harmonic
//! index × time taps), output `[out_ch, F, T]`. Out-of-range harmonic rows
//! contribute zero (zero padding in frequency); time is zero padded too.

use crate::scalar::Scalar;
use crate::Tensor;

/// Validates shapes, returning `(cin, f, t, cout, harmonics, kt)`.
///
/// # Panics
///
/// Panics on rank/extent mismatches, an even time-kernel extent, or a zero
/// anchor.
pub fn check_shapes<S: Scalar>(
    x: &Tensor<S>,
    w: &Tensor<S>,
    anchor: usize,
) -> (usize, usize, usize, usize, usize, usize) {
    assert_eq!(x.shape().len(), 3, "harmonic conv input must be [C,F,T]");
    assert_eq!(w.shape().len(), 4, "harmonic conv weight must be [Cout,Cin,H,KT]");
    assert!(anchor >= 1, "anchor must be >= 1");
    let (cin, f, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (cout, wcin, harm, kt) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    assert_eq!(cin, wcin, "harmonic conv channel mismatch: input {cin}, weight {wcin}");
    assert!(kt % 2 == 1, "time kernel extent must be odd");
    assert!(harm >= 1, "need at least one harmonic");
    (cin, f, t, cout, harm, kt)
}

/// Frequency row accessed by harmonic `k` (1-based) at bin `f` with the
/// given anchor; `None` when it falls outside `0..bins`.
#[inline]
pub fn harmonic_row(k: usize, f: usize, anchor: usize, bins: usize) -> Option<usize> {
    let row = ((k * f) as f64 / anchor as f64).round() as usize;
    (row < bins).then_some(row)
}

/// Forward harmonic convolution. `out` must be pre-shaped to `[cout, F, T]`.
pub fn forward<S: Scalar>(
    x: &Tensor<S>,
    w: &Tensor<S>,
    anchor: usize,
    dil_t: usize,
    out: &mut Tensor<S>,
) {
    let (cin, f, t, cout, harm, kt) = check_shapes(x, w, anchor);
    debug_assert_eq!(out.shape(), &[cout, f, t]);
    let half = kt / 2;
    let xd = x.data();
    let wd = w.data();
    let od = out.data_mut();
    od.iter_mut().for_each(|v| *v = S::ZERO);

    for co in 0..cout {
        for ci in 0..cin {
            let wbase = ((co * cin) + ci) * harm * kt;
            for fq in 0..f {
                let orow = (co * f + fq) * t;
                for k in 1..=harm {
                    let Some(row) = harmonic_row(k, fq, anchor, f) else { continue };
                    let irow = (ci * f + row) * t;
                    for j in 0..kt {
                        let wv = wd[wbase + (k - 1) * kt + j];
                        if wv == S::ZERO {
                            continue;
                        }
                        // Input time: ot + (j - half)·dil_t, zero padded.
                        let shift = (j as isize - half as isize) * dil_t as isize;
                        let (ot_lo, ot_hi) = time_bounds(shift, t);
                        for ot in ot_lo..ot_hi {
                            let it = (ot as isize + shift) as usize;
                            od[orow + ot] += xd[irow + it] * wv;
                        }
                    }
                }
            }
        }
    }
}

/// Valid output-time range `[lo, hi)` such that `ot + shift ∈ [0, t)`.
#[inline]
fn time_bounds(shift: isize, t: usize) -> (usize, usize) {
    let lo = if shift < 0 { (-shift) as usize } else { 0 };
    let hi = if shift > 0 { t.saturating_sub(shift as usize) } else { t };
    (lo.min(t), hi)
}

/// Backward pass: accumulates input and weight gradients.
#[allow(clippy::too_many_arguments)]
pub fn backward<S: Scalar>(
    x: &Tensor<S>,
    w: &Tensor<S>,
    grad_out: &Tensor<S>,
    anchor: usize,
    dil_t: usize,
    grad_x: &mut Tensor<S>,
    grad_w: &mut Tensor<S>,
) {
    let (cin, f, t, cout, harm, kt) = check_shapes(x, w, anchor);
    debug_assert_eq!(grad_out.shape(), &[cout, f, t]);
    let half = kt / 2;
    let xd = x.data();
    let wd = w.data();
    let god = grad_out.data();
    let gxd = grad_x.data_mut();
    let gwd = grad_w.data_mut();

    for co in 0..cout {
        for ci in 0..cin {
            let wbase = ((co * cin) + ci) * harm * kt;
            for fq in 0..f {
                let orow = (co * f + fq) * t;
                for k in 1..=harm {
                    let Some(row) = harmonic_row(k, fq, anchor, f) else { continue };
                    let irow = (ci * f + row) * t;
                    for j in 0..kt {
                        let widx = wbase + (k - 1) * kt + j;
                        let wv = wd[widx];
                        let shift = (j as isize - half as isize) * dil_t as isize;
                        let (ot_lo, ot_hi) = time_bounds(shift, t);
                        let mut gw_acc = S::ZERO;
                        for ot in ot_lo..ot_hi {
                            let it = (ot as isize + shift) as usize;
                            let g = god[orow + ot];
                            gxd[irow + it] += g * wv;
                            gw_acc += g * xd[irow + it];
                        }
                        gwd[widx] += gw_acc;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_row_forward_only_with_anchor_one() {
        assert_eq!(harmonic_row(1, 3, 1, 16), Some(3));
        assert_eq!(harmonic_row(2, 3, 1, 16), Some(6));
        assert_eq!(harmonic_row(3, 3, 1, 16), Some(9));
        assert_eq!(harmonic_row(3, 6, 1, 16), None); // 18 out of range
    }

    #[test]
    fn harmonic_row_anchor_two_gives_backward_access() {
        // k=1, anchor=2 → ω/2: the "inaccurate backward neighbour" the
        // paper's SpAc design removes.
        assert_eq!(harmonic_row(1, 6, 2, 16), Some(3));
        assert_eq!(harmonic_row(2, 6, 2, 16), Some(6));
        assert_eq!(harmonic_row(3, 6, 2, 16), Some(9));
    }

    #[test]
    fn first_harmonic_identity_reproduces_input() {
        let x = Tensor::from_vec(&[1, 4, 3], (0..12).map(|v| v as f32).collect());
        // H=2, KT=1; only k=1 has weight 1 → output = input row f.
        let w = Tensor::from_vec(&[1, 1, 2, 1], vec![1.0, 0.0]);
        let mut out = Tensor::zeros(&[1, 4, 3]);
        forward(&x, &w, 1, 1, &mut out);
        assert_eq!(out.data(), x.data());
    }

    #[test]
    fn second_harmonic_reads_doubled_bin() {
        let mut x = Tensor::zeros(&[1, 8, 2]);
        // put energy at bin 6
        x.data_mut()[6 * 2] = 5.0;
        x.data_mut()[6 * 2 + 1] = 7.0;
        // Only k=2 active.
        let w = Tensor::from_vec(&[1, 1, 2, 1], vec![0.0, 1.0]);
        let mut out = Tensor::zeros(&[1, 8, 2]);
        forward(&x, &w, 1, 1, &mut out);
        // out[f=3] = x[2*3=6]
        assert_eq!(out.at3(0, 3, 0), 5.0);
        assert_eq!(out.at3(0, 3, 1), 7.0);
        // out[f=4] = x[8] -> out of range → 0
        assert_eq!(out.at3(0, 4, 0), 0.0);
    }

    #[test]
    fn time_dilation_shifts_taps() {
        let x = Tensor::from_vec(&[1, 1, 6], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // H=1, KT=3, dil_t=2; taps (past, centre, future) = (1, 0, 1):
        // out[t] = x[t-2] + x[t+2].
        let w = Tensor::from_vec(&[1, 1, 1, 3], vec![1.0, 0.0, 1.0]);
        let mut out = Tensor::zeros(&[1, 1, 6]);
        forward(&x, &w, 1, 2, &mut out);
        assert_eq!(out.data(), &[3.0, 4.0, 6.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::from_vec(&[2, 6, 5], (0..60).map(|v| (v as f32 * 0.31).sin()).collect());
        let w = Tensor::from_vec(
            &[2, 2, 3, 3],
            (0..36).map(|v| (v as f32 * 0.57).cos() * 0.3).collect(),
        );
        let anchor = 1;
        let dil = 2;
        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            let mut o = Tensor::zeros(&[2, 6, 5]);
            forward(x, w, anchor, dil, &mut o);
            // Weighted sum so gradients differ per position.
            o.data().iter().enumerate().map(|(i, &v)| v * (i % 5 + 1) as f32).sum()
        };
        let mut go = Tensor::zeros(&[2, 6, 5]);
        for (i, v) in go.data_mut().iter_mut().enumerate() {
            *v = (i % 5 + 1) as f32;
        }
        let mut gx = Tensor::zeros(&[2, 6, 5]);
        let mut gw = Tensor::zeros(&[2, 2, 3, 3]);
        backward(&x, &w, &go, anchor, dil, &mut gx, &mut gw);

        let eps = 1e-2f32;
        let base = loss(&x, &w);
        for i in (0..60).step_by(11) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let num = (loss(&xp, &w) - base) / eps;
            assert!((num - gx.data()[i]).abs() < 0.05, "gx[{i}]: {num} vs {}", gx.data()[i]);
        }
        for i in (0..36).step_by(5) {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let num = (loss(&x, &wp) - base) / eps;
            assert!((num - gw.data()[i]).abs() < 0.05, "gw[{i}]: {num} vs {}", gw.data()[i]);
        }
    }

    #[test]
    #[should_panic(expected = "anchor")]
    fn zero_anchor_panics() {
        let x: Tensor = Tensor::zeros(&[1, 4, 4]);
        let w = Tensor::zeros(&[1, 1, 2, 1]);
        let mut out = Tensor::zeros(&[1, 4, 4]);
        forward(&x, &w, 0, 1, &mut out);
    }
}
