//! Define-once / run-many reverse-mode autograd arena.
//!
//! Nodes are appended in topological order (an operator can only reference
//! already-existing nodes), so [`Graph::forward`] is a single in-order sweep
//! and [`Graph::backward`] a single reverse sweep. The graph is built once
//! per network and re-evaluated every optimization step; leaf values (inputs
//! and trainable parameters) can be replaced between runs.
//!
//! The graph is generic over its element [`Scalar`]: `Graph` (= `Graph<f32>`)
//! is the production path, `Graph<f64>` the accuracy reference. No kernel
//! widens silently — the masked-MSE reduction uses Neumaier-compensated
//! summation in the working precision instead of an f64 accumulator.

use crate::ops::{conv, harmonic, norm, pool};
use crate::scalar::Scalar;
use crate::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

impl VarId {
    /// The node's index in graph insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operator attached to a graph node.
///
/// Exposed for introspection (e.g. graph dumps in tests); construct nodes
/// through the [`Graph`] builder methods, not by hand. Scalar attributes
/// (scale factors, slopes, epsilons) are stored as `f32` and converted to
/// the graph's working precision at evaluation time — exact for both
/// precisions since every `f32` widens losslessly.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Op {
    /// External value: network input or trainable parameter.
    Leaf,
    /// Elementwise sum.
    Add(VarId, VarId),
    /// Elementwise difference.
    Sub(VarId, VarId),
    /// Elementwise (Hadamard) product.
    Mul(VarId, VarId),
    /// Multiplication by a compile-time scalar.
    Scale(VarId, f32),
    /// Per-channel bias addition over a `[C,F,T]` image.
    AddBias(VarId, VarId),
    /// Leaky rectified linear unit with the given negative slope.
    LeakyRelu(VarId, f32),
    /// Logistic sigmoid.
    Sigmoid(VarId),
    /// Hyperbolic tangent.
    Tanh(VarId),
    /// Same-padded 2-D convolution `(input, weight)` with per-axis dilation.
    Conv2d {
        /// Input image `[C,F,T]`.
        x: VarId,
        /// Weight `[Cout,Cin,KF,KT]`.
        w: VarId,
        /// Dilation along the frequency axis.
        dil_f: usize,
        /// Dilation along the time axis.
        dil_t: usize,
    },
    /// Dilated harmonic convolution (paper Eq. 8).
    HarmonicConv {
        /// Input image `[C,F,T]`.
        x: VarId,
        /// Weight `[Cout,Cin,H,KT]`.
        w: VarId,
        /// Harmonic anchor `n` of Eq. 2 (1 = forward harmonics only).
        anchor: usize,
        /// Dilation along the time axis.
        dil_t: usize,
    },
    /// Average pooling along time.
    AvgPoolTime(VarId, usize),
    /// Max pooling along frequency (Zhang-baseline ablation only).
    MaxPoolFreq(VarId, usize),
    /// Nearest-neighbour upsampling along time.
    UpsampleTime(VarId, usize),
    /// Nearest-neighbour upsampling along frequency.
    UpsampleFreq(VarId, usize),
    /// Channel concatenation of two `[C,F,T]` images.
    Concat(VarId, VarId),
    /// Instance normalization `(x, gamma, beta)`.
    InstanceNorm {
        /// Input image `[C,F,T]`.
        x: VarId,
        /// Per-channel scale `[C]`.
        gamma: VarId,
        /// Per-channel shift `[C]`.
        beta: VarId,
        /// Variance regularizer.
        eps: f32,
    },
    /// Mask-weighted mean squared error `(pred, target, mask)`, scalar.
    MseMasked(VarId, VarId, VarId),
    /// Sum of all elements, scalar.
    Sum(VarId),
}

struct Node<S: Scalar> {
    op: Op,
    value: Tensor<S>,
    grad: Tensor<S>,
    aux: Vec<S>,
    aux_idx: Vec<usize>,
    trainable: bool,
}

/// Reverse-mode autograd graph. See the [crate docs](crate) for an
/// end-to-end training example.
pub struct Graph<S: Scalar = f32> {
    nodes: Vec<Node<S>>,
    params: Vec<VarId>,
}

impl<S: Scalar> Default for Graph<S> {
    fn default() -> Self {
        Graph { nodes: Vec::new(), params: Vec::new() }
    }
}

impl<S: Scalar> std::fmt::Debug for Graph<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .field("params", &self.params.len())
            .finish()
    }
}

impl<S: Scalar> Graph<S> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a non-trainable leaf (network input, target, mask, …).
    pub fn input(&mut self, value: Tensor<S>) -> VarId {
        self.push_leaf(value, false)
    }

    /// Registers a trainable leaf; it will be visited by optimizers.
    pub fn param(&mut self, value: Tensor<S>) -> VarId {
        let id = self.push_leaf(value, true);
        self.params.push(id);
        id
    }

    /// Trainable parameter handles, in registration order.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// Total number of trainable scalar parameters.
    pub fn param_count(&self) -> usize {
        self.params.iter().map(|&p| self.nodes[p.0].value.numel()).sum()
    }

    /// Current value of a node.
    pub fn value(&self, id: VarId) -> &Tensor<S> {
        &self.nodes[id.0].value
    }

    /// Current gradient of a node (zeros before the first backward pass).
    pub fn grad(&self, id: VarId) -> &Tensor<S> {
        &self.nodes[id.0].grad
    }

    /// Replaces a leaf's value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a leaf or the new shape differs.
    pub fn set_value(&mut self, id: VarId, value: Tensor<S>) {
        let node = &mut self.nodes[id.0];
        assert!(matches!(node.op, Op::Leaf), "set_value only applies to leaves");
        assert_eq!(node.value.shape(), value.shape(), "set_value cannot change shape");
        node.value = value;
    }

    /// Mutable access to a leaf's value buffer (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a leaf.
    pub fn leaf_value_mut(&mut self, id: VarId) -> &mut Tensor<S> {
        let node = &mut self.nodes[id.0];
        assert!(matches!(node.op, Op::Leaf), "leaf_value_mut only applies to leaves");
        &mut node.value
    }

    /// The operator of a node.
    pub fn op(&self, id: VarId) -> &Op {
        &self.nodes[id.0].op
    }

    fn push_leaf(&mut self, value: Tensor<S>, trainable: bool) -> VarId {
        let grad = Tensor::zeros(value.shape());
        self.nodes.push(Node {
            op: Op::Leaf,
            value,
            grad,
            aux: Vec::new(),
            aux_idx: Vec::new(),
            trainable,
        });
        VarId(self.nodes.len() - 1)
    }

    fn push_op(&mut self, op: Op, shape: Vec<usize>) -> VarId {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            op,
            value: Tensor::zeros(&shape),
            grad: Tensor::zeros(&shape),
            aux: Vec::new(),
            aux_idx: Vec::new(),
            trainable: false,
        });
        self.eval_at(idx);
        VarId(idx)
    }

    fn shape_of(&self, id: VarId) -> &[usize] {
        self.nodes[id.0].value.shape()
    }

    fn assert_same_shape(&self, a: VarId, b: VarId, what: &str) {
        assert_eq!(
            self.shape_of(a),
            self.shape_of(b),
            "{what}: operand shapes differ ({:?} vs {:?})",
            self.shape_of(a),
            self.shape_of(b)
        );
    }

    // ----- builder methods ------------------------------------------------

    /// Elementwise `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.assert_same_shape(a, b, "add");
        let shape = self.shape_of(a).to_vec();
        self.push_op(Op::Add(a, b), shape)
    }

    /// Elementwise `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        self.assert_same_shape(a, b, "sub");
        let shape = self.shape_of(a).to_vec();
        self.push_op(Op::Sub(a, b), shape)
    }

    /// Elementwise `a ⊙ b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        self.assert_same_shape(a, b, "mul");
        let shape = self.shape_of(a).to_vec();
        self.push_op(Op::Mul(a, b), shape)
    }

    /// `a · s` for a fixed scalar `s`.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let shape = self.shape_of(a).to_vec();
        self.push_op(Op::Scale(a, s), shape)
    }

    /// Adds per-channel bias `b` (`[C]`) to image `x` (`[C,F,T]`).
    ///
    /// # Panics
    ///
    /// Panics if ranks or channel counts disagree.
    pub fn add_bias(&mut self, x: VarId, b: VarId) -> VarId {
        assert_eq!(self.shape_of(x).len(), 3, "add_bias input must be [C,F,T]");
        assert_eq!(
            self.shape_of(b),
            &[self.shape_of(x)[0]],
            "bias must be [C] matching the input channels"
        );
        let shape = self.shape_of(x).to_vec();
        self.push_op(Op::AddBias(x, b), shape)
    }

    /// Leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&mut self, x: VarId, slope: f32) -> VarId {
        let shape = self.shape_of(x).to_vec();
        self.push_op(Op::LeakyRelu(x, slope), shape)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: VarId) -> VarId {
        let shape = self.shape_of(x).to_vec();
        self.push_op(Op::Sigmoid(x), shape)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: VarId) -> VarId {
        let shape = self.shape_of(x).to_vec();
        self.push_op(Op::Tanh(x), shape)
    }

    /// Same-padded 2-D convolution with dilation `(dil_f, dil_t)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (see [`ops::conv::check_shapes`]).
    ///
    /// [`ops::conv::check_shapes`]: crate::ops::conv::check_shapes
    pub fn conv2d(&mut self, x: VarId, w: VarId, dil_f: usize, dil_t: usize) -> VarId {
        let (_, f, t, cout, _, _) =
            conv::check_shapes(&self.nodes[x.0].value, &self.nodes[w.0].value);
        self.push_op(Op::Conv2d { x, w, dil_f, dil_t }, vec![cout, f, t])
    }

    /// Dilated harmonic convolution (paper Eq. 8) with the given anchor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (see [`ops::harmonic::check_shapes`]).
    ///
    /// [`ops::harmonic::check_shapes`]: crate::ops::harmonic::check_shapes
    pub fn harmonic_conv(&mut self, x: VarId, w: VarId, anchor: usize, dil_t: usize) -> VarId {
        let (_, f, t, cout, _, _) =
            harmonic::check_shapes(&self.nodes[x.0].value, &self.nodes[w.0].value, anchor);
        self.push_op(Op::HarmonicConv { x, w, anchor, dil_t }, vec![cout, f, t])
    }

    /// Average pooling along time by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if the time extent is not divisible by `factor`.
    pub fn avg_pool_time(&mut self, x: VarId, factor: usize) -> VarId {
        let s = self.shape_of(x);
        assert_eq!(s.len(), 3);
        assert_eq!(s[2] % factor, 0, "time extent {} not divisible by {factor}", s[2]);
        let shape = vec![s[0], s[1], s[2] / factor];
        self.push_op(Op::AvgPoolTime(x, factor), shape)
    }

    /// Max pooling along frequency by `factor` (ablation use only).
    ///
    /// # Panics
    ///
    /// Panics if the frequency extent is not divisible by `factor`.
    pub fn max_pool_freq(&mut self, x: VarId, factor: usize) -> VarId {
        let s = self.shape_of(x);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1] % factor, 0, "freq extent {} not divisible by {factor}", s[1]);
        let shape = vec![s[0], s[1] / factor, s[2]];
        self.push_op(Op::MaxPoolFreq(x, factor), shape)
    }

    /// Nearest-neighbour upsampling along time by `factor`.
    pub fn upsample_time(&mut self, x: VarId, factor: usize) -> VarId {
        let s = self.shape_of(x);
        assert_eq!(s.len(), 3);
        let shape = vec![s[0], s[1], s[2] * factor];
        self.push_op(Op::UpsampleTime(x, factor), shape)
    }

    /// Nearest-neighbour upsampling along frequency by `factor`.
    pub fn upsample_freq(&mut self, x: VarId, factor: usize) -> VarId {
        let s = self.shape_of(x);
        assert_eq!(s.len(), 3);
        let shape = vec![s[0], s[1] * factor, s[2]];
        self.push_op(Op::UpsampleFreq(x, factor), shape)
    }

    /// Concatenates two `[C,F,T]` images along channels.
    ///
    /// # Panics
    ///
    /// Panics if spatial extents differ.
    pub fn concat(&mut self, a: VarId, b: VarId) -> VarId {
        let (sa, sb) = (self.shape_of(a), self.shape_of(b));
        assert_eq!(sa.len(), 3);
        assert_eq!(sb.len(), 3);
        assert_eq!(&sa[1..], &sb[1..], "concat spatial extents differ");
        let shape = vec![sa[0] + sb[0], sa[1], sa[2]];
        self.push_op(Op::Concat(a, b), shape)
    }

    /// Instance normalization with affine parameters.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not `[C]` or alias the same node.
    pub fn instance_norm(&mut self, x: VarId, gamma: VarId, beta: VarId) -> VarId {
        assert_ne!(gamma, beta, "gamma and beta must be distinct nodes");
        let s = self.shape_of(x).to_vec();
        assert_eq!(s.len(), 3);
        assert_eq!(self.shape_of(gamma), &[s[0]]);
        assert_eq!(self.shape_of(beta), &[s[0]]);
        self.push_op(Op::InstanceNorm { x, gamma, beta, eps: 1e-5 }, s)
    }

    /// Mask-weighted MSE `Σ mask·(pred−target)² / Σ mask` (scalar output).
    ///
    /// Gradients flow into `pred` and `target` but not the mask.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `pred` aliases `target`.
    pub fn mse_masked(&mut self, pred: VarId, target: VarId, mask: VarId) -> VarId {
        assert_ne!(pred, target, "pred and target must be distinct nodes");
        self.assert_same_shape(pred, target, "mse_masked");
        self.assert_same_shape(pred, mask, "mse_masked");
        self.push_op(Op::MseMasked(pred, target, mask), vec![1])
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, x: VarId) -> VarId {
        self.push_op(Op::Sum(x), vec![1])
    }

    // ----- execution ------------------------------------------------------

    /// Recomputes every non-leaf node in insertion (topological) order.
    pub fn forward(&mut self) {
        for i in 0..self.nodes.len() {
            if !matches!(self.nodes[i].op, Op::Leaf) {
                self.eval_at(i);
            }
        }
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grads(&mut self) {
        for n in &mut self.nodes {
            n.grad.fill_zero();
        }
    }

    /// Reverse-mode gradient computation seeded at scalar node `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (one element).
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(self.nodes[loss.0].value.numel(), 1, "backward seed must be scalar");
        self.zero_grads();
        self.nodes[loss.0].grad.data_mut()[0] = S::ONE;
        for i in (0..self.nodes.len()).rev() {
            self.backprop_at(i);
        }
    }

    /// Gradient of a trainable parameter, paired with mutable value access,
    /// for optimizer updates.
    pub(crate) fn param_value_and_grad(&mut self, id: VarId) -> (&mut Tensor<S>, &Tensor<S>) {
        let node = &mut self.nodes[id.0];
        debug_assert!(node.trainable, "not a trainable parameter");
        (&mut node.value, &node.grad)
    }

    fn eval_at(&mut self, i: usize) {
        let (before, rest) = self.nodes.split_at_mut(i);
        let node = &mut rest[0];
        let v = |id: VarId| -> &Tensor<S> {
            assert!(id.0 < i, "operator input must precede the node");
            &before[id.0].value
        };
        match node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                let (va, vb) = (v(a), v(b));
                for (o, (&x, &y)) in
                    node.value.data_mut().iter_mut().zip(va.data().iter().zip(vb.data()))
                {
                    *o = x + y;
                }
            }
            Op::Sub(a, b) => {
                let (va, vb) = (v(a), v(b));
                for (o, (&x, &y)) in
                    node.value.data_mut().iter_mut().zip(va.data().iter().zip(vb.data()))
                {
                    *o = x - y;
                }
            }
            Op::Mul(a, b) => {
                let (va, vb) = (v(a), v(b));
                for (o, (&x, &y)) in
                    node.value.data_mut().iter_mut().zip(va.data().iter().zip(vb.data()))
                {
                    *o = x * y;
                }
            }
            Op::Scale(a, s) => {
                let s = S::from_f32(s);
                for (o, &x) in node.value.data_mut().iter_mut().zip(v(a).data()) {
                    *o = x * s;
                }
            }
            Op::AddBias(x, b) => {
                let (vx, vb) = (v(x), v(b));
                let (c, f, t) = (vx.shape()[0], vx.shape()[1], vx.shape()[2]);
                let od = node.value.data_mut();
                for ci in 0..c {
                    let bias = vb.data()[ci];
                    for j in 0..f * t {
                        od[ci * f * t + j] = vx.data()[ci * f * t + j] + bias;
                    }
                }
            }
            Op::LeakyRelu(a, slope) => {
                let slope = S::from_f32(slope);
                for (o, &x) in node.value.data_mut().iter_mut().zip(v(a).data()) {
                    *o = if x > S::ZERO { x } else { slope * x };
                }
            }
            Op::Sigmoid(a) => {
                for (o, &x) in node.value.data_mut().iter_mut().zip(v(a).data()) {
                    *o = S::ONE / (S::ONE + (-x).exp());
                }
            }
            Op::Tanh(a) => {
                for (o, &x) in node.value.data_mut().iter_mut().zip(v(a).data()) {
                    *o = x.tanh();
                }
            }
            Op::Conv2d { x, w, dil_f, dil_t } => {
                conv::forward(v(x), v(w), dil_f, dil_t, &mut node.value);
            }
            Op::HarmonicConv { x, w, anchor, dil_t } => {
                harmonic::forward(v(x), v(w), anchor, dil_t, &mut node.value);
            }
            Op::AvgPoolTime(x, factor) => {
                pool::avg_pool_time_forward(v(x), factor, &mut node.value);
            }
            Op::MaxPoolFreq(x, factor) => {
                pool::max_pool_freq_forward(v(x), factor, &mut node.value, &mut node.aux_idx);
            }
            Op::UpsampleTime(x, factor) => {
                pool::upsample_time_forward(v(x), factor, &mut node.value);
            }
            Op::UpsampleFreq(x, factor) => {
                pool::upsample_freq_forward(v(x), factor, &mut node.value);
            }
            Op::Concat(a, b) => {
                let (va, vb) = (v(a), v(b));
                let na = va.numel();
                node.value.data_mut()[..na].copy_from_slice(va.data());
                node.value.data_mut()[na..].copy_from_slice(vb.data());
            }
            Op::InstanceNorm { x, gamma, beta, eps } => {
                norm::forward(v(x), v(gamma), v(beta), eps, &mut node.value, &mut node.aux);
            }
            Op::MseMasked(pred, target, mask) => {
                let (vp, vt, vm) = (v(pred), v(target), v(mask));
                // Neumaier-compensated sum in the working precision — no
                // silent f64 widening on the f32 path. The denominator is a
                // sum of 0/1 mask weights and stays exact directly; only
                // the numerator needs compensation. Gradients depend on the
                // denominator alone, so this choice only affects the
                // *reported* loss value.
                let mut num = S::ZERO;
                let mut comp = S::ZERO;
                let mut den = S::ZERO;
                for ((&p, &t), &m) in vp.data().iter().zip(vt.data()).zip(vm.data()) {
                    let d = p - t;
                    let term = m * d * d;
                    let sum = num + term;
                    comp += if num.abs() >= term.abs() {
                        (num - sum) + term
                    } else {
                        (term - sum) + num
                    };
                    num = sum;
                    den += m;
                }
                let num = num + comp;
                node.aux.clear();
                node.aux.push(den);
                node.value.data_mut()[0] = if den > S::ZERO { num / den } else { S::ZERO };
            }
            Op::Sum(a) => {
                node.value.data_mut()[0] = v(a).sum();
            }
        }
    }

    fn backprop_at(&mut self, i: usize) {
        // Fast exit for leaves: nothing flows further back.
        if matches!(self.nodes[i].op, Op::Leaf) {
            return;
        }
        let (before, rest) = self.nodes.split_at_mut(i);
        let node = &rest[0];
        let go = &node.grad;

        // Helper for single-input accumulation with access to that input's
        // value (field-split keeps the borrows disjoint).
        macro_rules! acc {
            ($id:expr, $f:expr) => {{
                let n = &mut before[$id.0];
                let value = &n.value;
                let grad = &mut n.grad;
                #[allow(clippy::redundant_closure_call)]
                ($f)(value, grad);
            }};
        }

        match node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(go.data()) {
                        *gi += u;
                    }
                });
                acc!(b, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(go.data()) {
                        *gi += u;
                    }
                });
            }
            Op::Sub(a, b) => {
                acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(go.data()) {
                        *gi += u;
                    }
                });
                acc!(b, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(go.data()) {
                        *gi -= u;
                    }
                });
            }
            Op::Mul(a, b) => {
                if a == b {
                    let two = S::from_f32(2.0);
                    acc!(a, |v: &Tensor<S>, g: &mut Tensor<S>| {
                        for ((gi, &u), &x) in g.data_mut().iter_mut().zip(go.data()).zip(v.data()) {
                            *gi += two * u * x;
                        }
                    });
                } else {
                    let vb = before[b.0].value.clone();
                    acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                        for ((gi, &u), &y) in g.data_mut().iter_mut().zip(go.data()).zip(vb.data())
                        {
                            *gi += u * y;
                        }
                    });
                    let va = before[a.0].value.clone();
                    acc!(b, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                        for ((gi, &u), &x) in g.data_mut().iter_mut().zip(go.data()).zip(va.data())
                        {
                            *gi += u * x;
                        }
                    });
                }
            }
            Op::Scale(a, s) => {
                let s = S::from_f32(s);
                acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(go.data()) {
                        *gi += u * s;
                    }
                });
            }
            Op::AddBias(x, b) => {
                let (c, rest_len) = {
                    let s = node.value.shape();
                    (s[0], s[1] * s[2])
                };
                acc!(x, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(go.data()) {
                        *gi += u;
                    }
                });
                acc!(b, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for ci in 0..c {
                        let mut acc = S::ZERO;
                        for j in 0..rest_len {
                            acc += go.data()[ci * rest_len + j];
                        }
                        g.data_mut()[ci] += acc;
                    }
                });
            }
            Op::LeakyRelu(a, slope) => {
                let slope = S::from_f32(slope);
                acc!(a, |v: &Tensor<S>, g: &mut Tensor<S>| {
                    for ((gi, &u), &x) in g.data_mut().iter_mut().zip(go.data()).zip(v.data()) {
                        *gi += if x > S::ZERO { u } else { slope * u };
                    }
                });
            }
            Op::Sigmoid(a) => {
                let y = &node.value;
                acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for ((gi, &u), &yo) in g.data_mut().iter_mut().zip(go.data()).zip(y.data()) {
                        *gi += u * yo * (S::ONE - yo);
                    }
                });
            }
            Op::Tanh(a) => {
                let y = &node.value;
                acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for ((gi, &u), &yo) in g.data_mut().iter_mut().zip(go.data()).zip(y.data()) {
                        *gi += u * (S::ONE - yo * yo);
                    }
                });
            }
            Op::Conv2d { x, w, dil_f, dil_t } => {
                let (nx, nw) = pair_mut(before, x.0, w.0);
                conv::backward(&nx.value, &nw.value, go, dil_f, dil_t, &mut nx.grad, &mut nw.grad);
            }
            Op::HarmonicConv { x, w, anchor, dil_t } => {
                let (nx, nw) = pair_mut(before, x.0, w.0);
                harmonic::backward(
                    &nx.value,
                    &nw.value,
                    go,
                    anchor,
                    dil_t,
                    &mut nx.grad,
                    &mut nw.grad,
                );
            }
            Op::AvgPoolTime(x, factor) => {
                acc!(x, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    pool::avg_pool_time_backward(go, factor, g);
                });
            }
            Op::MaxPoolFreq(x, _factor) => {
                let argmax = &node.aux_idx;
                acc!(x, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    pool::max_pool_freq_backward(go, argmax, g);
                });
            }
            Op::UpsampleTime(x, factor) => {
                acc!(x, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    pool::upsample_time_backward(go, factor, g);
                });
            }
            Op::UpsampleFreq(x, factor) => {
                acc!(x, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    pool::upsample_freq_backward(go, factor, g);
                });
            }
            Op::Concat(a, b) => {
                let na = before[a.0].value.numel();
                acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(&go.data()[..na]) {
                        *gi += u;
                    }
                });
                acc!(b, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (gi, &u) in g.data_mut().iter_mut().zip(&go.data()[na..]) {
                        *gi += u;
                    }
                });
            }
            Op::InstanceNorm { x, gamma, beta, .. } => {
                // x, gamma, beta are pairwise distinct (checked at build).
                let aux = node.aux.clone();
                let vgamma = before[gamma.0].value.clone();
                {
                    let (nx, ngamma) = pair_mut(before, x.0, gamma.0);
                    // grad_beta handled separately below to keep borrows simple.
                    let mut gbeta_tmp = Tensor::zeros(vgamma.shape());
                    norm::backward(
                        &nx.value,
                        &vgamma,
                        go,
                        &aux,
                        &mut nx.grad,
                        &mut ngamma.grad,
                        &mut gbeta_tmp,
                    );
                    let nb = &mut before[beta.0];
                    for (gi, &u) in nb.grad.data_mut().iter_mut().zip(gbeta_tmp.data()) {
                        *gi += u;
                    }
                }
            }
            Op::MseMasked(pred, target, mask) => {
                let den = node.aux[0];
                if den <= S::ZERO {
                    return;
                }
                let scale = S::from_f32(2.0) * go.data()[0] / den;
                let vt = before[target.0].value.clone();
                let vm = before[mask.0].value.clone();
                acc!(pred, |v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (i, gi) in g.data_mut().iter_mut().enumerate() {
                        *gi += scale * vm.data()[i] * (v.data()[i] - vt.data()[i]);
                    }
                });
                let vp = before[pred.0].value.clone();
                acc!(target, |v: &Tensor<S>, g: &mut Tensor<S>| {
                    for (i, gi) in g.data_mut().iter_mut().enumerate() {
                        *gi -= scale * vm.data()[i] * (vp.data()[i] - v.data()[i]);
                    }
                });
            }
            Op::Sum(a) => {
                let u = go.data()[0];
                acc!(a, |_v: &Tensor<S>, g: &mut Tensor<S>| {
                    for gi in g.data_mut().iter_mut() {
                        *gi += u;
                    }
                });
            }
        }
    }
}

/// Two disjoint mutable references into a node slice.
///
/// # Panics
///
/// Panics if `a == b`.
fn pair_mut<S: Scalar>(nodes: &mut [Node<S>], a: usize, b: usize) -> (&mut Node<S>, &mut Node<S>) {
    assert_ne!(a, b, "pair_mut requires distinct indices");
    if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        let (x, y) = (&mut hi[0], &mut lo[b]);
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference check of `∂loss/∂leaf` for every element of `leaf`.
    ///
    /// Elements whose perturbation crosses a non-differentiable point (the
    /// leaky-ReLU kink, a max-pool argmax switch) are skipped: there the
    /// central difference estimates a subgradient average, not the one-sided
    /// derivative the backward pass correctly returns. Kinks are detected
    /// through the forward/backward one-sided difference asymmetry: the
    /// step is halved until the asymmetry is negligible (a nearby kink has
    /// left the window and smooth curvature has decayed), and only then is
    /// the central difference trusted. Elements still asymmetric at the
    /// smallest step (a kink essentially at the operating point) are
    /// skipped, but never more than half of the leaf.
    fn gradcheck(g: &mut Graph, loss: VarId, leaf: VarId, tol: f32) {
        g.forward();
        g.backward(loss);
        let analytic = g.grad(leaf).clone();
        let n = g.value(leaf).numel();
        let mut checked = 0usize;
        for i in 0..n {
            let orig = g.value(leaf).data()[i];
            let mut loss_at = |v: f32| -> f32 {
                g.leaf_value_mut(leaf).data_mut()[i] = v;
                g.forward();
                g.value(loss).data()[0]
            };
            let l0 = loss_at(orig);
            let mut h = 1e-2f32;
            let mut num = None;
            for _ in 0..4 {
                let lp = loss_at(orig + h);
                let lm = loss_at(orig - h);
                let fwd = (lp - l0) / h;
                let bwd = (l0 - lm) / h;
                let scale = 1.0 + fwd.abs().max(bwd.abs());
                if (fwd - bwd).abs() <= 0.25 * tol * scale {
                    num = Some((lp - lm) / (2.0 * h));
                    break;
                }
                h *= 0.5;
            }
            g.leaf_value_mut(leaf).data_mut()[i] = orig;
            let Some(num) = num else { continue };
            let a = analytic.data()[i];
            assert!(
                (num - a).abs() < tol * (1.0 + num.abs().max(a.abs())),
                "grad[{i}]: numeric {num} vs analytic {a}"
            );
            checked += 1;
        }
        assert!(checked * 2 >= n, "too many kink-skipped elements: {checked}/{n} checked");
        g.forward();
    }

    fn rand_leaf(g: &mut Graph, shape: &[usize], seed: u64, trainable: bool) -> VarId {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_normal(shape, 0.5, &mut rng);
        if trainable {
            g.param(t)
        } else {
            g.input(t)
        }
    }

    #[test]
    fn elementwise_values() {
        let mut g: Graph = Graph::new();
        let a = g.input(Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]));
        let b = g.input(Tensor::from_vec(&[3], vec![4.0, 5.0, -6.0]));
        let s = g.add(a, b);
        let d = g.sub(a, b);
        let m = g.mul(a, b);
        let sc = g.scale(a, 2.0);
        assert_eq!(g.value(s).data(), &[5.0, 3.0, -3.0]);
        assert_eq!(g.value(d).data(), &[-3.0, -7.0, 9.0]);
        assert_eq!(g.value(m).data(), &[4.0, -10.0, -18.0]);
        assert_eq!(g.value(sc).data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn activations_forward() {
        let mut g: Graph = Graph::new();
        let x = g.input(Tensor::from_vec(&[2], vec![1.0, -1.0]));
        let r = g.leaky_relu(x, 0.1);
        let s = g.sigmoid(x);
        let t = g.tanh(x);
        assert_eq!(g.value(r).data(), &[1.0, -0.1]);
        assert!((g.value(s).data()[0] - 0.7310586).abs() < 1e-5);
        assert!((g.value(t).data()[1] + 0.7615942).abs() < 1e-5);
    }

    #[test]
    fn gradcheck_elementwise_chain() {
        let mut g: Graph = Graph::new();
        let a = rand_leaf(&mut g, &[2, 3, 4], 1, true);
        let b = rand_leaf(&mut g, &[2, 3, 4], 2, false);
        let m = g.mul(a, b);
        let s = g.add(m, a);
        let r = g.leaky_relu(s, 0.2);
        let loss = g.sum(r);
        gradcheck(&mut g, loss, a, 0.05);
    }

    #[test]
    fn gradcheck_mul_self() {
        let mut g: Graph = Graph::new();
        let a = rand_leaf(&mut g, &[5], 3, true);
        let sq = g.mul(a, a);
        let loss = g.sum(sq);
        gradcheck(&mut g, loss, a, 0.05);
    }

    #[test]
    fn gradcheck_sigmoid_tanh() {
        let mut g: Graph = Graph::new();
        let a = rand_leaf(&mut g, &[6], 4, true);
        let s = g.sigmoid(a);
        let t = g.tanh(s);
        let loss = g.sum(t);
        gradcheck(&mut g, loss, a, 0.05);
    }

    #[test]
    fn gradcheck_conv_and_bias() {
        let mut g: Graph = Graph::new();
        let x = rand_leaf(&mut g, &[2, 4, 5], 5, true);
        let w = rand_leaf(&mut g, &[3, 2, 3, 3], 6, true);
        let b = rand_leaf(&mut g, &[3], 7, true);
        let y = g.conv2d(x, w, 1, 1);
        let yb = g.add_bias(y, b);
        let r = g.leaky_relu(yb, 0.1);
        let loss = g.sum(r);
        gradcheck(&mut g, loss, w, 0.08);
        gradcheck(&mut g, loss, b, 0.05);
        gradcheck(&mut g, loss, x, 0.08);
    }

    #[test]
    fn gradcheck_harmonic_conv() {
        let mut g: Graph = Graph::new();
        let x = rand_leaf(&mut g, &[1, 8, 6], 8, true);
        let w = rand_leaf(&mut g, &[2, 1, 3, 3], 9, true);
        let y = g.harmonic_conv(x, w, 1, 2);
        let loss = g.sum(y);
        gradcheck(&mut g, loss, x, 0.08);
        gradcheck(&mut g, loss, w, 0.08);
    }

    #[test]
    fn gradcheck_pool_and_upsample() {
        let mut g: Graph = Graph::new();
        let x = rand_leaf(&mut g, &[2, 4, 8], 10, true);
        let p = g.avg_pool_time(x, 2);
        let u = g.upsample_time(p, 2);
        let loss = g.sum(u);
        gradcheck(&mut g, loss, x, 0.05);
    }

    #[test]
    fn gradcheck_max_pool_freq() {
        let mut g: Graph = Graph::new();
        let x = rand_leaf(&mut g, &[1, 4, 3], 11, true);
        let p = g.max_pool_freq(x, 2);
        let u = g.upsample_freq(p, 2);
        let loss = g.sum(u);
        gradcheck(&mut g, loss, x, 0.05);
    }

    #[test]
    fn gradcheck_concat() {
        let mut g: Graph = Graph::new();
        let a = rand_leaf(&mut g, &[1, 3, 4], 12, true);
        let b = rand_leaf(&mut g, &[2, 3, 4], 13, true);
        let c = g.concat(a, b);
        let sq = g.mul(c, c);
        let loss = g.sum(sq);
        gradcheck(&mut g, loss, a, 0.05);
        gradcheck(&mut g, loss, b, 0.05);
    }

    #[test]
    fn gradcheck_instance_norm() {
        let mut g: Graph = Graph::new();
        let x = rand_leaf(&mut g, &[2, 3, 4], 14, true);
        let gamma = g.param(Tensor::from_vec(&[2], vec![1.2, 0.8]));
        let beta = g.param(Tensor::from_vec(&[2], vec![0.1, -0.1]));
        let y = g.instance_norm(x, gamma, beta);
        let sq = g.mul(y, y);
        let loss = g.sum(sq);
        gradcheck(&mut g, loss, x, 0.1);
        gradcheck(&mut g, loss, gamma, 0.05);
        gradcheck(&mut g, loss, beta, 0.05);
    }

    #[test]
    fn gradcheck_mse_masked() {
        let mut g: Graph = Graph::new();
        let p = rand_leaf(&mut g, &[2, 3, 4], 15, true);
        let t = rand_leaf(&mut g, &[2, 3, 4], 16, false);
        let mask_data: Vec<f32> = (0..24).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        let m = g.input(Tensor::from_vec(&[2, 3, 4], mask_data));
        let loss = g.mse_masked(p, t, m);
        gradcheck(&mut g, loss, p, 0.05);
    }

    #[test]
    fn mse_masked_ignores_masked_out_regions() {
        let mut g: Graph = Graph::new();
        let p = g.input(Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]));
        let t = g.input(Tensor::from_vec(&[4], vec![1.0, 0.0, 3.0, 0.0]));
        let m = g.input(Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]));
        let loss = g.mse_masked(p, t, m);
        assert_eq!(g.value(loss).data()[0], 0.0);
    }

    #[test]
    fn mse_masked_matches_f64_reference_within_budget() {
        // The compensated f32 reduction must track an exact f64 evaluation
        // of the same inputs to near machine precision even over many cells
        // of wildly varying magnitude.
        let mut rng = StdRng::seed_from_u64(99);
        let n = 1 << 14;
        let pred: Tensor<f32> = Tensor::rand_normal(&[n], 1.0, &mut rng);
        let target: Tensor<f32> = Tensor::rand_normal(&[n], 1.0, &mut rng);
        let mask_data: Vec<f32> = (0..n).map(|i| if i % 4 == 0 { 0.0 } else { 1.0 }).collect();

        let mut g: Graph = Graph::new();
        let p = g.input(pred.clone());
        let t = g.input(target.clone());
        let m = g.input(Tensor::from_vec(&[n], mask_data.clone()));
        let loss = g.mse_masked(p, t, m);
        let got = g.value(loss).data()[0] as f64;

        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for ((&p, &t), &m) in pred.data().iter().zip(target.data()).zip(&mask_data) {
            let d = (p - t) as f64;
            num += m as f64 * d * d;
            den += m as f64;
        }
        let want = num / den;
        assert!(
            (got - want).abs() <= 1e-6 * want.abs(),
            "compensated f32 loss {got} vs f64 reference {want}"
        );
    }

    #[test]
    fn f64_graph_runs_the_same_operator_set() {
        let mut g: Graph<f64> = Graph::new();
        let x = g.input(Tensor::from_vec(&[1, 2, 2], vec![1.0, -2.0, 3.0, -4.0]));
        let w = g.param(Tensor::from_vec(&[1, 1, 1, 1], vec![0.5]));
        let y = g.conv2d(x, w, 1, 1);
        let r = g.leaky_relu(y, 0.1);
        let s = g.sigmoid(r);
        let loss = g.sum(s);
        g.forward();
        g.backward(loss);
        assert!(g.value(loss).data()[0].is_finite());
        assert!(g.grad(w).data()[0].abs() > 0.0);
    }

    #[test]
    fn forward_reflects_new_leaf_values() {
        let mut g: Graph = Graph::new();
        let a = g.input(Tensor::scalar(1.0));
        let b = g.input(Tensor::scalar(2.0));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data()[0], 3.0);
        g.set_value(a, Tensor::scalar(10.0));
        g.forward();
        assert_eq!(g.value(s).data()[0], 12.0);
    }

    #[test]
    #[should_panic(expected = "cannot change shape")]
    fn set_value_rejects_shape_change() {
        let mut g: Graph = Graph::new();
        let a = g.input(Tensor::scalar(1.0));
        g.set_value(a, Tensor::zeros(&[2]));
    }

    #[test]
    fn param_count_sums_trainables() {
        let mut g: Graph = Graph::new();
        let _x = g.input(Tensor::zeros(&[100]));
        let _w = g.param(Tensor::zeros(&[3, 2, 3, 3]));
        let _b = g.param(Tensor::zeros(&[3]));
        assert_eq!(g.param_count(), 54 + 3);
        assert_eq!(g.params().len(), 2);
    }
}
