//! Weight initialization schemes.
//!
//! All bounds and random draws are computed in `f32` regardless of the
//! tensor precision (see [`Tensor::rand_uniform`]), so an f32 and an f64
//! network built from the same seed start from identical weights.

use crate::scalar::Scalar;
use crate::Tensor;
use rand::Rng;

/// Kaiming/He uniform initialization for a convolution weight
/// `[Cout, Cin, KH, KW]`: samples from `U(-b, b)` with
/// `b = sqrt(6 / fan_in)` and `fan_in = Cin·KH·KW`.
///
/// # Panics
///
/// Panics if the shape is not rank 4.
pub fn kaiming_uniform<S: Scalar, R: Rng>(shape: &[usize], rng: &mut R) -> Tensor<S> {
    assert_eq!(shape.len(), 4, "kaiming_uniform expects a conv weight shape");
    let fan_in = (shape[1] * shape[2] * shape[3]) as f32;
    let bound = (6.0 / fan_in).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Small-variance normal initialization, used for the deep prior's random
/// input code `z` (the paper follows Ulyanov et al. and feeds noise).
pub fn noise_input<S: Scalar, R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Tensor<S> {
    Tensor::rand_normal(shape, std, rng)
}

/// Per-channel affine parameters for instance norm: `gamma = 1`, `beta = 0`.
pub fn norm_affine<S: Scalar>(channels: usize) -> (Tensor<S>, Tensor<S>) {
    (Tensor::filled(&[channels], S::ONE), Tensor::zeros(&[channels]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bound_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let w: Tensor = kaiming_uniform(&[8, 4, 3, 3], &mut rng);
        let bound = (6.0f32 / (4.0 * 9.0)).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= bound));
        // Not degenerate: some mass near the bound.
        assert!(w.max_abs() > bound * 0.5);
    }

    #[test]
    fn noise_input_has_requested_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let z: Tensor = noise_input(&[1, 32, 32], 0.1, &mut rng);
        let mean = z.mean();
        let var = z.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / z.numel() as f32;
        assert!((var.sqrt() - 0.1).abs() < 0.01);
    }

    #[test]
    fn norm_affine_defaults() {
        let (g, b) = norm_affine::<f32>(3);
        assert_eq!(g.data(), &[1.0, 1.0, 1.0]);
        assert_eq!(b.data(), &[0.0, 0.0, 0.0]);
    }
}
