//! The floating-point element abstraction behind [`Tensor`](crate::Tensor).
//!
//! Every tensor, graph node, and optimizer moment buffer is generic over a
//! [`Scalar`] so the same operator kernels compile to a production `f32`
//! path and an `f64` reference path. The default type parameter keeps the
//! hot path (`Tensor` = `Tensor<f32>`) unchanged at call sites while the
//! `f64` instantiation exists purely to *measure* the f32 accuracy budget —
//! there is deliberately no implicit widening anywhere in the compute
//! kernels.
//!
//! Randomized initialization is intentionally **not** generic: random draws
//! are always made in `f32` and then converted (see
//! [`Tensor::rand_uniform`](crate::Tensor::rand_uniform)), so an `f32` and
//! an `f64` network built from the same seed start from bitwise-identical
//! (up to widening) weights and any later divergence is attributable to
//! arithmetic alone.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar the tensor stack can compute in (`f32` or `f64`).
pub trait Scalar:
    Copy
    + PartialOrd
    + PartialEq
    + Default
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Exact-as-possible conversion from `f32` (lossless for both impls).
    fn from_f32(v: f32) -> Self;
    /// Conversion to `f32` (rounds for `f64`).
    fn to_f32(self) -> f32;
    /// Conversion from `f64` (rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Exact-as-possible conversion to `f64` (lossless for both impls).
    fn to_f64(self) -> f64;
    /// Conversion from an element count.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }

    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// IEEE maximum.
    fn max(self, other: Self) -> Self;
    /// IEEE minimum.
    fn min(self, other: Self) -> Self;
    /// Negative infinity (max-pool identity).
    fn neg_infinity() -> Self;
    /// Whether the value is finite.
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline]
            fn from_f32(v: f32) -> Self {
                v as $t
            }
            #[inline]
            fn to_f32(self) -> f32 {
                self as f32
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline]
            fn tanh(self) -> Self {
                self.tanh()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline]
            fn neg_infinity() -> Self {
                <$t>::NEG_INFINITY
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: Scalar>() {
        assert_eq!(S::from_f32(1.5).to_f32(), 1.5);
        assert_eq!(S::from_f64(-2.25).to_f64(), -2.25);
        assert_eq!(S::from_usize(7).to_f64(), 7.0);
        assert_eq!((S::from_f32(4.0)).sqrt().to_f32(), 2.0);
        assert!(S::neg_infinity() < S::ZERO);
        assert!(!S::neg_infinity().is_finite());
        assert_eq!(S::ZERO.max(S::ONE), S::ONE);
        assert_eq!(S::ZERO.min(-S::ONE), -S::ONE);
    }

    #[test]
    fn both_impls_roundtrip() {
        roundtrip::<f32>();
        roundtrip::<f64>();
    }

    #[test]
    fn f32_widening_is_lossless() {
        // Every f32 is exactly representable in f64 — the property the
        // shared-initialization scheme relies on.
        for v in [1.0e-30f32, 0.1, std::f32::consts::PI, 1.0e30] {
            assert_eq!(f64::from_f32(v) as f32, v);
        }
    }
}
