//! Spectrogram magnitude in-painting (paper §3.3, Eq. 9).
//!
//! The deep-prior path fits the SpAc LU-Net to the *visible* cells of the
//! magnitude image; the network's structural bias (harmonic frequency
//! neighbourhoods, dilated constant-bin time neighbourhoods) extends the
//! target's pattern into the concealed cells. A deterministic
//! harmonic-interpolation path is provided as an ablation and fallback:
//! it linearly interpolates each bin across its hidden frames — the
//! "prior" reduced to pure temporal continuity.

use crate::DhfError;
use dhf_nn::{DeepPriorNet, FitParams, NetConfig, TrainReport, WarmFitParams, WeightState};
use dhf_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// In-painting strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum InpaintMethod {
    /// The paper's deep prior (SpAc LU-Net trained per round).
    DeepPrior,
    /// Deterministic per-bin linear interpolation over time (ablation).
    HarmonicInterp,
}

/// In-painting configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct InpaintConfig {
    /// Strategy.
    pub method: InpaintMethod,
    /// Optimizer steps per round (deep prior only).
    pub iterations: usize,
    /// Adam learning rate (deep prior only).
    pub lr: f32,
    /// Network hyper-parameters; the pipeline overrides the time dilation
    /// per round (paper §4.2 picks 13 or 15 by masking situation).
    pub net: NetConfig,
    /// Keep the original magnitude at visible cells (in-paint only the
    /// concealed ones). Matches the paper's wording; turning it off uses
    /// the network output everywhere (stronger denoising).
    pub keep_visible: bool,
    /// Seed for the network init and noise code.
    pub seed: u64,
    /// Warm-start budget. `Some` lets callers that keep a [`WarmSlot`]
    /// alive (the streaming engine's persistent round context) resume the
    /// previous invocation's trained prior with a short fine-tune instead
    /// of a from-scratch fit. `None` (the default) always fits cold.
    pub warm: Option<WarmFitParams>,
}

impl Default for InpaintConfig {
    fn default() -> Self {
        InpaintConfig {
            method: InpaintMethod::DeepPrior,
            iterations: FitParams::FULL.iterations,
            lr: FitParams::FULL.lr,
            net: NetConfig::default(),
            keep_visible: true,
            seed: 0x0D1F,
            // Opt-in via the environment so CI can run the whole tier-1
            // suite on the warm path without per-test plumbing.
            warm: if std::env::var("DHF_WARM_START").as_deref() == Ok("1") {
                Some(WarmFitParams::default())
            } else {
                None
            },
        }
    }
}

/// Result of one in-painting invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InpaintOutcome {
    /// In-painted magnitude image (bin-major `bins × frames`).
    pub magnitude: Vec<f64>,
    /// Training summary (deep prior only).
    pub report: Option<TrainReport>,
}

/// Persistent warm-start state for one in-painting lane.
///
/// The streaming engine keeps one slot per source: the net trained on
/// chunk *k* stays resident and chunk *k+1* resumes it with a short
/// fine-tune ([`InpaintConfig::warm`]). A slot can also be *seeded* with a
/// [`WeightState`] snapshot (the serving runtime's warm pools hand states
/// across sessions); the next compatible in-paint adopts it instead of
/// fitting cold.
#[derive(Debug, Default)]
pub struct WarmSlot {
    net: Option<DeepPriorNet>,
    pending: Option<WeightState>,
}

impl WarmSlot {
    /// Forgets the resident net and any pending snapshot.
    pub fn clear(&mut self) {
        self.net = None;
        self.pending = None;
    }

    /// True when a trained net is resident.
    pub fn is_warm(&self) -> bool {
        self.net.is_some()
    }

    /// Snapshots the resident net's weights (for serving warm pools).
    pub fn capture(&self) -> Option<WeightState> {
        self.net.as_ref().map(DeepPriorNet::capture_weights)
    }

    /// Stages a snapshot for adoption by the next compatible in-paint.
    pub fn seed(&mut self, state: WeightState) {
        self.pending = Some(state);
    }
}

/// How a deep-prior invocation obtained its weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmEvent {
    /// Resumed a resident (or seeded) weight state with a warm fine-tune.
    Warm,
    /// Fit from scratch.
    Cold,
    /// No fit ran (non-deep-prior method, or an all-zero image).
    Bypass,
}

/// In-paints a magnitude image under a visibility mask
/// (`mask_visible[i] == 1.0` means trusted).
///
/// # Errors
///
/// Returns [`DhfError::Net`] if the network cannot be built for the
/// (padded) image extents.
///
/// # Panics
///
/// Panics if `magnitude.len() != bins * frames` or the mask size differs.
pub fn inpaint_magnitude(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
    cfg: &InpaintConfig,
) -> Result<InpaintOutcome, DhfError> {
    assert_eq!(magnitude.len(), bins * frames, "magnitude image size");
    assert_eq!(mask_visible.len(), bins * frames, "mask image size");
    match cfg.method {
        InpaintMethod::HarmonicInterp => Ok(InpaintOutcome {
            magnitude: harmonic_interp(magnitude, bins, frames, mask_visible),
            report: None,
        }),
        InpaintMethod::DeepPrior => deep_prior(magnitude, bins, frames, mask_visible, cfg),
    }
}

/// Deterministic per-bin linear interpolation across hidden frames.
fn harmonic_interp(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
) -> Vec<f64> {
    use dhf_dsp::interp::linear_interp;
    let mut out = magnitude.to_vec();
    for b in 0..bins {
        let row = &magnitude[b * frames..(b + 1) * frames];
        let vis: Vec<usize> = (0..frames).filter(|&m| mask_visible[b * frames + m] > 0.5).collect();
        if vis.is_empty() {
            for v in &mut out[b * frames..(b + 1) * frames] {
                *v = 0.0;
            }
            continue;
        }
        if vis.len() == frames {
            continue;
        }
        let xs: Vec<f64> = vis.iter().map(|&m| m as f64).collect();
        let ys: Vec<f64> = vis.iter().map(|&m| row[m]).collect();
        let queries: Vec<f64> = (0..frames).map(|m| m as f64).collect();
        let filled = linear_interp(&xs, &ys, &queries).expect("valid interpolation input");
        for m in 0..frames {
            if mask_visible[b * frames + m] <= 0.5 {
                out[b * frames + m] = filled[m];
            }
        }
    }
    out
}

/// Shared preparation of a deep-prior fit: peak normalization, time-axis
/// padding to the pooling schedule, the adaptive output bias, and the
/// padded target/mask images.
struct FitSetup {
    peak: f64,
    padded: usize,
    target: Tensor,
    mask: Tensor,
    net_cfg: NetConfig,
}

/// Returns `None` for an all-zero image (nothing to in-paint).
fn fit_setup(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
    cfg: &InpaintConfig,
) -> Option<FitSetup> {
    let peak = magnitude.iter().cloned().fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return None;
    }
    let td = cfg.net.time_divisor();
    let padded = frames.div_ceil(td) * td;

    // Adaptive output bias: start the sigmoid head at the mean *visible*
    // normalized magnitude, so a weak target's rows are reachable and the
    // hidden background starts at the right level. Without this, a weak
    // source buried under a strong residual inherits a floor far above
    // its own amplitude and the in-painted cells carry excess energy.
    let mut vis_sum = 0.0f64;
    let mut vis_count = 0.0f64;
    for (i, &m) in magnitude.iter().enumerate() {
        if mask_visible[i] > 0.5 {
            vis_sum += m / peak;
            vis_count += 1.0;
        }
    }
    let mean_visible = if vis_count > 0.0 { (vis_sum / vis_count).clamp(1e-4, 0.5) } else { 0.05 };
    let output_bias = (mean_visible / (1.0 - mean_visible)).ln() as f32;

    // Build padded target and mask ([1, bins, padded]); the padding is
    // invisible to the loss.
    let mut target = Tensor::zeros(&[1, bins, padded]);
    let mut mask = Tensor::zeros(&[1, bins, padded]);
    for b in 0..bins {
        for m in 0..frames {
            target.data_mut()[b * padded + m] = (magnitude[b * frames + m] / peak) as f32;
            mask.data_mut()[b * padded + m] = mask_visible[b * frames + m];
        }
    }

    let mut net_cfg = cfg.net.clone();
    net_cfg.output_bias = output_bias;
    Some(FitSetup { peak, padded, target, mask, net_cfg })
}

/// How many extra time frames a warm fit may pad beyond the minimum to
/// land on a resident (or seeded) net's extent. Unwarped chunk lengths
/// wobble a few frames as the f0 track drifts; without this slack the
/// architecture fingerprint would miss on nearly every drifting stream
/// and warm starts would silently degrade to cold refits.
pub const WARM_PAD_SLACK_FRAMES: usize = 16;

/// Widens a prepared fit to `new_padded` time frames. The extra columns
/// carry zero target and zero mask, so they are invisible to the loss —
/// a slightly wider net fits the same content.
fn repad(setup: &mut FitSetup, bins: usize, new_padded: usize) {
    if new_padded == setup.padded {
        return;
    }
    let old = setup.padded;
    let mut target = Tensor::zeros(&[1, bins, new_padded]);
    let mut mask = Tensor::zeros(&[1, bins, new_padded]);
    for b in 0..bins {
        for m in 0..old {
            target.data_mut()[b * new_padded + m] = setup.target.data()[b * old + m];
            mask.data_mut()[b * new_padded + m] = setup.mask.data()[b * old + m];
        }
    }
    setup.target = target;
    setup.mask = mask;
    setup.padded = new_padded;
}

/// Denormalizes the fitted image and overlays visible cells per
/// `keep_visible`.
fn overlay_output(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
    cfg: &InpaintConfig,
    peak: f64,
    img: &Tensor,
) -> Vec<f64> {
    let padded = img.shape()[2];
    let mut out = vec![0.0f64; bins * frames];
    for b in 0..bins {
        for m in 0..frames {
            let visible = mask_visible[b * frames + m] > 0.5;
            out[b * frames + m] = if cfg.keep_visible && visible {
                magnitude[b * frames + m]
            } else {
                img.data()[b * padded + m] as f64 * peak
            };
        }
    }
    out
}

/// Deep-prior in-painting: normalize, pad the time axis to the pooling
/// schedule, train the masked objective, denormalize and crop.
fn deep_prior(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
    cfg: &InpaintConfig,
) -> Result<InpaintOutcome, DhfError> {
    let Some(setup) = fit_setup(magnitude, bins, frames, mask_visible, cfg) else {
        return Ok(InpaintOutcome { magnitude: magnitude.to_vec(), report: None });
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = DeepPriorNet::new(&setup.net_cfg, bins, setup.padded, &mut rng)?;
    let report = net.fit(&setup.target, &setup.mask, cfg.iterations, cfg.lr);
    let out =
        overlay_output(magnitude, bins, frames, mask_visible, cfg, setup.peak, &net.output_image());
    Ok(InpaintOutcome { magnitude: out, report: Some(report) })
}

/// Warm-capable variant of [`inpaint_magnitude`]: when
/// [`InpaintConfig::warm`] is set and `slot` holds a compatible trained
/// net (or a seeded snapshot), the fit resumes from those weights with a
/// bounded fine-tune; otherwise it falls back to the cold path and leaves
/// the freshly trained net resident for the next call.
///
/// Compatibility tolerates frame-count wobble: the fit may pad up to
/// [`WARM_PAD_SLACK_FRAMES`] extra time frames beyond the minimum to land
/// on the resident net's extent, so the slightly varying unwarped chunk
/// lengths of a drifting stream still warm-start. A chunk that *outgrows*
/// the resident net (or drifts past the slack) falls back to cold.
///
/// The cold path taken through this entry is bit-identical to
/// [`inpaint_magnitude`]: same seed derivation, same fit budget.
///
/// # Errors
///
/// Same conditions as [`inpaint_magnitude`].
///
/// # Panics
///
/// Panics if `magnitude.len() != bins * frames` or the mask size differs.
pub fn inpaint_magnitude_warm(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
    cfg: &InpaintConfig,
    slot: &mut WarmSlot,
) -> Result<(InpaintOutcome, WarmEvent), DhfError> {
    assert_eq!(magnitude.len(), bins * frames, "magnitude image size");
    assert_eq!(mask_visible.len(), bins * frames, "mask image size");
    match cfg.method {
        InpaintMethod::HarmonicInterp => Ok((
            InpaintOutcome {
                magnitude: harmonic_interp(magnitude, bins, frames, mask_visible),
                report: None,
            },
            WarmEvent::Bypass,
        )),
        InpaintMethod::DeepPrior => {
            let Some(warm_params) = cfg.warm else {
                // Warm starts disabled: keep nothing resident.
                slot.clear();
                return deep_prior(magnitude, bins, frames, mask_visible, cfg).map(|o| {
                    let ev = if o.report.is_some() { WarmEvent::Cold } else { WarmEvent::Bypass };
                    (o, ev)
                });
            };
            let Some(mut setup) = fit_setup(magnitude, bins, frames, mask_visible, cfg) else {
                return Ok((
                    InpaintOutcome { magnitude: magnitude.to_vec(), report: None },
                    WarmEvent::Bypass,
                ));
            };
            // Pad-slack scan: prefer the extent whose architecture matches
            // the resident net, else one matching a seeded snapshot, else
            // keep the minimum padding (which also keeps the slot-empty
            // cold fit bit-identical to the plain entry point).
            let td = cfg.net.time_divisor();
            let resident_fp = slot.net.as_ref().map(|n| n.weight_fingerprint());
            let pending_fp = slot.pending.as_ref().map(|s| s.fingerprint());
            let mut chosen = None;
            let mut p = setup.padded;
            while p <= setup.padded + WARM_PAD_SLACK_FRAMES {
                let f = setup.net_cfg.architecture_fingerprint(bins, p);
                if Some(f) == resident_fp {
                    chosen = Some(p);
                    break;
                }
                if chosen.is_none() && Some(f) == pending_fp {
                    chosen = Some(p);
                }
                p += td;
            }
            if let Some(p) = chosen {
                repad(&mut setup, bins, p);
            }
            let fp = setup.net_cfg.architecture_fingerprint(bins, setup.padded);
            let resident_ok = slot.net.as_ref().is_some_and(|n| n.weight_fingerprint() == fp);
            let mut event = WarmEvent::Warm;
            if !resident_ok {
                // Discontinuity (extent or dilation change) or first call:
                // rebuild, adopting a seeded snapshot when one fits.
                slot.net = None;
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let mut net = DeepPriorNet::new(&setup.net_cfg, bins, setup.padded, &mut rng)?;
                let adopted = match slot.pending.take() {
                    Some(state) => net.restore_weights(&state).is_ok(),
                    None => false,
                };
                if !adopted {
                    event = WarmEvent::Cold;
                }
                slot.net = Some(net);
            }
            let net = slot.net.as_mut().expect("slot holds a net here");
            let report = if event == WarmEvent::Warm {
                net.fit_warm(&setup.target, &setup.mask, &warm_params)
            } else {
                net.fit(&setup.target, &setup.mask, cfg.iterations, cfg.lr)
            };
            let out = overlay_output(
                magnitude,
                bins,
                frames,
                mask_visible,
                cfg,
                setup.peak,
                &net.output_image(),
            );
            Ok((InpaintOutcome { magnitude: out, report: Some(report) }, event))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_nn::ConvKind;

    /// A 16×12 image with a bright constant row at bin 4 and a hidden
    /// column span.
    fn ridge_case() -> (Vec<f64>, usize, usize, Vec<f32>) {
        let (bins, frames) = (16, 12);
        let mut mag = vec![0.05f64; bins * frames];
        for m in 0..frames {
            mag[4 * frames + m] = 0.9;
            mag[8 * frames + m] = 0.45;
        }
        let mut mask = vec![1.0f32; bins * frames];
        for m in 5..8 {
            for b in 0..bins {
                mask[b * frames + m] = 0.0;
            }
        }
        (mag, bins, frames, mask)
    }

    fn tiny_cfg(method: InpaintMethod) -> InpaintConfig {
        InpaintConfig {
            method,
            iterations: 200,
            lr: 0.02,
            net: NetConfig {
                base_channels: 6,
                depth: 1,
                conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 2 },
                ..NetConfig::default()
            },
            keep_visible: true,
            seed: 7,
            warm: None,
        }
    }

    #[test]
    fn harmonic_interp_bridges_gap_exactly_for_constant_rows() {
        let (mag, bins, frames, mask) = ridge_case();
        let out =
            inpaint_magnitude(&mag, bins, frames, &mask, &tiny_cfg(InpaintMethod::HarmonicInterp))
                .unwrap();
        assert!(out.report.is_none());
        for m in 5..8 {
            assert!((out.magnitude[4 * frames + m] - 0.9).abs() < 1e-9);
            assert!((out.magnitude[8 * frames + m] - 0.45).abs() < 1e-9);
        }
    }

    #[test]
    fn harmonic_interp_zeroes_fully_hidden_rows() {
        let (mut mag, bins, frames, mut mask) = ridge_case();
        for m in 0..frames {
            mask[2 * frames + m] = 0.0;
            mag[2 * frames + m] = 0.7;
        }
        let out =
            inpaint_magnitude(&mag, bins, frames, &mask, &tiny_cfg(InpaintMethod::HarmonicInterp))
                .unwrap();
        for m in 0..frames {
            assert_eq!(out.magnitude[2 * frames + m], 0.0);
        }
    }

    #[test]
    fn deep_prior_keeps_visible_cells_verbatim() {
        let (mag, bins, frames, mask) = ridge_case();
        let cfg = InpaintConfig { iterations: 10, ..tiny_cfg(InpaintMethod::DeepPrior) };
        let out = inpaint_magnitude(&mag, bins, frames, &mask, &cfg).unwrap();
        for b in 0..bins {
            for m in 0..frames {
                if mask[b * frames + m] > 0.5 {
                    assert_eq!(out.magnitude[b * frames + m], mag[b * frames + m]);
                }
            }
        }
        assert!(out.report.is_some());
    }

    #[test]
    fn deep_prior_reconstructs_hidden_ridge_above_background() {
        let (mag, bins, frames, mask) = ridge_case();
        let out = inpaint_magnitude(&mag, bins, frames, &mask, &tiny_cfg(InpaintMethod::DeepPrior))
            .unwrap();
        for m in 5..8 {
            let ridge = out.magnitude[4 * frames + m];
            let bg = out.magnitude[10 * frames + m];
            assert!(ridge > bg + 0.1, "frame {m}: ridge {ridge} vs bg {bg}");
        }
        let rep = out.report.unwrap();
        assert!(rep.final_loss < rep.initial_loss);
    }

    #[test]
    fn deep_prior_pads_odd_frame_counts() {
        // frames = 13, depth 1 → padded to 14.
        let (bins, frames) = (8, 13);
        let mag = vec![0.2f64; bins * frames];
        let mask = vec![1.0f32; bins * frames];
        let cfg = InpaintConfig { iterations: 3, ..tiny_cfg(InpaintMethod::DeepPrior) };
        let out = inpaint_magnitude(&mag, bins, frames, &mask, &cfg).unwrap();
        assert_eq!(out.magnitude.len(), bins * frames);
    }

    #[test]
    fn zero_image_passes_through() {
        let mag = vec![0.0f64; 32];
        let mask = vec![1.0f32; 32];
        let out =
            inpaint_magnitude(&mag, 4, 8, &mask, &tiny_cfg(InpaintMethod::DeepPrior)).unwrap();
        assert_eq!(out.magnitude, mag);
    }

    #[test]
    fn warm_entry_cold_path_matches_plain_inpaint_bitwise() {
        let (mag, bins, frames, mask) = ridge_case();
        let cfg = InpaintConfig { iterations: 40, ..tiny_cfg(InpaintMethod::DeepPrior) };
        let plain = inpaint_magnitude(&mag, bins, frames, &mask, &cfg).unwrap();

        // Warm disabled: identical result, nothing kept resident.
        let mut slot = WarmSlot::default();
        let (off, ev) = inpaint_magnitude_warm(&mag, bins, frames, &mask, &cfg, &mut slot).unwrap();
        assert_eq!(ev, WarmEvent::Cold);
        assert!(!slot.is_warm());
        assert_eq!(off, plain);

        // Warm enabled but slot empty: the first fit is cold and bitwise
        // identical to the plain path, and the net stays resident.
        let warm_cfg = InpaintConfig { warm: Some(WarmFitParams::default()), ..cfg };
        let mut slot = WarmSlot::default();
        let (first, ev) =
            inpaint_magnitude_warm(&mag, bins, frames, &mask, &warm_cfg, &mut slot).unwrap();
        assert_eq!(ev, WarmEvent::Cold);
        assert!(slot.is_warm());
        assert_eq!(first, plain);
    }

    #[test]
    fn second_invocation_is_warm_and_bounded() {
        let (mag, bins, frames, mask) = ridge_case();
        let warm_params = WarmFitParams::default();
        let cfg = InpaintConfig {
            iterations: 150,
            warm: Some(warm_params),
            ..tiny_cfg(InpaintMethod::DeepPrior)
        };
        let mut slot = WarmSlot::default();
        let (_, ev) = inpaint_magnitude_warm(&mag, bins, frames, &mask, &cfg, &mut slot).unwrap();
        assert_eq!(ev, WarmEvent::Cold);

        // "Next chunk": slightly attenuated image, same geometry.
        let next: Vec<f64> = mag.iter().map(|&v| v * 0.97).collect();
        let (out, ev) =
            inpaint_magnitude_warm(&next, bins, frames, &mask, &cfg, &mut slot).unwrap();
        assert_eq!(ev, WarmEvent::Warm);
        let rep = out.report.unwrap();
        assert!(rep.iterations <= warm_params.max_iterations);
    }

    #[test]
    fn geometry_change_falls_back_to_cold() {
        let (mag, bins, frames, mask) = ridge_case();
        let cfg = InpaintConfig {
            iterations: 20,
            warm: Some(WarmFitParams::default()),
            ..tiny_cfg(InpaintMethod::DeepPrior)
        };
        let mut slot = WarmSlot::default();
        let (_, ev) = inpaint_magnitude_warm(&mag, bins, frames, &mask, &cfg, &mut slot).unwrap();
        assert_eq!(ev, WarmEvent::Cold);

        // One frame fewer still pads to the same extent: the resident
        // net is structurally valid and the fit stays warm.
        let near_mag = &mag[..bins * (frames - 1)];
        let near_mask: Vec<f32> = mask[..bins * (frames - 1)].to_vec();
        let (_, ev) =
            inpaint_magnitude_warm(near_mag, bins, frames - 1, &near_mask, &cfg, &mut slot)
                .unwrap();
        assert_eq!(ev, WarmEvent::Warm);

        // Shrinking past a padding boundary stays warm too: the pad-slack
        // scan widens the fit back to the resident net's extent (the
        // extra columns are invisible to the loss).
        let short_mag = &mag[..bins * (frames - 4)];
        let short_mask: Vec<f32> = mask[..bins * (frames - 4)].to_vec();
        let (_, ev) =
            inpaint_magnitude_warm(short_mag, bins, frames - 4, &short_mask, &cfg, &mut slot)
                .unwrap();
        assert_eq!(ev, WarmEvent::Warm);

        // A chunk that outgrows the resident net cannot fit it → cold.
        let long_frames = frames + WARM_PAD_SLACK_FRAMES + 2;
        let long_mag = vec![0.2f64; bins * long_frames];
        let long_mask = vec![1.0f32; bins * long_frames];
        let (_, ev) =
            inpaint_magnitude_warm(&long_mag, bins, long_frames, &long_mask, &cfg, &mut slot)
                .unwrap();
        assert_eq!(ev, WarmEvent::Cold);
    }

    #[test]
    fn seeded_snapshot_is_adopted_as_warm() {
        let (mag, bins, frames, mask) = ridge_case();
        let cfg = InpaintConfig {
            iterations: 60,
            warm: Some(WarmFitParams::default()),
            ..tiny_cfg(InpaintMethod::DeepPrior)
        };
        let mut donor = WarmSlot::default();
        let (_, ev) = inpaint_magnitude_warm(&mag, bins, frames, &mask, &cfg, &mut donor).unwrap();
        assert_eq!(ev, WarmEvent::Cold);
        let state = donor.capture().unwrap();

        // A fresh slot seeded with the snapshot warms on first use — the
        // serving runtime's cross-session hand-off.
        let mut fresh = WarmSlot::default();
        fresh.seed(state);
        let (_, ev) = inpaint_magnitude_warm(&mag, bins, frames, &mask, &cfg, &mut fresh).unwrap();
        assert_eq!(ev, WarmEvent::Warm);

        // A slightly shorter chunk re-pads onto the snapshot's extent and
        // still warms (the pad-slack scan also matches seeded snapshots)…
        let mut near = WarmSlot::default();
        near.seed(donor.capture().unwrap());
        let short_mag = &mag[..bins * (frames - 4)];
        let short_mask: Vec<f32> = mask[..bins * (frames - 4)].to_vec();
        let (_, ev) =
            inpaint_magnitude_warm(short_mag, bins, frames - 4, &short_mask, &cfg, &mut near)
                .unwrap();
        assert_eq!(ev, WarmEvent::Warm);

        // …but a chunk the snapshot's net cannot hold is discarded and
        // the fit goes cold.
        let mut wrong = WarmSlot::default();
        wrong.seed(donor.capture().unwrap());
        let long_frames = frames + WARM_PAD_SLACK_FRAMES + 2;
        let long_mag = vec![0.2f64; bins * long_frames];
        let long_mask = vec![1.0f32; bins * long_frames];
        let (_, ev) =
            inpaint_magnitude_warm(&long_mag, bins, long_frames, &long_mask, &cfg, &mut wrong)
                .unwrap();
        assert_eq!(ev, WarmEvent::Cold);
    }
}
