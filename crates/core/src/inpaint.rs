//! Spectrogram magnitude in-painting (paper §3.3, Eq. 9).
//!
//! The deep-prior path fits the SpAc LU-Net to the *visible* cells of the
//! magnitude image; the network's structural bias (harmonic frequency
//! neighbourhoods, dilated constant-bin time neighbourhoods) extends the
//! target's pattern into the concealed cells. A deterministic
//! harmonic-interpolation path is provided as an ablation and fallback:
//! it linearly interpolates each bin across its hidden frames — the
//! "prior" reduced to pure temporal continuity.

use crate::DhfError;
use dhf_nn::{DeepPriorNet, NetConfig, TrainReport};
use dhf_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// In-painting strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum InpaintMethod {
    /// The paper's deep prior (SpAc LU-Net trained per round).
    DeepPrior,
    /// Deterministic per-bin linear interpolation over time (ablation).
    HarmonicInterp,
}

/// In-painting configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct InpaintConfig {
    /// Strategy.
    pub method: InpaintMethod,
    /// Optimizer steps per round (deep prior only).
    pub iterations: usize,
    /// Adam learning rate (deep prior only).
    pub lr: f32,
    /// Network hyper-parameters; the pipeline overrides the time dilation
    /// per round (paper §4.2 picks 13 or 15 by masking situation).
    pub net: NetConfig,
    /// Keep the original magnitude at visible cells (in-paint only the
    /// concealed ones). Matches the paper's wording; turning it off uses
    /// the network output everywhere (stronger denoising).
    pub keep_visible: bool,
    /// Seed for the network init and noise code.
    pub seed: u64,
}

impl Default for InpaintConfig {
    fn default() -> Self {
        InpaintConfig {
            method: InpaintMethod::DeepPrior,
            iterations: 300,
            lr: 0.01,
            net: NetConfig::default(),
            keep_visible: true,
            seed: 0x0D1F,
        }
    }
}

/// Result of one in-painting invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InpaintOutcome {
    /// In-painted magnitude image (bin-major `bins × frames`).
    pub magnitude: Vec<f64>,
    /// Training summary (deep prior only).
    pub report: Option<TrainReport>,
}

/// In-paints a magnitude image under a visibility mask
/// (`mask_visible[i] == 1.0` means trusted).
///
/// # Errors
///
/// Returns [`DhfError::Net`] if the network cannot be built for the
/// (padded) image extents.
///
/// # Panics
///
/// Panics if `magnitude.len() != bins * frames` or the mask size differs.
pub fn inpaint_magnitude(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
    cfg: &InpaintConfig,
) -> Result<InpaintOutcome, DhfError> {
    assert_eq!(magnitude.len(), bins * frames, "magnitude image size");
    assert_eq!(mask_visible.len(), bins * frames, "mask image size");
    match cfg.method {
        InpaintMethod::HarmonicInterp => Ok(InpaintOutcome {
            magnitude: harmonic_interp(magnitude, bins, frames, mask_visible),
            report: None,
        }),
        InpaintMethod::DeepPrior => deep_prior(magnitude, bins, frames, mask_visible, cfg),
    }
}

/// Deterministic per-bin linear interpolation across hidden frames.
fn harmonic_interp(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
) -> Vec<f64> {
    use dhf_dsp::interp::linear_interp;
    let mut out = magnitude.to_vec();
    for b in 0..bins {
        let row = &magnitude[b * frames..(b + 1) * frames];
        let vis: Vec<usize> = (0..frames).filter(|&m| mask_visible[b * frames + m] > 0.5).collect();
        if vis.is_empty() {
            for v in &mut out[b * frames..(b + 1) * frames] {
                *v = 0.0;
            }
            continue;
        }
        if vis.len() == frames {
            continue;
        }
        let xs: Vec<f64> = vis.iter().map(|&m| m as f64).collect();
        let ys: Vec<f64> = vis.iter().map(|&m| row[m]).collect();
        let queries: Vec<f64> = (0..frames).map(|m| m as f64).collect();
        let filled = linear_interp(&xs, &ys, &queries).expect("valid interpolation input");
        for m in 0..frames {
            if mask_visible[b * frames + m] <= 0.5 {
                out[b * frames + m] = filled[m];
            }
        }
    }
    out
}

/// Deep-prior in-painting: normalize, pad the time axis to the pooling
/// schedule, train the masked objective, denormalize and crop.
fn deep_prior(
    magnitude: &[f64],
    bins: usize,
    frames: usize,
    mask_visible: &[f32],
    cfg: &InpaintConfig,
) -> Result<InpaintOutcome, DhfError> {
    let peak = magnitude.iter().cloned().fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return Ok(InpaintOutcome { magnitude: magnitude.to_vec(), report: None });
    }
    let td = cfg.net.time_divisor();
    let padded = frames.div_ceil(td) * td;

    // Adaptive output bias: start the sigmoid head at the mean *visible*
    // normalized magnitude, so a weak target's rows are reachable and the
    // hidden background starts at the right level. Without this, a weak
    // source buried under a strong residual inherits a floor far above
    // its own amplitude and the in-painted cells carry excess energy.
    let mut vis_sum = 0.0f64;
    let mut vis_count = 0.0f64;
    for (i, &m) in magnitude.iter().enumerate() {
        if mask_visible[i] > 0.5 {
            vis_sum += m / peak;
            vis_count += 1.0;
        }
    }
    let mean_visible = if vis_count > 0.0 { (vis_sum / vis_count).clamp(1e-4, 0.5) } else { 0.05 };
    let output_bias = (mean_visible / (1.0 - mean_visible)).ln() as f32;

    // Build padded target and mask ([1, bins, padded]); the padding is
    // invisible to the loss.
    let mut target = Tensor::zeros(&[1, bins, padded]);
    let mut mask = Tensor::zeros(&[1, bins, padded]);
    for b in 0..bins {
        for m in 0..frames {
            target.data_mut()[b * padded + m] = (magnitude[b * frames + m] / peak) as f32;
            mask.data_mut()[b * padded + m] = mask_visible[b * frames + m];
        }
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net_cfg = cfg.net.clone();
    net_cfg.output_bias = output_bias;
    let mut net = DeepPriorNet::new(&net_cfg, bins, padded, &mut rng)?;
    let report = net.fit(&target, &mask, cfg.iterations, cfg.lr);
    let img = net.output_image();

    let mut out = vec![0.0f64; bins * frames];
    for b in 0..bins {
        for m in 0..frames {
            let visible = mask_visible[b * frames + m] > 0.5;
            out[b * frames + m] = if cfg.keep_visible && visible {
                magnitude[b * frames + m]
            } else {
                img.data()[b * padded + m] as f64 * peak
            };
        }
    }
    Ok(InpaintOutcome { magnitude: out, report: Some(report) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_nn::ConvKind;

    /// A 16×12 image with a bright constant row at bin 4 and a hidden
    /// column span.
    fn ridge_case() -> (Vec<f64>, usize, usize, Vec<f32>) {
        let (bins, frames) = (16, 12);
        let mut mag = vec![0.05f64; bins * frames];
        for m in 0..frames {
            mag[4 * frames + m] = 0.9;
            mag[8 * frames + m] = 0.45;
        }
        let mut mask = vec![1.0f32; bins * frames];
        for m in 5..8 {
            for b in 0..bins {
                mask[b * frames + m] = 0.0;
            }
        }
        (mag, bins, frames, mask)
    }

    fn tiny_cfg(method: InpaintMethod) -> InpaintConfig {
        InpaintConfig {
            method,
            iterations: 200,
            lr: 0.02,
            net: NetConfig {
                base_channels: 6,
                depth: 1,
                conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 2 },
                ..NetConfig::default()
            },
            keep_visible: true,
            seed: 7,
        }
    }

    #[test]
    fn harmonic_interp_bridges_gap_exactly_for_constant_rows() {
        let (mag, bins, frames, mask) = ridge_case();
        let out =
            inpaint_magnitude(&mag, bins, frames, &mask, &tiny_cfg(InpaintMethod::HarmonicInterp))
                .unwrap();
        assert!(out.report.is_none());
        for m in 5..8 {
            assert!((out.magnitude[4 * frames + m] - 0.9).abs() < 1e-9);
            assert!((out.magnitude[8 * frames + m] - 0.45).abs() < 1e-9);
        }
    }

    #[test]
    fn harmonic_interp_zeroes_fully_hidden_rows() {
        let (mut mag, bins, frames, mut mask) = ridge_case();
        for m in 0..frames {
            mask[2 * frames + m] = 0.0;
            mag[2 * frames + m] = 0.7;
        }
        let out =
            inpaint_magnitude(&mag, bins, frames, &mask, &tiny_cfg(InpaintMethod::HarmonicInterp))
                .unwrap();
        for m in 0..frames {
            assert_eq!(out.magnitude[2 * frames + m], 0.0);
        }
    }

    #[test]
    fn deep_prior_keeps_visible_cells_verbatim() {
        let (mag, bins, frames, mask) = ridge_case();
        let cfg = InpaintConfig { iterations: 10, ..tiny_cfg(InpaintMethod::DeepPrior) };
        let out = inpaint_magnitude(&mag, bins, frames, &mask, &cfg).unwrap();
        for b in 0..bins {
            for m in 0..frames {
                if mask[b * frames + m] > 0.5 {
                    assert_eq!(out.magnitude[b * frames + m], mag[b * frames + m]);
                }
            }
        }
        assert!(out.report.is_some());
    }

    #[test]
    fn deep_prior_reconstructs_hidden_ridge_above_background() {
        let (mag, bins, frames, mask) = ridge_case();
        let out = inpaint_magnitude(&mag, bins, frames, &mask, &tiny_cfg(InpaintMethod::DeepPrior))
            .unwrap();
        for m in 5..8 {
            let ridge = out.magnitude[4 * frames + m];
            let bg = out.magnitude[10 * frames + m];
            assert!(ridge > bg + 0.1, "frame {m}: ridge {ridge} vs bg {bg}");
        }
        let rep = out.report.unwrap();
        assert!(rep.final_loss < rep.initial_loss);
    }

    #[test]
    fn deep_prior_pads_odd_frame_counts() {
        // frames = 13, depth 1 → padded to 14.
        let (bins, frames) = (8, 13);
        let mag = vec![0.2f64; bins * frames];
        let mask = vec![1.0f32; bins * frames];
        let cfg = InpaintConfig { iterations: 3, ..tiny_cfg(InpaintMethod::DeepPrior) };
        let out = inpaint_magnitude(&mag, bins, frames, &mask, &cfg).unwrap();
        assert_eq!(out.magnitude.len(), bins * frames);
    }

    #[test]
    fn zero_image_passes_through() {
        let mag = vec![0.0f64; 32];
        let mask = vec![1.0f32; 32];
        let out =
            inpaint_magnitude(&mag, 4, 8, &mask, &tiny_cfg(InpaintMethod::DeepPrior)).unwrap();
        assert_eq!(out.magnitude, mag);
    }
}
