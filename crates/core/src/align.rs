//! Target pattern alignment (paper §3.1, Eqs. 3–7).
//!
//! Given the target source's fundamental-frequency track `f_ts[n]`, the
//! mixed signal is *unwarped* into a space where that source is strictly
//! periodic at 1 Hz: the unrolled phase `Φ[n] = 2π·Σ f_ts[i]·Δt` (Eq. 4)
//! is resampled onto a uniform phase grid (Eq. 5) by two sequential
//! interpolations — first timestamps from phase (Eq. 6), then signal
//! values from timestamps (Eq. 7). *Pattern restoration* inverts the map.

use crate::DhfError;
use dhf_dsp::interp::{linear_interp, Pchip};
use dhf_dsp::phase::cumulative_phase;

/// A signal unwarped with respect to one source's fundamental track.
#[derive(Debug, Clone, PartialEq)]
pub struct UnwarpedSignal {
    /// Samples on the uniform-phase grid (rate = aligner's `fs_prime`).
    pub samples: Vec<f64>,
    /// Original-time timestamp `t'[m]` of every unwarped sample.
    pub timestamps: Vec<f64>,
}

impl UnwarpedSignal {
    /// Number of unwarped samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the unwarped signal is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Unwarps and restores signals for one target source.
///
/// In the unwarped space the target's fundamental sits at exactly 1 Hz, so
/// `fs_prime` samples cover one target period and the harmonics fall at
/// integer unwarped frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternAligner {
    fs: f64,
    fs_prime: f64,
    /// Original sample times `t[n]`.
    times: Vec<f64>,
    /// Unrolled target phase `Φ[n]` in *cycles* (Eq. 4 divided by 2π).
    cycles: Vec<f64>,
}

impl PatternAligner {
    /// Builds an aligner for a target f0 track sampled at `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`DhfError::NonPositiveFrequency`] if the track contains a
    /// non-positive value, and [`DhfError::MissingTracks`] if it is empty.
    pub fn new(f0_track: &[f64], fs: f64, fs_prime: f64) -> Result<Self, DhfError> {
        if f0_track.is_empty() {
            return Err(DhfError::MissingTracks);
        }
        if f0_track.iter().any(|&f| f <= 0.0) {
            return Err(DhfError::NonPositiveFrequency);
        }
        let phase = cumulative_phase(f0_track, fs);
        let cycles: Vec<f64> = phase.iter().map(|&p| p / std::f64::consts::TAU).collect();
        let times: Vec<f64> = (0..f0_track.len()).map(|n| n as f64 / fs).collect();
        Ok(PatternAligner { fs, fs_prime, times, cycles })
    }

    /// Original sampling rate (Hz).
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Unwarped sampling rate (samples per target cycle).
    pub fn fs_prime(&self) -> f64 {
        self.fs_prime
    }

    /// Total number of target cycles covered by the track.
    pub fn total_cycles(&self) -> f64 {
        *self.cycles.last().unwrap()
    }

    /// Number of unwarped samples produced by [`PatternAligner::unwarp`].
    pub fn unwarped_len(&self) -> usize {
        (self.total_cycles() * self.fs_prime).floor() as usize
    }

    /// Unwarps `signal` (Eqs. 6–7).
    ///
    /// # Errors
    ///
    /// Returns [`DhfError::TrackLengthMismatch`] if `signal` does not
    /// match the track length.
    pub fn unwarp(&self, signal: &[f64]) -> Result<UnwarpedSignal, DhfError> {
        if signal.len() != self.times.len() {
            return Err(DhfError::TrackLengthMismatch {
                signal: signal.len(),
                track: self.times.len(),
            });
        }
        let m = self.unwarped_len();
        // Eq. 5–6: uniform phase grid → timestamps. The phase is smooth
        // and strictly increasing, so linear interpolation suffices here.
        let phase_grid: Vec<f64> = (0..m).map(|i| i as f64 / self.fs_prime).collect();
        let timestamps = linear_interp(&self.cycles, &self.times, &phase_grid)?;
        // Eq. 7: timestamps → signal values. Monotone cubic interpolation
        // preserves the upper harmonics far better than linear (which
        // would low-pass the unwarped signal at the coarse per-cycle
        // sampling rate).
        let interp = Pchip::new(&self.times, signal)?;
        let samples = interp.eval_many(&timestamps);
        Ok(UnwarpedSignal { samples, timestamps })
    }

    /// Restores an unwarped signal to the original time grid (pattern
    /// restoration): values at `t[n]` interpolated from `(t'[m], y'[m])`.
    ///
    /// `unwarped.timestamps` must come from the same aligner.
    ///
    /// # Errors
    ///
    /// Propagates interpolation failures (e.g. an empty unwarped signal).
    pub fn restore(&self, unwarped: &UnwarpedSignal) -> Result<Vec<f64>, DhfError> {
        // Timestamps can contain ties at the clamped ends; deduplicate to
        // keep the interpolation abscissae strictly increasing.
        let mut xs = Vec::with_capacity(unwarped.len());
        let mut ys = Vec::with_capacity(unwarped.len());
        for (&t, &v) in unwarped.timestamps.iter().zip(&unwarped.samples) {
            if xs.last().map_or(true, |&last| t > last + 1e-12) {
                xs.push(t);
                ys.push(v);
            }
        }
        if xs.is_empty() {
            return Err(DhfError::InputTooShort { needed: 1, got: 0 });
        }
        if xs.len() < 3 {
            return Ok(linear_interp(&xs, &ys, &self.times)?);
        }
        let interp = Pchip::new(&xs, &ys)?;
        Ok(interp.eval_many(&self.times))
    }

    /// Instantaneous frequency of *another* source in the unwarped space
    /// at **original** time `t_original` (seconds): the ratio
    /// `f_other(t) / f_target(t)`.
    ///
    /// In unwarped coordinates the target is fixed at 1 Hz, so any other
    /// source appears at this time-varying ratio — exactly the ridge the
    /// mask must cover. Callers map unwarped positions to original time
    /// through [`UnwarpedSignal::timestamps`].
    pub fn warped_frequency(
        &self,
        other_track: &[f64],
        target_track: &[f64],
        t_original: f64,
    ) -> f64 {
        let n = ((t_original * self.fs).round() as usize).min(other_track.len().saturating_sub(1));
        let ft = target_track[n.min(target_track.len() - 1)];
        if ft <= 0.0 {
            return 0.0;
        }
        other_track[n] / ft
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_dsp::fft::fft_real;

    /// A chirp whose instantaneous frequency follows `f0(t)`; unwarping
    /// against its own track must produce a pure 1 Hz periodicity.
    fn chirp_with_track(fs: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let track: Vec<f64> = (0..n)
            .map(|i| 1.2 + 0.5 * (i as f64 / n as f64)) // 1.2 → 1.7 Hz
            .collect();
        let mut phase = 0.0;
        let signal: Vec<f64> = track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                phase.sin()
            })
            .collect();
        (signal, track)
    }

    #[test]
    fn unwarping_its_own_chirp_yields_constant_one_hz() {
        let fs = 100.0;
        let n = 6000;
        let (signal, track) = chirp_with_track(fs, n);
        let aligner = PatternAligner::new(&track, fs, 16.0).unwrap();
        let un = aligner.unwarp(&signal).unwrap();
        // Unwarped spectrum must peak at 1 Hz ( = bin m/len where
        // frequency resolution is fs'/len ).
        let spec = fft_real(&un.samples);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak =
            mags.iter().enumerate().skip(1).max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let peak_hz = peak as f64 * 16.0 / un.len() as f64;
        assert!((peak_hz - 1.0).abs() < 0.05, "peak at {peak_hz} Hz");
        // And it must be sharp: energy within ±0.1 Hz of 1 Hz dominates.
        let lo = ((0.9 * un.len() as f64) / 16.0) as usize;
        let hi = ((1.1 * un.len() as f64) / 16.0) as usize;
        let inband: f64 = mags[lo..=hi].iter().map(|m| m * m).sum();
        let total: f64 = mags.iter().skip(1).map(|m| m * m).sum();
        assert!(inband / total > 0.8, "in-band fraction {}", inband / total);
    }

    #[test]
    fn unwarp_then_restore_is_near_identity() {
        let fs = 100.0;
        let n = 4000;
        let (signal, track) = chirp_with_track(fs, n);
        // Generous unwarped rate so interpolation loss is negligible.
        let aligner = PatternAligner::new(&track, fs, 64.0).unwrap();
        let un = aligner.unwarp(&signal).unwrap();
        let back = aligner.restore(&un).unwrap();
        assert_eq!(back.len(), n);
        // Compare away from the extrapolated tail.
        for i in 100..n - 200 {
            assert!((back[i] - signal[i]).abs() < 0.02, "sample {i}: {} vs {}", back[i], signal[i]);
        }
    }

    #[test]
    fn unwarped_length_matches_cycle_count() {
        let fs = 100.0;
        let n = 5000; // 50 s
        let track = vec![2.0; n]; // exactly 100 cycles
        let aligner = PatternAligner::new(&track, fs, 16.0).unwrap();
        assert!((aligner.total_cycles() - 100.0).abs() < 0.1);
        assert_eq!(aligner.unwarped_len(), (aligner.total_cycles() * 16.0) as usize);
    }

    #[test]
    fn constant_track_unwarp_is_resampling() {
        // With a constant 2 Hz track, unwarping is just resampling by
        // fs'·f0/fs; a 2 Hz sine becomes a 1 Hz (fs'-relative) sine.
        let fs = 100.0;
        let n = 2000;
        let track = vec![2.0; n];
        let signal: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 2.0 * i as f64 / fs).sin()).collect();
        let aligner = PatternAligner::new(&track, fs, 16.0).unwrap();
        let un = aligner.unwarp(&signal).unwrap();
        // One cycle = 16 unwarped samples.
        for i in 0..un.len().saturating_sub(16) {
            assert!((un.samples[i] - un.samples[i + 16]).abs() < 0.02, "sample {i}");
        }
    }

    #[test]
    fn warped_frequency_is_the_ratio() {
        let fs = 100.0;
        let n = 1000;
        let target = vec![2.0; n];
        let other = vec![3.0; n];
        let aligner = PatternAligner::new(&target, fs, 16.0).unwrap();
        let w = aligner.warped_frequency(&other, &target, 1.0);
        assert!((w - 1.5).abs() < 1e-9);
    }

    #[test]
    fn constructor_validates_track() {
        assert!(matches!(PatternAligner::new(&[], 100.0, 16.0), Err(DhfError::MissingTracks)));
        assert!(matches!(
            PatternAligner::new(&[1.0, 0.0], 100.0, 16.0),
            Err(DhfError::NonPositiveFrequency)
        ));
    }

    #[test]
    fn unwarp_validates_signal_length() {
        let aligner = PatternAligner::new(&[1.0; 100], 100.0, 16.0).unwrap();
        assert!(matches!(
            aligner.unwarp(&[0.0; 50]),
            Err(DhfError::TrackLengthMismatch { signal: 50, track: 100 })
        ));
    }
}
