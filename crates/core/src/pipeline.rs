//! The multi-round DHF separation pipeline (paper Fig. 1).

use crate::align::{PatternAligner, UnwarpedSignal};
use crate::inpaint::{inpaint_magnitude_warm, InpaintConfig, InpaintMethod, WarmEvent, WarmSlot};
use crate::mask::{target_comb_gain, HarmonicMask};
use crate::phase::{interpolate_masked_phase_into, reconstruct_hidden_cells};
use crate::DhfError;
use dhf_dsp::stft::{Spectrogram, StftConfig, StftEngine};
use dhf_dsp::Complex;
use dhf_nn::{ConvKind, NetConfig, TrainReport, WeightState};

/// Order in which sources are peeled off the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeparationOrder {
    /// Strongest first, judged by the mixed signal's spectral energy in
    /// each source's fundamental band (the paper separates the dominant
    /// maternal signal before the weak fetal one).
    #[default]
    EnergyDescending,
    /// Exactly the order the tracks were supplied in.
    AsGiven,
}

/// Configuration of the full DHF pipeline.
///
/// Defaults follow the paper: unwarped target fundamental locked at 1 Hz,
/// STFT window of 8 target periods, masks over the first five interferer
/// harmonics, deep-prior in-painting with time dilation 13 or 15 chosen
/// by masking situation (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct DhfConfig {
    /// Unwarped sampling rate in samples per target cycle.
    pub fs_prime: f64,
    /// Unwarped STFT window (samples).
    pub window: usize,
    /// Unwarped STFT hop (samples).
    pub hop: usize,
    /// Interferer harmonics concealed per source.
    pub mask_harmonics: usize,
    /// Half-width of each concealed band (unwarped Hz).
    pub mask_bandwidth_hz: f64,
    /// Significance threshold for concealing an interferer harmonic: its
    /// ridge's mean magnitude must exceed this factor times the
    /// spectrogram median (0 conceals unconditionally). Matches the
    /// paper's "all *significant* harmonics of non-targeting sources".
    pub mask_significance: f64,
    /// In-painting settings.
    pub inpaint: InpaintConfig,
    /// Restrict the output spectrogram to the target's harmonic comb
    /// before resynthesis (documented design choice; see DESIGN.md).
    pub comb_output: bool,
    /// Number of target harmonics kept by the comb (additionally capped
    /// so the comb never reaches beyond [`DhfConfig::max_source_hz`] in
    /// original-space frequency).
    pub comb_harmonics: usize,
    /// Half-width of each comb tooth (unwarped Hz) at the configured
    /// window; rounds that shrink the window widen the tooth
    /// proportionally (low-fundamental sources have proportionally wider
    /// sidebands from amplitude modulation).
    pub comb_bandwidth_hz: f64,
    /// Highest original-space frequency any source is expected to occupy
    /// (the paper band-limits everything to 12 Hz, §4.2).
    pub max_source_hz: f64,
    /// Peeling order.
    pub order: SeparationOrder,
    /// Time dilation used when the hidden fraction is small.
    pub dilation_low: usize,
    /// Time dilation used when the hidden fraction is large (longer
    /// masked sections need a longer temporal reach, §4.2).
    pub dilation_high: usize,
    /// Hidden-fraction threshold switching between the two dilations.
    pub dilation_switch: f64,
}

impl Default for DhfConfig {
    fn default() -> Self {
        DhfConfig {
            fs_prime: 16.0,
            window: 128,
            hop: 32,
            mask_harmonics: 5,
            mask_bandwidth_hz: 0.16,
            // Unconditional masking by default: the significance test is
            // kept as an ablation knob (it trades weak-source coverage
            // against target visibility and did not pay off on Table 1).
            mask_significance: 0.0,
            inpaint: InpaintConfig::default(),
            comb_output: true,
            comb_harmonics: 7,
            comb_bandwidth_hz: 0.22,
            max_source_hz: 12.0,
            order: SeparationOrder::EnergyDescending,
            dilation_low: 13,
            dilation_high: 15,
            dilation_switch: 0.35,
        }
    }
}

impl DhfConfig {
    /// A reduced-cost configuration for tests and doc examples: smaller
    /// network, fewer iterations, shorter window. Quality is lower than
    /// [`DhfConfig::default`] but the pipeline structure is identical.
    pub fn fast() -> Self {
        DhfConfig {
            window: 64,
            hop: 16,
            inpaint: InpaintConfig {
                iterations: dhf_nn::FitParams::FAST.iterations,
                net: NetConfig {
                    base_channels: 4,
                    depth: 1,
                    conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 4 },
                    ..NetConfig::default()
                },
                ..InpaintConfig::default()
            },
            dilation_low: 4,
            dilation_high: 6,
            ..DhfConfig::default()
        }
    }

    /// Uses the deterministic harmonic-interpolation in-painter instead
    /// of the deep prior (ablation mode).
    pub fn with_harmonic_interp(mut self) -> Self {
        self.inpaint.method = InpaintMethod::HarmonicInterp;
        self
    }
}

/// Diagnostics of one separation round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Which source (index into the supplied tracks) this round targeted.
    pub source_index: usize,
    /// Fraction of spectrogram cells concealed by the mask.
    pub hidden_fraction: f64,
    /// Time dilation the round selected.
    pub dilation: usize,
    /// Deep-prior training summary (None for harmonic interpolation).
    pub train: Option<TrainReport>,
    /// Whether the deep-prior fit was warm-started (`Some(true)`), fit
    /// cold (`Some(false)`), or never ran (`None` — harmonic
    /// interpolation or an all-zero image).
    pub warm_started: Option<bool>,
    /// Unwarped spectrogram extents.
    pub bins: usize,
    /// Unwarped spectrogram frames.
    pub frames: usize,
    /// Hidden-cell flags (bin-major), for masked-energy-ratio analysis.
    /// Empty when the round ran with
    /// [`RoundContext::set_collect_reports`]`(false)`.
    pub hidden: Vec<bool>,
    /// Magnitude of the round's input (residual) spectrogram, bin-major.
    /// Empty when the round ran with
    /// [`RoundContext::set_collect_reports`]`(false)`.
    pub residual_magnitude: Vec<f64>,
}

/// Output of [`separate`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationResult {
    /// Estimated sources, in the same order as the supplied tracks.
    pub sources: Vec<Vec<f64>>,
    /// Per-round diagnostics, in peeling order.
    pub rounds: Vec<RoundReport>,
}

/// Validates the f0 tracks for a `mixed` signal: at least one track, every
/// track as long as the signal, every value strictly positive and finite.
///
/// Called up front by [`separate`] (and the streaming engine) so that bad
/// tracks fail fast with a precise location instead of surfacing from deep
/// inside a later round, after earlier rounds have already spent their
/// deep-prior training budget.
pub fn validate_tracks(mixed_len: usize, f0_tracks: &[Vec<f64>]) -> Result<(), DhfError> {
    if f0_tracks.is_empty() {
        return Err(DhfError::MissingTracks);
    }
    for (ti, t) in f0_tracks.iter().enumerate() {
        validate_one_track(mixed_len, ti, t)?;
    }
    Ok(())
}

/// Slice-based variant of [`validate_tracks`], used by callers that hold
/// borrowed windows of longer tracks (the streaming engine's chunks).
pub fn validate_track_refs(mixed_len: usize, f0_tracks: &[&[f64]]) -> Result<(), DhfError> {
    if f0_tracks.is_empty() {
        return Err(DhfError::MissingTracks);
    }
    for (ti, t) in f0_tracks.iter().enumerate() {
        validate_one_track(mixed_len, ti, t)?;
    }
    Ok(())
}

fn validate_one_track(mixed_len: usize, ti: usize, t: &[f64]) -> Result<(), DhfError> {
    if t.len() != mixed_len {
        return Err(DhfError::TrackLengthMismatch { signal: mixed_len, track: t.len() });
    }
    if let Some(sample) = t.iter().position(|&f| !f.is_finite() || f <= 0.0) {
        return Err(DhfError::NonPositiveTrackValue { track: ti, sample });
    }
    Ok(())
}

/// Runs the full iterative DHF separation.
///
/// `f0_tracks` holds one fundamental-frequency track per source (one
/// value per sample, strictly positive). All tracks are validated up
/// front: a non-positive or non-finite frequency anywhere in any track
/// fails immediately with [`DhfError::NonPositiveTrackValue`] before any
/// round runs.
///
/// # Errors
///
/// Returns [`DhfError`] variants for missing/mismatched/non-positive
/// tracks, or signals too short to unwarp into one analysis window.
pub fn separate(
    mixed: &[f64],
    fs: f64,
    f0_tracks: &[Vec<f64>],
    cfg: &DhfConfig,
) -> Result<SeparationResult, DhfError> {
    RoundContext::new(cfg).separate(mixed, fs, f0_tracks, 0)
}

/// Reusable machinery for DHF rounds: owns the [`StftEngine`] (cached FFT
/// plans, window and frame scratch), the SoA [`Spectrogram`] workspace,
/// and every spectrogram-sized work buffer (magnitude/phase images, mask,
/// loss mask) so that running many rounds — the offline multi-round loop,
/// or one round per chunk in the streaming engine — re-allocates nothing
/// on the hot path. Serving workers keep one context per session, so the
/// FFT plan cache and the spectral buffers stay warm together.
#[derive(Debug)]
pub struct RoundContext {
    cfg: DhfConfig,
    engine: StftEngine,
    /// Reused SoA spectrogram workspace (overwritten by each round's STFT,
    /// then mutated in place through masking, in-painting and phase
    /// restoration).
    spec: Spectrogram,
    /// Reused bin-major magnitude image.
    magnitude: Vec<f64>,
    /// Reused bin-major phase image.
    phase: Vec<f64>,
    /// Reused harmonic mask (rebuilt in place each round).
    mask: HarmonicMask,
    /// Reused bin-major `f32` visibility image for the in-painting loss.
    mask_f32: Vec<f32>,
    /// Reused interferer ridge ratios (one inner vec per interferer).
    ratios: Vec<Vec<f64>>,
    /// Reused unwarped-domain resynthesis buffer.
    y_un: Vec<f64>,
    /// Reused residual buffer for the multi-round loop.
    residual: Vec<f64>,
    /// Reused per-round in-painting config (seed/dilation overwritten).
    icfg: InpaintConfig,
    /// Reused half-spectrum scratch for the peel-order band energies.
    band_half: Vec<Complex>,
    /// Whether [`RoundReport`]s carry their heavy diagnostic payloads
    /// (hidden-cell flags, residual magnitude image).
    collect_reports: bool,
    /// Warm-start slots, one per source index: each holds the deep prior
    /// trained by that source's previous round so the next round can
    /// fine-tune instead of refitting ([`InpaintConfig::warm`]).
    warm_slots: Vec<WarmSlot>,
    /// Deep-prior fits resumed from a resident or seeded weight state.
    warm_hits: u64,
    /// Deep-prior fits trained from scratch.
    cold_fits: u64,
}

// A session's context (with its cached FFT plans and reused buffers)
// migrates to its owning worker thread in the serving runtime.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RoundContext>();
    assert_send::<DhfConfig>();
};

impl RoundContext {
    /// Creates a context for the given configuration. Buffers start empty
    /// and grow to the working size on the first round.
    pub fn new(cfg: &DhfConfig) -> Self {
        RoundContext {
            cfg: cfg.clone(),
            engine: StftEngine::new(),
            spec: Spectrogram::workspace(),
            magnitude: Vec::new(),
            phase: Vec::new(),
            mask: HarmonicMask::empty(),
            mask_f32: Vec::new(),
            ratios: Vec::new(),
            y_un: Vec::new(),
            residual: Vec::new(),
            icfg: cfg.inpaint.clone(),
            band_half: Vec::new(),
            collect_reports: true,
            warm_slots: Vec::new(),
            warm_hits: 0,
            cold_fits: 0,
        }
    }

    /// The pipeline configuration this context was built for.
    pub fn config(&self) -> &DhfConfig {
        &self.cfg
    }

    /// Enables or disables the heavy [`RoundReport`] payloads
    /// (`hidden`, `residual_magnitude`). Scalar diagnostics (hidden
    /// fraction, dilation, training summary) are always filled. Callers
    /// on a throughput-critical path — one separation per streaming
    /// chunk — turn this off to keep the hot loop free of
    /// spectrogram-sized clones; offline analysis keeps the default
    /// (`true`).
    pub fn set_collect_reports(&mut self, enabled: bool) {
        self.collect_reports = enabled;
    }

    /// Number of FFT plans built so far by the context's engine; stays
    /// constant once every transform size in play has been seen (the
    /// plan-cache reuse invariant the throughput bench checks).
    pub fn fft_plans_built(&self) -> usize {
        self.engine.planner().plans_built()
    }

    /// Deep-prior fits resumed from a resident or seeded weight state
    /// (monotone over the context's lifetime).
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    /// Deep-prior fits trained from scratch (monotone over the context's
    /// lifetime).
    pub fn cold_fits(&self) -> u64 {
        self.cold_fits
    }

    /// Number of sources with a trained deep prior currently resident.
    pub fn warm_resident(&self) -> usize {
        self.warm_slots.iter().filter(|s| s.is_warm()).count()
    }

    /// Drops every resident deep prior and pending snapshot. The next
    /// round per source fits cold — callers use this to make a reused
    /// context behave like a fresh one (the streaming engine's `reset`).
    pub fn clear_warm_state(&mut self) {
        for slot in &mut self.warm_slots {
            slot.clear();
        }
    }

    /// Snapshots every resident deep prior as `(source index, weights)`
    /// pairs — the serving runtime banks these per-config when a session
    /// closes.
    pub fn export_warm_state(&self) -> Vec<(usize, WeightState)> {
        self.warm_slots
            .iter()
            .enumerate()
            .filter_map(|(si, slot)| slot.capture().map(|w| (si, w)))
            .collect()
    }

    /// Stages captured weight states for adoption: source `si`'s next
    /// compatible deep-prior round resumes from its snapshot instead of
    /// fitting cold. Incompatible snapshots are discarded at fit time.
    pub fn import_warm_state(&mut self, states: Vec<(usize, WeightState)>) {
        for (si, state) in states {
            while self.warm_slots.len() <= si {
                self.warm_slots.push(WarmSlot::default());
            }
            self.warm_slots[si].seed(state);
        }
    }

    /// Full multi-round separation, reusing this context's buffers.
    ///
    /// `salt_base` offsets the per-round seed decorrelation; callers
    /// running many separations that must not share deep-prior noise
    /// (e.g. successive streaming chunks) pass distinct bases.
    ///
    /// # Errors
    ///
    /// Same conditions as [`separate`].
    pub fn separate(
        &mut self,
        mixed: &[f64],
        fs: f64,
        f0_tracks: &[Vec<f64>],
        salt_base: u64,
    ) -> Result<SeparationResult, DhfError> {
        let refs: Vec<&[f64]> = f0_tracks.iter().map(Vec::as_slice).collect();
        self.separate_refs(mixed, fs, &refs, salt_base)
    }

    /// Slice-based variant of [`RoundContext::separate`]: borrows the f0
    /// tracks, so callers windowing longer tracks (the streaming engine's
    /// chunks) separate without copying them first.
    ///
    /// # Errors
    ///
    /// Same conditions as [`separate`].
    pub fn separate_refs(
        &mut self,
        mixed: &[f64],
        fs: f64,
        f0_tracks: &[&[f64]],
        salt_base: u64,
    ) -> Result<SeparationResult, DhfError> {
        {
            let _span = dhf_obs::span(dhf_obs::Stage::TrackValidate);
            validate_track_refs(mixed.len(), f0_tracks)?;
        }

        let order = self.peel_order(mixed, fs, f0_tracks);
        let mut residual = std::mem::take(&mut self.residual);
        residual.clear();
        residual.extend_from_slice(mixed);
        let mut sources = vec![Vec::new(); f0_tracks.len()];
        let mut rounds = Vec::with_capacity(order.len());

        for (round_idx, &si) in order.iter().enumerate() {
            let round = self.run_round(&residual, fs, f0_tracks, si, salt_base + round_idx as u64);
            let (estimate, report) = match round {
                Ok(r) => r,
                Err(e) => {
                    self.residual = residual;
                    return Err(e);
                }
            };
            let nmin = residual.len().min(estimate.len());
            dhf_dsp::simd::sub_in_place(&mut residual[..nmin], &estimate[..nmin]);
            sources[si] = estimate;
            rounds.push(report);
        }
        self.residual = residual;
        Ok(SeparationResult { sources, rounds })
    }

    /// Decides the peeling order, scoring band energies through the
    /// context's reused half-spectrum scratch (the transforms themselves
    /// go to the shared thread-local planner — see
    /// [`RoundContext::band_energy`]).
    fn peel_order(&mut self, mixed: &[f64], fs: f64, f0_tracks: &[&[f64]]) -> Vec<usize> {
        let n = f0_tracks.len();
        match self.cfg.order {
            SeparationOrder::AsGiven => (0..n).collect(),
            SeparationOrder::EnergyDescending => {
                // One full-signal spectrum serves every track's score: the
                // transform does not depend on the band, only the scoring
                // range does, so hoisting it replaces `n` identical
                // (expensive, Bluestein-sized) real FFTs with one.
                dhf_dsp::fft::with_thread_planner(|p| p.rfft_into(mixed, &mut self.band_half));
                let mut scored: Vec<(f64, usize)> = (0..n)
                    .map(|i| {
                        let t = f0_tracks[i];
                        let (lo, hi) =
                            t.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
                        (self.band_energy(mixed.len(), fs, (lo - 0.1).max(0.01), hi + 0.1), i)
                    })
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                scored.into_iter().map(|(_, i)| i).collect()
            }
        }
    }

    /// Spectral energy inside `[lo, hi]` Hz of the half spectrum cached in
    /// `band_half` by the caller ([`RoundContext::peel_order`] transforms
    /// the signal once on the thread-local planner — the transform size
    /// differs from every STFT frame size, and sharing the planner per
    /// worker thread keeps its large Bluestein plan warm across
    /// short-lived contexts too). `n` is the original signal length.
    ///
    /// Bin frequency `k·fs/n` is monotone in `k`, so the included bins are
    /// one contiguous run, summed with the deterministic reduction kernel
    /// over the complex buffer's raw lanes (`Σ re² + im²`).
    fn band_energy(&self, n: usize, fs: f64, lo: f64, hi: f64) -> f64 {
        let f_of = |k: usize| k as f64 * fs / n as f64;
        let bins = self.band_half.len();
        let Some(k0) = (0..bins).find(|&k| f_of(k) >= lo) else {
            return 0.0;
        };
        if f_of(k0) > hi {
            return 0.0;
        }
        let k1 = (k0..bins).take_while(|&k| f_of(k) <= hi).last().unwrap_or(k0);
        dhf_dsp::simd::sum_sq(dhf_dsp::simd::complex_lanes(&self.band_half[k0..=k1]))
    }

    /// One DHF round targeting source `si` of the given residual
    /// (unwarp → mask → in-paint → phase → resynthesize → restore).
    ///
    /// # Errors
    ///
    /// Returns [`DhfError::InputTooShort`] when the unwarped residual does
    /// not cover one analysis window, plus any alignment or network error.
    pub fn run_round(
        &mut self,
        residual: &[f64],
        fs: f64,
        f0_tracks: &[&[f64]],
        si: usize,
        round_salt: u64,
    ) -> Result<(Vec<f64>, RoundReport), DhfError> {
        let cfg = &self.cfg;
        let target_track = f0_tracks[si];
        let aligner = PatternAligner::new(target_track, fs, cfg.fs_prime)?;
        let un = aligner.unwarp(residual)?;

        // Low-fundamental targets (e.g. respiration) cover few cycles, so
        // the configured window would leave only a handful of frames;
        // shrink it until the spectrogram has a usable time axis
        // (≥ 4 windows).
        let mut window = cfg.window;
        let mut hop = cfg.hop;
        while window > 32 && un.len() < 8 * window {
            window /= 2;
            hop = (window / 4).max(1);
        }
        if un.len() < window + hop {
            return Err(DhfError::InputTooShort { needed: window + hop, got: un.len() });
        }

        let stft_cfg = StftConfig::new(window, hop, cfg.fs_prime)?;
        self.engine.stft_into(&un.samples, &stft_cfg, &mut self.spec)?;
        let bins = self.spec.bins();
        let frames = self.spec.frames();

        // Mask build: interferer ridge ratios, magnitude extraction, and
        // the significance mask rebuild, timed as one stage.
        let mask_span = dhf_obs::span(dhf_obs::Stage::MaskBuild);

        // Interferer ridges: frequency ratios at each frame centre. Inner
        // vectors are reused round to round.
        let mut ri = 0usize;
        for (j, other) in f0_tracks.iter().enumerate() {
            if j == si {
                continue;
            }
            if self.ratios.len() <= ri {
                self.ratios.push(Vec::new());
            }
            let per_frame = &mut self.ratios[ri];
            per_frame.clear();
            per_frame.extend((0..frames).map(|m| {
                let centre = (m * hop + window / 2).min(un.len() - 1);
                let t_orig = un.timestamps[centre];
                aligner.warped_frequency(other, target_track, t_orig)
            }));
            ri += 1;
        }
        self.ratios.truncate(ri);

        // Interferer ridges wander further (in unwarped Hz) within the
        // longer original-time windows of shrunk rounds, so the concealed
        // band widens proportionally. Only *significant* interferer
        // harmonics are concealed (paper §3.3), judged against the
        // spectrogram median.
        let mask_bw = cfg.mask_bandwidth_hz * (cfg.window as f64 / window as f64);
        self.spec.magnitude_into(&mut self.magnitude);
        self.mask.rebuild_significant(
            &stft_cfg,
            frames,
            &self.ratios,
            cfg.mask_harmonics,
            mask_bw,
            Some(&self.magnitude),
            cfg.mask_significance,
        );
        let hidden_fraction = self.mask.hidden_fraction();
        drop(mask_span);

        // Dilation by masking situation (§4.2), capped so the receptive
        // field stays inside the spectrogram.
        let wanted = if hidden_fraction > cfg.dilation_switch {
            cfg.dilation_high
        } else {
            cfg.dilation_low
        };
        let dilation = wanted.min((frames / 4).max(1));

        // Per-round in-painting config (a reused copy of `cfg.inpaint`):
        // inject dilation and decorrelate seeds across rounds.
        self.icfg.seed = cfg.inpaint.seed.wrapping_add(round_salt.wrapping_mul(0x9E37_79B9));
        if let ConvKind::Harmonic { harmonics, kt, anchor, .. } = cfg.inpaint.net.conv {
            self.icfg.net.conv = ConvKind::Harmonic { harmonics, kt, anchor, dil_t: dilation };
        }

        self.mask.write_f32_into(&mut self.mask_f32);
        // The per-round deep-prior fit — the dominant full-config cost
        // (ROADMAP item 4). A failed fit still records its time. The
        // warm slot is keyed by source index: round order may change
        // between separations, but source `si`'s prior always resumes
        // source `si`'s weights.
        while self.warm_slots.len() <= si {
            self.warm_slots.push(WarmSlot::default());
        }
        let fit_span = dhf_obs::span(dhf_obs::Stage::NnFit);
        let (outcome, warm_event) = inpaint_magnitude_warm(
            &self.magnitude,
            bins,
            frames,
            &self.mask_f32,
            &self.icfg,
            &mut self.warm_slots[si],
        )?;
        drop(fit_span);
        match warm_event {
            WarmEvent::Warm => self.warm_hits += 1,
            WarmEvent::Cold => self.cold_fits += 1,
            WarmEvent::Bypass => {}
        }

        // Cyclic phase interpolation across the concealed cells (§3.4),
        // then rebuild the workspace planes in place. When the in-paint
        // kept every visible cell's magnitude (harmonic interpolation, or
        // deep prior with `keep_visible`), a visible cell is entirely
        // unchanged, so only the concealed cells need phases interpolated
        // and coefficients rebuilt; otherwise rebuild the full image.
        let apply_span = dhf_obs::span(dhf_obs::Stage::MaskApply);
        let visible_preserved = self.icfg.keep_visible
            || matches!(self.icfg.method, crate::inpaint::InpaintMethod::HarmonicInterp);
        if visible_preserved {
            reconstruct_hidden_cells(&mut self.spec, &self.mask, &outcome.magnitude);
        } else {
            interpolate_masked_phase_into(&self.spec, &self.mask, &mut self.phase);
            self.spec.set_magnitude_phase(&outcome.magnitude, &self.phase);
        }

        // Optional comb restriction: keep only the target's harmonic rows.
        // Rounds that shrank the window target a slow dominant source
        // whose per-period amplitude variation spreads energy *between*
        // harmonic rows; a comb would discard those sidebands, so it only
        // applies to full-window rounds.
        if cfg.comb_output && window == cfg.window {
            // Tooth count stops at the band limit so pure-noise rows are
            // not resynthesized.
            let comb_bw = cfg.comb_bandwidth_hz;
            let mean_f0 = target_track.iter().sum::<f64>() / target_track.len() as f64;
            let comb_harmonics = if mean_f0 > 0.0 {
                cfg.comb_harmonics.min(((cfg.max_source_hz / mean_f0).floor() as usize).max(1))
            } else {
                cfg.comb_harmonics
            };
            let gain = target_comb_gain(&stft_cfg, comb_harmonics, comb_bw);
            self.spec.scale_bins(&gain);
        }
        drop(apply_span);

        self.engine.istft_into(&self.spec, &mut self.y_un);
        let resynth =
            UnwarpedSignal { samples: std::mem::take(&mut self.y_un), timestamps: un.timestamps };
        let estimate = aligner.restore(&resynth)?;
        self.y_un = resynth.samples;

        let report = RoundReport {
            source_index: si,
            hidden_fraction,
            dilation,
            train: outcome.report,
            warm_started: match warm_event {
                WarmEvent::Warm => Some(true),
                WarmEvent::Cold => Some(false),
                WarmEvent::Bypass => None,
            },
            bins,
            frames,
            hidden: if self.collect_reports { self.mask.hidden_flags() } else { Vec::new() },
            residual_magnitude: if self.collect_reports {
                self.magnitude.clone()
            } else {
                Vec::new()
            },
        };
        Ok((estimate, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_metrics::{sdr_db, si_sdr_db};

    /// Quasi-periodic two-source mix with frequency variation and
    /// *transient* harmonic crossovers: the tracks drift independently so
    /// the ratio `f2/f1` sweeps through 2.0 instead of locking there
    /// (matching Table 1's drifting bands — a permanent integer lock
    /// would make the sources unidentifiable for any method).
    fn make_mix(fs: f64, n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
        let track1: Vec<f64> = (0..n)
            .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 2.0).sin())
            .collect();
        let track2: Vec<f64> = (0..n)
            .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 3.0).cos())
            .collect();
        let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
            let mut phase = 0.0;
            track
                .iter()
                .map(|&f| {
                    phase += std::f64::consts::TAU * f / fs;
                    amp * (phase.sin() + h2 * (2.0 * phase).sin())
                })
                .collect()
        };
        let s1 = render(&track1, 1.0, 0.5);
        let s2 = render(&track2, 0.35, 0.3);
        let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
        (mix, s1, s2, vec![track1, track2])
    }

    #[test]
    fn separates_two_source_mix_better_than_nothing() {
        let fs = 100.0;
        let n = 6000;
        let (mix, s1, s2, tracks) = make_mix(fs, n);
        let res = separate(&mix, fs, &tracks, &DhfConfig::fast()).unwrap();
        assert_eq!(res.sources.len(), 2);
        assert_eq!(res.rounds.len(), 2);
        let lo = 500;
        let hi = n - 500;
        let sdr1 = si_sdr_db(&s1[lo..hi], &res.sources[0][lo..hi]);
        let sdr2 = si_sdr_db(&s2[lo..hi], &res.sources[1][lo..hi]);
        // The mix itself scores poorly as an estimate of each source;
        // DHF must do clearly better (the weak source especially — using
        // the mix as its estimate is ~ -9 dB).
        let base1 = si_sdr_db(&s1[lo..hi], &mix[lo..hi]);
        let base2 = si_sdr_db(&s2[lo..hi], &mix[lo..hi]);
        assert!(sdr1 > base1 + 1.0, "source1: {sdr1} vs baseline {base1}");
        assert!(sdr2 > base2 + 6.0, "source2: {sdr2} vs baseline {base2}");
        assert!(sdr2 > 0.0, "weak source must be positively separated, got {sdr2}");
    }

    #[test]
    fn harmonic_interp_mode_runs_and_helps() {
        let fs = 100.0;
        let n = 6000;
        let (mix, s1, s2, tracks) = make_mix(fs, n);
        let cfg = DhfConfig::fast().with_harmonic_interp();
        let res = separate(&mix, fs, &tracks, &cfg).unwrap();
        let lo = 500;
        let hi = n - 500;
        // The deterministic in-painter lacks the harmonic prior, but must
        // still pull the weak source out of the mix.
        let sdr1 = si_sdr_db(&s1[lo..hi], &res.sources[0][lo..hi]);
        let sdr2 = si_sdr_db(&s2[lo..hi], &res.sources[1][lo..hi]);
        let base2 = si_sdr_db(&s2[lo..hi], &mix[lo..hi]);
        assert!(sdr1 > 4.0, "strong source sanity floor, got {sdr1}");
        assert!(sdr2 > base2 + 3.0, "weak source: {sdr2} vs baseline {base2}");
        // No training reports in this mode.
        assert!(res.rounds.iter().all(|r| r.train.is_none()));
    }

    #[test]
    fn energy_order_peels_strong_source_first() {
        let fs = 100.0;
        let n = 6000;
        let (mix, _s1, _s2, tracks) = make_mix(fs, n);
        let refs: Vec<&[f64]> = tracks.iter().map(Vec::as_slice).collect();
        let mut ctx = RoundContext::new(&DhfConfig::fast());
        let order = ctx.peel_order(&mix, fs, &refs);
        assert_eq!(order[0], 0, "dominant source must be peeled first");
        let mut as_given =
            RoundContext::new(&DhfConfig { order: SeparationOrder::AsGiven, ..DhfConfig::fast() });
        assert_eq!(as_given.peel_order(&mix, fs, &refs), vec![0, 1]);
    }

    #[test]
    fn rounds_report_masking_diagnostics() {
        let fs = 100.0;
        let n = 6000;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let res = separate(&mix, fs, &tracks, &DhfConfig::fast()).unwrap();
        for r in &res.rounds {
            assert!(r.hidden_fraction > 0.0 && r.hidden_fraction < 0.9);
            assert_eq!(r.hidden.len(), r.bins * r.frames);
            assert_eq!(r.residual_magnitude.len(), r.bins * r.frames);
            assert!(r.dilation >= 1);
        }
    }

    #[test]
    fn validates_inputs() {
        let cfg = DhfConfig::fast();
        assert!(matches!(separate(&[0.0; 100], 100.0, &[], &cfg), Err(DhfError::MissingTracks)));
        let bad = vec![vec![1.0; 50]];
        assert!(matches!(
            separate(&[0.0; 100], 100.0, &bad, &cfg),
            Err(DhfError::TrackLengthMismatch { .. })
        ));
        // Too short to unwarp into one window.
        let short_tracks = vec![vec![1.0; 100]];
        assert!(matches!(
            separate(&[0.0; 100], 100.0, &short_tracks, &cfg),
            Err(DhfError::InputTooShort { .. })
        ));
    }

    #[test]
    fn validates_tracks_up_front_with_location() {
        let fs = 100.0;
        let n = 6000;
        let (mix, _, _, tracks) = make_mix(fs, n);

        // A non-positive value deep inside the *second* track fails
        // immediately with its exact location — before round 1 spends its
        // deep-prior budget on the strong source.
        let mut bad = tracks.clone();
        bad[1][1234] = 0.0;
        assert!(matches!(
            separate(&mix, fs, &bad, &DhfConfig::fast()),
            Err(DhfError::NonPositiveTrackValue { track: 1, sample: 1234 })
        ));

        // Non-finite values are rejected by the same gate.
        let mut nan = tracks.clone();
        nan[0][7] = f64::NAN;
        assert!(matches!(
            separate(&mix, fs, &nan, &DhfConfig::fast()),
            Err(DhfError::NonPositiveTrackValue { track: 0, sample: 7 })
        ));
        let mut neg = tracks;
        neg[0][0] = -1.3;
        assert!(matches!(
            validate_tracks(n, &neg),
            Err(DhfError::NonPositiveTrackValue { track: 0, sample: 0 })
        ));

        // The validator itself accepts healthy input.
        assert!(validate_tracks(3, &[vec![1.0, 2.0, 3.0]]).is_ok());
    }

    /// Locks the two-source `fast()` separation quality to seeded floors
    /// so pipeline refactors cannot silently degrade it. The run is fully
    /// deterministic (fixed dataset, fixed deep-prior seeds), so the
    /// floors sit ~1.5 dB under the measured values only to absorb
    /// cross-platform floating-point drift.
    #[test]
    fn fast_config_si_sdr_regression_floors() {
        // Measured on the seed implementation: strong 19.5 dB, weak 5.7 dB.
        const STRONG_FLOOR_DB: f64 = 17.5;
        const WEAK_FLOOR_DB: f64 = 4.0;
        let fs = 100.0;
        let n = 6000;
        let (mix, s1, s2, tracks) = make_mix(fs, n);
        let res = separate(&mix, fs, &tracks, &DhfConfig::fast()).unwrap();
        let lo = 500;
        let hi = n - 500;
        let sdr1 = si_sdr_db(&s1[lo..hi], &res.sources[0][lo..hi]);
        let sdr2 = si_sdr_db(&s2[lo..hi], &res.sources[1][lo..hi]);
        eprintln!("fast() regression: strong {sdr1:.2} dB, weak {sdr2:.2} dB");
        assert!(sdr1 >= STRONG_FLOOR_DB, "strong source regressed: {sdr1:.2} dB");
        assert!(sdr2 >= WEAK_FLOOR_DB, "weak source regressed: {sdr2:.2} dB");
    }

    #[test]
    fn round_context_is_reusable_across_separations() {
        let fs = 100.0;
        let n = 6000;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = DhfConfig::fast().with_harmonic_interp();
        let mut ctx = RoundContext::new(&cfg);
        let first = ctx.separate(&mix, fs, &tracks, 0).unwrap();
        let plans_after_first = ctx.fft_plans_built();
        let second = ctx.separate(&mix, fs, &tracks, 0).unwrap();
        // Same input + same salt → identical output through reused buffers.
        assert_eq!(first.sources, second.sources);
        // And the second pass built no new FFT plans: every transform size
        // was already cached.
        assert_eq!(ctx.fft_plans_built(), plans_after_first);
    }

    #[test]
    fn sources_returned_in_track_order_regardless_of_peel_order() {
        let fs = 100.0;
        let n = 6000;
        let (mix, s1, _s2, tracks) = make_mix(fs, n);
        // Supply tracks weak-first; result must still align to that order.
        let swapped = vec![tracks[1].clone(), tracks[0].clone()];
        let res = separate(&mix, fs, &swapped, &DhfConfig::fast()).unwrap();
        let lo = 500;
        let hi = n - 500;
        // Index 1 now corresponds to the strong source s1.
        let sdr_strong = sdr_db(&s1[lo..hi], &res.sources[1][lo..hi]);
        let sdr_mismatched = sdr_db(&s1[lo..hi], &res.sources[0][lo..hi]);
        assert!(sdr_strong > sdr_mismatched, "{sdr_strong} vs {sdr_mismatched}");
    }
}
