//! Harmonic mask construction (paper §3.3).
//!
//! In the pattern-aligned spectrogram the target source occupies constant
//! integer-frequency rows; every *other* source traces time-varying ridges
//! at `k · f_other(t)/f_target(t)` unwarped Hz. The mask conceals a band
//! around each such ridge for the first `harmonics` multiples, hiding all
//! significant interference from the in-painting loss (Eq. 9). Overlaps
//! with the target's own rows are hidden too — those crossover cells are
//! precisely what the deep prior must in-paint.

use dhf_dsp::stft::StftConfig;

/// A binary visibility mask over a `bins × frames` spectrogram
/// (bin-major). `true` = visible to the loss, `false` = concealed.
#[derive(Debug, Clone, PartialEq)]
pub struct HarmonicMask {
    bins: usize,
    frames: usize,
    visible: Vec<bool>,
}

impl HarmonicMask {
    /// An empty mask (zero bins and frames) — the placeholder a reusable
    /// round context starts from; the first
    /// [`HarmonicMask::rebuild_significant`] overwrites shape and data.
    pub fn empty() -> Self {
        HarmonicMask { bins: 0, frames: 0, visible: Vec::new() }
    }

    /// Builds the mask for one separation round.
    ///
    /// * `cfg` — the unwarped-space STFT layout (1 unwarped Hz = target
    ///   fundamental).
    /// * `frames` — number of STFT frames.
    /// * `interferer_ratios` — for each non-target source, its frequency
    ///   ratio `f_other/f_target` evaluated at each frame centre
    ///   (`frames` values per source).
    /// * `harmonics` — how many multiples of each interferer to conceal.
    /// * `bandwidth_hz` — half-width of the concealed band in unwarped Hz.
    pub fn build(
        cfg: &StftConfig,
        frames: usize,
        interferer_ratios: &[Vec<f64>],
        harmonics: usize,
        bandwidth_hz: f64,
    ) -> Self {
        Self::build_significant(cfg, frames, interferer_ratios, harmonics, bandwidth_hz, None, 0.0)
    }

    /// Like [`HarmonicMask::build`], but conceals only the *significant*
    /// harmonics of each interferer (the paper's wording): a harmonic's
    /// band is masked only if the mean magnitude along its predicted
    /// ridge exceeds `factor ×` the image median. Pass the bin-major
    /// magnitude image of the round's spectrogram.
    ///
    /// Blindly masking negligible high harmonics would hide target cells
    /// for no benefit — exactly what hurts when a weak target shares the
    /// spectrum with a low-fundamental interferer whose comb is dense.
    pub fn build_significant(
        cfg: &StftConfig,
        frames: usize,
        interferer_ratios: &[Vec<f64>],
        harmonics: usize,
        bandwidth_hz: f64,
        magnitude: Option<&[f64]>,
        factor: f64,
    ) -> Self {
        let mut mask = HarmonicMask::empty();
        mask.rebuild_significant(
            cfg,
            frames,
            interferer_ratios,
            harmonics,
            bandwidth_hz,
            magnitude,
            factor,
        );
        mask
    }

    /// In-place variant of [`HarmonicMask::build_significant`]: overwrites
    /// this mask's shape and visibility, reusing its buffer — the per-round
    /// entry point of the pipeline's reusable round context.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild_significant(
        &mut self,
        cfg: &StftConfig,
        frames: usize,
        interferer_ratios: &[Vec<f64>],
        harmonics: usize,
        bandwidth_hz: f64,
        magnitude: Option<&[f64]>,
        factor: f64,
    ) {
        let bins = cfg.bins();
        let median_mag = magnitude.map(|mag| {
            let mut v = mag.to_vec();
            let mid = v.len() / 2;
            // Median by selection: same element the full sort would put at
            // the midpoint, in O(n).
            v.select_nth_unstable_by(mid, |a, b| {
                a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
            });
            v[mid]
        });
        self.bins = bins;
        self.frames = frames;
        self.visible.clear();
        self.visible.resize(bins * frames, true);
        let visible = &mut self.visible;
        for ratios in interferer_ratios {
            for k in 1..=harmonics {
                // Significance test along the whole ridge of harmonic k.
                if let (Some(mag), Some(median)) = (magnitude, median_mag) {
                    let mut sum = 0.0f64;
                    let mut count = 0usize;
                    for (m, &ratio) in ratios.iter().take(frames).enumerate() {
                        if ratio <= 0.0 {
                            continue;
                        }
                        let centre = k as f64 * ratio;
                        if centre > cfg.fs() / 2.0 {
                            continue;
                        }
                        let b = cfg.frequency_to_bin(centre);
                        sum += mag[b * frames + m];
                        count += 1;
                    }
                    if count == 0 || sum / count as f64 <= factor * median {
                        continue;
                    }
                }
                for (m, &ratio) in ratios.iter().take(frames).enumerate() {
                    if ratio <= 0.0 {
                        continue;
                    }
                    let centre = k as f64 * ratio;
                    if centre > cfg.fs() / 2.0 + bandwidth_hz {
                        continue;
                    }
                    let lo_hz = (centre - bandwidth_hz).max(0.0);
                    let hi_hz = centre + bandwidth_hz;
                    let lo = cfg.frequency_to_bin(lo_hz);
                    let hi = cfg.frequency_to_bin(hi_hz.min(cfg.fs() / 2.0));
                    for b in lo..=hi.min(bins - 1) {
                        visible[b * frames + m] = false;
                    }
                }
            }
        }
    }

    /// Number of frequency bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Visibility of the cell (`bin`, `frame`).
    #[inline]
    pub fn is_visible(&self, bin: usize, frame: usize) -> bool {
        self.visible[bin * self.frames + frame]
    }

    /// Bin-major `f32` image (1 = visible, 0 = hidden) for the loss.
    pub fn as_f32(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.write_f32_into(&mut out);
        out
    }

    /// Writes the bin-major `f32` visibility image into `out` (cleared
    /// first), reusing its capacity.
    pub fn write_f32_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.visible.iter().map(|&v| if v { 1.0 } else { 0.0 }));
    }

    /// Bin-major hidden-cell flags (`true` = concealed), the layout
    /// [`dhf_metrics::masked_energy_ratio`] expects.
    pub fn hidden_flags(&self) -> Vec<bool> {
        self.visible.iter().map(|&v| !v).collect()
    }

    /// Fraction of cells concealed.
    pub fn hidden_fraction(&self) -> f64 {
        if self.visible.is_empty() {
            return 0.0;
        }
        self.visible.iter().filter(|&&v| !v).count() as f64 / self.visible.len() as f64
    }

    /// Per-frame visibility of a single bin row as a borrowed slice (the
    /// bin-major layout makes each row contiguous) — used by the cyclic
    /// phase interpolator without copying.
    pub fn row_visibility(&self, bin: usize) -> &[bool] {
        &self.visible[bin * self.frames..(bin + 1) * self.frames]
    }
}

/// A comb gain over frequency that keeps only bands around the target's
/// harmonic rows (`k` unwarped Hz): the optional output restriction the
/// pipeline applies before resynthesis so that off-comb hallucinations of
/// the prior cannot leak into the separated signal.
pub fn target_comb_gain(cfg: &StftConfig, harmonics: usize, bandwidth_hz: f64) -> Vec<f64> {
    let bins = cfg.bins();
    let mut gain = vec![0.0f64; bins];
    for k in 1..=harmonics {
        let centre = k as f64;
        if centre > cfg.fs() / 2.0 + bandwidth_hz {
            break;
        }
        for (b, g) in gain.iter_mut().enumerate() {
            let f = cfg.bin_frequency(b);
            if (f - centre).abs() <= bandwidth_hz {
                *g = 1.0;
            }
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StftConfig {
        // Unwarped space: 16 Hz, window 128 → 8 bins per unwarped Hz.
        StftConfig::new(128, 32, 16.0).unwrap()
    }

    #[test]
    fn mask_conceals_interferer_ridge() {
        let cfg = cfg();
        let frames = 10;
        // Interferer fixed at ratio 1.5 → ridge at bin 12 (1.5 × 8).
        let ratios = vec![vec![1.5; frames]];
        let mask = HarmonicMask::build(&cfg, frames, &ratios, 2, 0.1);
        for m in 0..frames {
            assert!(!mask.is_visible(12, m), "ridge bin should be hidden");
            assert!(!mask.is_visible(24, m), "2nd harmonic should be hidden");
            assert!(mask.is_visible(8, m), "target row (1 Hz = bin 8) stays visible");
            assert!(mask.is_visible(4, m), "background stays visible");
        }
    }

    #[test]
    fn crossover_hides_target_row() {
        let cfg = cfg();
        let frames = 6;
        // Interferer sweeps through the target's 2nd harmonic (2.0) at
        // frame 3.
        let ratios = vec![vec![1.7, 1.8, 1.9, 2.0, 2.1, 2.2]];
        let mask = HarmonicMask::build(&cfg, frames, &ratios, 1, 0.1);
        // Target 2nd-harmonic row = bin 16.
        assert!(mask.is_visible(16, 0), "no overlap yet at frame 0");
        assert!(!mask.is_visible(16, 3), "crossover frame must be hidden");
    }

    #[test]
    fn bandwidth_widens_the_concealed_band() {
        let cfg = cfg();
        let frames = 4;
        let ratios = vec![vec![1.5; frames]];
        let narrow = HarmonicMask::build(&cfg, frames, &ratios, 1, 0.05);
        let wide = HarmonicMask::build(&cfg, frames, &ratios, 1, 0.4);
        assert!(wide.hidden_fraction() > narrow.hidden_fraction());
    }

    #[test]
    fn no_interferers_means_fully_visible() {
        let cfg = cfg();
        let mask = HarmonicMask::build(&cfg, 5, &[], 4, 0.2);
        assert_eq!(mask.hidden_fraction(), 0.0);
        assert_eq!(mask.as_f32().iter().filter(|&&v| v == 1.0).count(), cfg.bins() * 5);
    }

    #[test]
    fn hidden_flags_complement_visibility() {
        let cfg = cfg();
        let ratios = vec![vec![1.3; 3]];
        let mask = HarmonicMask::build(&cfg, 3, &ratios, 2, 0.15);
        let hidden = mask.hidden_flags();
        let f32s = mask.as_f32();
        for i in 0..hidden.len() {
            assert_eq!(hidden[i], f32s[i] == 0.0);
        }
    }

    #[test]
    fn target_comb_selects_integer_rows() {
        let cfg = cfg();
        let gain = target_comb_gain(&cfg, 3, 0.15);
        // 8 bins per Hz: rows 8, 16, 24 selected (±1 bin), others zero.
        assert_eq!(gain[8], 1.0);
        assert_eq!(gain[16], 1.0);
        assert_eq!(gain[24], 1.0);
        assert_eq!(gain[4], 0.0);
        assert_eq!(gain[12], 0.0);
        // DC is never selected.
        assert_eq!(gain[0], 0.0);
    }

    /// Magnitude image with a bright ridge along the bin of ratio 1.5
    /// (bin 12) and a faint background, for significance-threshold tests.
    fn ridge_magnitude(cfg: &StftConfig, frames: usize) -> Vec<f64> {
        let bins = cfg.bins();
        let mut mag = vec![0.01f64; bins * frames];
        for m in 0..frames {
            mag[12 * frames + m] = 1.0;
        }
        mag
    }

    #[test]
    fn zero_threshold_conceals_unconditionally() {
        let cfg = cfg();
        let frames = 6;
        let ratios = vec![vec![1.5; frames]];
        let mag = ridge_magnitude(&cfg, frames);
        let thresholded =
            HarmonicMask::build_significant(&cfg, frames, &ratios, 3, 0.15, Some(&mag), 0.0);
        let unconditional = HarmonicMask::build(&cfg, frames, &ratios, 3, 0.15);
        // Factor 0 means every harmonic with any energy along its ridge is
        // concealed — identical to the unconditional builder.
        assert_eq!(thresholded, unconditional);
        assert!(thresholded.hidden_fraction() > 0.0);
    }

    #[test]
    fn huge_threshold_hides_nothing() {
        let cfg = cfg();
        let frames = 6;
        let ratios = vec![vec![1.5; frames]];
        let mag = ridge_magnitude(&cfg, frames);
        let mask =
            HarmonicMask::build_significant(&cfg, frames, &ratios, 3, 0.15, Some(&mag), 1e12);
        assert_eq!(mask.hidden_fraction(), 0.0, "no ridge can clear an absurd threshold");
    }

    #[test]
    fn hidden_fraction_is_monotone_non_increasing_in_threshold() {
        let cfg = cfg();
        let frames = 8;
        // Two interferers with harmonics of very different ridge strengths
        // so successive thresholds peel them off one by one.
        let ratios = vec![vec![1.5; frames], vec![2.3; frames]];
        let bins = cfg.bins();
        let mut mag = vec![0.01f64; bins * frames];
        for m in 0..frames {
            mag[12 * frames + m] = 1.0; // 1.5 ridge: strong
            mag[24 * frames + m] = 0.2; // 1.5 2nd harmonic: medium
            mag[18 * frames + m] = 0.05; // 2.3 ridge: weak
        }
        let mut prev = f64::MAX;
        for factor in [0.0, 1.0, 3.0, 10.0, 30.0, 100.0, 1e6] {
            let mask =
                HarmonicMask::build_significant(&cfg, frames, &ratios, 2, 0.15, Some(&mag), factor);
            let hf = mask.hidden_fraction();
            assert!(
                hf <= prev,
                "hidden fraction must not grow with the threshold: {hf} after {prev} at {factor}"
            );
            prev = hf;
        }
        // The sweep actually exercises the monotone path: the extremes
        // differ.
        let all = HarmonicMask::build_significant(&cfg, frames, &ratios, 2, 0.15, Some(&mag), 0.0);
        let none = HarmonicMask::build_significant(&cfg, frames, &ratios, 2, 0.15, Some(&mag), 1e6);
        assert!(all.hidden_fraction() > none.hidden_fraction());
        assert_eq!(none.hidden_fraction(), 0.0);
    }

    #[test]
    fn row_visibility_matches_cells() {
        let cfg = cfg();
        let ratios = vec![vec![1.5; 4]];
        let mask = HarmonicMask::build(&cfg, 4, &ratios, 1, 0.1);
        let row = mask.row_visibility(12);
        assert_eq!(row, vec![false; 4]);
        let row8 = mask.row_visibility(8);
        assert_eq!(row8, vec![true; 4]);
    }
}
