//! Cyclic phase interpolation (paper §3.4).
//!
//! The spectrogram in-painting recovers magnitudes only; phases at the
//! concealed cells are re-estimated per frequency bin by interpolating the
//! *real and imaginary parts* of the unit phasor over time and
//! re-deriving the angle — which respects the circular topology of phase,
//! unlike direct angle interpolation.

use crate::mask::HarmonicMask;
use dhf_dsp::phase::interpolate_cyclic_into;
use dhf_dsp::stft::Spectrogram;
use dhf_dsp::Complex;

/// Phase image (bin-major `bins × frames`) with concealed cells
/// re-interpolated from the visible ones, every bin handled independently
/// (but conceptually concurrently, as the paper notes).
pub fn interpolate_masked_phase(spec: &Spectrogram, mask: &HarmonicMask) -> Vec<f64> {
    let mut out = Vec::new();
    interpolate_masked_phase_into(spec, mask, &mut out);
    out
}

/// Like [`interpolate_masked_phase`], writing the bin-major phase image
/// into `out` (cleared first). The round context calls this every round
/// with reused buffers; per-bin phases are gathered from the workspace's
/// SoA planes and each row's visibility is a borrowed mask slice, so the
/// only transient state is one frame-length scratch row.
pub fn interpolate_masked_phase_into(spec: &Spectrogram, mask: &HarmonicMask, out: &mut Vec<f64>) {
    let bins = spec.bins();
    let frames = spec.frames();
    assert_eq!(mask.bins(), bins, "mask/spectrogram bins mismatch");
    assert_eq!(mask.frames(), frames, "mask/spectrogram frames mismatch");
    out.clear();
    out.resize(bins * frames, 0.0);
    let mut row_phase = vec![0.0f64; frames];
    let mut fixed = Vec::with_capacity(frames);
    for b in 0..bins {
        for (m, rp) in row_phase.iter_mut().enumerate() {
            *rp = spec.at(b, m).arg();
        }
        interpolate_cyclic_into(&row_phase, mask.row_visibility(b), &mut fixed);
        out[b * frames..(b + 1) * frames].copy_from_slice(&fixed);
    }
}

/// Rebuilds *only the concealed cells* of `spec` from an in-painted
/// magnitude image, interpolating their phases in place.
///
/// This fuses [`interpolate_masked_phase_into`] with the subsequent
/// magnitude/phase reconstruction for the common case where the in-paint
/// step kept every visible cell's magnitude (`keep_visible`, or the
/// deterministic harmonic interpolation, which never touches them): a
/// visible cell then has unchanged magnitude *and* phase, so re-deriving
/// it through `atan2`/`sin_cos` would only re-round it. Fully visible bin
/// rows are skipped outright — no `atan2` per cell — and within a touched
/// row only the hidden cells are rewritten.
///
/// # Panics
///
/// Panics if the mask or magnitude image disagree with `spec`'s shape.
pub fn reconstruct_hidden_cells(spec: &mut Spectrogram, mask: &HarmonicMask, magnitude: &[f64]) {
    let bins = spec.bins();
    let frames = spec.frames();
    assert_eq!(mask.bins(), bins, "mask/spectrogram bins mismatch");
    assert_eq!(mask.frames(), frames, "mask/spectrogram frames mismatch");
    assert_eq!(magnitude.len(), bins * frames, "magnitude image size mismatch");
    let mut row_phase = vec![0.0f64; frames];
    let mut fixed = Vec::with_capacity(frames);
    for b in 0..bins {
        let vis = mask.row_visibility(b);
        if vis.iter().all(|&v| v) {
            continue;
        }
        for (m, rp) in row_phase.iter_mut().enumerate() {
            *rp = spec.at(b, m).arg();
        }
        interpolate_cyclic_into(&row_phase, vis, &mut fixed);
        for (m, &visible) in vis.iter().enumerate() {
            if visible {
                continue;
            }
            let mag = magnitude[b * frames + m];
            let (sin, cos) = fixed[m].sin_cos();
            spec.set_at(b, m, Complex::new(mag * cos, mag * sin));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_dsp::stft::{stft, StftConfig};

    /// Mask whose hidden cells cover given frames across all bins.
    fn frame_mask(cfg: &StftConfig, frames: usize, hidden: &[usize]) -> HarmonicMask {
        // Build via a synthetic interferer that sits on every bin in the
        // hidden frames: easier to construct directly through `build`
        // with a full-band "ratio sweep" — instead we exploit bandwidth:
        // one interferer per hidden frame with a huge bandwidth.
        let mut ratios = vec![vec![0.0; frames]];
        for &h in hidden {
            ratios[0][h] = 1.0;
        }
        HarmonicMask::build(cfg, frames, &ratios, 1, 1e6)
    }

    #[test]
    fn visible_phases_are_untouched() {
        let fs = 16.0;
        let cfg = StftConfig::new(64, 16, fs).unwrap();
        let x: Vec<f64> =
            (0..640).map(|i| (std::f64::consts::TAU * 2.0 * i as f64 / fs).sin()).collect();
        let spec = stft(&x, &cfg).unwrap();
        let mask = frame_mask(&cfg, spec.frames(), &[]);
        let phases = interpolate_masked_phase(&spec, &mask);
        for b in 0..spec.bins() {
            for m in 0..spec.frames() {
                assert!((phases[b * spec.frames() + m] - spec.at(b, m).arg()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hidden_phase_of_steady_tone_is_recovered() {
        let fs = 16.0;
        let cfg = StftConfig::new(64, 16, fs).unwrap();
        // 2 Hz tone: with hop 16 = 1 s, phase advances by an integer
        // number of cycles per frame, so the true phase is constant
        // across frames — interpolation across a gap must recover it.
        let x: Vec<f64> =
            (0..960).map(|i| (std::f64::consts::TAU * 2.0 * i as f64 / fs).sin()).collect();
        let spec = stft(&x, &cfg).unwrap();
        let frames = spec.frames();
        let hidden = [frames / 2];
        let mask = frame_mask(&cfg, frames, &hidden);
        let phases = interpolate_masked_phase(&spec, &mask);
        let bin = cfg.frequency_to_bin(2.0);
        let truth = spec.at(bin, frames / 2).arg();
        let got = phases[bin * frames + frames / 2];
        let diff = (got - truth).rem_euclid(std::f64::consts::TAU);
        let dist = diff.min(std::f64::consts::TAU - diff);
        assert!(dist < 0.2, "phase error {dist}");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let fs = 16.0;
        let cfg = StftConfig::new(64, 16, fs).unwrap();
        let x: Vec<f64> = (0..640).map(|i| (i as f64 * 0.1).sin()).collect();
        let spec = stft(&x, &cfg).unwrap();
        let bad_mask = frame_mask(&cfg, spec.frames() + 1, &[]);
        let _ = interpolate_masked_phase(&spec, &bad_mask);
    }
}
