//! Fundamental-frequency estimation — the "preliminary analysis of the
//! mixed signal" option the paper lists for obtaining source frequencies
//! (§1, assumption 3, citing [7, 12, 20]).
//!
//! A windowed autocorrelation tracker: each analysis window's
//! autocorrelation is searched for its strongest peak inside the source's
//! expected frequency band, refined by parabolic interpolation, median
//! filtered over time, and interpolated to a per-sample track.

use crate::DhfError;
use dhf_dsp::fft::autocorrelation;
use dhf_dsp::filter::detrend;
use dhf_dsp::interp::linear_interp;
use dhf_dsp::median::median_filter;

/// Autocorrelation-based f0 tracker for one source.
#[derive(Debug, Clone, PartialEq)]
pub struct F0Estimator {
    /// Analysis window in seconds (several periods of the slowest f0).
    pub window_s: f64,
    /// Hop between estimates in seconds.
    pub hop_s: f64,
    /// Expected fundamental band `(f_min, f_max)` in Hz.
    pub band: (f64, f64),
    /// Median-filter length over the per-window estimates.
    pub smooth_len: usize,
}

impl F0Estimator {
    /// Creates an estimator for the given search band.
    ///
    /// # Errors
    ///
    /// Returns [`DhfError::NonPositiveFrequency`] unless
    /// `0 < f_min < f_max`.
    pub fn new(f_min: f64, f_max: f64) -> Result<Self, DhfError> {
        if !(f_min > 0.0 && f_min < f_max) {
            return Err(DhfError::NonPositiveFrequency);
        }
        Ok(F0Estimator {
            window_s: (6.0 / f_min).max(4.0),
            hop_s: 1.0,
            band: (f_min, f_max),
            smooth_len: 5,
        })
    }

    /// Estimates a per-sample f0 track.
    ///
    /// # Errors
    ///
    /// Returns [`DhfError::InputTooShort`] when the signal does not cover
    /// one analysis window.
    pub fn estimate_track(&self, signal: &[f64], fs: f64) -> Result<Vec<f64>, DhfError> {
        let win = (self.window_s * fs).round() as usize;
        let hop = ((self.hop_s * fs).round() as usize).max(1);
        if signal.len() < win {
            return Err(DhfError::InputTooShort { needed: win, got: signal.len() });
        }
        let lag_lo = ((fs / self.band.1).floor() as usize).max(2);
        let lag_hi = ((fs / self.band.0).ceil() as usize).min(win - 2);

        let mut centres = Vec::new();
        let mut estimates = Vec::new();
        let mut start = 0usize;
        while start + win <= signal.len() {
            let seg = detrend(&signal[start..start + win]);
            let ac = autocorrelation(&seg);
            // Strongest autocorrelation peak in the lag band.
            let mut best_lag = lag_lo;
            let mut best_val = f64::MIN;
            let hi = lag_hi.min(ac.len() - 2);
            for (lag, &v) in ac.iter().enumerate().take(hi + 1).skip(lag_lo) {
                if v > best_val {
                    best_val = v;
                    best_lag = lag;
                }
            }
            // Parabolic refinement around the peak.
            let refined = if best_lag > 0 && best_lag + 1 < ac.len() {
                let (a, b, c) = (ac[best_lag - 1], ac[best_lag], ac[best_lag + 1]);
                let denom = a - 2.0 * b + c;
                let delta = if denom.abs() < 1e-12 { 0.0 } else { 0.5 * (a - c) / denom };
                best_lag as f64 + delta.clamp(-0.5, 0.5)
            } else {
                best_lag as f64
            };
            let f = (fs / refined).clamp(self.band.0, self.band.1);
            centres.push((start + win / 2) as f64);
            estimates.push(f);
            start += hop;
        }
        let smoothed = median_filter(&estimates, self.smooth_len);
        let queries: Vec<f64> = (0..signal.len()).map(|i| i as f64).collect();
        Ok(linear_interp(&centres, &smoothed, &queries)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quasi_periodic(fs: f64, n: usize, f_lo: f64, f_hi: f64) -> (Vec<f64>, Vec<f64>) {
        let track: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                f_lo + (f_hi - f_lo) * 0.5 * (1.0 - (std::f64::consts::TAU * x).cos()) / 1.0
            })
            .collect();
        let mut phase = 0.0;
        let sig = track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                phase.sin() + 0.4 * (2.0 * phase).sin()
            })
            .collect();
        (sig, track)
    }

    #[test]
    fn tracks_constant_frequency() {
        let fs = 100.0;
        let n = 3000;
        let sig: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 1.4 * i as f64 / fs).sin()).collect();
        let est = F0Estimator::new(0.9, 2.2).unwrap();
        let track = est.estimate_track(&sig, fs).unwrap();
        assert_eq!(track.len(), n);
        for &f in &track[500..n - 500] {
            assert!((f - 1.4).abs() < 0.08, "estimated {f}");
        }
    }

    #[test]
    fn follows_slow_frequency_drift() {
        let fs = 100.0;
        let n = 8000;
        let (sig, truth) = quasi_periodic(fs, n, 1.1, 1.6);
        let est = F0Estimator::new(0.9, 2.0).unwrap();
        let track = est.estimate_track(&sig, fs).unwrap();
        let mut err = 0.0;
        let mut count = 0;
        for i in (1000..n - 1000).step_by(100) {
            err += (track[i] - truth[i]).abs();
            count += 1;
        }
        let mean_err = err / count as f64;
        assert!(mean_err < 0.12, "mean tracking error {mean_err} Hz");
    }

    #[test]
    fn stays_inside_search_band_under_interference() {
        let fs = 100.0;
        let n = 4000;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 1.2 * t).sin()
                    + 0.8 * (std::f64::consts::TAU * 3.9 * t).sin()
            })
            .collect();
        let est = F0Estimator::new(0.9, 1.6).unwrap();
        let track = est.estimate_track(&sig, fs).unwrap();
        assert!(track.iter().all(|&f| (0.9..=1.6).contains(&f)));
        // And it finds the in-band component.
        let mid = track[n / 2];
        assert!((mid - 1.2).abs() < 0.1, "estimated {mid}");
    }

    #[test]
    fn rejects_bad_band_and_short_input() {
        assert!(F0Estimator::new(0.0, 1.0).is_err());
        assert!(F0Estimator::new(2.0, 1.0).is_err());
        let est = F0Estimator::new(1.0, 2.0).unwrap();
        assert!(matches!(
            est.estimate_track(&[0.0; 100], 100.0),
            Err(DhfError::InputTooShort { .. })
        ));
    }
}
