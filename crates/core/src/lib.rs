//! **Deep Harmonic Finesse (DHF)** — the paper's contribution: iterative
//! separation of quasi-periodic sources from a single mixed channel using
//! masking and deep-prior in-painting in a pattern-aligned time-frequency
//! space.
//!
//! One separation round (Fig. 1 of the paper):
//!
//! 1. **Pattern alignment** ([`align`]) — unwarp the mixed signal with
//!    respect to the target source's fundamental-frequency track so the
//!    target becomes strictly periodic at 1 Hz (Eqs. 3–7).
//! 2. **STFT** of the unwarped signal; the target now occupies constant
//!    harmonic rows.
//! 3. **Masking** ([`mask`]) — conceal every significant harmonic of the
//!    *other* sources (their tracks warp into time-varying ridges).
//! 4. **Magnitude in-painting** ([`inpaint`]) — fit the SpAc LU-Net deep
//!    prior to the visible cells only; its structural bias fills the
//!    hidden cells with target-consistent values (Eq. 9).
//! 5. **Cyclic phase interpolation** ([`phase`]) — interpolate each bin's
//!    phasor through the hidden cells via cos/sin (§3.4).
//! 6. **ISTFT + pattern restoration** — back to the original time axis;
//!    subtract, recurse on the residual ([`pipeline`]).
//!
//! The assumed-known fundamental-frequency tracks can come from auxiliary
//! sensors or from the [`f0`] estimator (the paper's "preliminary
//! analysis" option).
//!
//! # Example
//!
//! ```no_run
//! use dhf_core::{separate, DhfConfig};
//!
//! # fn main() -> Result<(), dhf_core::DhfError> {
//! let fs = 100.0;
//! let n = 6000;
//! // A 1.3 Hz and a 2.1 Hz quasi-periodic source, premixed.
//! let mixed: Vec<f64> = (0..n)
//!     .map(|i| {
//!         let t = i as f64 / fs;
//!         (std::f64::consts::TAU * 1.3 * t).sin()
//!             + 0.4 * (std::f64::consts::TAU * 2.1 * t).sin()
//!     })
//!     .collect();
//! let tracks = vec![vec![1.3; n], vec![2.1; n]];
//! let result = separate(&mixed, fs, &tracks, &DhfConfig::fast())?;
//! assert_eq!(result.sources.len(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod f0;
pub mod inpaint;
pub mod mask;
pub mod phase;
pub mod pipeline;

pub use align::{PatternAligner, UnwarpedSignal};
pub use inpaint::{InpaintConfig, InpaintMethod, WarmEvent, WarmSlot};
pub use mask::HarmonicMask;
pub use pipeline::{
    separate, validate_tracks, DhfConfig, RoundContext, RoundReport, SeparationOrder,
    SeparationResult,
};

/// Errors from the DHF pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DhfError {
    /// The mixed signal was empty or shorter than one analysis window
    /// after unwarping.
    InputTooShort {
        /// Required unwarped samples.
        needed: usize,
        /// Available unwarped samples.
        got: usize,
    },
    /// No fundamental-frequency tracks supplied.
    MissingTracks,
    /// A track's length does not match the signal.
    TrackLengthMismatch {
        /// Samples in the signal.
        signal: usize,
        /// Samples in the offending track.
        track: usize,
    },
    /// A track contains non-positive frequencies.
    NonPositiveFrequency,
    /// Up-front track validation found a non-positive (or non-finite)
    /// frequency, with its exact location. Unlike
    /// [`DhfError::NonPositiveFrequency`] (raised from deep inside the
    /// aligner), this is reported by [`pipeline::validate_tracks`] before
    /// any separation round runs.
    NonPositiveTrackValue {
        /// Index of the offending track (source).
        track: usize,
        /// Sample index of the first offending value.
        sample: usize,
    },
    /// Underlying DSP failure.
    Dsp(String),
    /// Underlying network-construction failure.
    Net(String),
}

impl std::fmt::Display for DhfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhfError::InputTooShort { needed, got } => {
                write!(f, "input too short: need {needed} unwarped samples, got {got}")
            }
            DhfError::MissingTracks => write!(f, "no fundamental-frequency tracks given"),
            DhfError::TrackLengthMismatch { signal, track } => {
                write!(f, "track length {track} does not match signal length {signal}")
            }
            DhfError::NonPositiveFrequency => {
                write!(f, "fundamental-frequency tracks must be strictly positive")
            }
            DhfError::NonPositiveTrackValue { track, sample } => {
                write!(
                    f,
                    "f0 track {track} has a non-positive or non-finite value at sample {sample}; \
                     tracks must be strictly positive"
                )
            }
            DhfError::Dsp(msg) => write!(f, "dsp failure: {msg}"),
            DhfError::Net(msg) => write!(f, "network failure: {msg}"),
        }
    }
}

impl std::error::Error for DhfError {}

impl From<dhf_dsp::DspError> for DhfError {
    fn from(e: dhf_dsp::DspError) -> Self {
        DhfError::Dsp(e.to_string())
    }
}

impl From<dhf_nn::NnError> for DhfError {
    fn from(e: dhf_nn::NnError) -> Self {
        DhfError::Net(e.to_string())
    }
}
