//! The five synthesized mixed signals of the paper's Table 1.
//!
//! Each mixed signal combines 2–3 quasi-periodic sources (maternal
//! pulsation, fetal pulsation, and — for signals 4 and 5 — respiration)
//! with Gaussian noise at 100 Hz. The per-source amplitude statistics and
//! frequency ranges are transcribed verbatim from Table 1; the paper's
//! qualitative descriptions hold by construction:
//!
//! * MSig1 — interference on the *second* harmonic of the target source;
//! * MSig2 — interference on the *first* harmonic (overlapping bands);
//! * MSig3 — second source below ×0.1 of the dominant amplitude;
//! * MSig4/5 — three sources with low-power third sources.

use crate::schedule::PeriodSchedule;
use crate::source::{add_noise, QuasiPeriodicSource, SourceSignal};
use crate::templates::Template;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sampling rate of the synthesized dataset (Hz), per §4.1.
pub const FS: f64 = 100.0;

/// Default duration of each mixed signal in seconds.
///
/// The paper does not state the record length; two minutes gives every
/// source well over 60 quasi-periods, enough for the 60 s / 15 s
/// spectrogram of §4.2 while keeping the benches tractable.
pub const DURATION_S: f64 = 120.0;

/// Physiological role of a source (decides the waveform template).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceRole {
    /// Maternal or fetal pulsation (PPG beat template).
    Pulsation,
    /// Respiration effort (respiration template).
    Respiration,
}

/// Declarative description of one source, as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceSpec {
    /// Physiological role.
    pub role: SourceRole,
    /// Mean of the per-period amplitude distribution (`mean(A)`).
    pub amp_mean: f64,
    /// Standard deviation of the per-period amplitude (`std(A)`).
    pub amp_std: f64,
    /// Lower bound of the fundamental frequency (Hz).
    pub f_min: f64,
    /// Upper bound of the fundamental frequency (Hz).
    pub f_max: f64,
}

/// Declarative description of one mixed signal, as in one Table 1 column.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    /// 1-based index (matches "Syn. MSig&lt;n&gt;").
    pub index: usize,
    /// Source descriptions, strongest first.
    pub sources: Vec<SourceSpec>,
    /// Standard deviation of the additive Gaussian noise.
    pub noise_std: f64,
}

/// A rendered mixed signal with per-source ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSignal {
    /// The spec that generated this signal.
    pub spec: MixSpec,
    /// Sampling rate (Hz).
    pub fs: f64,
    /// The mixed (observed) signal.
    pub samples: Vec<f64>,
    /// Ground-truth rendered sources, same order as `spec.sources`.
    pub sources: Vec<SourceSignal>,
}

impl MixedSignal {
    /// Ground-truth fundamental-frequency tracks, one per source.
    pub fn f0_tracks(&self) -> Vec<Vec<f64>> {
        self.sources.iter().map(|s| s.f0.clone()).collect()
    }

    /// Number of sources in the mix.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }
}

/// The Table 1 specification for mixed signal `index` (1–5).
///
/// # Panics
///
/// Panics if `index` is not in `1..=5`.
pub fn spec(index: usize) -> MixSpec {
    let p = |amp_mean, amp_std, f_min, f_max| SourceSpec {
        role: SourceRole::Pulsation,
        amp_mean,
        amp_std,
        f_min,
        f_max,
    };
    let r = |amp_mean, amp_std, f_min, f_max| SourceSpec {
        role: SourceRole::Respiration,
        amp_mean,
        amp_std,
        f_min,
        f_max,
    };
    match index {
        1 => MixSpec {
            index,
            sources: vec![p(0.08, 0.02, 0.9, 1.7), p(0.03, 0.01, 1.8, 3.0)],
            noise_std: 0.003,
        },
        2 => MixSpec {
            index,
            sources: vec![p(0.08, 0.01, 0.8, 1.2), p(0.06, 0.02, 1.0, 2.1)],
            noise_std: 0.01,
        },
        3 => MixSpec {
            index,
            sources: vec![p(0.4, 0.1, 1.4, 2.3), p(0.03, 0.01, 1.6, 3.0)],
            noise_std: 0.04,
        },
        4 => MixSpec {
            index,
            sources: vec![r(0.74, 0.1, 0.5, 0.9), p(0.08, 0.01, 1.1, 1.8), p(0.06, 0.01, 1.8, 2.9)],
            noise_std: 0.01,
        },
        5 => MixSpec {
            index,
            sources: vec![r(0.6, 0.2, 0.5, 0.9), p(0.07, 0.01, 1.0, 2.0), p(0.04, 0.01, 2.1, 3.5)],
            noise_std: 0.001,
        },
        _ => panic!("Table 1 defines mixed signals 1..=5, got {index}"),
    }
}

/// All five Table 1 specifications.
pub fn all_specs() -> Vec<MixSpec> {
    (1..=5).map(spec).collect()
}

/// Renders mixed signal `index` (1–5) with the default duration.
///
/// The `seed` controls every random choice (schedules, amplitudes,
/// noise), so a given `(index, seed)` pair is fully reproducible.
///
/// # Panics
///
/// Panics if `index` is not in `1..=5`.
pub fn mixed_signal(index: usize, seed: u64) -> MixedSignal {
    mixed_signal_with_duration(index, seed, DURATION_S)
}

/// Renders mixed signal `index` with an explicit duration in seconds.
///
/// # Panics
///
/// Panics if `index` is not in `1..=5` or `duration_s <= 0`.
pub fn mixed_signal_with_duration(index: usize, seed: u64, duration_s: f64) -> MixedSignal {
    assert!(duration_s > 0.0, "duration must be positive");
    let spec = spec(index);
    render(&spec, seed, duration_s)
}

/// Renders an arbitrary [`MixSpec`].
pub fn render(spec: &MixSpec, seed: u64, duration_s: f64) -> MixedSignal {
    let n = (duration_s * FS) as usize;
    let mut rng =
        StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ spec.index as u64);
    let mut sources = Vec::with_capacity(spec.sources.len());
    let mut mixed = vec![0.0f64; n];
    for s in &spec.sources {
        let template = match s.role {
            SourceRole::Pulsation => Template::Ppg,
            SourceRole::Respiration => Template::Respiration,
        };
        let schedule = PeriodSchedule::random(
            duration_s + 2.0,
            s.f_min,
            s.f_max,
            s.amp_mean,
            s.amp_std,
            &mut rng,
        );
        let rendered = QuasiPeriodicSource::new(template, schedule).render(FS, n);
        for (m, &v) in mixed.iter_mut().zip(&rendered.samples) {
            *m += v;
        }
        sources.push(rendered);
    }
    add_noise(&mut mixed, spec.noise_std, &mut rng);
    MixedSignal { spec: spec.clone(), fs: FS, samples: mixed, sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_dsp::stats::{rms, std_dev};

    #[test]
    fn specs_match_table_one() {
        let s1 = spec(1);
        assert_eq!(s1.sources.len(), 2);
        assert_eq!(s1.sources[0].amp_mean, 0.08);
        assert_eq!(s1.sources[1].f_max, 3.0);
        assert_eq!(s1.noise_std, 0.003);
        let s4 = spec(4);
        assert_eq!(s4.sources.len(), 3);
        assert_eq!(s4.sources[0].role, SourceRole::Respiration);
        assert_eq!(s4.sources[0].amp_mean, 0.74);
        assert_eq!(s4.sources[2].f_min, 1.8);
        let s5 = spec(5);
        assert_eq!(s5.noise_std, 0.001);
        assert_eq!(s5.sources[2].f_max, 3.5);
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn spec_rejects_out_of_range() {
        let _ = spec(6);
    }

    #[test]
    fn msig1_interferes_on_second_harmonic() {
        // Source 1 spans 0.9–1.7 Hz so its 2nd harmonic spans 1.8–3.4 Hz,
        // exactly source 2's fundamental band — as the paper states.
        let s = spec(1);
        assert!(s.sources[0].f_min * 2.0 <= s.sources[1].f_max);
        assert!(s.sources[0].f_max * 2.0 >= s.sources[1].f_min);
    }

    #[test]
    fn msig2_interferes_on_first_harmonic() {
        let s = spec(2);
        // Fundamental bands themselves overlap.
        assert!(s.sources[0].f_max >= s.sources[1].f_min);
    }

    #[test]
    fn low_power_sources_are_below_tenth_of_dominant() {
        for (idx, weak) in [(3usize, 1usize), (4, 2), (5, 2)] {
            let s = spec(idx);
            assert!(
                s.sources[weak].amp_mean < 0.1 * s.sources[0].amp_mean + 1e-12,
                "MSig{idx} source{} not low-power",
                weak + 1
            );
        }
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let a = mixed_signal_with_duration(1, 42, 20.0);
        let b = mixed_signal_with_duration(1, 42, 20.0);
        assert_eq!(a.samples, b.samples);
        let c = mixed_signal_with_duration(1, 43, 20.0);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn mix_is_sum_of_sources_plus_noise() {
        let m = mixed_signal_with_duration(2, 7, 20.0);
        let sum: Vec<f64> = (0..m.samples.len())
            .map(|i| m.sources.iter().map(|s| s.samples[i]).sum::<f64>())
            .collect();
        let residual: Vec<f64> = m.samples.iter().zip(&sum).map(|(a, b)| a - b).collect();
        // Residual is exactly the additive noise.
        assert!((std_dev(&residual) - m.spec.noise_std).abs() < 0.2 * m.spec.noise_std + 1e-4);
    }

    #[test]
    fn realized_amplitudes_track_spec() {
        let m = mixed_signal_with_duration(3, 11, 60.0);
        // Dominant source RMS should dwarf the weak one's (≈ 13:1 amp).
        let r0 = rms(&m.sources[0].samples);
        let r1 = rms(&m.sources[1].samples);
        assert!(r0 > 5.0 * r1, "rms ratio {r0}/{r1}");
    }

    #[test]
    fn f0_tracks_stay_in_band() {
        let m = mixed_signal_with_duration(4, 3, 30.0);
        for (k, (track, src)) in m.f0_tracks().iter().zip(&m.spec.sources).enumerate() {
            for &f in track.iter() {
                assert!(
                    f >= src.f_min - 1e-9 && f <= src.f_max + 1e-9,
                    "source {k}: f0 {f} outside [{}, {}]",
                    src.f_min,
                    src.f_max
                );
            }
        }
    }

    #[test]
    fn all_specs_lists_five() {
        let all = all_specs();
        assert_eq!(all.len(), 5);
        assert_eq!(all[4].index, 5);
    }
}
