//! Simulated transabdominal fetal pulse oximetry (TFO) recordings.
//!
//! Substitutes for the paper's in-vivo pregnant-ewe dataset (§4.3): 40
//! minutes of dual-wavelength (740/850 nm) mixed PPG plus ground-truth
//! fetal arterial saturation (SaO2) sampled by timed blood draws.
//!
//! The simulation reproduces the causal chain the in-vivo experiment
//! measures. A programmed fetal SaO2 trajectory drives the fetal AC
//! amplitudes at the two wavelengths through the paper's calibration model
//! (Eqs. 10–11): the modulation ratio
//! `R = (AC/DC)₇₄₀ / (AC/DC)₈₅₀` satisfies `1/(SaO2 + k) = w0 + w1·R`.
//! Maternal pulsation and respiration — much stronger and spectrally
//! overlapping (the maternal second harmonic crosses the fetal
//! fundamental) — corrupt any AC estimate made from the raw mix, so the
//! quality of fetal-signal separation directly bounds how well SaO2 can be
//! recovered, exactly as in vivo.

use crate::schedule::PeriodSchedule;
use crate::source::{add_noise, QuasiPeriodicSource};
use crate::templates::Template;
use dhf_dsp::interp::linear_interp;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The two sensing wavelengths in nanometres.
pub const WAVELENGTHS_NM: [f64; 2] = [740.0, 850.0];

/// Regularizing constant of the SaO2 calibration (paper Eq. 10).
pub const CALIBRATION_K: f64 = 1.885;

/// Intercept of the simulator's forward calibration model
/// `1/(SaO2 + k) = W0 + W1·R` (the paper *learns* these by regression;
/// the simulator needs a fixed ground-truth pair to synthesize from).
pub const CALIBRATION_W0: f64 = 0.5;

/// Slope of the simulator's forward calibration model.
pub const CALIBRATION_W1: f64 = -0.05;

/// Fetal `(AC/DC)` at 850 nm, assumed saturation-independent (the
/// isosbestic-side reference channel). Transabdominal fetal pulsation is
/// roughly an order of magnitude weaker than the maternal signal at the
/// same optode — the regime that makes TFO hard.
pub const FETAL_MODULATION_850: f64 = 0.008;

/// Static (DC) intensity per wavelength.
pub const DC_LEVELS: [f64; 2] = [1.0, 1.25];

/// Modulation ratio `R` implied by a SaO2 value under the forward model.
pub fn modulation_ratio_for_sao2(sao2: f64) -> f64 {
    (1.0 / (sao2 + CALIBRATION_K) - CALIBRATION_W0) / CALIBRATION_W1
}

/// One ground-truth blood draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloodDraw {
    /// Draw time in seconds from recording start.
    pub time_s: f64,
    /// Measured SaO2 (fraction, 0–1) including assay noise.
    pub sao2: f64,
}

/// Configuration of one simulated sheep.
#[derive(Debug, Clone, PartialEq)]
pub struct InvivoConfig {
    /// Sheep identifier (1 or 2 for the paper's animals).
    pub sheep_id: usize,
    /// Recording length in seconds (paper: 2400 s = 40 min).
    pub duration_s: f64,
    /// Sampling rate in Hz.
    pub fs: f64,
    /// Blood-draw times in seconds.
    pub draw_times_s: Vec<f64>,
    /// SaO2 trajectory waypoints `(time_s, sao2_fraction)`.
    pub sao2_waypoints: Vec<(f64, f64)>,
    /// Maternal heart-rate band (Hz).
    pub maternal_band: (f64, f64),
    /// Fetal heart-rate band (Hz).
    pub fetal_band: (f64, f64),
    /// Maternal respiration band (Hz).
    pub respiration_band: (f64, f64),
    /// Maternal `(AC/DC)` modulation depth.
    pub maternal_modulation: f64,
    /// Respiration `(AC/DC)` modulation depth.
    pub respiration_modulation: f64,
    /// Relative slow drift of the interference modulation depths,
    /// *independent per wavelength* (optode coupling and maternal
    /// perfusion change over a 40-minute experiment). This is what makes
    /// residual interference fatal for the modulation ratio: a weak
    /// separator's leakage no longer cancels between the two channels.
    pub interference_drift: f64,
    /// Sensor noise standard deviation, relative to DC.
    pub noise_std: f64,
    /// Master random seed.
    pub seed: u64,
}

impl InvivoConfig {
    /// Paper-like protocol for sheep 1: 40 min, seven draws at mixed
    /// 2.5/5/10-minute spacing, a moderate desaturation episode.
    pub fn sheep1() -> Self {
        InvivoConfig {
            sheep_id: 1,
            duration_s: 2400.0,
            fs: 100.0,
            draw_times_s: vec![150.0, 450.0, 750.0, 1050.0, 1350.0, 1950.0, 2250.0],
            sao2_waypoints: vec![
                (0.0, 0.55),
                (600.0, 0.50),
                (1200.0, 0.34),
                (1800.0, 0.42),
                (2400.0, 0.52),
            ],
            maternal_band: (1.05, 1.35),
            fetal_band: (2.0, 2.7),
            respiration_band: (0.45, 0.7),
            maternal_modulation: 0.08,
            respiration_modulation: 0.12,
            interference_drift: 0.35,
            noise_std: 0.003,
            seed: 0xA11CE,
        }
    }

    /// Paper-like protocol for sheep 2: deeper desaturation with faster
    /// recovery and slightly different physiology.
    pub fn sheep2() -> Self {
        InvivoConfig {
            sheep_id: 2,
            duration_s: 2400.0,
            fs: 100.0,
            draw_times_s: vec![150.0, 450.0, 750.0, 1050.0, 1350.0, 1950.0, 2250.0],
            sao2_waypoints: vec![
                (0.0, 0.60),
                (500.0, 0.55),
                (1000.0, 0.30),
                (1500.0, 0.35),
                (2000.0, 0.50),
                (2400.0, 0.58),
            ],
            maternal_band: (1.1, 1.45),
            fetal_band: (2.1, 2.8),
            respiration_band: (0.5, 0.75),
            maternal_modulation: 0.07,
            respiration_modulation: 0.10,
            interference_drift: 0.40,
            noise_std: 0.003,
            seed: 0xB0B2,
        }
    }

    /// Shrinks the protocol by `factor` (duration, waypoints and draw
    /// times alike) — used to keep unit tests fast while preserving the
    /// experiment's structure.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        self.duration_s *= factor;
        for t in &mut self.draw_times_s {
            *t *= factor;
        }
        for (t, _) in &mut self.sao2_waypoints {
            *t *= factor;
        }
        self
    }
}

/// Per-sample ground-truth fundamental-frequency tracks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct F0Tracks {
    /// Maternal heart rate (Hz).
    pub maternal: Vec<f64>,
    /// Fetal heart rate (Hz).
    pub fetal: Vec<f64>,
    /// Respiration rate (Hz).
    pub respiration: Vec<f64>,
}

/// A complete simulated TFO recording for one sheep.
#[derive(Debug, Clone, PartialEq)]
pub struct TfoRecording {
    /// The generating configuration.
    pub config: InvivoConfig,
    /// Mixed PPG per wavelength (DC included), `[740 nm, 850 nm]`.
    pub mixed: [Vec<f64>; 2],
    /// Ground-truth fetal AC component per wavelength.
    pub fetal_truth: [Vec<f64>; 2],
    /// Ground-truth maternal AC component per wavelength.
    pub maternal_truth: [Vec<f64>; 2],
    /// Per-sample SaO2 trajectory (fraction).
    pub sao2: Vec<f64>,
    /// Blood draws with assay noise.
    pub draws: Vec<BloodDraw>,
    /// Ground-truth fundamental-frequency tracks.
    pub f0: F0Tracks,
}

impl TfoRecording {
    /// Number of samples per channel.
    pub fn len(&self) -> usize {
        self.mixed[0].len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.mixed[0].is_empty()
    }

    /// Sample index of a time in seconds (clamped to the record).
    pub fn sample_at(&self, time_s: f64) -> usize {
        ((time_s * self.config.fs) as usize).min(self.len().saturating_sub(1))
    }
}

/// Runs the simulation for `config`.
///
/// # Panics
///
/// Panics on degenerate configurations (non-positive duration or rate,
/// missing waypoints).
pub fn simulate(config: &InvivoConfig) -> TfoRecording {
    assert!(config.duration_s > 0.0 && config.fs > 0.0, "degenerate duration/rate");
    assert!(config.sao2_waypoints.len() >= 2, "need at least two SaO2 waypoints");
    let n = (config.duration_s * config.fs) as usize;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Physiological base waveforms (unit amplitude, jitter via schedule).
    let maternal = QuasiPeriodicSource::new(
        Template::Ppg,
        PeriodSchedule::random(
            config.duration_s + 2.0,
            config.maternal_band.0,
            config.maternal_band.1,
            1.0,
            0.04,
            &mut rng,
        ),
    )
    .render(config.fs, n);
    let fetal = QuasiPeriodicSource::new(
        Template::Ppg,
        PeriodSchedule::random(
            config.duration_s + 2.0,
            config.fetal_band.0,
            config.fetal_band.1,
            1.0,
            0.04,
            &mut rng,
        ),
    )
    .render(config.fs, n);
    let respiration = QuasiPeriodicSource::new(
        Template::Respiration,
        PeriodSchedule::random(
            config.duration_s + 2.0,
            config.respiration_band.0,
            config.respiration_band.1,
            1.0,
            0.06,
            &mut rng,
        ),
    )
    .render(config.fs, n);

    // SaO2 trajectory by linear interpolation through the waypoints.
    let (wt, wv): (Vec<f64>, Vec<f64>) = config.sao2_waypoints.iter().cloned().unzip();
    let times: Vec<f64> = (0..n).map(|i| i as f64 / config.fs).collect();
    let sao2 = linear_interp(&wt, &wv, &times).expect("waypoints are strictly increasing");

    // Slow per-wavelength drifts of the interference modulation depths:
    // optode coupling and maternal perfusion change over a 40-minute
    // experiment, independently at 740 and 850 nm. Without this the
    // leakage of a weak separator would bias both channels
    // proportionally and cancel in the modulation ratio — in vivo it does
    // not, which is exactly why separation quality matters for SpO2.
    let mut drift_profiles: Vec<Vec<f64>> = Vec::new();
    for _ in 0..4 {
        let (p1, p2): (f64, f64) = {
            use rand::Rng;
            (rng.gen_range(0.0..std::f64::consts::TAU), rng.gen_range(0.0..std::f64::consts::TAU))
        };
        let t1 = config.duration_s / 2.7;
        let t2 = config.duration_s / 1.3;
        let amp = config.interference_drift;
        drift_profiles.push(
            (0..n)
                .map(|i| {
                    let t = i as f64 / config.fs;
                    1.0 + amp
                        * (0.6 * (std::f64::consts::TAU * t / t1 + p1).sin()
                            + 0.4 * (std::f64::consts::TAU * t / t2 + p2).sin())
                })
                .collect(),
        );
    }

    // Assemble the two wavelength channels.
    let mut mixed = [vec![0.0f64; n], vec![0.0f64; n]];
    let mut fetal_truth = [vec![0.0f64; n], vec![0.0f64; n]];
    let mut maternal_truth = [vec![0.0f64; n], vec![0.0f64; n]];
    for (li, dc) in DC_LEVELS.iter().enumerate() {
        for i in 0..n {
            // Fetal modulation: 850 nm fixed, 740 nm scaled by R(SaO2).
            let m_fetal = if li == 1 {
                FETAL_MODULATION_850
            } else {
                FETAL_MODULATION_850 * modulation_ratio_for_sao2(sao2[i])
            };
            let f_ac = dc * m_fetal * fetal.samples[i];
            let m_ac =
                dc * config.maternal_modulation * drift_profiles[li][i] * maternal.samples[i];
            let r_ac = dc
                * config.respiration_modulation
                * drift_profiles[2 + li][i]
                * respiration.samples[i];
            fetal_truth[li][i] = f_ac;
            maternal_truth[li][i] = m_ac;
            mixed[li][i] = dc + m_ac + r_ac + f_ac;
        }
        add_noise(&mut mixed[li], config.noise_std * dc, &mut rng);
    }

    // Blood draws: SaO2 at the draw instant plus assay noise.
    let draws = config
        .draw_times_s
        .iter()
        .map(|&t| {
            let idx = ((t * config.fs) as usize).min(n - 1);
            let jitter = 0.008 * {
                use rand::Rng;
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            BloodDraw { time_s: t, sao2: (sao2[idx] + jitter).clamp(0.0, 1.0) }
        })
        .collect();

    TfoRecording {
        config: config.clone(),
        mixed,
        fetal_truth,
        maternal_truth,
        sao2,
        draws,
        f0: F0Tracks { maternal: maternal.f0, fetal: fetal.f0, respiration: respiration.f0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_dsp::stats::{mean, pearson, rms};

    fn small() -> TfoRecording {
        simulate(&InvivoConfig::sheep1().scaled(0.05)) // 2 minutes
    }

    #[test]
    fn recording_has_expected_sizes() {
        let r = small();
        let n = (r.config.duration_s * r.config.fs) as usize;
        assert_eq!(r.len(), n);
        assert_eq!(r.sao2.len(), n);
        assert_eq!(r.f0.maternal.len(), n);
        assert_eq!(r.draws.len(), r.config.draw_times_s.len());
    }

    #[test]
    fn dc_levels_are_preserved() {
        // The PPG/respiration templates are one-sided (physiological
        // waveforms ride above baseline), so the channel mean sits
        // slightly above DC — within the summed modulation depths.
        let r = small();
        let budget = r.config.maternal_modulation + r.config.respiration_modulation + 0.05;
        for (li, dc) in DC_LEVELS.iter().enumerate() {
            let m = mean(&r.mixed[li]);
            assert!((m - dc).abs() < budget * dc, "λ{li}: mean {m} vs DC {dc}");
        }
    }

    #[test]
    fn maternal_dominates_fetal() {
        let r = small();
        for li in 0..2 {
            let rm = rms(&r.maternal_truth[li]);
            let rf = rms(&r.fetal_truth[li]);
            assert!(rm > 1.5 * rf, "λ{li}: maternal {rm} vs fetal {rf}");
        }
    }

    #[test]
    fn modulation_ratio_model_is_monotone_decreasing_in_r() {
        // Lower SaO2 ⇒ lower 1/(Y+k) is *higher* … verify against model.
        let r_low = modulation_ratio_for_sao2(0.30);
        let r_high = modulation_ratio_for_sao2(0.60);
        assert!(r_low < r_high, "R(0.30)={r_low} !< R(0.60)={r_high}");
        assert!(r_low > 0.0);
    }

    #[test]
    fn fetal_740_amplitude_tracks_sao2() {
        let r = simulate(&InvivoConfig::sheep2().scaled(0.05));
        // Windowed fetal RMS at 740 nm must correlate with R(SaO2(t)).
        let fs = r.config.fs as usize;
        let win = 10 * fs;
        let mut rms_series = Vec::new();
        let mut rtrue = Vec::new();
        let mut start = 0;
        while start + win <= r.len() {
            rms_series.push(rms(&r.fetal_truth[0][start..start + win]));
            let mid_sao2 = r.sao2[start + win / 2];
            rtrue.push(modulation_ratio_for_sao2(mid_sao2));
            start += win;
        }
        let c = pearson(&rms_series, &rtrue);
        assert!(c > 0.9, "correlation {c}");
    }

    #[test]
    fn draws_match_trajectory_with_small_noise() {
        let r = small();
        for d in &r.draws {
            let idx = r.sample_at(d.time_s);
            assert!((d.sao2 - r.sao2[idx]).abs() < 0.05, "draw at {} off", d.time_s);
        }
    }

    #[test]
    fn spectral_overlap_exists_between_maternal_harmonic_and_fetal() {
        // The experiment is only meaningful if the maternal 2nd harmonic
        // crosses the fetal band (the TFO challenge).
        for cfg in [InvivoConfig::sheep1(), InvivoConfig::sheep2()] {
            assert!(2.0 * cfg.maternal_band.1 >= cfg.fetal_band.0);
            assert!(2.0 * cfg.maternal_band.0 <= cfg.fetal_band.1);
        }
    }

    #[test]
    fn scaled_config_shrinks_protocol() {
        let cfg = InvivoConfig::sheep1().scaled(0.1);
        assert!((cfg.duration_s - 240.0).abs() < 1e-9);
        assert!(cfg.draw_times_s.iter().all(|&t| t <= cfg.duration_s));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(&InvivoConfig::sheep1().scaled(0.02));
        let b = simulate(&InvivoConfig::sheep1().scaled(0.02));
        assert_eq!(a.mixed[0], b.mixed[0]);
    }
}
