//! The shared two-source "drifting duet" test fixture.
//!
//! The serving layer (serve tests, `loadgen`, the `serve_sessions`
//! example and its smoke test) exercises its machinery on one signal
//! family: two quasi-periodic sources whose fundamentals drift
//! sinusoidally fast enough that every analysis chunk sees the full
//! frequency-ratio range (a ratio that *locks* near an integer for a
//! whole chunk starves the deterministic in-painter — the pathological
//! case the deep prior exists for, and deliberately not what engine-level
//! tests measure). This module is the shared definition for those call
//! sites, parameterized by a `variant` so concurrent sessions each carry
//! a distinct stream. (The stream/core suites keep their own historical
//! inline variants of the family, tuned against their calibrated
//! agreement thresholds.)

/// A rendered two-source mix with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftingDuet {
    /// The mixed (summed) channel, `n` samples.
    pub mixed: Vec<f64>,
    /// The two clean sources, for scoring estimates against.
    pub sources: Vec<Vec<f64>>,
    /// The sources' instantaneous f0 tracks, one per source, `n` samples
    /// each — the side information every DHF entry point takes.
    pub f0_tracks: Vec<Vec<f64>>,
}

/// Renders the drifting duet at `fs` Hz for `n` samples.
///
/// Source 1: fundamental near 1.3 Hz (6 drift cycles over the signal,
/// ±0.30 Hz), two harmonics, unit amplitude. Source 2: near 2.55 Hz
/// (9 drift cycles, ±0.45 Hz), weaker (0.35). `variant` phase-shifts the
/// drifts and nudges the base fundamentals so each variant is a genuinely
/// different stream while staying inside the same band.
pub fn drifting_duet(fs: f64, n: usize, variant: u64) -> DriftingDuet {
    let v = (variant % 97) as f64;
    let track1: Vec<f64> = (0..n)
        .map(|i| {
            1.30 + 0.002 * v
                + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 6.0 + 0.3 * v).sin()
        })
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| {
            2.55 - 0.003 * v
                + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 9.0 - 0.2 * v).cos()
        })
        .collect();
    let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + h2 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0, 0.5);
    let s2 = render(&track2, 0.35, 0.3);
    let mixed: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
    DriftingDuet { mixed, sources: vec![s1, s2], f0_tracks: vec![track1, track2] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_distinct_but_share_the_family() {
        let fs = 100.0;
        let a = drifting_duet(fs, 2000, 0);
        let b = drifting_duet(fs, 2000, 1);
        assert_eq!(a, drifting_duet(fs, 2000, 0), "fixture must be deterministic");
        assert_ne!(a.mixed, b.mixed, "variants must differ");
        for duet in [&a, &b] {
            assert_eq!(duet.mixed.len(), 2000);
            assert_eq!(duet.sources.len(), 2);
            assert_eq!(duet.f0_tracks.len(), 2);
            // Tracks stay positive and inside the evaluated band.
            for t in &duet.f0_tracks {
                assert!(t.iter().all(|&f| f > 0.5 && f < 3.5));
            }
        }
    }
}
