//! Per-period duration and amplitude schedules (the paper's "time duration
//! per period list, and amplitude per period list").

use rand::Rng;

/// Duration and amplitude of every period of a quasi-periodic source.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PeriodSchedule {
    /// Seconds per period; all strictly positive.
    pub durations: Vec<f64>,
    /// Peak amplitude per period; non-negative.
    pub amplitudes: Vec<f64>,
}

impl PeriodSchedule {
    /// Builds a schedule from explicit lists.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, any duration is non-positive, or any
    /// amplitude is negative.
    pub fn new(durations: Vec<f64>, amplitudes: Vec<f64>) -> Self {
        assert_eq!(durations.len(), amplitudes.len(), "schedule lists must match");
        assert!(durations.iter().all(|&d| d > 0.0), "durations must be positive");
        assert!(amplitudes.iter().all(|&a| a >= 0.0), "amplitudes must be non-negative");
        PeriodSchedule { durations, amplitudes }
    }

    /// Random quasi-periodic schedule: the instantaneous frequency follows
    /// a clipped random walk inside `[f_min, f_max]` and per-period
    /// amplitudes are `N(amp_mean, amp_std)` clamped to ≥ 0, matching the
    /// way Table 1 characterizes each source.
    ///
    /// Enough periods are generated to cover at least `duration_s`
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f_min <= f_max` and `duration_s > 0`.
    pub fn random<R: Rng>(
        duration_s: f64,
        f_min: f64,
        f_max: f64,
        amp_mean: f64,
        amp_std: f64,
        rng: &mut R,
    ) -> Self {
        assert!(f_min > 0.0 && f_min <= f_max, "need 0 < f_min <= f_max");
        assert!(duration_s > 0.0, "duration must be positive");
        let mut durations = Vec::new();
        let mut amplitudes = Vec::new();
        let mut f = 0.5 * (f_min + f_max);
        let step = (f_max - f_min) / 12.0;
        let mut covered = 0.0;
        while covered < duration_s {
            f = (f + step * normal(rng)).clamp(f_min, f_max);
            let d = 1.0 / f;
            let a = (amp_mean + amp_std * normal(rng)).max(0.0);
            durations.push(d);
            amplitudes.push(a);
            covered += d;
        }
        PeriodSchedule { durations, amplitudes }
    }

    /// Number of periods.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Total covered time in seconds.
    pub fn total_duration(&self) -> f64 {
        self.durations.iter().sum()
    }

    /// Instantaneous fundamental frequency of period `i` (Hz).
    pub fn frequency(&self, i: usize) -> f64 {
        1.0 / self.durations[i]
    }

    /// Mean of the per-period frequencies.
    pub fn mean_frequency(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.durations.iter().map(|&d| 1.0 / d).sum::<f64>() / self.len() as f64
    }
}

/// Standard normal via Box–Muller.
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_schedule_respects_frequency_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = PeriodSchedule::random(60.0, 1.0, 2.0, 0.1, 0.02, &mut rng);
        for i in 0..s.len() {
            let f = s.frequency(i);
            assert!((1.0..=2.0).contains(&f), "period {i}: {f} Hz");
        }
        assert!(s.total_duration() >= 60.0);
    }

    #[test]
    fn random_schedule_amplitude_statistics() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = PeriodSchedule::random(2000.0, 1.0, 1.5, 0.5, 0.1, &mut rng);
        let mean = s.amplitudes.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "amp mean {mean}");
        assert!(s.amplitudes.iter().all(|&a| a >= 0.0));
    }

    #[test]
    fn frequencies_vary_over_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = PeriodSchedule::random(120.0, 0.9, 1.7, 0.08, 0.02, &mut rng);
        let fs: Vec<f64> = (0..s.len()).map(|i| s.frequency(i)).collect();
        let (lo, hi) = fs.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(hi - lo > 0.2, "random walk too static: {lo}..{hi}");
    }

    #[test]
    #[should_panic(expected = "match")]
    fn mismatched_lists_panic() {
        let _ = PeriodSchedule::new(vec![1.0, 1.0], vec![0.5]);
    }

    #[test]
    fn explicit_schedule_round_trips_through_serde() {
        let s = PeriodSchedule::new(vec![0.5, 0.6], vec![1.0, 0.9]);
        let json = serde_json_like(&s);
        assert!(json.contains("0.5") && json.contains("0.9"));
    }

    /// Minimal serde smoke (serde_json is not in the dependency set, so we
    /// check the Serialize impl drives a writer via the debug formatter).
    fn serde_json_like(s: &PeriodSchedule) -> String {
        format!("{s:?}")
    }
}
