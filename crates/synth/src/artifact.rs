//! Motion-artifact contamination for synthesized TFO recordings.
//!
//! Wearable optodes see transient interference the harmonic-track model
//! cannot describe: probe displacement spikes, baseline-wander bursts
//! from posture and perfusion shifts, and gait-locked foot-strike
//! impacts whose cadence follows the wearer's activity. This module
//! synthesizes those three families as additive contamination on top of
//! the dual-wavelength scenarios of [`dualwave`](crate::dualwave):
//!
//! * [`SpikeConfig`] — impulsive spikes, Bernoulli-scheduled per sample
//!   with heavy-tailed (Pareto) amplitudes and an exponential decay.
//! * [`WanderConfig`] — baseline-wander bursts: Hann-enveloped
//!   low-frequency oscillations at random onsets.
//! * [`GaitConfig`] — gait-periodic interference driven by an
//!   [`ActivitySchedule`] of walk/run/rest segments with per-segment
//!   cadence; every foot strike is a damped broadband ring-down, so the
//!   interference is a *percussive* impulse train rather than a clean
//!   harmonic line — exactly what a harmonic-track separator leaks.
//!
//! All generators draw from one seeded [`StdRng`], so a configuration is
//! bit-reproducible, and [`apply`] adds the common-mode artifact to both
//! wavelength channels (scaled by their DC levels) while leaving the
//! ground-truth SaO2 trajectory, fetal components, and f0 tracks
//! untouched — scoring a pipeline against truth stays valid under
//! contamination.
//!
//! # Example
//!
//! ```
//! use dhf_synth::artifact::{apply, ArtifactConfig};
//! use dhf_synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};
//!
//! let mut rec = generate(&DualWaveConfig::new(Spo2Scenario::Constant { spo2: 0.5 }, 20.0));
//! let clean = rec.mixed[0].clone();
//! let truth = rec.sao2.clone();
//! apply(&mut rec, &ArtifactConfig::spikes(7));
//! assert_ne!(rec.mixed[0], clean, "contamination must change the mixture");
//! assert_eq!(rec.sao2, truth, "ground truth stays intact");
//! ```

use crate::invivo::{TfoRecording, DC_LEVELS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Impulsive spike artifacts (probe displacement, cable snap).
///
/// Spikes start by a per-sample Bernoulli trial with probability
/// `rate_hz / fs`; each spike has a heavy-tailed amplitude
/// `amplitude · u^(-1/tail)` (Pareto, clamped to 20× the scale so a
/// single draw cannot dwarf the recording), a random sign, and an
/// exponential decay with time constant `decay_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeConfig {
    /// Expected spikes per second.
    pub rate_hz: f64,
    /// Amplitude scale relative to the channel DC level.
    pub amplitude: f64,
    /// Pareto tail exponent; smaller values give heavier tails.
    pub tail: f64,
    /// Exponential decay time constant in seconds.
    pub decay_s: f64,
}

impl Default for SpikeConfig {
    fn default() -> Self {
        SpikeConfig { rate_hz: 0.8, amplitude: 0.06, tail: 1.5, decay_s: 0.04 }
    }
}

/// Baseline-wander bursts (posture shifts, venous pooling).
///
/// Burst onsets are Bernoulli-scheduled at `burst_rate_hz`; each burst
/// is a Hann-enveloped oscillation of random duration, frequency (below
/// the physiological bands), phase, and amplitude.
#[derive(Debug, Clone, PartialEq)]
pub struct WanderConfig {
    /// Expected burst onsets per second.
    pub burst_rate_hz: f64,
    /// Peak envelope amplitude relative to the channel DC level.
    pub amplitude: f64,
    /// Shortest burst in seconds.
    pub min_duration_s: f64,
    /// Longest burst in seconds.
    pub max_duration_s: f64,
    /// Oscillation frequency band in Hz (kept below the respiration
    /// band so the wander is out-of-model interference).
    pub freq_band: (f64, f64),
}

impl Default for WanderConfig {
    fn default() -> Self {
        WanderConfig {
            burst_rate_hz: 0.06,
            amplitude: 0.12,
            min_duration_s: 2.0,
            max_duration_s: 6.0,
            freq_band: (0.08, 0.3),
        }
    }
}

/// One locomotor activity of an [`ActivitySchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Standing/sitting still: no foot strikes.
    Rest,
    /// Walking: moderate impacts at walking cadence.
    Walk,
    /// Running: harder impacts at running cadence.
    Run,
}

impl Activity {
    /// Short lowercase name (for logs and telemetry).
    pub fn name(self) -> &'static str {
        match self {
            Activity::Rest => "rest",
            Activity::Walk => "walk",
            Activity::Run => "run",
        }
    }

    /// Impact amplitude multiplier relative to the walk baseline.
    pub fn impact_scale(self) -> f64 {
        match self {
            Activity::Rest => 0.0,
            Activity::Walk => 1.0,
            Activity::Run => 2.2,
        }
    }

    /// Typical step-cadence band in Hz (`None` for rest).
    pub fn cadence_band(self) -> Option<(f64, f64)> {
        match self {
            Activity::Rest => None,
            Activity::Walk => Some((1.5, 2.1)),
            Activity::Run => Some((2.4, 3.1)),
        }
    }
}

/// One contiguous activity segment with its own cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySegment {
    /// The activity performed during the segment.
    pub activity: Activity,
    /// Segment length in seconds.
    pub duration_s: f64,
    /// Step cadence in Hz (ignored for [`Activity::Rest`]).
    pub cadence_hz: f64,
}

/// A timeline of walk/run/rest segments driving the gait generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySchedule {
    /// The segments, in temporal order.
    pub segments: Vec<ActivitySegment>,
}

impl ActivitySchedule {
    /// Builds a schedule from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, any duration is non-positive, or a
    /// non-rest segment has a non-positive cadence.
    pub fn new(segments: Vec<ActivitySegment>) -> Self {
        assert!(!segments.is_empty(), "schedule needs at least one segment");
        for s in &segments {
            assert!(s.duration_s > 0.0, "segment durations must be positive");
            assert!(
                s.activity == Activity::Rest || s.cadence_hz > 0.0,
                "{} segments need a positive cadence",
                s.activity.name()
            );
        }
        ActivitySchedule { segments }
    }

    /// Random walk/run/rest timeline covering at least `duration_s`
    /// seconds: segment lengths are uniform in 10–25 s, activities cycle
    /// through a shuffled walk/rest/run rotation (so every family
    /// appears), and each non-rest segment draws its cadence from the
    /// activity's band.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is non-positive.
    pub fn walk_run_rest<R: Rng>(duration_s: f64, rng: &mut R) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        let rotation = [Activity::Walk, Activity::Rest, Activity::Run, Activity::Rest];
        let offset = rng.gen_range(0usize..rotation.len());
        let mut segments = Vec::new();
        let mut covered = 0.0;
        let mut k = 0usize;
        while covered < duration_s {
            let activity = rotation[(offset + k) % rotation.len()];
            let d = rng.gen_range(10.0..25.0);
            let cadence = match activity.cadence_band() {
                Some((lo, hi)) => rng.gen_range(lo..hi),
                None => 0.0,
            };
            segments.push(ActivitySegment { activity, duration_s: d, cadence_hz: cadence });
            covered += d;
            k += 1;
        }
        ActivitySchedule { segments }
    }

    /// Total covered time in seconds.
    pub fn total_duration_s(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_s).sum()
    }

    /// The segment active at time `t` seconds (the last segment past the
    /// end of the schedule).
    pub fn segment_at(&self, t: f64) -> &ActivitySegment {
        let mut start = 0.0;
        for s in &self.segments {
            if t < start + s.duration_s {
                return s;
            }
            start += s.duration_s;
        }
        self.segments.last().expect("schedule is non-empty")
    }
}

/// Gait-periodic interference: a cadence-locked foot-strike impact train.
///
/// Each step is a damped broadband ring-down (`amplitude ·
/// exp(-t/decay_s) · cos(2π·resonance_hz·t)`), its onset spaced by the
/// active segment's cadence with timing jitter and its strength scaled by
/// the activity's [`impact_scale`](Activity::impact_scale) with amplitude
/// jitter. Rest segments are silent.
#[derive(Debug, Clone, PartialEq)]
pub struct GaitConfig {
    /// The activity timeline.
    pub schedule: ActivitySchedule,
    /// Impact amplitude at walk scale, relative to the channel DC level.
    pub amplitude: f64,
    /// Ring-down resonance in Hz (sensor/tissue coupling).
    pub resonance_hz: f64,
    /// Ring-down decay time constant in seconds.
    pub decay_s: f64,
    /// Relative per-step timing and amplitude jitter (fraction).
    pub jitter: f64,
}

impl GaitConfig {
    /// Default gait parameters over the given schedule.
    pub fn new(schedule: ActivitySchedule) -> Self {
        GaitConfig { schedule, amplitude: 0.05, resonance_hz: 9.0, decay_s: 0.06, jitter: 0.08 }
    }
}

/// A composable, seeded motion-artifact configuration.
///
/// Each family is optional; enabled families are generated sequentially
/// from one [`StdRng`] seeded with `seed` and summed, so any combination
/// is bit-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactConfig {
    /// Impulsive spike artifacts.
    pub spikes: Option<SpikeConfig>,
    /// Baseline-wander bursts.
    pub wander: Option<WanderConfig>,
    /// Gait-periodic interference.
    pub gait: Option<GaitConfig>,
    /// Master random seed.
    pub seed: u64,
}

impl ArtifactConfig {
    /// An empty configuration (no contamination) with the given seed.
    pub fn none(seed: u64) -> Self {
        ArtifactConfig { spikes: None, wander: None, gait: None, seed }
    }

    /// Default-parameter spike contamination.
    pub fn spikes(seed: u64) -> Self {
        ArtifactConfig::none(seed).with_spikes(SpikeConfig::default())
    }

    /// Default-parameter baseline-wander contamination.
    pub fn wander(seed: u64) -> Self {
        ArtifactConfig::none(seed).with_wander(WanderConfig::default())
    }

    /// Default-parameter gait contamination over a random walk/run/rest
    /// schedule covering `duration_s` seconds.
    pub fn gait(duration_s: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A17);
        let schedule = ActivitySchedule::walk_run_rest(duration_s, &mut rng);
        ArtifactConfig::none(seed).with_gait(GaitConfig::new(schedule))
    }

    /// Enables (or replaces) the spike family.
    pub fn with_spikes(mut self, cfg: SpikeConfig) -> Self {
        self.spikes = Some(cfg);
        self
    }

    /// Enables (or replaces) the wander family.
    pub fn with_wander(mut self, cfg: WanderConfig) -> Self {
        self.wander = Some(cfg);
        self
    }

    /// Enables (or replaces) the gait family.
    pub fn with_gait(mut self, cfg: GaitConfig) -> Self {
        self.gait = Some(cfg);
        self
    }

    /// Replaces the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Short name of the enabled family combination (for logs).
    pub fn family_name(&self) -> &'static str {
        match (&self.spikes, &self.wander, &self.gait) {
            (None, None, None) => "none",
            (Some(_), None, None) => "spikes",
            (None, Some(_), None) => "wander",
            (None, None, Some(_)) => "gait",
            _ => "combined",
        }
    }
}

/// Renders the artifact waveform for `n` samples at `fs` Hz, in units of
/// the channel DC level (1.0 = one DC).
///
/// # Panics
///
/// Panics if `fs` is non-positive.
pub fn waveform(cfg: &ArtifactConfig, n: usize, fs: f64) -> Vec<f64> {
    assert!(fs > 0.0, "sampling rate must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = vec![0.0f64; n];
    if let Some(s) = &cfg.spikes {
        add_spikes(&mut out, fs, s, &mut rng);
    }
    if let Some(w) = &cfg.wander {
        add_wander(&mut out, fs, w, &mut rng);
    }
    if let Some(g) = &cfg.gait {
        add_gait(&mut out, fs, g, &mut rng);
    }
    out
}

/// Contaminates both wavelength channels of a recording in place and
/// returns the unit-DC artifact waveform that was added.
///
/// The artifact is common-mode (the optode moves as one), so each channel
/// receives the same waveform scaled by its DC level. Ground truth
/// (`sao2`, `fetal_truth`, `f0`, `draws`) is untouched.
pub fn apply(rec: &mut TfoRecording, cfg: &ArtifactConfig) -> Vec<f64> {
    let w = waveform(cfg, rec.len(), rec.config.fs);
    for (li, dc) in DC_LEVELS.iter().enumerate() {
        for (x, a) in rec.mixed[li].iter_mut().zip(&w) {
            *x += dc * a;
        }
    }
    w
}

fn add_spikes(out: &mut [f64], fs: f64, cfg: &SpikeConfig, rng: &mut StdRng) {
    let p = (cfg.rate_hz / fs).clamp(0.0, 1.0);
    let tau = (cfg.decay_s * fs).max(1.0);
    let width = (5.0 * tau).ceil() as usize;
    for i in 0..out.len() {
        if !rng.gen_bool(p) {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let mag = cfg.amplitude * u.powf(-1.0 / cfg.tail).min(20.0);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        for k in 0..=width.min(out.len() - 1 - i) {
            out[i + k] += sign * mag * (-(k as f64) / tau).exp();
        }
    }
}

fn add_wander(out: &mut [f64], fs: f64, cfg: &WanderConfig, rng: &mut StdRng) {
    let p = (cfg.burst_rate_hz / fs).clamp(0.0, 1.0);
    for i in 0..out.len() {
        if !rng.gen_bool(p) {
            continue;
        }
        let dur_s = rng.gen_range(cfg.min_duration_s..cfg.max_duration_s);
        let len = ((dur_s * fs) as usize).max(2);
        let f = rng.gen_range(cfg.freq_band.0..cfg.freq_band.1);
        let phase = rng.gen_range(0.0..TAU);
        let amp = cfg.amplitude * rng.gen_range(0.6..1.4);
        for k in 0..len.min(out.len() - i) {
            let env = 0.5 * (1.0 - (TAU * k as f64 / len as f64).cos());
            out[i + k] += amp * env * (TAU * f * k as f64 / fs + phase).sin();
        }
    }
}

fn add_gait(out: &mut [f64], fs: f64, cfg: &GaitConfig, rng: &mut StdRng) {
    let tau = (cfg.decay_s * fs).max(1.0);
    let width = (5.0 * tau).ceil() as usize;
    let mut seg_start = 0.0;
    for seg in &cfg.schedule.segments {
        let seg_end = seg_start + seg.duration_s;
        let scale = seg.activity.impact_scale();
        if scale > 0.0 {
            // First step settles in a fraction of a stride after the
            // segment starts; subsequent strides carry timing jitter.
            let mut t = seg_start + rng.gen_range(0.0..1.0) / seg.cadence_hz;
            while t < seg_end {
                let amp = (cfg.amplitude * scale * (1.0 + cfg.jitter * normal(rng))).max(0.0);
                let onset = (t * fs) as usize;
                if onset >= out.len() {
                    break;
                }
                for k in 0..=width.min(out.len() - 1 - onset) {
                    let kf = k as f64;
                    out[onset + k] +=
                        amp * (-kf / tau).exp() * (TAU * cfg.resonance_hz * kf / fs).cos();
                }
                t += (1.0 + cfg.jitter * normal(rng)).max(0.25) / seg.cadence_hz;
            }
        }
        seg_start = seg_end;
    }
}

/// Standard normal via Box–Muller (same idiom as
/// [`schedule`](crate::schedule)).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualwave::{generate, DualWaveConfig, Spo2Scenario};
    use dhf_dsp::stats::rms;

    const FS: f64 = 100.0;
    const N: usize = 6000; // 60 s

    #[test]
    fn waveform_is_deterministic_per_seed() {
        let cfg = ArtifactConfig::spikes(3).with_wander(WanderConfig::default()).with_gait(
            GaitConfig::new(ActivitySchedule::walk_run_rest(60.0, &mut StdRng::seed_from_u64(3))),
        );
        assert_eq!(waveform(&cfg, N, FS), waveform(&cfg, N, FS));
        let other = waveform(&cfg.clone().with_seed(4), N, FS);
        assert_ne!(waveform(&cfg, N, FS), other, "seeds must decorrelate");
    }

    #[test]
    fn spikes_are_sparse_and_impulsive() {
        let w = waveform(&ArtifactConfig::spikes(1), N, FS);
        let peak = w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let active = w.iter().filter(|v| v.abs() > 0.05 * peak).count();
        assert!(peak > 0.0, "no spikes generated");
        assert!(active < N / 10, "spikes must be sparse, {active}/{N} samples active");
    }

    #[test]
    fn spike_amplitudes_are_heavy_tailed() {
        // With a Pareto tail the max over many draws dwarfs the median.
        let cfg = ArtifactConfig::none(9)
            .with_spikes(SpikeConfig { rate_hz: 5.0, ..SpikeConfig::default() });
        let w = waveform(&cfg, 60_000, FS);
        let peak = w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let base = SpikeConfig::default().amplitude;
        assert!(peak > 3.0 * base, "max spike {peak} shows no heavy tail over scale {base}");
    }

    #[test]
    fn wander_is_low_frequency() {
        let cfg = ArtifactConfig::none(5)
            .with_wander(WanderConfig { burst_rate_hz: 0.2, ..WanderConfig::default() });
        let w = waveform(&cfg, N, FS);
        assert!(rms(&w) > 0.0, "no bursts generated");
        // Mean absolute first difference is tiny relative to amplitude
        // for sub-Hz content at 100 Hz sampling.
        let diff: f64 =
            w.windows(2).map(|p| (p[1] - p[0]).abs()).sum::<f64>() / (w.len() - 1) as f64;
        let level: f64 = w.iter().map(|v| v.abs()).sum::<f64>() / w.len() as f64;
        assert!(diff < 0.1 * level, "wander is not slow: diff {diff} vs level {level}");
    }

    #[test]
    fn gait_is_silent_at_rest_and_active_while_moving() {
        let schedule = ActivitySchedule::new(vec![
            ActivitySegment { activity: Activity::Rest, duration_s: 20.0, cadence_hz: 0.0 },
            ActivitySegment { activity: Activity::Run, duration_s: 20.0, cadence_hz: 2.8 },
        ]);
        let cfg = ArtifactConfig::none(2).with_gait(GaitConfig::new(schedule));
        let w = waveform(&cfg, 4000, FS);
        let rest = rms(&w[..1900]);
        let run = rms(&w[2100..]);
        assert!(rest < 1e-12, "rest segment must be silent, rms {rest}");
        assert!(run > 1e-3, "run segment must carry impacts, rms {run}");
    }

    #[test]
    fn gait_steps_follow_the_cadence() {
        let schedule = ActivitySchedule::new(vec![ActivitySegment {
            activity: Activity::Walk,
            duration_s: 60.0,
            cadence_hz: 2.0,
        }]);
        let mut gait = GaitConfig::new(schedule);
        gait.jitter = 0.0;
        let w = waveform(&ArtifactConfig::none(1).with_gait(gait), N, FS);
        // Count ring-down onsets: samples where the envelope jumps.
        let peak = w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let mut onsets = 0;
        let mut armed = true;
        for v in &w {
            if v.abs() > 0.5 * peak {
                if armed {
                    onsets += 1;
                }
                armed = false;
            } else if v.abs() < 0.05 * peak {
                armed = true;
            }
        }
        let expected = 60.0 * 2.0;
        assert!(
            (onsets as f64) > 0.6 * expected && (onsets as f64) < 1.4 * expected,
            "found {onsets} strikes for expected {expected}"
        );
    }

    #[test]
    fn random_schedule_covers_duration_with_all_activities() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = ActivitySchedule::walk_run_rest(120.0, &mut rng);
        assert!(s.total_duration_s() >= 120.0);
        assert!(s.segments.iter().any(|x| x.activity == Activity::Walk));
        assert!(s.segments.iter().any(|x| x.activity == Activity::Run));
        assert!(s.segments.iter().any(|x| x.activity == Activity::Rest));
        for seg in &s.segments {
            if let Some((lo, hi)) = seg.activity.cadence_band() {
                assert!((lo..hi).contains(&seg.cadence_hz), "cadence {}", seg.cadence_hz);
            }
        }
    }

    #[test]
    fn segment_lookup_walks_the_timeline() {
        let s = ActivitySchedule::new(vec![
            ActivitySegment { activity: Activity::Walk, duration_s: 10.0, cadence_hz: 1.8 },
            ActivitySegment { activity: Activity::Rest, duration_s: 5.0, cadence_hz: 0.0 },
        ]);
        assert_eq!(s.segment_at(0.0).activity, Activity::Walk);
        assert_eq!(s.segment_at(12.0).activity, Activity::Rest);
        assert_eq!(s.segment_at(99.0).activity, Activity::Rest, "clamps past the end");
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn non_rest_segment_rejects_zero_cadence() {
        let _ = ActivitySchedule::new(vec![ActivitySegment {
            activity: Activity::Walk,
            duration_s: 10.0,
            cadence_hz: 0.0,
        }]);
    }

    #[test]
    fn apply_contaminates_mixture_but_not_ground_truth() {
        let mut rec = generate(&DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), 30.0));
        let clean = rec.clone();
        let w = apply(&mut rec, &ArtifactConfig::gait(30.0, 6));
        assert_eq!(w.len(), rec.len());
        for li in 0..2 {
            assert_ne!(rec.mixed[li], clean.mixed[li], "λ{li} mixture unchanged");
            assert_eq!(rec.fetal_truth[li], clean.fetal_truth[li]);
        }
        assert_eq!(rec.sao2, clean.sao2);
        assert_eq!(rec.f0, clean.f0);
        // Common mode: channel deltas are the waveform scaled by DC.
        for (li, dc) in DC_LEVELS.iter().enumerate() {
            for (i, &wi) in w.iter().enumerate() {
                let delta = rec.mixed[li][i] - clean.mixed[li][i];
                assert!((delta - dc * wi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn family_names_cover_combinations() {
        assert_eq!(ArtifactConfig::none(0).family_name(), "none");
        assert_eq!(ArtifactConfig::spikes(0).family_name(), "spikes");
        assert_eq!(ArtifactConfig::wander(0).family_name(), "wander");
        assert_eq!(ArtifactConfig::gait(10.0, 0).family_name(), "gait");
        let combined = ArtifactConfig::spikes(0).with_wander(WanderConfig::default());
        assert_eq!(combined.family_name(), "combined");
    }
}
