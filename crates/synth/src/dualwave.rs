//! Scenario-driven dual-wavelength oximetry recordings.
//!
//! [`invivo`](crate::invivo) reproduces the paper's two fixed pregnant-ewe
//! protocols; the oximetry *pipeline* (separation → modulation ratio →
//! SpO2 trend, `dhf_oximetry`) needs programmable ground truth instead: a
//! chosen SpO2 trajectory whose recovery can be scored point by point.
//! This module builds such recordings from a small scenario vocabulary —
//! [`Spo2Scenario::Constant`], [`Spo2Scenario::Ramp`], and
//! [`Spo2Scenario::Desaturation`] — while keeping the full in-vivo signal
//! model: both wavelength channels share one maternal and one fetal f0
//! schedule (the optode sees one physiology), the fetal AC amplitudes
//! follow the scenario's SpO2 through the forward calibration model
//! (Eqs. 10–11), and maternal/respiration interference drifts
//! independently per wavelength so residual leakage does not cancel in
//! the modulation ratio.
//!
//! # Example
//!
//! ```
//! use dhf_synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};
//!
//! let cfg = DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), 60.0);
//! let rec = generate(&cfg);
//! assert_eq!(rec.mixed[0].len(), rec.mixed[1].len());
//! // The ground-truth SaO2 trajectory dips to the scenario's nadir.
//! let min = rec.sao2.iter().cloned().fold(f64::INFINITY, f64::min);
//! assert!((min - 0.35).abs() < 1e-6);
//! ```

use crate::invivo::{simulate, InvivoConfig, TfoRecording};

/// A programmable ground-truth fetal SpO2 trajectory.
///
/// All values are saturation fractions in `(0, 1]`. The trajectory is
/// rendered as piecewise-linear waypoints over the recording duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spo2Scenario {
    /// Steady saturation for the whole recording — the null case a trend
    /// estimator must not hallucinate events on.
    Constant {
        /// The held saturation fraction.
        spo2: f64,
    },
    /// Linear drift from `from` at t = 0 to `to` at the end of the
    /// recording.
    Ramp {
        /// Saturation at the start of the recording.
        from: f64,
        /// Saturation at the end of the recording.
        to: f64,
    },
    /// A hypoxic event: hold `baseline`, descend to `nadir` around the
    /// middle of the recording, hold briefly, recover to `baseline` — the
    /// clinically interesting shape (the paper's sheep protocols are
    /// desaturation episodes, §4.3).
    Desaturation {
        /// Saturation before and after the event.
        baseline: f64,
        /// Lowest saturation, reached mid-recording.
        nadir: f64,
    },
}

impl Spo2Scenario {
    /// A desaturation event from `baseline` down to `nadir` and back.
    pub fn desaturation(baseline: f64, nadir: f64) -> Self {
        Spo2Scenario::Desaturation { baseline, nadir }
    }

    /// Short human-readable scenario name (for logs and telemetry).
    pub fn name(&self) -> &'static str {
        match self {
            Spo2Scenario::Constant { .. } => "constant",
            Spo2Scenario::Ramp { .. } => "ramp",
            Spo2Scenario::Desaturation { .. } => "desaturation",
        }
    }

    /// Renders the scenario as piecewise-linear `(time_s, sao2)` waypoints
    /// over `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is non-positive or any saturation value is
    /// outside `(0, 1]` (a desaturation additionally requires
    /// `nadir < baseline`).
    pub fn waypoints(&self, duration_s: f64) -> Vec<(f64, f64)> {
        assert!(duration_s > 0.0, "duration must be positive");
        let check = |v: f64, name: &str| {
            assert!(v > 0.0 && v <= 1.0, "{name} must be a saturation fraction in (0, 1], got {v}");
        };
        match *self {
            Spo2Scenario::Constant { spo2 } => {
                check(spo2, "spo2");
                vec![(0.0, spo2), (duration_s, spo2)]
            }
            Spo2Scenario::Ramp { from, to } => {
                check(from, "from");
                check(to, "to");
                vec![(0.0, from), (duration_s, to)]
            }
            Spo2Scenario::Desaturation { baseline, nadir } => {
                check(baseline, "baseline");
                check(nadir, "nadir");
                assert!(nadir < baseline, "nadir {nadir} must be below baseline {baseline}");
                vec![
                    (0.0, baseline),
                    (0.25 * duration_s, baseline),
                    (0.45 * duration_s, nadir),
                    (0.55 * duration_s, nadir),
                    (0.80 * duration_s, baseline),
                    (duration_s, baseline),
                ]
            }
        }
    }
}

/// Configuration of a scenario-driven dual-wavelength recording.
///
/// Physiology (heart-rate/respiration bands, modulation depths,
/// interference drift) defaults to the sheep-1 protocol of
/// [`InvivoConfig::sheep1`]; only the SpO2 trajectory, duration, and seed
/// are scenario-specific.
#[derive(Debug, Clone, PartialEq)]
pub struct DualWaveConfig {
    /// The ground-truth SpO2 trajectory.
    pub scenario: Spo2Scenario,
    /// Recording length in seconds.
    pub duration_s: f64,
    /// Sampling rate in Hz.
    pub fs: f64,
    /// Master random seed (schedules, drifts, sensor noise).
    pub seed: u64,
    /// Number of evenly spaced blood draws to place on the trajectory.
    pub draws: usize,
    /// Relative slow drift of the interference modulation depths,
    /// independent per wavelength (see
    /// [`InvivoConfig::interference_drift`]). `None` keeps the sheep-1
    /// default; lowering it isolates the pipeline's own trend fidelity
    /// from separation-leakage bias, which scales with the drift.
    pub interference_drift: Option<f64>,
}

impl DualWaveConfig {
    /// A recording of `duration_s` seconds at 100 Hz with a fixed default
    /// seed and four blood draws.
    ///
    /// # Panics
    ///
    /// Panics (in [`generate`]) if `duration_s` is non-positive.
    pub fn new(scenario: Spo2Scenario, duration_s: f64) -> Self {
        DualWaveConfig {
            scenario,
            duration_s,
            fs: 100.0,
            seed: 0x0D5A7,
            draws: 4,
            interference_drift: None,
        }
    }

    /// Replaces the master seed (distinct seeds give independent
    /// schedules, drifts, and noise — one recording per fleet session).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the per-wavelength interference-drift amplitude.
    pub fn with_interference_drift(mut self, drift: f64) -> Self {
        self.interference_drift = Some(drift);
        self
    }

    /// Lowers the underlying [`InvivoConfig`] with this scenario's
    /// waypoints and evenly spaced draw times over sheep-1 physiology.
    pub fn to_invivo(&self) -> InvivoConfig {
        let mut cfg = InvivoConfig::sheep1();
        cfg.duration_s = self.duration_s;
        cfg.fs = self.fs;
        cfg.seed = self.seed;
        cfg.sao2_waypoints = self.scenario.waypoints(self.duration_s);
        cfg.draw_times_s = (0..self.draws)
            .map(|i| self.duration_s * (i as f64 + 1.0) / (self.draws as f64 + 1.0))
            .collect();
        if let Some(drift) = self.interference_drift {
            cfg.interference_drift = drift;
        }
        cfg
    }
}

/// Runs the dual-wavelength simulation for the scenario.
///
/// The returned [`TfoRecording`] carries the coherent λ1/λ2 mixtures
/// (`mixed`), the per-sample ground-truth SaO2 trajectory (`sao2`), the
/// clean fetal AC components (`fetal_truth`), the shared f0 schedules
/// (`f0`), and the timed blood draws — everything the oximetry pipeline
/// needs to run and to be scored against.
///
/// # Panics
///
/// Panics on degenerate configurations (non-positive duration/rate,
/// saturations outside `(0, 1]`).
pub fn generate(cfg: &DualWaveConfig) -> TfoRecording {
    simulate(&cfg.to_invivo())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invivo::modulation_ratio_for_sao2;
    use dhf_dsp::stats::{pearson, rms};

    #[test]
    fn constant_scenario_holds_its_level() {
        let rec = generate(&DualWaveConfig::new(Spo2Scenario::Constant { spo2: 0.5 }, 30.0));
        assert!(rec.sao2.iter().all(|&s| (s - 0.5).abs() < 1e-9));
        assert_eq!(rec.mixed[0].len(), (30.0 * rec.config.fs) as usize);
    }

    #[test]
    fn ramp_scenario_is_monotone() {
        let rec = generate(&DualWaveConfig::new(Spo2Scenario::Ramp { from: 0.6, to: 0.35 }, 30.0));
        assert!((rec.sao2[0] - 0.6).abs() < 1e-6);
        assert!((rec.sao2[rec.len() - 1] - 0.35).abs() < 0.01);
        assert!(rec.sao2.windows(2).all(|w| w[1] <= w[0] + 1e-12), "ramp must be monotone");
    }

    #[test]
    fn desaturation_scenario_reaches_its_nadir_mid_recording() {
        let rec = generate(&DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.30), 100.0));
        let n = rec.len();
        let min = rec.sao2.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((min - 0.30).abs() < 1e-6);
        // Nadir sits in the middle, baseline at the edges.
        assert!((rec.sao2[n / 2] - 0.30).abs() < 0.02);
        assert!((rec.sao2[0] - 0.55).abs() < 1e-6);
        assert!((rec.sao2[n - 1] - 0.55).abs() < 0.02);
    }

    #[test]
    fn channels_share_one_physiology_but_differ_in_modulation() {
        // Coherence: the two wavelengths carry the *same* fetal f0
        // schedule (correlated clean fetal waveforms), scaled by the
        // SaO2-dependent modulation at 740 nm only.
        let rec = generate(&DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), 60.0));
        let c = pearson(&rec.fetal_truth[0], &rec.fetal_truth[1]);
        // Same waveform, but λ1 additionally carries the SaO2-driven
        // amplitude envelope (the signal the pipeline recovers), so the
        // correlation sits just below 1; independent sources would be ~0.
        assert!(c > 0.97, "fetal components must be coherent across wavelengths: {c}");
        assert_ne!(rec.mixed[0], rec.mixed[1], "channels must not be identical");
    }

    #[test]
    fn fetal_740_amplitude_follows_the_scenario() {
        let rec =
            generate(&DualWaveConfig::new(Spo2Scenario::Ramp { from: 0.65, to: 0.30 }, 120.0));
        let fs = rec.config.fs as usize;
        let win = 10 * fs;
        let (mut amps, mut want) = (Vec::new(), Vec::new());
        let mut start = 0;
        while start + win <= rec.len() {
            amps.push(rms(&rec.fetal_truth[0][start..start + win]));
            want.push(modulation_ratio_for_sao2(rec.sao2[start + win / 2]));
            start += win;
        }
        let c = pearson(&amps, &want);
        assert!(c > 0.9, "740 nm fetal amplitude must track R(SaO2): {c}");
    }

    #[test]
    fn seeds_give_distinct_recordings_with_identical_ground_truth_shape() {
        let base = DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), 20.0);
        let a = generate(&base.clone().with_seed(1));
        let b = generate(&base.with_seed(2));
        assert_ne!(a.mixed[0], b.mixed[0], "seeds must decorrelate the mixtures");
        assert_eq!(a.sao2, b.sao2, "the programmed trajectory is seed-independent");
    }

    #[test]
    fn draws_are_evenly_spaced_inside_the_recording() {
        let cfg = DualWaveConfig::new(Spo2Scenario::Constant { spo2: 0.5 }, 50.0);
        let rec = generate(&cfg);
        assert_eq!(rec.draws.len(), 4);
        assert!(rec.draws.iter().all(|d| d.time_s > 0.0 && d.time_s < 50.0));
    }

    #[test]
    #[should_panic(expected = "nadir")]
    fn desaturation_rejects_inverted_levels() {
        let _ = Spo2Scenario::desaturation(0.3, 0.5).waypoints(10.0);
    }
}
