//! Per-period waveform templates.
//!
//! A template is a function of normalized phase `p ∈ [0, 1)` giving the
//! waveform of one period. All templates satisfy `eval(0) ≈ eval(1⁻)` so
//! concatenated periods are continuous.
//!
//! These parametric shapes substitute for the paper's empirical templates
//! (respiration extracted from sheep recordings, pulses from MIMIC-IV):
//! the separation algorithms only consume the harmonic structure, which the
//! parametric shapes reproduce — a fundamental plus a few decaying
//! harmonics.

/// Waveform of one quasi-periodic cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Template {
    /// Pure sinusoid (useful for controlled tests).
    Sine,
    /// Photoplethysmography beat: systolic peak plus dicrotic notch,
    /// modelled as two Gaussians. Substitutes for MIMIC-IV pulses.
    #[default]
    Ppg,
    /// Respiration effort wave: asymmetric raised cosine with a slower
    /// exhale than inhale. Substitutes for the sheep respiration shape.
    Respiration,
}

impl Template {
    /// Evaluates the template at normalized phase `p` (wrapped into
    /// `[0, 1)`), normalized to roughly unit peak-to-baseline amplitude
    /// and **zero mean over one period** — the paper's source shapes come
    /// from AC-coupled (detrended) recordings, and a DC offset would put
    /// irrecoverable energy outside every separator's reach.
    pub fn eval(&self, p: f64) -> f64 {
        let p = p.rem_euclid(1.0);
        match self {
            Template::Sine => (std::f64::consts::TAU * p).sin(),
            Template::Ppg => ppg(p) - ppg_mean(),
            Template::Respiration => respiration(p) - respiration_mean(),
        }
    }

    /// Samples one period at `n` uniformly spaced phases.
    pub fn sample_period(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.eval(i as f64 / n as f64)).collect()
    }
}

/// Two-Gaussian PPG beat using *circular* phase distance, so the waveform
/// is exactly periodic. Baseline-corrected so the period boundaries meet at
/// 0 and the systolic peak is ≈ 1.
fn ppg(p: f64) -> f64 {
    // Wrapped distance on the unit circle of phases.
    let wrap = |d: f64| {
        let d = d.rem_euclid(1.0);
        d.min(1.0 - d)
    };
    let g = |at: f64, c: f64, w: f64| {
        let d = wrap(at - c);
        (-(d * d) / (2.0 * w * w)).exp()
    };
    // Systolic upstroke at 30% of the period, dicrotic wave at 65%.
    let raw = g(p, 0.30, 0.085) + 0.42 * g(p, 0.65, 0.13);
    let b = g(0.0, 0.30, 0.085) + 0.42 * g(0.0, 0.65, 0.13);
    (raw - b) / (1.0 - b)
}

/// Asymmetric respiration wave: raised cosine with a warped phase so
/// inspiration (rise) takes ~40% of the cycle and expiration ~60%.
fn respiration(p: f64) -> f64 {
    let rise = 0.4;
    let warped = if p < rise { 0.5 * p / rise } else { 0.5 + 0.5 * (p - rise) / (1.0 - rise) };
    0.5 - 0.5 * (std::f64::consts::TAU * warped).cos()
}

/// Period mean of the raw PPG shape (computed once; subtracted so the
/// rendered sources are AC-coupled).
fn ppg_mean() -> f64 {
    static MEAN: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *MEAN.get_or_init(|| (0..4096).map(|i| ppg(i as f64 / 4096.0)).sum::<f64>() / 4096.0)
}

/// Period mean of the raw respiration shape.
fn respiration_mean() -> f64 {
    static MEAN: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *MEAN.get_or_init(|| (0..4096).map(|i| respiration(i as f64 / 4096.0)).sum::<f64>() / 4096.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_continuous() {
        for t in [Template::Sine, Template::Ppg, Template::Respiration] {
            let a = t.eval(0.0);
            let b = t.eval(0.999_999);
            assert!((a - b).abs() < 1e-3, "{t:?}: {a} vs {b}");
        }
    }

    #[test]
    fn ppg_peaks_near_systole() {
        let samples = Template::Ppg.sample_period(1000);
        let peak =
            samples.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let peak_phase = peak as f64 / 1000.0;
        assert!((peak_phase - 0.30).abs() < 0.05, "peak at {peak_phase}");
        // Dicrotic bump exists: a secondary local max after the main peak,
        // clearly above the end-of-period baseline.
        let baseline = samples[0];
        let after: Vec<f64> = samples[450..850].to_vec();
        let local_max =
            after.windows(3).any(|w| w[1] > w[0] && w[1] > w[2] && w[1] > baseline + 0.2);
        assert!(local_max, "no dicrotic wave");
    }

    #[test]
    fn ppg_is_normalized_and_zero_mean() {
        let samples = Template::Ppg.sample_period(1000);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let baseline = samples[0];
        // Peak-to-baseline stays ≈ 1 after mean removal.
        assert!((max - baseline - 1.0).abs() < 0.05, "peak-to-baseline {}", max - baseline);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 1e-3, "period mean {mean}");
    }

    #[test]
    fn respiration_rise_is_faster_than_fall() {
        let s = Template::Respiration.sample_period(1000);
        let peak = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        // Peak before midpoint → inhale shorter than exhale.
        assert!(peak < 500, "peak at {peak}");
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        assert!((s[peak] - min - 1.0).abs() < 1e-2, "peak-to-trough {}", s[peak] - min);
        let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
        assert!(mean.abs() < 1e-3, "period mean {mean}");
    }

    #[test]
    fn templates_have_harmonic_content() {
        use dhf_dsp::fft::fft_real;
        // One period sampled at 256 points: PPG must have strong 2nd/3rd
        // harmonics (that is what makes separation hard and harmonic
        // convolutions useful).
        let s = Template::Ppg.sample_period(256);
        let spec = fft_real(&s);
        let mag: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        assert!(mag[2] > 0.05 * mag[1], "2nd harmonic too weak");
        assert!(mag[3] > 0.01 * mag[1], "3rd harmonic too weak");
    }

    #[test]
    fn phase_wraps() {
        for t in [Template::Sine, Template::Ppg, Template::Respiration] {
            assert!((t.eval(1.25) - t.eval(0.25)).abs() < 1e-12);
            assert!((t.eval(-0.75) - t.eval(0.25)).abs() < 1e-12);
        }
    }
}
