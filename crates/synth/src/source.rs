//! Rendering a template + schedule into a sampled quasi-periodic signal
//! with its ground-truth fundamental-frequency track.

use crate::schedule::PeriodSchedule;
use crate::templates::Template;
use rand::Rng;

/// A rendered source: samples plus the ground-truth per-sample fundamental
/// frequency (the auxiliary information DHF assumes available).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceSignal {
    /// Time-domain samples at the rendering sample rate.
    pub samples: Vec<f64>,
    /// Instantaneous fundamental frequency (Hz) per sample.
    pub f0: Vec<f64>,
}

/// A quasi-periodic source: one waveform template driven by a
/// [`PeriodSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuasiPeriodicSource {
    template: Template,
    schedule: PeriodSchedule,
}

impl QuasiPeriodicSource {
    /// Combines a template with a schedule.
    pub fn new(template: Template, schedule: PeriodSchedule) -> Self {
        QuasiPeriodicSource { template, schedule }
    }

    /// The waveform template.
    pub fn template(&self) -> Template {
        self.template
    }

    /// The period schedule.
    pub fn schedule(&self) -> &PeriodSchedule {
        &self.schedule
    }

    /// Renders `n_samples` samples at rate `fs`; if the schedule runs out
    /// of periods the last period repeats.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or `fs <= 0`.
    pub fn render(&self, fs: f64, n_samples: usize) -> SourceSignal {
        assert!(!self.schedule.is_empty(), "schedule must have at least one period");
        assert!(fs > 0.0, "sample rate must be positive");
        let dt = 1.0 / fs;
        let mut samples = Vec::with_capacity(n_samples);
        let mut f0 = Vec::with_capacity(n_samples);
        let mut idx = 0usize;
        let mut into = 0.0f64; // time into the current period
        let last = self.schedule.len() - 1;
        for _ in 0..n_samples {
            let d = self.schedule.durations[idx];
            let a = self.schedule.amplitudes[idx];
            samples.push(a * self.template.eval(into / d));
            f0.push(1.0 / d);
            into += dt;
            while into >= self.schedule.durations[idx] {
                into -= self.schedule.durations[idx];
                if idx < last {
                    idx += 1;
                }
            }
        }
        SourceSignal { samples, f0 }
    }
}

/// Adds i.i.d. Gaussian noise of the given standard deviation.
pub fn add_noise<R: Rng>(samples: &mut [f64], std: f64, rng: &mut R) {
    if std <= 0.0 {
        return;
    }
    for s in samples {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        *s += std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn render_produces_requested_length() {
        let sched = PeriodSchedule::new(vec![0.5; 10], vec![1.0; 10]);
        let src = QuasiPeriodicSource::new(Template::Sine, sched);
        let sig = src.render(100.0, 300);
        assert_eq!(sig.samples.len(), 300);
        assert_eq!(sig.f0.len(), 300);
    }

    #[test]
    fn constant_schedule_gives_periodic_output() {
        // 2 Hz sine via 0.5-second periods: samples repeat every 50.
        let sched = PeriodSchedule::new(vec![0.5; 20], vec![1.0; 20]);
        let src = QuasiPeriodicSource::new(Template::Sine, sched);
        let sig = src.render(100.0, 500);
        for i in 0..400 {
            assert!((sig.samples[i] - sig.samples[i + 50]).abs() < 1e-9, "sample {i}");
        }
        assert!(sig.f0.iter().all(|&f| (f - 2.0).abs() < 1e-12));
    }

    #[test]
    fn f0_track_follows_schedule_changes() {
        let sched = PeriodSchedule::new(vec![1.0, 0.5, 0.25], vec![1.0, 1.0, 1.0]);
        let src = QuasiPeriodicSource::new(Template::Sine, sched);
        let sig = src.render(100.0, 176); // 1.0 + 0.5 + 0.25 s ≈ 175 samples
        assert!((sig.f0[0] - 1.0).abs() < 1e-12);
        assert!((sig.f0[110] - 2.0).abs() < 1e-12);
        assert!((sig.f0[160] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn amplitudes_scale_each_period() {
        let sched = PeriodSchedule::new(vec![0.5, 0.5], vec![1.0, 3.0]);
        let src = QuasiPeriodicSource::new(Template::Sine, sched);
        let sig = src.render(100.0, 100);
        let peak1 = sig.samples[..50].iter().cloned().fold(f64::MIN, f64::max);
        let peak2 = sig.samples[50..].iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak1 - 1.0).abs() < 0.01);
        assert!((peak2 - 3.0).abs() < 0.01);
    }

    #[test]
    fn schedule_exhaustion_repeats_last_period() {
        let sched = PeriodSchedule::new(vec![0.5], vec![1.0]);
        let src = QuasiPeriodicSource::new(Template::Sine, sched);
        let sig = src.render(100.0, 200);
        assert!((sig.samples[30] - sig.samples[130]).abs() < 1e-9);
    }

    #[test]
    fn noise_has_requested_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = vec![0.0; 50_000];
        add_noise(&mut x, 0.2, &mut rng);
        let var = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        assert!((var.sqrt() - 0.2).abs() < 0.01);
        let mut y = vec![1.0; 10];
        add_noise(&mut y, 0.0, &mut rng);
        assert_eq!(y, vec![1.0; 10]);
    }

    #[test]
    fn rendered_spectrum_sits_in_schedule_band() {
        use dhf_dsp::fft::fft_real;
        let mut rng = StdRng::seed_from_u64(9);
        let sched = PeriodSchedule::random(40.0, 1.2, 1.6, 1.0, 0.05, &mut rng);
        let src = QuasiPeriodicSource::new(Template::Ppg, sched);
        let sig = src.render(100.0, 4000);
        let spec = fft_real(&sig.samples);
        let mag: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        // Fundamental band bins at 40 s window: f [1.2,1.6] → bins 48..64.
        let band: f64 = mag[44..70].iter().sum();
        let below: f64 = mag[4..40].iter().sum();
        assert!(band > below, "fundamental band not dominant");
    }
}
