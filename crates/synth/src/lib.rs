//! Quasi-periodic signal synthesis for the DHF reproduction.
//!
//! The paper (§4.1) describes a generation tool "characterized by the
//! desired input function per period, time duration per period list, and
//! amplitude per period list". This crate implements that tool and the two
//! datasets built with it:
//!
//! * [`table1`] — the five synthesized mixed signals of Table 1 (2–3
//!   quasi-periodic sources plus Gaussian noise, sampling rate 100 Hz).
//! * [`invivo`] — a simulated transabdominal fetal pulse-oximetry (TFO)
//!   recording standing in for the pregnant-ewe dataset of §4.3: two
//!   "sheep", dual wavelength (740/850 nm), a programmed fetal SaO2
//!   trajectory coupled to the fetal PPG amplitudes through the paper's
//!   modulation-ratio model (Eqs. 10–11), and timed blood draws.
//! * [`dualwave`] — scenario-driven dual-wavelength recordings (constant /
//!   ramp / desaturation SpO2 trajectories) for scoring the oximetry
//!   pipeline against programmable ground truth.
//! * [`artifact`] — seeded motion-artifact contamination (impulsive
//!   spikes, baseline-wander bursts, gait-periodic impact trains over an
//!   activity schedule) composable with any recording above.
//!
//! Waveform templates substitute for data we cannot access (sheep
//! respiration shapes, MIMIC-IV pulses) — see `DESIGN.md` for why the
//! substitution preserves the evaluated behaviour.
//!
//! # Example
//!
//! ```
//! use dhf_synth::table1;
//!
//! let mix = table1::mixed_signal(4, 7);
//! assert_eq!(mix.sources.len(), 3);          // respiration, maternal, fetal
//! assert_eq!(mix.fs, 100.0);
//! assert_eq!(mix.samples.len(), mix.sources[0].samples.len());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod dualwave;
pub mod duet;
pub mod invivo;
pub mod schedule;
pub mod source;
pub mod table1;
pub mod templates;

pub use schedule::PeriodSchedule;
pub use source::{QuasiPeriodicSource, SourceSignal};
pub use templates::Template;
