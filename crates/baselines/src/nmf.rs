//! Non-negative Matrix Factorization (Lee & Seung \[9\]) of the magnitude
//! spectrogram, `V ≈ W·H`, with Euclidean multiplicative updates.
//!
//! Basis columns are allocated per source harmonic and initialized as
//! Gaussian comb teeth at the source's harmonic frequencies (the shared
//! frequency prior); sources are reconstructed by Wiener-style soft
//! masking of the complex STFT with their bases' contribution.

use crate::{BaselineError, SeparationContext, Separator};
use dhf_dsp::stft::{istft, stft, StftConfig};

/// NMF separator.
#[derive(Debug, Clone, PartialEq)]
pub struct Nmf {
    /// STFT window length in seconds.
    pub window_s: f64,
    /// STFT hop in seconds.
    pub hop_s: f64,
    /// Basis vectors per source (one per modelled harmonic).
    pub components_per_source: usize,
    /// Multiplicative-update iterations.
    pub iterations: usize,
    /// Width (bins) of the Gaussian comb teeth used for initialization.
    pub init_width_bins: f64,
}

impl Default for Nmf {
    fn default() -> Self {
        Nmf {
            window_s: 5.12,
            hop_s: 1.28,
            components_per_source: 3,
            iterations: 120,
            init_width_bins: 2.0,
        }
    }
}

impl Separator for Nmf {
    fn name(&self) -> &'static str {
        "NMF"
    }

    fn separate(
        &self,
        mixed: &[f64],
        ctx: &SeparationContext<'_>,
    ) -> Result<Vec<Vec<f64>>, BaselineError> {
        ctx.validate(mixed.len())?;
        let win = (self.window_s * ctx.fs).round() as usize;
        let hop = (self.hop_s * ctx.fs).round() as usize;
        if mixed.len() < win {
            return Err(BaselineError::InputTooShort { needed: win, got: mixed.len() });
        }
        let cfg = StftConfig::new(win, hop, ctx.fs)?;
        let spec = stft(mixed, &cfg)?;
        let bins = spec.bins();
        let frames = spec.frames();
        let v = spec.magnitude(); // bin-major [bins × frames]

        let ns = ctx.num_sources();
        let k = ns * self.components_per_source;
        // W: bins × k (bin-major), H: k × frames.
        let mut w = vec![1e-3f64; bins * k];
        let mut h = vec![1.0f64; k * frames];
        // Harmonic comb initialization.
        for si in 0..ns {
            let f0 = ctx.mean_f0(si);
            for c in 0..self.components_per_source {
                let col = si * self.components_per_source + c;
                let centre = (c + 1) as f64 * f0 / cfg.hz_per_bin();
                for b in 0..bins {
                    let d = b as f64 - centre;
                    w[b * k + col] +=
                        (-d * d / (2.0 * self.init_width_bins * self.init_width_bins)).exp();
                }
            }
        }
        // Deterministic tiny perturbation of H to break symmetry.
        for (i, hv) in h.iter_mut().enumerate() {
            *hv += 1e-3 * ((i * 2_654_435_761) % 97) as f64 / 97.0;
        }

        let eps = 1e-9;
        let mut wh = vec![0.0f64; bins * frames];
        for _ in 0..self.iterations {
            // wh = W·H
            matmul(&w, &h, &mut wh, bins, k, frames);
            // H ← H ∘ (WᵀV)/(WᵀWH)
            let mut wt_v = vec![0.0f64; k * frames];
            let mut wt_wh = vec![0.0f64; k * frames];
            matmul_t_left(&w, &v, &mut wt_v, bins, k, frames);
            matmul_t_left(&w, &wh, &mut wt_wh, bins, k, frames);
            for i in 0..h.len() {
                h[i] *= wt_v[i] / (wt_wh[i] + eps);
            }
            // W ← W ∘ (VHᵀ)/(WHHᵀ)
            matmul(&w, &h, &mut wh, bins, k, frames);
            let mut v_ht = vec![0.0f64; bins * k];
            let mut wh_ht = vec![0.0f64; bins * k];
            matmul_t_right(&v, &h, &mut v_ht, bins, k, frames);
            matmul_t_right(&wh, &h, &mut wh_ht, bins, k, frames);
            for i in 0..w.len() {
                w[i] *= v_ht[i] / (wh_ht[i] + eps);
            }
        }
        matmul(&w, &h, &mut wh, bins, k, frames);

        // Wiener reconstruction per source.
        let mut out = Vec::with_capacity(ns);
        for si in 0..ns {
            let cols = si * self.components_per_source..(si + 1) * self.components_per_source;
            let mut mask = vec![0.0f64; bins * frames];
            for b in 0..bins {
                for m in 0..frames {
                    let mut contrib = 0.0;
                    for col in cols.clone() {
                        contrib += w[b * k + col] * h[col * frames + m];
                    }
                    mask[b * frames + m] = contrib / (wh[b * frames + m] + eps);
                }
            }
            let mut masked = spec.clone();
            masked.apply_mask_in_place(&mask);
            out.push(istft(&masked));
        }
        Ok(out)
    }
}

/// `out[bins×frames] = W[bins×k] · H[k×frames]` (all row-major).
fn matmul(w: &[f64], h: &[f64], out: &mut [f64], bins: usize, k: usize, frames: usize) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for b in 0..bins {
        for c in 0..k {
            let wv = w[b * k + c];
            if wv == 0.0 {
                continue;
            }
            let hrow = &h[c * frames..(c + 1) * frames];
            let orow = &mut out[b * frames..(b + 1) * frames];
            for (o, &hv) in orow.iter_mut().zip(hrow) {
                *o += wv * hv;
            }
        }
    }
}

/// `out[k×frames] = Wᵀ[k×bins] · V[bins×frames]`.
fn matmul_t_left(w: &[f64], v: &[f64], out: &mut [f64], bins: usize, k: usize, frames: usize) {
    out.iter_mut().for_each(|x| *x = 0.0);
    for b in 0..bins {
        for c in 0..k {
            let wv = w[b * k + c];
            if wv == 0.0 {
                continue;
            }
            let vrow = &v[b * frames..(b + 1) * frames];
            let orow = &mut out[c * frames..(c + 1) * frames];
            for (o, &vv) in orow.iter_mut().zip(vrow) {
                *o += wv * vv;
            }
        }
    }
}

/// `out[bins×k] = V[bins×frames] · Hᵀ[frames×k]`.
fn matmul_t_right(v: &[f64], h: &[f64], out: &mut [f64], bins: usize, k: usize, frames: usize) {
    out.iter_mut().for_each(|x| *x = 0.0);
    for b in 0..bins {
        for c in 0..k {
            let vrow = &v[b * frames..(b + 1) * frames];
            let hrow = &h[c * frames..(c + 1) * frames];
            let mut acc = 0.0;
            for (&vv, &hv) in vrow.iter().zip(hrow) {
                acc += vv * hv;
            }
            out[b * k + c] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_metrics::sdr_db;

    #[test]
    fn matmul_small_known_values() {
        // W = [[1,2],[3,4],[5,6]] (3×2), H = [[1,0,2],[0,1,1]] (2×3)
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let h = vec![1.0, 0.0, 2.0, 0.0, 1.0, 1.0];
        let mut out = vec![0.0; 9];
        matmul(&w, &h, &mut out, 3, 2, 3);
        assert_eq!(out, vec![1.0, 2.0, 4.0, 3.0, 4.0, 10.0, 5.0, 6.0, 16.0]);
    }

    #[test]
    fn transposed_products_are_consistent() {
        let bins = 4;
        let k = 2;
        let frames = 3;
        let w: Vec<f64> = (0..bins * k).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let v: Vec<f64> = (0..bins * frames).map(|i| (i as f64 * 0.73).cos().abs()).collect();
        let mut wt_v = vec![0.0; k * frames];
        matmul_t_left(&w, &v, &mut wt_v, bins, k, frames);
        // Check one element by hand: (WᵀV)[c=1, m=2] = Σ_b W[b,1]·V[b,2]
        let manual: f64 = (0..bins).map(|b| w[b * k + 1] * v[b * frames + 2]).sum();
        assert!((wt_v[frames + 2] - manual).abs() < 1e-12);
    }

    #[test]
    fn separates_disjoint_tones() {
        let fs = 100.0;
        let n = 4000;
        let s1: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 1.0 * i as f64 / fs).sin()).collect();
        let s2: Vec<f64> =
            (0..n).map(|i| 0.6 * (std::f64::consts::TAU * 3.3 * i as f64 / fs).sin()).collect();
        let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
        let tracks = vec![vec![1.0; n], vec![3.3; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = Nmf { components_per_source: 1, iterations: 80, ..Nmf::default() }
            .separate(&mix, &ctx)
            .unwrap();
        assert!(sdr_db(&s1[600..3400], &est[0][600..3400]) > 6.0);
        assert!(sdr_db(&s2[600..3400], &est[1][600..3400]) > 6.0);
    }

    #[test]
    fn estimates_have_input_length() {
        let fs = 100.0;
        let n = 1200;
        let mix: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 2.0 * i as f64 / fs).sin()).collect();
        let tracks = vec![vec![2.0; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = Nmf::default().separate(&mix, &ctx).unwrap();
        assert_eq!(est[0].len(), n);
    }

    #[test]
    fn rejects_short_input() {
        let tracks = vec![vec![1.0; 10]];
        let ctx = SeparationContext { fs: 100.0, f0_tracks: &tracks };
        assert!(matches!(
            Nmf::default().separate(&[0.0; 10], &ctx),
            Err(BaselineError::InputTooShort { .. })
        ));
    }
}
