//! Harmonic–percussive source separation (HPSS).
//!
//! HPSS splits a spectrogram into a *harmonic* part (sustained tones:
//! horizontal ridges along time) and a *percussive* part (transients:
//! vertical broadband columns). It is the classic pre-filter for
//! impulsive interference — motion spikes and foot-strike impacts are
//! percussive, while the PPG harmonics a tracker follows are harmonic —
//! and this module provides the two reference formulations the streaming
//! front filter in `dhf_stream` is validated against:
//!
//! * [`MedianHpss`] — one-shot median masking (Fitzgerald): median-filter
//!   the magnitude spectrogram along time (harmonic enhancement) and
//!   along frequency (percussive enhancement), then build soft Wiener
//!   masks `(S·margin)^p / Σ` from the two enhanced images.
//! * [`IterativeHpss`] — the iterative H/P diffusion of Ono et al.: a
//!   range-compressed power spectrogram `W = |F|^(2γ)` is split by
//!   gradient-descent updates that trade horizontal smoothness of `H`
//!   against vertical smoothness of `P`, then binarized.
//!
//! Neither implements [`Separator`](crate::Separator): HPSS is a
//! two-component transient/steady split, not a per-track source
//! separator — it runs *before* a track-driven method, not instead of
//! one.

use crate::BaselineError;
use dhf_dsp::median::median_filter_2d_into;
use dhf_dsp::stft::{istft, stft, StftConfig};

/// The two components of an HPSS split, each the length of the input.
#[derive(Debug, Clone, PartialEq)]
pub struct HpssParts {
    /// Sustained (tonal) component.
    pub harmonic: Vec<f64>,
    /// Transient (impulsive) component.
    pub percussive: Vec<f64>,
}

/// Parameters of the median-masking formulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MedianHpss {
    /// STFT window length in seconds.
    pub window_s: f64,
    /// STFT hop in seconds.
    pub hop_s: f64,
    /// Median kernel length along time (frames), forced odd.
    pub kernel_time: usize,
    /// Median kernel length along frequency (bins), forced odd.
    pub kernel_freq: usize,
    /// Wiener mask exponent.
    pub power: f64,
    /// Harmonic margin factor (scales the harmonic-enhanced image before
    /// the mask ratio; > 1 makes the harmonic mask more permissive).
    pub margin_h: f64,
    /// Percussive margin factor.
    pub margin_p: f64,
}

impl Default for MedianHpss {
    fn default() -> Self {
        MedianHpss {
            window_s: 2.56,
            hop_s: 0.64,
            kernel_time: 31,
            kernel_freq: 31,
            power: 2.0,
            margin_h: 1.0,
            margin_p: 1.0,
        }
    }
}

impl MedianHpss {
    /// Builds the soft harmonic/percussive masks for a bin-major
    /// `[freq, time]` magnitude image (`mag[b * frames + m]`).
    ///
    /// Masks are complementary by construction:
    /// `mask_h + mask_p = 1 − ε/(Σ + ε) ≤ 1`, with equality up to the
    /// `1e-10` stabilizer wherever either enhanced image is non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `mag.len() != bins * frames`.
    pub fn masks(&self, mag: &[f64], bins: usize, frames: usize) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(mag.len(), bins * frames, "magnitude shape mismatch");
        let mut scratch = Vec::new();
        let mut s_h = Vec::new();
        let mut s_p = Vec::new();
        // Harmonic enhancement: median along time (within each bin row).
        median_filter_2d_into(mag, bins, frames, 1, self.kernel_time, &mut s_h, &mut scratch);
        // Percussive enhancement: median along frequency (across rows).
        median_filter_2d_into(mag, bins, frames, self.kernel_freq, 1, &mut s_p, &mut scratch);
        let mut mask_h = s_h;
        let mut mask_p = s_p;
        for (h, p) in mask_h.iter_mut().zip(mask_p.iter_mut()) {
            let eh = (*h * self.margin_h).powf(self.power);
            let ep = (*p * self.margin_p).powf(self.power);
            let total = eh + ep + 1e-10;
            *h = eh / total;
            *p = ep / total;
        }
        (mask_h, mask_p)
    }

    /// Splits a signal into harmonic and percussive components.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputTooShort`] when the signal does not
    /// cover one analysis window plus one hop.
    pub fn split(&self, x: &[f64], fs: f64) -> Result<HpssParts, BaselineError> {
        let win = (self.window_s * fs).round() as usize;
        let hop = (self.hop_s * fs).round() as usize;
        if x.len() < win + hop {
            return Err(BaselineError::InputTooShort { needed: win + hop, got: x.len() });
        }
        let cfg = StftConfig::new(win, hop, fs)?;
        let spec = stft(x, &cfg)?;
        let (mask_h, mask_p) = self.masks(&spec.magnitude(), spec.bins(), spec.frames());
        let mut spec_h = spec.clone();
        spec_h.apply_mask_in_place(&mask_h);
        let mut spec_p = spec;
        spec_p.apply_mask_in_place(&mask_p);
        Ok(HpssParts { harmonic: istft(&spec_h), percussive: istft(&spec_p) })
    }
}

/// Parameters of the iterative H/P diffusion formulation.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeHpss {
    /// STFT window length in seconds.
    pub window_s: f64,
    /// STFT hop in seconds.
    pub hop_s: f64,
    /// Range-compression exponent γ of `W = |F|^(2γ)`.
    pub gamma: f64,
    /// Balance α between horizontal (harmonic) and vertical (percussive)
    /// smoothness in `[0, 1]`.
    pub alpha: f64,
    /// Number of diffusion iterations.
    pub iterations: usize,
}

impl Default for IterativeHpss {
    fn default() -> Self {
        IterativeHpss { window_s: 2.56, hop_s: 0.64, gamma: 0.3, alpha: 0.5, iterations: 20 }
    }
}

impl IterativeHpss {
    /// Splits a signal into harmonic and percussive components.
    ///
    /// Interior cells are assigned in full (binary masking after the
    /// diffusion converges); boundary rows/columns — which the update
    /// stencil never visits — are dropped from both components, matching
    /// the reference formulation.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputTooShort`] when the signal does not
    /// cover one analysis window plus one hop.
    pub fn split(&self, x: &[f64], fs: f64) -> Result<HpssParts, BaselineError> {
        let win = (self.window_s * fs).round() as usize;
        let hop = (self.hop_s * fs).round() as usize;
        if x.len() < win + hop {
            return Err(BaselineError::InputTooShort { needed: win + hop, got: x.len() });
        }
        let cfg = StftConfig::new(win, hop, fs)?;
        let spec = stft(x, &cfg)?;
        let (bins, frames) = (spec.bins(), spec.frames());
        let at = |b: usize, m: usize| b * frames + m;

        // Range-compressed power spectrogram, split half-and-half.
        let w: Vec<f64> = spec.magnitude().iter().map(|&v| v.powf(2.0 * self.gamma)).collect();
        let mut h: Vec<f64> = w.iter().map(|&v| 0.5 * v).collect();
        let mut p = h.clone();
        let mut h_next = h.clone();
        let mut p_next = p.clone();
        if bins >= 3 && frames >= 3 {
            for _ in 0..self.iterations {
                for b in 1..bins - 1 {
                    for m in 1..frames - 1 {
                        let dh = (h[at(b, m - 1)] - 2.0 * h[at(b, m)] + h[at(b, m + 1)]) / 4.0;
                        let dp = (p[at(b - 1, m)] - 2.0 * p[at(b, m)] + p[at(b + 1, m)]) / 4.0;
                        let delta = self.alpha * dh - (1.0 - self.alpha) * dp;
                        let hn = (h[at(b, m)] + delta).clamp(0.0, w[at(b, m)]);
                        h_next[at(b, m)] = hn;
                        p_next[at(b, m)] = w[at(b, m)] - hn;
                    }
                }
                std::mem::swap(&mut h, &mut h_next);
                std::mem::swap(&mut p, &mut p_next);
            }
        }

        // Binarize: each interior cell goes in full to the winner.
        let mut mask_h = vec![0.0f64; bins * frames];
        let mut mask_p = vec![0.0f64; bins * frames];
        if bins >= 3 && frames >= 3 {
            for b in 1..bins - 1 {
                for m in 1..frames - 1 {
                    if h[at(b, m)] >= p[at(b, m)] {
                        mask_h[at(b, m)] = 1.0;
                    } else {
                        mask_p[at(b, m)] = 1.0;
                    }
                }
            }
        }
        let mut spec_h = spec.clone();
        spec_h.apply_mask_in_place(&mask_h);
        let mut spec_p = spec;
        spec_p.apply_mask_in_place(&mask_p);
        Ok(HpssParts { harmonic: istft(&spec_h), percussive: istft(&spec_p) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_dsp::stats::rms;

    const FS: f64 = 100.0;
    const N: usize = 4000;

    /// A sustained two-harmonic tone plus a sparse click train.
    fn hp_mix() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let tone: Vec<f64> = (0..N)
            .map(|i| {
                let t = i as f64 / FS;
                (std::f64::consts::TAU * 2.0 * t).sin()
                    + 0.4 * (std::f64::consts::TAU * 4.0 * t).sin()
            })
            .collect();
        let mut clicks = vec![0.0f64; N];
        for onset in (130..N).step_by(150) {
            for k in 0..12.min(N - onset) {
                clicks[onset + k] += 2.5 * (-(k as f64) / 3.0).exp();
            }
        }
        let mix = tone.iter().zip(&clicks).map(|(a, b)| a + b).collect();
        (mix, tone, clicks)
    }

    /// Energy split of `est` against the two references over the interior
    /// (edges carry STFT reconstruction taper).
    fn interior_err(est: &[f64], truth: &[f64]) -> f64 {
        let lo = 400;
        let hi = est.len() - 400;
        let err: f64 = est[lo..hi].iter().zip(&truth[lo..hi]).map(|(a, b)| (a - b) * (a - b)).sum();
        let e: f64 = truth[lo..hi].iter().map(|v| v * v).sum();
        (err / e).sqrt()
    }

    #[test]
    fn median_split_separates_tone_from_clicks() {
        let (mix, tone, clicks) = hp_mix();
        let parts = MedianHpss::default().split(&mix, FS).unwrap();
        assert_eq!(parts.harmonic.len(), mix.len());
        let h_err = interior_err(&parts.harmonic, &tone);
        assert!(h_err < 0.35, "harmonic relative error {h_err:.3}");
        // The long analysis window smears each 120 ms click, so exact
        // waveform recovery is a weak yardstick for the percussive part;
        // what matters is that the tone does NOT leak into it: the
        // percussive estimate must look like the click train (sparse,
        // click-locked energy), not like the sinusoid.
        let p_err = interior_err(&parts.percussive, &clicks);
        assert!(p_err < 0.8, "percussive relative error {p_err:.3}");
        let near_clicks: f64 = (130..N - 400)
            .step_by(150)
            .map(|onset| {
                parts.percussive[onset.saturating_sub(20)..(onset + 40).min(N)]
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
            })
            .sum();
        let total: f64 = parts.percussive[400..N - 400].iter().map(|v| v * v).sum();
        assert!(
            near_clicks > 0.5 * total,
            "percussive energy must concentrate at the clicks: {near_clicks:.3} of {total:.3}"
        );
    }

    #[test]
    fn median_masks_are_complementary() {
        let (mix, _, _) = hp_mix();
        let hpss = MedianHpss::default();
        let win = (hpss.window_s * FS).round() as usize;
        let hop = (hpss.hop_s * FS).round() as usize;
        let spec = stft(&mix, &StftConfig::new(win, hop, FS).unwrap()).unwrap();
        let mag = spec.magnitude();
        let (mh, mp) = hpss.masks(&mag, spec.bins(), spec.frames());
        for i in 0..mag.len() {
            let s = mh[i] + mp[i];
            assert!(s <= 1.0 + 1e-12, "mask sum {s} exceeds 1 at {i}");
            if mag[i] > 1e-6 {
                assert!(s > 1.0 - 1e-6, "mask sum {s} leaks energy at {i}");
            }
        }
    }

    #[test]
    fn median_split_conserves_interior_energy() {
        let (mix, _, _) = hp_mix();
        let parts = MedianHpss::default().split(&mix, FS).unwrap();
        let recon: Vec<f64> =
            parts.harmonic.iter().zip(&parts.percussive).map(|(a, b)| a + b).collect();
        let err = interior_err(&recon, &mix);
        assert!(err < 0.02, "harmonic + percussive must reconstruct the mix, err {err:.4}");
    }

    #[test]
    fn iterative_split_separates_tone_from_clicks() {
        let (mix, tone, _clicks) = hp_mix();
        let parts = IterativeHpss::default().split(&mix, FS).unwrap();
        let h_err = interior_err(&parts.harmonic, &tone);
        // Binary masking keeps the tone's ridge; clicks' broadband energy
        // lands percussive. Bounds are looser than the soft-mask variant.
        assert!(h_err < 0.5, "harmonic relative error {h_err:.3}");
        let p_rms = rms(&parts.percussive);
        assert!(p_rms > 0.05, "percussive component is empty, rms {p_rms}");
    }

    #[test]
    fn splits_are_deterministic() {
        let (mix, _, _) = hp_mix();
        assert_eq!(
            MedianHpss::default().split(&mix, FS).unwrap(),
            MedianHpss::default().split(&mix, FS).unwrap()
        );
        assert_eq!(
            IterativeHpss::default().split(&mix, FS).unwrap(),
            IterativeHpss::default().split(&mix, FS).unwrap()
        );
    }

    #[test]
    fn rejects_input_shorter_than_a_window() {
        let short = vec![0.0; 100];
        assert!(matches!(
            MedianHpss::default().split(&short, FS),
            Err(BaselineError::InputTooShort { .. })
        ));
        assert!(matches!(
            IterativeHpss::default().split(&short, FS),
            Err(BaselineError::InputTooShort { .. })
        ));
    }
}
