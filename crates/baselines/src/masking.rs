//! Spectral masking (Gerkmann & Vincent \[3\]) with harmonic-comb masks —
//! the state-of-the-art comparator in the paper's Table 2 and §4.3.
//!
//! Each time-frequency bin is claimed by the source whose predicted
//! harmonic ridge (`k·f0_i(t)`) lies closest, provided it falls within a
//! tolerance bandwidth; the complex STFT is partitioned by the resulting
//! binary masks and each source resynthesized. Where sources' ridges
//! collide the bin goes to the *stronger* (earlier-listed) source — the
//! crossover loss that DHF's in-painting repairs and masking cannot.

use crate::{BaselineError, SeparationContext, Separator};
use dhf_dsp::stft::{istft, stft, StftConfig};

/// Harmonic-comb binary spectral masking.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralMasking {
    /// STFT window length in seconds.
    pub window_s: f64,
    /// STFT hop in seconds.
    pub hop_s: f64,
    /// Number of harmonics per source claimed by its comb.
    pub harmonics: usize,
    /// Half-width of each comb tooth in Hz.
    pub bandwidth_hz: f64,
}

impl Default for SpectralMasking {
    fn default() -> Self {
        SpectralMasking { window_s: 5.12, hop_s: 1.28, harmonics: 5, bandwidth_hz: 0.35 }
    }
}

impl SpectralMasking {
    /// Per-frame instantaneous f0 of `track` under the given STFT layout:
    /// the mean of the track across each analysis window.
    fn frame_f0(track: &[f64], win: usize, hop: usize, frames: usize) -> Vec<f64> {
        (0..frames)
            .map(|m| {
                let start = m * hop;
                let end = (start + win).min(track.len());
                track[start..end].iter().sum::<f64>() / (end - start).max(1) as f64
            })
            .collect()
    }
}

impl Separator for SpectralMasking {
    fn name(&self) -> &'static str {
        "Spect. Masking"
    }

    fn separate(
        &self,
        mixed: &[f64],
        ctx: &SeparationContext<'_>,
    ) -> Result<Vec<Vec<f64>>, BaselineError> {
        ctx.validate(mixed.len())?;
        let win = (self.window_s * ctx.fs).round() as usize;
        let hop = (self.hop_s * ctx.fs).round() as usize;
        if mixed.len() < win {
            return Err(BaselineError::InputTooShort { needed: win, got: mixed.len() });
        }
        let cfg = StftConfig::new(win, hop, ctx.fs)?;
        let spec = stft(mixed, &cfg)?;
        let bins = spec.bins();
        let frames = spec.frames();
        let ns = ctx.num_sources();

        // Per-source per-frame fundamental frequency.
        let f0s: Vec<Vec<f64>> =
            ctx.f0_tracks.iter().map(|t| Self::frame_f0(t, win, hop, frames)).collect();

        // Claim bins: for each TF cell find the nearest ridge within the
        // bandwidth; ties/multiple claims go to the earliest source in
        // list order (the strongest, per our ordering convention).
        let mut owner = vec![usize::MAX; bins * frames];
        let mut dist = vec![f64::INFINITY; bins * frames];
        for (si, f0f) in f0s.iter().enumerate() {
            for (m, &f0) in f0f.iter().enumerate().take(frames) {
                if f0 <= 0.0 {
                    continue;
                }
                for h in 1..=self.harmonics {
                    let centre = h as f64 * f0;
                    if centre > ctx.fs / 2.0 {
                        break;
                    }
                    let lo = cfg.frequency_to_bin((centre - self.bandwidth_hz).max(0.0));
                    let hi = cfg.frequency_to_bin(centre + self.bandwidth_hz);
                    for b in lo..=hi {
                        let d = (cfg.bin_frequency(b) - centre).abs();
                        if d > self.bandwidth_hz {
                            continue;
                        }
                        let idx = b * frames + m;
                        if d < dist[idx] {
                            dist[idx] = d;
                            owner[idx] = si;
                        }
                    }
                }
            }
        }

        // Resynthesize each source from its claimed bins.
        let mut out = Vec::with_capacity(ns);
        for si in 0..ns {
            let mask: Vec<f64> = owner.iter().map(|&o| if o == si { 1.0 } else { 0.0 }).collect();
            let mut masked = spec.clone();
            masked.apply_mask_in_place(&mask);
            out.push(istft(&masked));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_metrics::sdr_db;

    fn two_tone_mix(fs: f64, n: usize, f1: f64, f2: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let s1: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * f1 * i as f64 / fs).sin()).collect();
        let s2: Vec<f64> =
            (0..n).map(|i| 0.5 * (std::f64::consts::TAU * f2 * i as f64 / fs).sin()).collect();
        let mix = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
        (mix, s1, s2)
    }

    #[test]
    fn separates_disjoint_tones_cleanly() {
        let fs = 100.0;
        let n = 4000;
        let (mix, s1, s2) = two_tone_mix(fs, n, 1.2, 3.1);
        let tracks = vec![vec![1.2; n], vec![3.1; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = SpectralMasking { harmonics: 1, ..SpectralMasking::default() }
            .separate(&mix, &ctx)
            .unwrap();
        // Interior SDR is strong for spectrally disjoint tones.
        let sdr1 = sdr_db(&s1[600..3400], &est[0][600..3400]);
        let sdr2 = sdr_db(&s2[600..3400], &est[1][600..3400]);
        assert!(sdr1 > 10.0, "sdr1 {sdr1}");
        assert!(sdr2 > 10.0, "sdr2 {sdr2}");
    }

    #[test]
    fn crossover_bins_go_to_stronger_source() {
        // Both sources share the 2.4 Hz region (1.2×2 = 2.4): the earlier
        // (stronger) source keeps it, so source 2's estimate loses energy.
        let fs = 100.0;
        let n = 4000;
        let (mix, _s1, s2) = two_tone_mix(fs, n, 1.2, 2.4);
        let tracks = vec![vec![1.2; n], vec![2.4; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = SpectralMasking::default().separate(&mix, &ctx).unwrap();
        let sdr2 = sdr_db(&s2[600..3400], &est[1][600..3400]);
        assert!(sdr2 < 6.0, "overlap should hurt masking, got {sdr2}");
    }

    #[test]
    fn estimates_match_input_length() {
        let fs = 100.0;
        let n = 1500;
        let (mix, _, _) = two_tone_mix(fs, n, 1.0, 3.0);
        let tracks = vec![vec![1.0; n], vec![3.0; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = SpectralMasking::default().separate(&mix, &ctx).unwrap();
        assert_eq!(est.len(), 2);
        assert!(est.iter().all(|e| e.len() == n));
    }

    #[test]
    fn rejects_short_input() {
        let fs = 100.0;
        let tracks = vec![vec![1.0; 10]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let err = SpectralMasking::default().separate(&[0.0; 10], &ctx).unwrap_err();
        assert!(matches!(err, BaselineError::InputTooShort { .. }));
    }
}
