//! Component-to-source assignment shared by EMD, VMD and NMF.
//!
//! Decomposition methods produce anonymous components (IMFs, variational
//! modes, NMF bases); comparison against ground-truth sources requires
//! grouping them. Components are assigned to the source whose harmonic
//! comb captures the most of the component's spectral energy — the same
//! frequency prior every method in the study receives.

use dhf_dsp::fft::{fft_real, rfft_frequencies};

/// Fraction of `component`'s spectral energy lying within `bw_hz` of any
/// of the first `harmonics` multiples of `f0`.
pub fn harmonic_affinity(component: &[f64], fs: f64, f0: f64, harmonics: usize, bw_hz: f64) -> f64 {
    if component.is_empty() || f0 <= 0.0 {
        return 0.0;
    }
    let spec = fft_real(component);
    let freqs = rfft_frequencies(component.len(), fs);
    let mut total = 0.0;
    let mut inband = 0.0;
    for (k, c) in spec.iter().enumerate() {
        let p = c.norm_sqr();
        total += p;
        let f = freqs[k.min(freqs.len() - 1)];
        let near = (1..=harmonics).any(|h| (f - h as f64 * f0).abs() <= bw_hz);
        if near {
            inband += p;
        }
    }
    if total <= 0.0 {
        0.0
    } else {
        inband / total
    }
}

/// Dominant frequency (Hz) of a component by spectral peak.
pub fn dominant_frequency(component: &[f64], fs: f64) -> f64 {
    if component.len() < 4 {
        return 0.0;
    }
    let spec = fft_real(component);
    let freqs = rfft_frequencies(component.len(), fs);
    let mut best = 0usize;
    let mut best_p = 0.0;
    // Skip DC.
    for (k, c) in spec.iter().enumerate().skip(1) {
        let p = c.norm_sqr();
        if p > best_p {
            best_p = p;
            best = k;
        }
    }
    freqs[best.min(freqs.len() - 1)]
}

/// Groups components into per-source sums.
///
/// Each component joins the source with the highest [`harmonic_affinity`];
/// components whose best affinity falls below `floor` (noise, trends) are
/// discarded. Returns one signal per source, all of `signal_len` samples.
pub fn assign_components(
    components: &[Vec<f64>],
    fs: f64,
    source_f0s: &[f64],
    harmonics: usize,
    bw_hz: f64,
    floor: f64,
    signal_len: usize,
) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0f64; signal_len]; source_f0s.len()];
    for comp in components {
        let mut best_src = None;
        let mut best_aff = floor;
        for (si, &f0) in source_f0s.iter().enumerate() {
            let aff = harmonic_affinity(comp, fs, f0, harmonics, bw_hz);
            if aff > best_aff {
                best_aff = aff;
                best_src = Some(si);
            }
        }
        if let Some(si) = best_src {
            for (o, &v) in out[si].iter_mut().zip(comp) {
                *o += v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn affinity_is_high_on_own_fundamental() {
        let fs = 100.0;
        let x = tone(fs, 2.0, 2000);
        assert!(harmonic_affinity(&x, fs, 2.0, 3, 0.3) > 0.9);
        assert!(harmonic_affinity(&x, fs, 3.1, 3, 0.2) < 0.2);
    }

    #[test]
    fn affinity_counts_harmonics() {
        let fs = 100.0;
        // Second harmonic of f0=1.5 → 3.0 Hz tone matches via h=2.
        let x = tone(fs, 3.0, 2000);
        assert!(harmonic_affinity(&x, fs, 1.5, 3, 0.25) > 0.9);
        assert!(harmonic_affinity(&x, fs, 1.5, 1, 0.25) < 0.1);
    }

    #[test]
    fn dominant_frequency_finds_peak() {
        let fs = 100.0;
        let x = tone(fs, 4.0, 1000);
        assert!((dominant_frequency(&x, fs) - 4.0).abs() < 0.2);
    }

    #[test]
    fn assignment_groups_by_source() {
        let fs = 100.0;
        let n = 2000;
        let comps = vec![tone(fs, 1.2, n), tone(fs, 2.4, n), tone(fs, 3.1, n)];
        // Source A at 1.2 Hz (and its harmonic 2.4), source B at 3.1 Hz.
        let out = assign_components(&comps, fs, &[1.2, 3.1], 2, 0.2, 0.3, n);
        assert_eq!(out.len(), 2);
        // A got components 0 and 1, B got component 2.
        let e_a: f64 = out[0].iter().map(|v| v * v).sum();
        let e_b: f64 = out[1].iter().map(|v| v * v).sum();
        assert!(e_a > 1.5 * e_b);
        assert!(e_b > 100.0);
    }

    #[test]
    fn low_affinity_components_are_dropped() {
        let fs = 100.0;
        let n = 1000;
        // Broadband-ish component: alternating impulses.
        let noise: Vec<f64> = (0..n).map(|i| if i % 7 == 0 { 1.0 } else { -0.1 }).collect();
        let out = assign_components(&[noise], fs, &[1.0], 2, 0.2, 0.5, n);
        let e: f64 = out[0].iter().map(|v| v * v).sum();
        assert_eq!(e, 0.0);
    }

    #[test]
    fn empty_component_has_zero_affinity() {
        assert_eq!(harmonic_affinity(&[], 100.0, 1.0, 3, 0.2), 0.0);
    }
}
