//! Variational Mode Decomposition (Dragomiretskiy & Zosso \[1\]).
//!
//! ADMM over the half spectrum: each mode is updated by a Wiener-like
//! filter centred at its frequency `ω_k`, centre frequencies move to their
//! modes' spectral centroids, and a dual variable enforces exact
//! reconstruction. One mode is allocated per *harmonic* of each source
//! (VMD modes are narrowband by construction, so a multi-harmonic source
//! needs several), initialized from the known fundamental frequencies —
//! the same prior information every method in the study receives.

use crate::assignment::assign_components;
use crate::{BaselineError, SeparationContext, Separator};
use dhf_dsp::complex::Complex;
use dhf_dsp::fft::{fft, ifft};

/// VMD separator.
#[derive(Debug, Clone, PartialEq)]
pub struct Vmd {
    /// Bandwidth penalty `α` (larger = narrower modes).
    pub alpha: f64,
    /// Dual ascent step `τ` (0 disables the exact-reconstruction dual).
    pub tau: f64,
    /// Convergence tolerance on relative mode change.
    pub tol: f64,
    /// Maximum ADMM sweeps.
    pub max_iters: usize,
    /// Modes allocated per source (one per harmonic).
    pub modes_per_source: usize,
    /// Bandwidth (Hz) for component-to-source assignment.
    pub assign_bw_hz: f64,
    /// Minimum affinity for a mode to be kept.
    pub affinity_floor: f64,
}

impl Default for Vmd {
    fn default() -> Self {
        Vmd {
            alpha: 2000.0,
            tau: 0.1,
            tol: 1e-6,
            max_iters: 120,
            modes_per_source: 3,
            assign_bw_hz: 0.35,
            affinity_floor: 0.2,
        }
    }
}

impl Vmd {
    /// Decomposes `signal` into narrowband modes with initial centre
    /// frequencies `init_hz` (Hz). Returns `(modes, centre_frequencies)`.
    pub fn decompose(&self, signal: &[f64], fs: f64, init_hz: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n0 = signal.len();
        // Mirror extension halves boundary artefacts (standard VMD).
        let half = n0 / 2;
        let mut ext: Vec<f64> = Vec::with_capacity(2 * n0);
        ext.extend(signal[..half].iter().rev());
        ext.extend_from_slice(signal);
        ext.extend(signal[n0 - half..].iter().rev());
        let n = ext.len();

        let f_hat: Vec<Complex> =
            fft(&ext.iter().map(|&v| Complex::from_real(v)).collect::<Vec<_>>());
        // Positive-half analytic spectrum.
        let hn = n / 2 + 1;
        let f_plus: Vec<Complex> = f_hat[..hn].to_vec();
        // Normalized frequency axis for the half spectrum (cycles/sample).
        let freqs: Vec<f64> = (0..hn).map(|k| k as f64 / n as f64).collect();

        let k_modes = init_hz.len();
        let mut u = vec![vec![Complex::ZERO; hn]; k_modes];
        let mut omega: Vec<f64> = init_hz.iter().map(|&f| f / fs).collect();
        let mut lambda = vec![Complex::ZERO; hn];
        let mut sum_u = vec![Complex::ZERO; hn];

        for _ in 0..self.max_iters {
            let mut change = 0.0f64;
            let mut norm = 0.0f64;
            for k in 0..k_modes {
                // Remove this mode's old contribution from the sum.
                for i in 0..hn {
                    sum_u[i] -= u[k][i];
                }
                let mut num_w = 0.0f64;
                let mut den_w = 0.0f64;
                for i in 0..hn {
                    let residual = f_plus[i] - sum_u[i] + lambda[i].scale(0.5);
                    let d = freqs[i] - omega[k];
                    let new = residual / (1.0 + 2.0 * self.alpha * d * d);
                    change += (new - u[k][i]).norm_sqr();
                    norm += u[k][i].norm_sqr();
                    u[k][i] = new;
                    let p = new.norm_sqr();
                    num_w += freqs[i] * p;
                    den_w += p;
                }
                if den_w > 1e-30 {
                    omega[k] = num_w / den_w;
                }
                for i in 0..hn {
                    sum_u[i] += u[k][i];
                }
            }
            if self.tau > 0.0 {
                for i in 0..hn {
                    lambda[i] += (f_plus[i] - sum_u[i]).scale(self.tau);
                }
            }
            if norm > 0.0 && change / norm < self.tol {
                break;
            }
        }

        // Back to time domain: mirror the half spectrum hermitian-wise,
        // inverse transform, crop the extension.
        let modes: Vec<Vec<f64>> = u
            .iter()
            .map(|uh| {
                let mut full = vec![Complex::ZERO; n];
                for (i, &v) in uh.iter().enumerate() {
                    full[i] = v;
                }
                for i in hn..n {
                    full[i] = full[n - i].conj();
                }
                let time = ifft(&full);
                time[half..half + n0].iter().map(|c| c.re).collect()
            })
            .collect();
        let centre_hz: Vec<f64> = omega.iter().map(|&w| w * fs).collect();
        (modes, centre_hz)
    }

    /// Initial centre frequencies: the first `modes_per_source` harmonics
    /// of every source's mean f0, clamped below Nyquist.
    fn init_frequencies(&self, ctx: &SeparationContext<'_>) -> Vec<f64> {
        let mut init = Vec::new();
        for si in 0..ctx.num_sources() {
            let f0 = ctx.mean_f0(si);
            for h in 1..=self.modes_per_source {
                let f = h as f64 * f0;
                if f < 0.49 * ctx.fs {
                    init.push(f);
                }
            }
        }
        init
    }
}

impl Separator for Vmd {
    fn name(&self) -> &'static str {
        "VMD"
    }

    fn separate(
        &self,
        mixed: &[f64],
        ctx: &SeparationContext<'_>,
    ) -> Result<Vec<Vec<f64>>, BaselineError> {
        ctx.validate(mixed.len())?;
        if mixed.len() < 32 {
            return Err(BaselineError::InputTooShort { needed: 32, got: mixed.len() });
        }
        let init = self.init_frequencies(ctx);
        if init.is_empty() {
            return Err(BaselineError::MissingTracks);
        }
        let (modes, _centres) = self.decompose(mixed, ctx.fs, &init);
        let f0s: Vec<f64> = (0..ctx.num_sources()).map(|i| ctx.mean_f0(i)).collect();
        Ok(assign_components(
            &modes,
            ctx.fs,
            &f0s,
            self.modes_per_source + 1,
            self.assign_bw_hz,
            self.affinity_floor,
            mixed.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_metrics::sdr_db;

    fn tone(fs: f64, f: f64, a: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| a * (std::f64::consts::TAU * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn modes_land_on_tone_frequencies() {
        let fs = 100.0;
        let n = 2000;
        let mix: Vec<f64> =
            tone(fs, 1.5, 1.0, n).iter().zip(&tone(fs, 4.0, 0.8, n)).map(|(a, b)| a + b).collect();
        let vmd = Vmd::default();
        let (_modes, centres) = vmd.decompose(&mix, fs, &[1.3, 4.3]);
        let mut sorted = centres.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 1.5).abs() < 0.3, "centre {sorted:?}");
        assert!((sorted[1] - 4.0).abs() < 0.3, "centre {sorted:?}");
    }

    #[test]
    fn modes_approximately_reconstruct_signal() {
        let fs = 100.0;
        let n = 2000;
        let mix: Vec<f64> =
            tone(fs, 1.5, 1.0, n).iter().zip(&tone(fs, 4.0, 0.8, n)).map(|(a, b)| a + b).collect();
        let (modes, _) = Vmd::default().decompose(&mix, fs, &[1.5, 4.0]);
        let recon: Vec<f64> = (0..n).map(|i| modes.iter().map(|m| m[i]).sum::<f64>()).collect();
        let sdr = sdr_db(&mix[200..1800], &recon[200..1800]);
        assert!(sdr > 10.0, "reconstruction SDR {sdr}");
    }

    #[test]
    fn separates_two_tones() {
        let fs = 100.0;
        let n = 3000;
        let s1 = tone(fs, 1.2, 1.0, n);
        let s2 = tone(fs, 3.7, 0.5, n);
        let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
        let tracks = vec![vec![1.2; n], vec![3.7; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = Vmd { modes_per_source: 1, ..Vmd::default() }.separate(&mix, &ctx).unwrap();
        assert!(sdr_db(&s1[300..2700], &est[0][300..2700]) > 8.0);
        assert!(sdr_db(&s2[300..2700], &est[1][300..2700]) > 8.0);
    }

    #[test]
    fn rejects_short_input() {
        let tracks = vec![vec![1.0; 8]];
        let ctx = SeparationContext { fs: 10.0, f0_tracks: &tracks };
        assert!(matches!(
            Vmd::default().separate(&[0.0; 8], &ctx),
            Err(BaselineError::InputTooShort { .. })
        ));
    }
}
