//! Baseline single-channel source-separation methods compared against DHF
//! in the paper's Table 2, all implemented from scratch:
//!
//! * [`emd::Emd`] — Empirical Mode Decomposition (Huang et al. \[5\]):
//!   sifting with cubic-spline envelopes, IMFs assigned to sources by
//!   harmonic affinity.
//! * [`vmd::Vmd`] — Variational Mode Decomposition (Dragomiretskiy &
//!   Zosso \[1\]): ADMM in the Fourier domain with Wiener-like mode updates.
//! * [`nmf::Nmf`] — Non-negative Matrix Factorization (Lee & Seung \[9\])
//!   of the magnitude spectrogram with multiplicative updates and Wiener
//!   reconstruction.
//! * [`repet::Repet`] / [`repet::RepetExtended`] — REpeating Pattern
//!   Extraction Technique (Rafii & Pardo \[14\]): beat-spectrum period
//!   estimation and median repeating models; the Extended variant adapts
//!   per time segment.
//! * [`masking::SpectralMasking`] — harmonic-comb binary masking
//!   (Gerkmann & Vincent \[3\]), the paper's strongest prior-work
//!   comparator.
//! * [`hpss::MedianHpss`] / [`hpss::IterativeHpss`] — harmonic–percussive
//!   source separation (Fitzgerald; Ono et al.): not a Table-2 comparator
//!   but the transient-rejection *pre-filter* for motion artifacts, and
//!   the offline reference for the streaming front filter in
//!   `dhf_stream`.
//!
//! All methods implement the [`Separator`] trait and receive the same
//! auxiliary information DHF gets: the sources' fundamental-frequency
//! tracks (methods that cannot exploit a full track use its mean).
//!
//! # Example
//!
//! ```no_run
//! use dhf_baselines::{masking::SpectralMasking, SeparationContext, Separator};
//!
//! let fs = 100.0;
//! let mixed: Vec<f64> = (0..2000)
//!     .map(|i| {
//!         let t = i as f64 / fs;
//!         (std::f64::consts::TAU * 1.2 * t).sin()
//!             + 0.3 * (std::f64::consts::TAU * 2.4 * t).sin()
//!     })
//!     .collect();
//! let tracks = vec![vec![1.2; 2000], vec![2.4; 2000]];
//! let ctx = SeparationContext { fs, f0_tracks: &tracks };
//! let estimates = SpectralMasking::default().separate(&mixed, &ctx)?;
//! assert_eq!(estimates.len(), 2);
//! # Ok::<(), dhf_baselines::BaselineError>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod emd;
pub mod hpss;
pub mod masking;
pub mod nmf;
pub mod repet;
pub mod vmd;

/// Errors shared by the baseline separators.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The input signal was empty or too short for the method's windows.
    InputTooShort {
        /// Samples required.
        needed: usize,
        /// Samples provided.
        got: usize,
    },
    /// No fundamental-frequency tracks were provided.
    MissingTracks,
    /// A track's length does not match the signal.
    TrackLengthMismatch {
        /// Samples in the signal.
        signal: usize,
        /// Samples in the offending track.
        track: usize,
    },
    /// An internal DSP step failed.
    Dsp(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InputTooShort { needed, got } => {
                write!(f, "input too short: need {needed} samples, got {got}")
            }
            BaselineError::MissingTracks => write!(f, "no fundamental-frequency tracks given"),
            BaselineError::TrackLengthMismatch { signal, track } => {
                write!(f, "track length {track} does not match signal length {signal}")
            }
            BaselineError::Dsp(msg) => write!(f, "dsp failure: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<dhf_dsp::DspError> for BaselineError {
    fn from(e: dhf_dsp::DspError) -> Self {
        BaselineError::Dsp(e.to_string())
    }
}

/// Auxiliary information available to every separator: the sampling rate
/// and the per-source fundamental-frequency tracks (one `Vec<f64>` per
/// source, one value per sample).
#[derive(Debug, Clone, Copy)]
pub struct SeparationContext<'a> {
    /// Sampling rate in Hz.
    pub fs: f64,
    /// Ground-truth or estimated f0 tracks, one per source, strongest
    /// source first.
    pub f0_tracks: &'a [Vec<f64>],
}

impl<'a> SeparationContext<'a> {
    /// Number of sources to extract.
    pub fn num_sources(&self) -> usize {
        self.f0_tracks.len()
    }

    /// Mean fundamental frequency of source `i`.
    pub fn mean_f0(&self, i: usize) -> f64 {
        let t = &self.f0_tracks[i];
        if t.is_empty() {
            0.0
        } else {
            t.iter().sum::<f64>() / t.len() as f64
        }
    }

    /// Validates tracks against a signal length.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::MissingTracks`] or
    /// [`BaselineError::TrackLengthMismatch`].
    pub fn validate(&self, signal_len: usize) -> Result<(), BaselineError> {
        if self.f0_tracks.is_empty() {
            return Err(BaselineError::MissingTracks);
        }
        for t in self.f0_tracks {
            if t.len() != signal_len {
                return Err(BaselineError::TrackLengthMismatch {
                    signal: signal_len,
                    track: t.len(),
                });
            }
        }
        Ok(())
    }
}

/// A single-channel source separator.
///
/// Implementations return one estimated signal per source, in the same
/// order as the context's f0 tracks.
pub trait Separator {
    /// Short human-readable method name (used in Table 2 headers).
    fn name(&self) -> &'static str;

    /// Separates `mixed` into per-source estimates.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] on malformed inputs.
    fn separate(
        &self,
        mixed: &[f64],
        ctx: &SeparationContext<'_>,
    ) -> Result<Vec<Vec<f64>>, BaselineError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_mean_f0() {
        let tracks = vec![vec![1.0, 2.0, 3.0], vec![4.0; 3]];
        let ctx = SeparationContext { fs: 100.0, f0_tracks: &tracks };
        assert_eq!(ctx.num_sources(), 2);
        assert!((ctx.mean_f0(0) - 2.0).abs() < 1e-12);
        assert!((ctx.mean_f0(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn context_validation() {
        let empty: Vec<Vec<f64>> = vec![];
        let ctx = SeparationContext { fs: 1.0, f0_tracks: &empty };
        assert_eq!(ctx.validate(10), Err(BaselineError::MissingTracks));
        let bad = vec![vec![1.0; 5]];
        let ctx = SeparationContext { fs: 1.0, f0_tracks: &bad };
        assert!(matches!(
            ctx.validate(10),
            Err(BaselineError::TrackLengthMismatch { signal: 10, track: 5 })
        ));
        assert!(ctx.validate(5).is_ok());
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = BaselineError::InputTooShort { needed: 100, got: 3 };
        let msg = e.to_string();
        assert!(msg.starts_with("input too short"));
        assert!(msg.contains("100") && msg.contains('3'));
    }
}
