//! REpeating Pattern Extraction Technique (Rafii & Pardo \[14\]).
//!
//! REPET models the most repetitive spectro-temporal structure: a *beat
//! spectrum* (bin-averaged autocorrelation of the power spectrogram)
//! reveals the repeating period, a median across period-spaced frames
//! builds the repeating model, and a soft mask extracts the repeating
//! "background" from the varying "foreground". Multi-source mixes are
//! handled by peeling: extract a background, recurse on the foreground,
//! then match the peeled layers to sources by harmonic affinity.
//!
//! [`RepetExtended`] re-estimates the period on overlapping segments so a
//! drifting (non-stationary) repetition is tracked over time, as in the
//! paper's REPET-Extended comparison row.

use crate::assignment::harmonic_affinity;
use crate::{BaselineError, SeparationContext, Separator};
use dhf_dsp::fft::autocorrelation;
use dhf_dsp::median::median_across;
use dhf_dsp::stft::{istft, stft, StftConfig};
use dhf_dsp::window::WindowKind;

/// Classic (whole-signal) REPET.
#[derive(Debug, Clone, PartialEq)]
pub struct Repet {
    /// STFT window length in seconds.
    pub window_s: f64,
    /// STFT hop in seconds.
    pub hop_s: f64,
    /// Minimum repeating period in seconds considered by the beat spectrum.
    pub min_period_s: f64,
    /// Maximum repeating period in seconds.
    pub max_period_s: f64,
}

impl Default for Repet {
    fn default() -> Self {
        Repet { window_s: 2.56, hop_s: 0.32, min_period_s: 0.4, max_period_s: 8.0 }
    }
}

impl Repet {
    /// Splits a signal into a repeating background and a varying
    /// foreground. Returns `(background, foreground)`.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InputTooShort`] when the signal does not
    /// cover one analysis window.
    pub fn background_foreground(
        &self,
        mixed: &[f64],
        fs: f64,
    ) -> Result<(Vec<f64>, Vec<f64>), BaselineError> {
        let win = (self.window_s * fs).round() as usize;
        let hop = (self.hop_s * fs).round() as usize;
        if mixed.len() < win + hop {
            return Err(BaselineError::InputTooShort { needed: win + hop, got: mixed.len() });
        }
        let cfg = StftConfig::new(win, hop, fs)?;
        let spec = stft(mixed, &cfg)?;
        let bins = spec.bins();
        let frames = spec.frames();
        let v = spec.magnitude();

        // Beat spectrum: mean across bins of the autocorrelation of the
        // per-bin power envelope.
        let mut beat = vec![0.0f64; frames];
        for b in 0..bins {
            let row: Vec<f64> = (0..frames)
                .map(|m| {
                    let x = v[b * frames + m];
                    x * x
                })
                .collect();
            let ac = autocorrelation(&row);
            for (bt, &a) in beat.iter_mut().zip(&ac) {
                *bt += a;
            }
        }
        for bt in &mut beat {
            *bt /= bins as f64;
        }

        // Repeating period in frames.
        let frames_per_s = fs / hop as f64;
        let lag_lo = ((self.min_period_s * frames_per_s).round() as usize).max(2);
        let lag_hi = ((self.max_period_s * frames_per_s).round() as usize).min(frames / 2);
        let period = if lag_lo >= lag_hi {
            lag_lo.max(2)
        } else {
            (lag_lo..=lag_hi)
                .max_by(|&a, &b| beat[a].partial_cmp(&beat[b]).unwrap())
                .unwrap_or(lag_lo)
        };

        // Median repeating model across period-spaced frames.
        let mut model = vec![0.0f64; bins * frames];
        for b in 0..bins {
            let row = &v[b * frames..(b + 1) * frames];
            for m in 0..frames {
                let mut vals = Vec::new();
                let mut j = m % period;
                while j < frames {
                    vals.push(row[j]);
                    j += period;
                }
                let refs: Vec<&[f64]> = vec![&vals];
                let med = median_across(&refs)[0];
                // min(model, observed): repetitions cannot exceed the mix.
                model[b * frames + m] = med.min(row[m]);
            }
        }

        // Soft mask and resynthesis.
        let eps = 1e-9;
        let mask: Vec<f64> = v.iter().zip(&model).map(|(&vv, &mm)| mm / (vv + eps)).collect();
        let mut masked = spec.clone();
        masked.apply_mask_in_place(&mask);
        let background = istft(&masked);
        let foreground: Vec<f64> = mixed.iter().zip(&background).map(|(&x, &b)| x - b).collect();
        Ok((background, foreground))
    }

    /// Peels `count` layers: repeatedly extract the repeating background
    /// from the running foreground. Returns `count` signals, most
    /// repetitive first.
    pub fn peel(
        &self,
        mixed: &[f64],
        fs: f64,
        count: usize,
    ) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut layers = Vec::with_capacity(count);
        let mut residual = mixed.to_vec();
        for _ in 0..count.saturating_sub(1) {
            let (bg, fg) = self.background_foreground(&residual, fs)?;
            layers.push(bg);
            residual = fg;
        }
        layers.push(residual);
        Ok(layers)
    }
}

/// Greedy one-to-one matching of peeled layers to sources by harmonic
/// affinity (highest-affinity pair first). Affinity is discounted by the
/// harmonic index the layer's dominant frequency lands on, so a layer
/// whose energy sits at a source's *fundamental* beats one that only
/// matches through a high harmonic (e.g. a 3 Hz layer belongs to a 3 Hz
/// source, not to a 1 Hz source's third harmonic).
pub(crate) fn match_layers_to_sources(
    layers: Vec<Vec<f64>>,
    fs: f64,
    f0s: &[f64],
) -> Vec<Vec<f64>> {
    use crate::assignment::dominant_frequency;
    let ns = f0s.len();
    let nl = layers.len();
    let mut scores = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        let domf = dominant_frequency(layer, fs);
        for (si, &f0) in f0s.iter().enumerate() {
            let affinity = harmonic_affinity(layer, fs, f0, 3, 0.35);
            let h_best = if f0 > 0.0 { (domf / f0).round().max(1.0) } else { 1.0 };
            scores.push((affinity / h_best, li, si));
        }
    }
    scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut layer_used = vec![false; nl];
    let mut source_used = vec![false; ns];
    let mut assignment = vec![usize::MAX; ns];
    for (_, li, si) in scores {
        if !layer_used[li] && !source_used[si] {
            layer_used[li] = true;
            source_used[si] = true;
            assignment[si] = li;
        }
    }
    let n = layers.first().map(|l| l.len()).unwrap_or(0);
    assignment
        .into_iter()
        .map(|li| if li == usize::MAX { vec![0.0; n] } else { layers[li].clone() })
        .collect()
}

impl Separator for Repet {
    fn name(&self) -> &'static str {
        "REPET"
    }

    fn separate(
        &self,
        mixed: &[f64],
        ctx: &SeparationContext<'_>,
    ) -> Result<Vec<Vec<f64>>, BaselineError> {
        ctx.validate(mixed.len())?;
        let win = (self.window_s * ctx.fs).round() as usize;
        let hop = (self.hop_s * ctx.fs).round() as usize;
        if mixed.len() < win + hop {
            return Err(BaselineError::InputTooShort { needed: win + hop, got: mixed.len() });
        }
        let layers = self.peel(mixed, ctx.fs, ctx.num_sources())?;
        let f0s: Vec<f64> = (0..ctx.num_sources()).map(|i| ctx.mean_f0(i)).collect();
        Ok(match_layers_to_sources(layers, ctx.fs, &f0s))
    }
}

/// REPET-Extended: REPET applied on overlapping segments with per-segment
/// period estimation, tracking non-stationary repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct RepetExtended {
    /// Inner REPET parameters.
    pub inner: Repet,
    /// Segment length in seconds.
    pub segment_s: f64,
    /// Segment overlap fraction in `[0, 0.9]`.
    pub overlap: f64,
}

impl Default for RepetExtended {
    fn default() -> Self {
        RepetExtended { inner: Repet::default(), segment_s: 24.0, overlap: 0.5 }
    }
}

impl Separator for RepetExtended {
    fn name(&self) -> &'static str {
        "REPET-Ext."
    }

    fn separate(
        &self,
        mixed: &[f64],
        ctx: &SeparationContext<'_>,
    ) -> Result<Vec<Vec<f64>>, BaselineError> {
        ctx.validate(mixed.len())?;
        let n = mixed.len();
        let seg = ((self.segment_s * ctx.fs).round() as usize).min(n);
        let hop = ((seg as f64 * (1.0 - self.overlap)).round() as usize).max(1);
        let ns = ctx.num_sources();
        let f0s: Vec<f64> = (0..ns).map(|i| ctx.mean_f0(i)).collect();

        let window = WindowKind::Hann.samples(seg);
        let mut out = vec![vec![0.0f64; n]; ns];
        let mut norm = vec![0.0f64; n];
        let mut start = 0usize;
        while start < n {
            let end = (start + seg).min(n);
            if end - start < seg / 2 && start > 0 {
                break;
            }
            let chunk = &mixed[start..end];
            let layers = self.inner.peel(chunk, ctx.fs, ns)?;
            let matched = match_layers_to_sources(layers, ctx.fs, &f0s);
            for (si, sig) in matched.iter().enumerate() {
                for (i, &v) in sig.iter().enumerate() {
                    let w = window[i.min(window.len() - 1)];
                    out[si][start + i] += w * v;
                }
            }
            for i in 0..end - start {
                norm[start + i] += window[i.min(window.len() - 1)];
            }
            if end == n {
                break;
            }
            start += hop;
        }
        for src in out.iter_mut() {
            for (v, &nv) in src.iter_mut().zip(&norm) {
                if nv > 1e-9 {
                    *v /= nv;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_metrics::sdr_db;

    /// A strictly periodic pulse train (repeating) plus a drifting chirp
    /// (non-repeating foreground).
    fn repet_mix(fs: f64, n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let period = 1.0; // s
        let bg: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 / fs) % period;
                (-((t - 0.2) * (t - 0.2)) / 0.004).exp()
            })
            .collect();
        let fg: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.5 * (std::f64::consts::TAU * (3.0 * t + 0.02 * t * t)).sin()
            })
            .collect();
        let mix = bg.iter().zip(&fg).map(|(a, b)| a + b).collect();
        (mix, bg, fg)
    }

    #[test]
    fn background_is_the_repeating_part() {
        let fs = 100.0;
        let n = 4000;
        let (mix, bg, _fg) = repet_mix(fs, n);
        let (est_bg, _est_fg) = Repet::default().background_foreground(&mix, fs).unwrap();
        let sdr = sdr_db(&bg[600..3400], &est_bg[600..3400]);
        assert!(sdr > 3.0, "background SDR {sdr}");
    }

    #[test]
    fn background_plus_foreground_is_exact() {
        let fs = 100.0;
        let n = 3000;
        let (mix, _, _) = repet_mix(fs, n);
        let (bg, fg) = Repet::default().background_foreground(&mix, fs).unwrap();
        for i in 0..n {
            assert!((bg[i] + fg[i] - mix[i]).abs() < 1e-9, "sample {i}");
        }
    }

    #[test]
    fn peel_returns_requested_layers() {
        let fs = 100.0;
        let n = 3000;
        let (mix, _, _) = repet_mix(fs, n);
        let layers = Repet::default().peel(&mix, fs, 3).unwrap();
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().all(|l| l.len() == n));
    }

    #[test]
    fn layer_matching_is_one_to_one() {
        let fs = 100.0;
        let n = 2000;
        let t1: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 1.0 * i as f64 / fs).sin()).collect();
        let t2: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 3.0 * i as f64 / fs).sin()).collect();
        // Layers given in the "wrong" order relative to the sources.
        let matched = match_layers_to_sources(vec![t2.clone(), t1.clone()], fs, &[1.0, 3.0]);
        assert!(sdr_db(&t1, &matched[0]) > 20.0);
        assert!(sdr_db(&t2, &matched[1]) > 20.0);
    }

    #[test]
    fn extended_handles_drifting_period() {
        let fs = 100.0;
        let n = 6000;
        let (mix, _, _) = repet_mix(fs, n);
        let tracks = vec![vec![1.0; n], vec![3.0; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = RepetExtended::default().separate(&mix, &ctx).unwrap();
        assert_eq!(est.len(), 2);
        assert!(est.iter().all(|e| e.len() == n));
    }

    #[test]
    fn rejects_input_shorter_than_window() {
        let fs = 100.0;
        let tracks = vec![vec![1.0; 50]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        assert!(matches!(
            Repet::default().separate(&[0.0; 50], &ctx),
            Err(BaselineError::InputTooShort { .. })
        ));
    }
}
