//! Empirical Mode Decomposition (Huang et al. \[5\]).
//!
//! The classic sifting procedure: at each step the mean of the upper and
//! lower cubic-spline envelopes (through local maxima/minima) is
//! subtracted until the candidate satisfies a standard-deviation stopping
//! criterion, yielding one Intrinsic Mode Function (IMF); the process
//! recurses on the residual. IMFs are grouped into sources by harmonic
//! affinity (see [`crate::assignment`]).

use crate::assignment::assign_components;
use crate::{BaselineError, SeparationContext, Separator};
use dhf_dsp::interp::CubicSpline;
use dhf_dsp::peaks::{local_maxima, local_minima};

/// EMD separator.
#[derive(Debug, Clone, PartialEq)]
pub struct Emd {
    /// Maximum number of IMFs extracted before stopping.
    pub max_imfs: usize,
    /// Maximum sifting iterations per IMF.
    pub max_sifts: usize,
    /// Cauchy-style standard-deviation stopping threshold (Huang's 0.2–0.3).
    pub sd_threshold: f64,
    /// Harmonics used for component-to-source assignment.
    pub assign_harmonics: usize,
    /// Bandwidth (Hz) for assignment affinity.
    pub assign_bw_hz: f64,
    /// Minimum affinity for a component to be kept.
    pub affinity_floor: f64,
}

impl Default for Emd {
    fn default() -> Self {
        Emd {
            max_imfs: 10,
            max_sifts: 12,
            sd_threshold: 0.25,
            assign_harmonics: 4,
            assign_bw_hz: 0.35,
            affinity_floor: 0.25,
        }
    }
}

impl Emd {
    /// Decomposes a signal into IMFs plus a final residual (last entry).
    ///
    /// Public so tests and notebooks can inspect the raw decomposition.
    pub fn decompose(&self, signal: &[f64]) -> Vec<Vec<f64>> {
        let mut imfs = Vec::new();
        let mut residual = signal.to_vec();
        for _ in 0..self.max_imfs {
            if !has_enough_extrema(&residual) {
                break;
            }
            let imf = self.sift(&residual);
            for (r, &v) in residual.iter_mut().zip(&imf) {
                *r -= v;
            }
            imfs.push(imf);
        }
        imfs.push(residual);
        imfs
    }

    /// One sifting run producing a single IMF candidate.
    fn sift(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for _ in 0..self.max_sifts {
            let Some((upper, lower)) = envelopes(&h) else { break };
            let mut sd_num = 0.0;
            let mut sd_den = 0.0;
            for i in 0..h.len() {
                let m = 0.5 * (upper[i] + lower[i]);
                let new = h[i] - m;
                sd_num += m * m;
                sd_den += h[i] * h[i] + 1e-12;
                h[i] = new;
            }
            if sd_num / sd_den < self.sd_threshold * self.sd_threshold {
                break;
            }
        }
        h
    }
}

/// True when the signal still has enough oscillation to sift.
fn has_enough_extrema(x: &[f64]) -> bool {
    local_maxima(x).len() >= 2 && local_minima(x).len() >= 2
}

/// Upper/lower cubic-spline envelopes through the extrema, with the
/// endpoints appended as knots to control boundary behaviour.
fn envelopes(x: &[f64]) -> Option<(Vec<f64>, Vec<f64>)> {
    let n = x.len();
    let maxima = local_maxima(x);
    let minima = local_minima(x);
    if maxima.len() < 2 || minima.len() < 2 {
        return None;
    }
    let build = |idx: &[usize]| -> Option<Vec<f64>> {
        let mut xs: Vec<f64> = Vec::with_capacity(idx.len() + 2);
        let mut ys: Vec<f64> = Vec::with_capacity(idx.len() + 2);
        if idx[0] != 0 {
            xs.push(0.0);
            ys.push(x[0]);
        }
        for &i in idx {
            xs.push(i as f64);
            ys.push(x[i]);
        }
        if *idx.last().unwrap() != n - 1 {
            xs.push((n - 1) as f64);
            ys.push(x[n - 1]);
        }
        let spline = CubicSpline::new(&xs, &ys).ok()?;
        Some((0..n).map(|i| spline.eval(i as f64)).collect())
    };
    Some((build(&maxima)?, build(&minima)?))
}

impl Separator for Emd {
    fn name(&self) -> &'static str {
        "EMD"
    }

    fn separate(
        &self,
        mixed: &[f64],
        ctx: &SeparationContext<'_>,
    ) -> Result<Vec<Vec<f64>>, BaselineError> {
        ctx.validate(mixed.len())?;
        if mixed.len() < 16 {
            return Err(BaselineError::InputTooShort { needed: 16, got: mixed.len() });
        }
        let imfs = self.decompose(mixed);
        let f0s: Vec<f64> = (0..ctx.num_sources()).map(|i| ctx.mean_f0(i)).collect();
        Ok(assign_components(
            &imfs,
            ctx.fs,
            &f0s,
            self.assign_harmonics,
            self.assign_bw_hz,
            self.affinity_floor,
            mixed.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_metrics::sdr_db;

    fn tone(fs: f64, f: f64, a: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| a * (std::f64::consts::TAU * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn imfs_sum_to_signal() {
        let fs = 100.0;
        let x: Vec<f64> = (0..1500)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 1.1 * t).sin()
                    + 0.4 * (std::f64::consts::TAU * 4.3 * t).sin()
            })
            .collect();
        let imfs = Emd::default().decompose(&x);
        assert!(imfs.len() >= 2);
        for i in 0..x.len() {
            let sum: f64 = imfs.iter().map(|imf| imf[i]).sum();
            assert!((sum - x[i]).abs() < 1e-9, "sample {i}");
        }
    }

    #[test]
    fn first_imf_carries_the_fast_oscillation() {
        let fs = 100.0;
        let n = 2000;
        let fast = tone(fs, 6.0, 0.7, n);
        let slow = tone(fs, 0.7, 1.0, n);
        let mix: Vec<f64> = fast.iter().zip(&slow).map(|(a, b)| a + b).collect();
        let imfs = Emd::default().decompose(&mix);
        // IMF 0 correlates far better with the fast component.
        let sdr_fast = sdr_db(&fast[200..1800], &imfs[0][200..1800]);
        assert!(sdr_fast > 5.0, "first IMF vs fast tone: {sdr_fast} dB");
    }

    #[test]
    fn separates_widely_spaced_tones() {
        let fs = 100.0;
        let n = 3000;
        let s1 = tone(fs, 0.8, 1.0, n);
        let s2 = tone(fs, 5.0, 0.6, n);
        let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
        let tracks = vec![vec![0.8; n], vec![5.0; n]];
        let ctx = SeparationContext { fs, f0_tracks: &tracks };
        let est = Emd::default().separate(&mix, &ctx).unwrap();
        assert!(sdr_db(&s1[300..2700], &est[0][300..2700]) > 5.0);
        assert!(sdr_db(&s2[300..2700], &est[1][300..2700]) > 5.0);
    }

    #[test]
    fn monotone_signal_yields_only_residual() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let imfs = Emd::default().decompose(&x);
        assert_eq!(imfs.len(), 1); // residual only
        assert_eq!(imfs[0], x);
    }

    #[test]
    fn rejects_tiny_input() {
        let tracks = vec![vec![1.0; 4]];
        let ctx = SeparationContext { fs: 10.0, f0_tracks: &tracks };
        assert!(matches!(
            Emd::default().separate(&[1.0, 2.0, 1.0, 0.0], &ctx),
            Err(BaselineError::InputTooShort { .. })
        ));
    }
}
