//! **Table 1** — specification of the five synthesized mixed signals,
//! regenerated from code, with the realized per-source statistics printed
//! next to the specified ones (they must agree: the generator is the
//! paper's "tool for generating synthesized quasi-periodic timeseries").

use dhf_bench::{duration_s, seed};
use dhf_dsp::stats::{mean, std_dev};
use dhf_synth::table1::{all_specs, render, SourceRole};

fn main() {
    println!("=== Table 1: synthesized mixed signals (spec vs realized) ===");
    println!("(duration {:.0}s, seed {})", duration_s(), seed());
    println!(
        "{:<8} {:<8} {:<12} {:>9} {:>9} {:>7} {:>7} {:>10} {:>10}",
        "mix", "source", "role", "mean(A)", "std(A)", "f_min", "f_max", "real mean", "real std"
    );
    for spec in all_specs() {
        let mix = render(&spec, seed(), duration_s());
        for (si, (s, rendered)) in spec.sources.iter().zip(&mix.sources).enumerate() {
            // Realized per-period amplitude statistics: peak-to-trough per
            // fundamental period (the template has ~unit peak-to-trough,
            // so this estimates the schedule's amplitude draw).
            let mut peaks = Vec::new();
            let fs = mix.fs;
            let mut i = 0usize;
            while i < rendered.samples.len() {
                let period = (fs / rendered.f0[i]).round() as usize;
                let end = (i + period).min(rendered.samples.len());
                if end - i < 4 {
                    break;
                }
                let lo = rendered.samples[i..end].iter().cloned().fold(f64::MAX, f64::min);
                let hi = rendered.samples[i..end].iter().cloned().fold(f64::MIN, f64::max);
                peaks.push(hi - lo);
                i = end;
            }
            let role = match s.role {
                SourceRole::Pulsation => "pulsation",
                SourceRole::Respiration => "respiration",
            };
            println!(
                "MSig{:<4} s{:<7} {:<12} {:>9.3} {:>9.3} {:>7.2} {:>7.2} {:>10.3} {:>10.3}",
                spec.index,
                si + 1,
                role,
                s.amp_mean,
                s.amp_std,
                s.f_min,
                s.f_max,
                mean(&peaks),
                std_dev(&peaks),
            );
        }
        println!(
            "MSig{:<4} {:<8} {:<12} {:>9} {:>9} {:>7} {:>7} {:>10.4} {:>10}",
            spec.index, "noise", "gaussian", "-", "-", "-", "-", spec.noise_std, "-"
        );
    }
    println!();
    println!("note: realized peak-to-trough per period tracks mean(A) up to the template's");
    println!("peak-to-trough factor (~1.0); frequency bounds are enforced by construction.");
}
