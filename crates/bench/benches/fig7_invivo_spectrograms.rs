//! **Figure 7** — in-vivo (simulated) spectrograms for sheep 2: the mixed
//! PPG at 740 and 850 nm, and the separated fetal signal per wavelength.
//! Writes PGMs to `target/paper-artifacts/` and prints fetal-band energy
//! shares before and after separation (the quantitative content of the
//! figure: the fetal ridge emerges once maternal/respiration are removed).

use dhf_bench::{artifact_dir, bench_dhf_config, dhf_iterations, env_f64, fast_mode, write_pgm};
use dhf_core::separate;
use dhf_dsp::stft::{stft, StftConfig};
use dhf_oximetry::dc_level;
use dhf_synth::invivo::{simulate, InvivoConfig};

/// Energy share of a frequency band in a spectrogram.
fn band_share(spec: &dhf_dsp::Spectrogram, cfg: &StftConfig, lo_hz: f64, hi_hz: f64) -> f64 {
    let lo = cfg.frequency_to_bin(lo_hz);
    let hi = cfg.frequency_to_bin(hi_hz);
    let mut band = 0.0;
    let mut total = 0.0;
    for b in 1..spec.bins() {
        for m in 0..spec.frames() {
            let p = spec.at(b, m).norm_sqr();
            total += p;
            if b >= lo && b <= hi {
                band += p;
            }
        }
    }
    if total > 0.0 {
        band / total
    } else {
        0.0
    }
}

fn main() {
    println!("=== Figure 7: sheep-2 spectrograms and separated fetal signal ===");
    let scale = if fast_mode() { 0.15 } else { env_f64("DHF_INVIVO_SCALE", 0.25) };
    let recording = simulate(&InvivoConfig::sheep2().scaled(scale));
    let fs = recording.config.fs;
    let dir = artifact_dir();

    // Analysis segment: a window in the middle of the record.
    let seg_len = ((env_f64("DHF_INVIVO_WINDOW_S", 60.0)) * fs) as usize;
    let mid = recording.len() / 2;
    let lo = mid.saturating_sub(seg_len / 2);
    let hi = (lo + seg_len).min(recording.len());

    let stft_cfg =
        StftConfig::new((10.0 * fs) as usize, (2.5 * fs) as usize, fs).expect("stft config");
    let fetal_band = recording.config.fetal_band;
    let iterations = dhf_iterations().min(150);

    for (lambda, nm) in [(0usize, 740), (1usize, 850)] {
        let window = &recording.mixed[lambda][lo..hi];
        let dc = dc_level(window);
        let ac: Vec<f64> = window.iter().map(|&v| v - dc).collect();

        let mixed_spec = stft(&ac, &stft_cfg).expect("stft");
        let top = stft_cfg.frequency_to_bin(6.0);
        let frames = mixed_spec.frames();
        let crop = |s: &dhf_dsp::Spectrogram| -> Vec<f64> {
            let mut img = vec![0.0f64; (top + 1) * frames];
            for b in 0..=top {
                for m in 0..frames {
                    img[b * frames + m] = s.at(b, m).abs();
                }
            }
            img
        };
        let mixed_path = dir.join(format!("fig7_sheep2_{nm}nm_mixed.pgm"));
        write_pgm(&mixed_path, &crop(&mixed_spec), top + 1, frames);

        // Separate the fetal signal with DHF.
        let tracks =
            vec![recording.f0.maternal[lo..hi].to_vec(), recording.f0.fetal[lo..hi].to_vec()];
        let mut cfg = bench_dhf_config();
        cfg.inpaint.iterations = iterations;
        let fetal = separate(&ac, fs, &tracks, &cfg)
            .map(|r| r.sources[1].clone())
            .unwrap_or_else(|_| vec![0.0; ac.len()]);
        let fetal_spec = stft(&fetal, &stft_cfg).expect("stft");
        let fetal_path = dir.join(format!("fig7_sheep2_{nm}nm_fetal.pgm"));
        write_pgm(&fetal_path, &crop(&fetal_spec), top + 1, frames);

        let before = band_share(&mixed_spec, &stft_cfg, fetal_band.0, fetal_band.1);
        let after = band_share(&fetal_spec, &stft_cfg, fetal_band.0, fetal_band.1);
        println!(
            "{nm} nm: fetal-band energy share {:.1}% -> {:.1}% after separation",
            100.0 * before,
            100.0 * after
        );
        println!("  mixed  -> {}", mixed_path.display());
        println!("  fetal  -> {}", fetal_path.display());
    }
    println!();
    println!("blood draws (red lines in the paper's figure):");
    for d in &recording.draws {
        println!("  t = {:>6.1} s, SaO2 = {:.3}", d.time_s, d.sao2);
    }
}
