//! **Figure 6** — in-vivo fetal SpO2 estimation on the simulated TFO
//! recordings (the substitution for the pregnant-ewe dataset; see
//! DESIGN.md): per sheep, the correlation between SpO2 estimated from the
//! separated fetal signal and the blood-draw SaO2 ground truth, comparing
//! spectral masking (state of the art, [18]) against DHF.
//!
//! Expected shape: DHF's correlation is far higher on both sheep
//! (the paper reports 0.24→0.81 and 0.44→0.92).

use dhf_baselines::{masking::SpectralMasking, SeparationContext, Separator};
use dhf_bench::{bench_dhf_config, dhf_iterations, env_f64, fast_mode, Stopwatch};
use dhf_core::RoundContext;
use dhf_metrics::pearson;
use dhf_oximetry::{ac_amplitude, dc_level, modulation_ratio, Calibration};
use dhf_synth::invivo::{simulate, InvivoConfig, TfoRecording};

/// Extracts the fetal AC estimate for one analysis window on one channel.
/// DHF windows run through the shared `dhf_ctx` so its SoA spectrogram
/// workspace and FFT plan cache stay warm across draws and wavelengths.
fn fetal_estimate(
    recording: &TfoRecording,
    lambda: usize,
    lo: usize,
    hi: usize,
    method: &str,
    dhf_ctx: &mut RoundContext,
) -> Vec<f64> {
    let window = &recording.mixed[lambda][lo..hi];
    // Remove the DC level: separators work on the pulsatile part.
    let dc = dc_level(window);
    let ac: Vec<f64> = window.iter().map(|&v| v - dc).collect();
    let tracks: [&[f64]; 2] = [&recording.f0.maternal[lo..hi], &recording.f0.fetal[lo..hi]];
    match method {
        "masking" => {
            let owned = vec![tracks[0].to_vec(), tracks[1].to_vec()];
            let ctx = SeparationContext { fs: recording.config.fs, f0_tracks: &owned };
            SpectralMasking::default()
                .separate(&ac, &ctx)
                .map(|est| est[1].clone())
                .unwrap_or_else(|_| vec![0.0; ac.len()])
        }
        _ => dhf_ctx
            .separate_refs(&ac, recording.config.fs, &tracks, 0)
            .map(|mut r| std::mem::take(&mut r.sources[1]))
            .unwrap_or_else(|_| vec![0.0; ac.len()]),
    }
}

/// Runs one sheep with one method, returning `(correlation, r_values)`.
fn evaluate_sheep(recording: &TfoRecording, method: &str, iterations: usize) -> (f64, Vec<f64>) {
    let fs = recording.config.fs;
    let half_window = (env_f64("DHF_INVIVO_WINDOW_S", 60.0) * fs / 2.0) as usize;
    let mut cfg = bench_dhf_config();
    cfg.inpaint.iterations = iterations;
    let mut dhf_ctx = RoundContext::new(&cfg);
    dhf_ctx.set_collect_reports(false);
    let mut ratios = Vec::new();
    let mut sao2 = Vec::new();
    for draw in &recording.draws {
        let centre = recording.sample_at(draw.time_s);
        let lo = centre.saturating_sub(half_window);
        let hi = (centre + half_window).min(recording.len());
        // Skip draws whose analysis window is truncated by a recording
        // edge; a shortened window would bias the per-method comparison.
        if hi - lo < 2 * half_window {
            continue;
        }
        let mut ac = [0.0f64; 2];
        let mut dc = [0.0f64; 2];
        for lambda in 0..2 {
            let est = fetal_estimate(recording, lambda, lo, hi, method, &mut dhf_ctx);
            ac[lambda] = ac_amplitude(&est);
            dc[lambda] = dc_level(&recording.mixed[lambda][lo..hi]);
        }
        ratios.push(modulation_ratio(ac[0], dc[0], ac[1], dc[1]));
        sao2.push(draw.sao2);
    }
    let cal = Calibration::fit(&ratios, &sao2);
    let pred = cal.predict_many(&ratios);
    (pearson(&pred, &sao2), ratios)
}

fn main() {
    let watch = Stopwatch::start();
    println!("=== Figure 6: in-vivo SpO2 estimation (simulated TFO) ===");
    // The full 40-minute protocol is heavy for CI-scale runs: scale it
    // down while preserving structure (7 draws, desaturation episode).
    let scale = if fast_mode() { 0.15 } else { env_f64("DHF_INVIVO_SCALE", 0.25) };
    let iterations = dhf_iterations().min(150);
    println!("(protocol scale {scale}, {} deep-prior iterations per round)", iterations);

    let mut dhf_corrs = Vec::new();
    let mut mask_corrs = Vec::new();
    for cfg in [InvivoConfig::sheep1(), InvivoConfig::sheep2()] {
        let sheep_id = cfg.sheep_id;
        let recording = simulate(&cfg.scaled(scale));
        let t = Stopwatch::start();
        let (mask_corr, _) = evaluate_sheep(&recording, "masking", iterations);
        let mask_time = t.secs();
        let t = Stopwatch::start();
        let (dhf_corr, _) = evaluate_sheep(&recording, "dhf", iterations);
        println!(
            "sheep {sheep_id}: correlation masking {mask_corr:.2} -> DHF {dhf_corr:.2}   \
             (masking {mask_time:.0}s, DHF {:.0}s)",
            t.secs()
        );
        mask_corrs.push(mask_corr);
        dhf_corrs.push(dhf_corr);
    }

    // Paper metric: average improvement of the correlation error (1-r).
    let err_mask: f64 = mask_corrs.iter().map(|&c| 1.0 - c).sum::<f64>() / mask_corrs.len() as f64;
    let err_dhf: f64 = dhf_corrs.iter().map(|&c| 1.0 - c).sum::<f64>() / dhf_corrs.len() as f64;
    let improvement = 100.0 * (err_mask - err_dhf) / err_mask.max(1e-9);
    println!();
    println!(
        "correlation error (1-r): masking {err_mask:.3} -> DHF {err_dhf:.3} \
         ({improvement:.1}% improvement; paper reports 80.5%)"
    );
    println!(
        "shape check: {}",
        if dhf_corrs.iter().zip(&mask_corrs).all(|(d, m)| d > m) {
            "DHF improves correlation on both sheep (matches paper)"
        } else {
            "MISMATCH"
        }
    );
    println!("total wall time: {:.0}s", watch.secs());
}
