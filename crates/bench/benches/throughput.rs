//! Streaming-engine throughput: samples/sec and sessions/sec of the
//! chunked online separator versus offline [`dhf_core::separate`], plus
//! the plan-cache invariant (steady-state chunks build no new FFT plans —
//! same-size repeated transforms reuse one cached plan, so the hot path
//! does no per-frame twiddle recomputation).
//!
//! Besides the human-readable summary, the run writes a machine-readable
//! `BENCH_dsp.json` (samples/sec offline + streaming, plan counts) into
//! `target/bench-artifacts/` so the perf trajectory is tracked across
//! PRs; CI runs the fast mode and uploads it as an artifact.
//!
//! Knobs: `DHF_FAST=1` shrinks the workload for smoke runs.

use criterion::{criterion_group, Criterion};
use dhf_bench::{
    dhf_iterations, fast_mode, stage_breakdown_json, write_bench_json, JsonObject, Stopwatch,
};
use dhf_core::{DhfConfig, RoundContext};
use dhf_dsp::simd;
use dhf_nn::{DeepPriorNet, NetConfig};
use dhf_stream::{separate_streamed, HpssFrontConfig, StreamingConfig, StreamingSeparator};
use dhf_tensor::{Scalar, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Two drifting quasi-periodic sources, rendered long enough for many
/// chunks.
fn make_mix(fs: f64, n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 6.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 9.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + h2 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0, 0.5);
    let s2 = render(&track2, 0.35, 0.3);
    let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
    (mix, vec![track1, track2])
}

/// Deterministic low-cost pipeline so the bench isolates engine overhead
/// (chunking, stitching, FFT planning) from deep-prior training time.
fn bench_dhf_cfg() -> DhfConfig {
    DhfConfig::fast().with_harmonic_interp()
}

fn stream_cfg() -> StreamingConfig {
    StreamingConfig::new(3000, 600, bench_dhf_cfg()).expect("valid streaming config")
}

fn bench_offline(c: &mut Criterion) {
    let fs = 100.0;
    let n = if fast_mode() { 6000 } else { 9000 };
    let (mix, tracks) = make_mix(fs, n);
    c.bench_function("offline_separate", |b| {
        b.iter(|| {
            black_box(
                dhf_core::separate(black_box(&mix), fs, black_box(&tracks), &bench_dhf_cfg())
                    .unwrap(),
            )
        })
    });
}

fn bench_streaming_session(c: &mut Criterion) {
    let fs = 100.0;
    let n = if fast_mode() { 6000 } else { 9000 };
    let (mix, tracks) = make_mix(fs, n);
    let cfg = stream_cfg();
    c.bench_function("streaming_full_session", |b| {
        b.iter(|| black_box(separate_streamed(black_box(&mix), fs, &tracks, &cfg).unwrap()))
    });
}

fn bench_streaming_steady_state(c: &mut Criterion) {
    let fs = 100.0;
    let n = 9000;
    let (mix, tracks) = make_mix(fs, n);
    let cfg = stream_cfg();
    let hop = cfg.hop();
    let mut sep = StreamingSeparator::new(fs, 2, cfg).expect("session");
    // Warm up: one full chunk builds every plan the stream will need.
    let t: Vec<&[f64]> = tracks.iter().map(|t| &t[..3000]).collect();
    sep.push(&mix[..3000], &t).expect("warm-up push");
    let plans_after_first = sep.fft_plans_built();
    let mut offset = 3000usize;
    c.bench_function("streaming_one_chunk_advance", |b| {
        b.iter(|| {
            // Feed exactly one hop (cycling through the source material),
            // which triggers exactly one chunk separation.
            if offset + hop > n {
                offset = 3000;
            }
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[offset..offset + hop]).collect();
            let blocks = sep.push(&mix[offset..offset + hop], &t).expect("push");
            offset += hop;
            black_box(blocks)
        })
    });
    // The plan-cache invariant: every steady-state chunk reused the plans
    // built by chunk 1 — no per-frame (or even per-chunk) twiddle
    // recomputation.
    assert_eq!(
        sep.fft_plans_built(),
        plans_after_first,
        "steady-state chunks must not build FFT plans"
    );
    println!(
        "plan cache: {} plans after chunk 1, {} after {} chunks — reuse holds",
        plans_after_first,
        sep.fft_plans_built(),
        (sep.samples_emitted() / hop.max(1)).max(1),
    );
}

/// Wall-clock throughput summary: samples/sec per session and concurrent
/// sessions/sec-of-signal a single core sustains in real time. Repeats
/// each path a few times and scores the best pass (steady state, warm
/// plan caches), then records everything in `BENCH_dsp.json`.
fn throughput_summary() {
    let fs = 100.0;
    let n = if fast_mode() { 6000 } else { 18000 };
    let reps = 5;
    let (mix, tracks) = make_mix(fs, n);
    let cfg = stream_cfg();
    let track_refs: Vec<&[f64]> = tracks.iter().map(Vec::as_slice).collect();

    // Streaming path: one persistent session, reset between passes so its
    // plan cache and spectrogram workspace stay warm (the serving regime).
    let mut sep = StreamingSeparator::new(fs, 2, cfg).expect("session");
    let mut t_stream = f64::INFINITY;
    let mut dropped = 0;
    for _ in 0..reps {
        sep.reset();
        let sw = Stopwatch::start();
        sep.push(&mix, &track_refs).expect("streamed push");
        dropped = sep.flush().expect("streamed flush").dropped_samples;
        t_stream = t_stream.min(sw.secs());
    }
    let stream_plans = sep.fft_plans_built();

    // HPSS front filter A/B: the same persistent-session methodology with
    // the transient-rejection filter enabled, so the enabled path's
    // overhead is tracked across PRs (the filter is off by default and
    // costs nothing when disabled — `sep` above measures that path).
    let hpss_cfg = stream_cfg().with_hpss_front(HpssFrontConfig::default());
    let mut sep_hpss = StreamingSeparator::new(fs, 2, hpss_cfg).expect("hpss session");
    let mut t_stream_hpss = f64::INFINITY;
    for _ in 0..reps {
        sep_hpss.reset();
        let sw = Stopwatch::start();
        sep_hpss.push(&mix, &track_refs).expect("hpss streamed push");
        let _ = sep_hpss.flush().expect("hpss streamed flush");
        t_stream_hpss = t_stream_hpss.min(sw.secs());
    }

    // Offline path, two methodologies so the perf trajectory stays
    // comparable across PRs:
    //  * cold — one single pass through the free `dhf_core::separate`
    //    (fresh context, plan construction included): exactly what the
    //    pre-PR-5 summary measured;
    //  * warm — best of `reps` passes through one reusable context.
    let sw = Stopwatch::start();
    let _ = dhf_core::separate(&mix, fs, &tracks, &bench_dhf_cfg()).expect("offline cold");
    let t_offline_cold = sw.secs();

    let mut ctx = RoundContext::new(&bench_dhf_cfg());
    ctx.set_collect_reports(false);
    let mut t_offline = f64::INFINITY;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        let _ = ctx.separate(&mix, fs, &tracks, 0).expect("offline");
        t_offline = t_offline.min(sw.secs());
    }
    let offline_plans = ctx.fft_plans_built();

    // Scalar-vs-SIMD A/B on the same warm context: pin dispatch to the
    // scalar reference kernels, repeat the warm-offline measurement, and
    // release the override. The results are bit-identical either way (the
    // kernel-layer contract); only the wall clock moves. Note the
    // end-to-end ratio understates the kernels themselves: the scalar
    // references are written to autovectorize at the 128-bit baseline,
    // and much of a separation round is non-kernel code — the per-kernel
    // ratios below isolate the dispatch levels.
    let simd_level = simd::active_level().to_string();
    simd::force_scalar(true);
    let mut t_offline_scalar = f64::INFINITY;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        let _ = ctx.separate(&mix, fs, &tracks, 0).expect("offline scalar");
        t_offline_scalar = t_offline_scalar.min(sw.secs());
    }
    simd::force_scalar(false);
    let kernel_ratios = kernel_ab();

    // Stage-level cost breakdown (dhf_obs tracing): the paper-default
    // configuration versus the fast configuration on the same (shorter)
    // profile signal. This is the per-stage evidence behind the
    // "deep-prior fit dominates full-config cost" claim: compare the
    // nn_fit row across the two tables.
    let warm_block = warm_start_ab();

    let n_prof = if fast_mode() { 3000 } else { 6000 };
    let (pmix, ptracks) = make_mix(fs, n_prof);
    let mut full_cfg = DhfConfig::default();
    full_cfg.inpaint.iterations = dhf_iterations();
    let full_bd = profile_stages(&pmix, fs, &ptracks, &full_cfg, if fast_mode() { 1 } else { 2 });
    let fast_bd = profile_stages(&pmix, fs, &ptracks, &DhfConfig::fast(), 3);

    let signal_secs = n as f64 / fs;
    let stream_sps = n as f64 / t_stream;
    let offline_sps = n as f64 / t_offline;
    let offline_cold_sps = n as f64 / t_offline_cold;
    let offline_scalar_sps = n as f64 / t_offline_scalar;
    let simd_speedup = t_offline_scalar / t_offline;
    // A session produces fs samples per wall-clock second; one core can
    // interleave this many sessions while staying real-time.
    let sessions = stream_sps / fs;
    println!("\n== streaming throughput ({signal_secs:.0} s signal, fs {fs} Hz) ==");
    println!(
        "offline   : {:>10.0} samples/sec warm  ({:.4} s, {offline_plans} plans; \
         {offline_cold_sps:.0} cold single-pass)",
        offline_sps, t_offline
    );
    println!(
        "streaming : {:>10.0} samples/sec  ({:.4} s, {dropped} dropped, {stream_plans} plans)",
        stream_sps, t_stream
    );
    let stream_hpss_sps = n as f64 / t_stream_hpss;
    let hpss_overhead = t_stream_hpss / t_stream;
    println!(
        "hpss front: {stream_hpss_sps:>10.0} samples/sec  ({:.4} s, {hpss_overhead:.3}x the \
         filter-off wall)",
        t_stream_hpss
    );
    println!("capacity  : {sessions:>10.1} concurrent real-time sessions/core");
    println!(
        "simd      : {simd_level} kernels {simd_speedup:.2}x over scalar \
         ({offline_scalar_sps:.0} samples/sec forced-scalar)"
    );
    println!(
        "\n== stage breakdown, full config ({} iterations, {:.0} s signal) ==\n{full_bd}",
        full_cfg.inpaint.iterations,
        n_prof as f64 / fs,
    );
    println!("== stage breakdown, fast config (same signal) ==\n{fast_bd}");

    let json = JsonObject::new()
        .str("bench", "throughput")
        .str("mode", if fast_mode() { "fast" } else { "full" })
        .num("fs", fs)
        .int("signal_samples", n as u64)
        .int("best_of", reps as u64)
        .num("offline_samples_per_sec", offline_sps)
        .num("offline_cold_samples_per_sec", offline_cold_sps)
        .num("streaming_samples_per_sec", stream_sps)
        .num("realtime_sessions_per_core", sessions)
        .int("offline_plans_built", offline_plans as u64)
        .int("streaming_plans_built", stream_plans as u64)
        .int("dropped_samples", dropped as u64)
        .obj(
            "hpss_front_filter",
            JsonObject::new()
                .num("streaming_samples_per_sec_off", stream_sps)
                .num("streaming_samples_per_sec_on", stream_hpss_sps)
                .num("overhead_x", hpss_overhead),
        )
        .obj(
            "scalar_vs_simd",
            JsonObject::new()
                .str("simd_level", &simd_level)
                .num("offline_samples_per_sec_scalar", offline_scalar_sps)
                .num("offline_samples_per_sec_simd", offline_sps)
                .num("speedup", simd_speedup)
                .obj("kernels", kernel_ratios),
        )
        .obj("warm_start", warm_block)
        .obj(
            "stage_breakdown",
            JsonObject::new()
                .int("profile_signal_samples", n_prof as u64)
                .int("full_iterations", full_cfg.inpaint.iterations as u64)
                .obj("full", stage_breakdown_json(&full_bd))
                .obj("fast", stage_breakdown_json(&fast_bd)),
        );
    let path = write_bench_json("BENCH_dsp.json", &json);
    println!("wrote {}", path.display());
}

/// Warm-start A/B: a full-configuration (paper-budget) deep-prior
/// streaming session with and without warm starting, timed on the
/// steady-state one-chunk advance — the latency a live consumer sees
/// once the first chunk has trained the prior. Also records the
/// f32-vs-f64 single-fit A/B behind the tensor stack's production
/// precision (the accuracy side of that trade is pinned by
/// `dhf_nn`'s precision tests).
fn warm_start_ab() -> JsonObject {
    let fs = 100.0;
    let chunk = 3000usize;
    let overlap = 600usize;
    // The true full-config budget, not the fast-mode override: the
    // warm-start claim is about making the paper configuration stream at
    // interactive latency, so the A/B always measures that configuration
    // (one source keeps the absolute cost bounded — per-fit cost scales
    // linearly in sources and the ratio is per fit).
    let mut dhf = DhfConfig::default();
    dhf.inpaint.warm = None; // pin cold regardless of DHF_WARM_START
    let full_iters = dhf.inpaint.iterations;
    let cold_cfg = StreamingConfig::new(chunk, overlap, dhf).expect("cold config");
    let warm_cfg = cold_cfg.clone().with_warm_start();
    let hop = cold_cfg.hop();
    let n = chunk + hop;
    let (mix, tracks) = make_mix(fs, n);
    let tracks = &tracks[..1];

    // First chunk (always a cold fit), then time exactly one chunk
    // advance: one more push of `hop` samples triggers one separation.
    let advance = |cfg: &StreamingConfig| -> (f64, u64, u64) {
        let mut sep = StreamingSeparator::new(fs, 1, cfg.clone()).expect("session");
        let t: Vec<&[f64]> = tracks.iter().map(|t| &t[..chunk]).collect();
        sep.push(&mix[..chunk], &t).expect("first chunk");
        let t: Vec<&[f64]> = tracks.iter().map(|t| &t[chunk..]).collect();
        let sw = Stopwatch::start();
        let blocks = sep.push(&mix[chunk..], &t).expect("one-chunk advance");
        let secs = sw.secs();
        black_box(blocks);
        (secs, sep.warm_hits(), sep.cold_fits())
    };
    let (t_cold, cold_session_hits, _) = advance(&cold_cfg);
    let (t_warm, warm_hits, warm_session_colds) = advance(&warm_cfg);
    assert_eq!(cold_session_hits, 0, "the cold session must never resume weights");
    assert_eq!(warm_hits, 1, "the warm session's second chunk must resume weights");
    assert_eq!(warm_session_colds, 1, "only the warm session's first chunk cold-fits");
    let speedup = t_cold / t_warm;

    // f32-vs-f64 fit A/B on a full-config-shaped prior (best of 3).
    fn fit_secs<S: Scalar>(iters: usize) -> f64 {
        let (bins, frames) = (64, 48);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut rng = StdRng::seed_from_u64(0xF32);
            let mut net: DeepPriorNet<S> =
                DeepPriorNet::new(&NetConfig::default(), bins, frames, &mut rng).expect("net");
            let target = Tensor::filled(&[1, bins, frames], S::from_f32(0.3));
            let mask = Tensor::filled(&[1, bins, frames], S::ONE);
            let sw = Stopwatch::start();
            black_box(net.fit(&target, &mask, iters, 0.01));
            best = best.min(sw.secs());
        }
        best
    }
    let fit_iters = if fast_mode() { 40 } else { 120 };
    let t_f32 = fit_secs::<f32>(fit_iters);
    let t_f64 = fit_secs::<f64>(fit_iters);

    println!("\n== warm start, full config ({full_iters} iterations, 1 source) ==");
    println!("one-chunk advance: cold {t_cold:.3} s, warm {t_warm:.3} s — {speedup:.1}x");
    println!(
        "nn fit precision : f32 {t_f32:.3} s, f64 {t_f64:.3} s — {:.2}x ({fit_iters} iters)",
        t_f64 / t_f32
    );

    JsonObject::new()
        .int("full_iterations", full_iters as u64)
        .int("chunk_samples", chunk as u64)
        .num("one_chunk_advance_secs_cold", t_cold)
        .num("one_chunk_advance_secs_warm", t_warm)
        .num("warm_speedup", speedup)
        .int("warm_fits", warm_hits)
        .obj(
            "f32_vs_f64",
            JsonObject::new()
                .int("fit_iterations", fit_iters as u64)
                .num("fit_secs_f32", t_f32)
                .num("fit_secs_f64", t_f64)
                .num("f32_speedup", t_f64 / t_f32),
        )
}

/// Stage-level profile of the offline pipeline under one configuration:
/// opens the tracing gate, runs `reps` separations, and drains this
/// thread's span ring into a fresh breakdown. The gate is opened only
/// around the profiled passes so every timing section above stays
/// untraced (tracing is cheap, but the summary measures the pipeline,
/// not the pipeline-plus-profiler).
fn profile_stages(
    mix: &[f64],
    fs: f64,
    tracks: &[Vec<f64>],
    cfg: &DhfConfig,
    reps: usize,
) -> dhf_obs::StageBreakdown {
    // Empty the ring first so leftovers from earlier sections cannot
    // leak into this profile.
    let mut discard = dhf_obs::StageBreakdown::new();
    dhf_obs::drain_thread_into(&mut discard);
    dhf_obs::set_enabled(true);
    for _ in 0..reps.max(1) {
        let _ = dhf_core::separate(mix, fs, tracks, cfg).expect("profiled separate");
    }
    dhf_obs::set_enabled(false);
    let mut bd = dhf_obs::StageBreakdown::new();
    dhf_obs::drain_thread_into(&mut bd);
    bd
}

/// Per-kernel scalar-vs-active-level speedups on hot-path-sized buffers,
/// isolating the dispatch levels from pipeline overhead (and from the
/// scalar references' own autovectorization — the ratio reported here is
/// forced-scalar dispatch over native dispatch for the same kernel entry
/// points the pipeline calls).
fn kernel_ab() -> JsonObject {
    use dhf_dsp::Complex;
    let n = 4096usize;
    let iters = 2000;
    let a: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 97) as f64 / 97.0 - 0.5).collect();
    let b: Vec<f64> = (0..n).map(|i| ((i * 53 + 29) % 89) as f64 / 89.0 - 0.5).collect();
    let cplx: Vec<Complex> = a.iter().zip(&b).map(|(&r, &i)| Complex::new(r, i)).collect();
    let tw: Vec<Complex> =
        (0..n / 2).map(|k| Complex::cis(-std::f64::consts::TAU * k as f64 / n as f64)).collect();

    // Best-of-3 wall clock of `f` run `iters` times under each dispatch
    // mode; returns scalar-time / native-time.
    let ratio = |mut f: Box<dyn FnMut()>| -> f64 {
        let mut best = [f64::INFINITY; 2];
        for (mode, slot) in [(true, 0usize), (false, 1usize)] {
            simd::force_scalar(mode);
            for _ in 0..3 {
                let sw = Stopwatch::start();
                for _ in 0..iters {
                    f();
                }
                best[slot] = best[slot].min(sw.secs());
            }
        }
        simd::force_scalar(false);
        best[0] / best[1]
    };

    let (aa, bb) = (a.clone(), b.clone());
    let r_mul = {
        let mut out = vec![0.0f64; n];
        ratio(Box::new(move || {
            simd::mul_add_in_place(black_box(&mut out), black_box(&aa), black_box(&bb))
        }))
    };
    let (aa, bb) = (a.clone(), b.clone());
    let r_mag = {
        let mut out = vec![0.0f64; n];
        ratio(Box::new(move || {
            simd::magnitude_into(black_box(&mut out), black_box(&aa), black_box(&bb))
        }))
    };
    let aa = a.clone();
    let r_sum = ratio(Box::new(move || {
        black_box(simd::sum_sq(black_box(&aa)));
    }));
    let (mut buf, tw2) = (cplx.clone(), tw.clone());
    let r_fly = ratio(Box::new(move || {
        simd::radix2_stage(black_box(&mut buf), black_box(&tw2), n / 2, false)
    }));
    let z = cplx.clone();
    let twc: Vec<Complex> =
        (0..=n).map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / n as f64)).collect();
    let r_comb = {
        let mut re = vec![0.0f64; n + 1];
        let mut im = vec![0.0f64; n + 1];
        ratio(Box::new(move || {
            simd::real_split_combine_soa(
                black_box(&z),
                black_box(&twc),
                black_box(&mut re),
                black_box(&mut im),
            )
        }))
    };

    JsonObject::new()
        .num("mul_add_in_place", r_mul)
        .num("magnitude_into", r_mag)
        .num("sum_sq", r_sum)
        .num("radix2_stage", r_fly)
        .num("real_split_combine_soa", r_comb)
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = throughput;
    config = config();
    targets = bench_offline, bench_streaming_session, bench_streaming_steady_state
}

fn main() {
    throughput();
    throughput_summary();
}
