//! **Figure 5(a)** — DHF's SDR improvement over the best prior method as
//! a function of the masked-energy ratio (the fraction of energy hidden
//! by a round's mask that belongs to the target source).
//!
//! Expected shape: prior methods struggle precisely when the masked
//! energy ratio is low (a weak target buried under strong overlapping
//! interference); DHF's improvement is largest there.

use dhf_bench::{baseline_roster, bench_dhf_config, prepare_mix, run_baseline, run_dhf, Stopwatch};
use dhf_core::PatternAligner;
use dhf_dsp::stft::{stft, StftConfig};
use dhf_metrics::masked_energy_ratio;

fn main() {
    let watch = Stopwatch::start();
    println!("=== Figure 5a: DHF SDR gain vs masked-energy ratio ===");
    let cfg = bench_dhf_config();
    let baselines = baseline_roster();
    println!("{:<18} {:>8} {:>12} {:>10} {:>10}", "case", "MER", "best prior", "DHF", "gain(dB)");

    let mut series: Vec<(f64, f64)> = Vec::new();
    for mix_idx in 1..=5 {
        let prepared = prepare_mix(mix_idx);
        let (dhf_scores, result) = run_dhf(&prepared, &cfg);
        let mut best_prior = vec![f64::NEG_INFINITY; prepared.mix.num_sources()];
        for b in &baselines {
            let scores = run_baseline(b.as_ref(), &prepared);
            for (s, &(sdr, _)) in scores.per_source.iter().enumerate() {
                if sdr > best_prior[s] {
                    best_prior[s] = sdr;
                }
            }
        }
        // Masked-energy ratio per round: unwarp the ground-truth target
        // with the same aligner settings and compare energy inside the
        // hidden cells.
        for round in &result.rounds {
            let si = round.source_index;
            let truth = &prepared.mix.sources[si];
            let aligner =
                PatternAligner::new(&truth.f0, prepared.mix.fs, cfg.fs_prime).expect("aligner");
            let un = aligner.unwarp(&truth.samples).expect("unwarp");
            // Match the round's actual STFT geometry.
            let window = (round.bins - 1) * 2;
            let hop = window / 4;
            let stft_cfg = StftConfig::new(window, hop, cfg.fs_prime).expect("stft config");
            if un.len() < window {
                continue;
            }
            let tspec = stft(&un.samples, &stft_cfg).expect("stft");
            let frames = tspec.frames().min(round.frames);
            // Rebuild bin-major magnitude limited to the common frames.
            let mut target_mag = vec![0.0f64; round.bins * round.frames];
            for b in 0..round.bins {
                for m in 0..frames {
                    target_mag[b * round.frames + m] = tspec.at(b, m).abs();
                }
            }
            let mer = masked_energy_ratio(&target_mag, &round.residual_magnitude, &round.hidden);
            let dhf_sdr = dhf_scores.per_source[si].0;
            let gain = dhf_sdr - best_prior[si];
            println!(
                "MSig{mix_idx} source{:<7} {:>8.3} {:>12.2} {:>10.2} {:>10.2}",
                si + 1,
                mer,
                best_prior[si],
                dhf_sdr,
                gain
            );
            series.push((mer, gain));
        }
    }

    // Shape check: average gain in the low-MER half exceeds the high-MER
    // half (DHF fills the gap where others falter).
    let mut sorted = series.clone();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let half = sorted.len() / 2;
    let low: f64 = sorted[..half].iter().map(|&(_, g)| g).sum::<f64>() / half.max(1) as f64;
    let high: f64 =
        sorted[half..].iter().map(|&(_, g)| g).sum::<f64>() / (sorted.len() - half).max(1) as f64;
    println!();
    println!(
        "shape check: mean gain at low MER {low:+.2} dB vs high MER {high:+.2} dB -> {}",
        if low > high { "largest gains at low MER (matches paper)" } else { "MISMATCH" }
    );
    println!("total wall time: {:.0}s", watch.secs());
}
