//! **Figure 5(b)** — example three-source decomposition of synthesized
//! mixed signal 5 by DHF. Prints per-source waveform agreement and writes
//! CSV traces (`time, truth, estimate` per source) to
//! `target/paper-artifacts/` for plotting.

use dhf_bench::{artifact_dir, bench_dhf_config, prepare_mix, run_dhf};
use dhf_metrics::{mse, sdr_db};
use std::io::Write as _;

fn main() {
    println!("=== Figure 5b: example waveform decomposition of MSig5 ===");
    let prepared = prepare_mix(5);
    let cfg = bench_dhf_config();
    let (_scores, result) = run_dhf(&prepared, &cfg);

    let fs = prepared.mix.fs;
    let lo = (5.0 * fs) as usize;
    let hi = prepared.mix.samples.len() - lo;
    let dir = artifact_dir();
    for (si, (truth, est)) in prepared.mix.sources.iter().zip(&result.sources).enumerate() {
        let sdr = sdr_db(&truth.samples[lo..hi], &est[lo..hi]);
        let m = mse(&truth.samples[lo..hi], &est[lo..hi]);
        println!(
            "source{}: SDR {sdr:>6.2} dB, MSE {m:.2e}  (respiration/maternal/fetal order)",
            si + 1
        );
        let path = dir.join(format!("fig5b_msig5_source{}.csv", si + 1));
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "time_s,truth,estimate").expect("csv header");
        // A 20-second excerpt is enough to see the waveforms.
        let stop = (lo + (20.0 * fs) as usize).min(hi);
        for (i, &e) in est.iter().enumerate().take(stop).skip(lo) {
            writeln!(f, "{:.3},{:.6},{:.6}", i as f64 / fs, truth.samples[i], e).expect("csv row");
        }
        println!("  trace -> {}", path.display());
    }
    println!();
    println!("round diagnostics:");
    for r in &result.rounds {
        println!(
            "  source{}: hidden {:.1}% of cells, dilation {}, {} frames",
            r.source_index + 1,
            100.0 * r.hidden_fraction,
            r.dilation,
            r.frames
        );
    }
}
