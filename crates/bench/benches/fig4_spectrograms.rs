//! **Figure 4** — time-frequency spectrograms of the five synthesized
//! mixed signals. Writes one PGM per mix to `target/paper-artifacts/` and
//! prints, per mix, the dominant ridge frequencies and band energies that
//! characterize the picture (fundamentals + harmonics of every source,
//! band-limited to [0, 12] Hz as in §4.2).

use dhf_bench::{artifact_dir, prepare_mix, write_pgm};
use dhf_dsp::stft::{stft, StftConfig};

fn main() {
    println!("=== Figure 4: spectrograms of the synthesized mixed signals ===");
    let dir = artifact_dir();
    for idx in 1..=5 {
        let prepared = prepare_mix(idx);
        let fs = prepared.mix.fs;
        // The paper plots with a 60 s window / 15 s stride; for the bench
        // durations we scale the window down to keep several frames while
        // retaining sub-0.1 Hz resolution.
        let win = ((fs * 20.0) as usize).min(prepared.observed.len() / 3);
        let hop = win / 4;
        let cfg = StftConfig::new(win, hop, fs).expect("valid stft config");
        let spec = stft(&prepared.observed, &cfg).expect("stft");
        // Crop the image to [0, 5] Hz where all the action is.
        let top_bin = cfg.frequency_to_bin(5.0);
        let frames = spec.frames();
        let mut image = vec![0.0f64; (top_bin + 1) * frames];
        for b in 0..=top_bin {
            for m in 0..frames {
                image[b * frames + m] = spec.at(b, m).abs();
            }
        }
        let path = dir.join(format!("fig4_msig{idx}.pgm"));
        write_pgm(&path, &image, top_bin + 1, frames);

        // Ridge summary: per source, the realized mean fundamental and
        // the measured spectral peak nearest to it.
        println!("MSig{idx}: {} frames x {} bins -> {}", frames, top_bin + 1, path.display());
        for (si, src) in prepared.mix.sources.iter().enumerate() {
            let mean_f0 = src.f0.iter().sum::<f64>() / src.f0.len() as f64;
            // Average magnitude over time per bin; find the local peak
            // within the source's band.
            let lo = cfg.frequency_to_bin(prepared.mix.spec.sources[si].f_min);
            let hi = cfg.frequency_to_bin(prepared.mix.spec.sources[si].f_max);
            let mut best = lo;
            let mut best_v = 0.0;
            for b in lo..=hi.min(top_bin) {
                let v: f64 = (0..frames).map(|m| spec.at(b, m).abs()).sum();
                if v > best_v {
                    best_v = v;
                    best = b;
                }
            }
            println!(
                "  source{}: mean f0 {:.2} Hz, spectrogram ridge at {:.2} Hz",
                si + 1,
                mean_f0,
                cfg.bin_frequency(best)
            );
        }
    }
    println!();
    println!("PGM images are log-magnitude, 0-5 Hz upward, time rightward.");
}
