//! **Table 2** — SDR and MSE of every separation method on the five
//! synthesized mixed signals (12 source-extraction cases), plus the
//! paper's averages (SDR averaged in linear scale, MSE geometrically).
//!
//! Expected shape versus the paper: DHF attains the best average SDR and
//! MSE; spectral masking is the strongest baseline; DHF's margin is
//! largest on the low-power sources (MSig3-s2, MSig4-s3, MSig5-s3).
//!
//! Run with `cargo bench --bench table2_separation`; see the `dhf-bench`
//! crate docs for the `DHF_*` environment knobs.

use dhf_bench::{
    baseline_roster, bench_dhf_config, dhf_iterations, duration_s, fmt_cell, prepare_mix,
    run_baseline, run_dhf, seed, MethodScores, Stopwatch,
};
use dhf_metrics::{average_mse, average_sdr_db};

fn main() {
    let watch = Stopwatch::start();
    println!("=== Table 2: SDR(db) / MSE per method, synthesized mixed signals 1-5 ===");
    println!(
        "(duration {:.0}s, deep-prior iterations {}, seed {})",
        duration_s(),
        dhf_iterations(),
        seed()
    );

    let cfg = bench_dhf_config();
    let baselines = baseline_roster();
    let mut method_names: Vec<String> = baselines.iter().map(|b| b.name().to_string()).collect();
    method_names.push("DHF".into());
    // columns[method][case] = (sdr, mse); cases enumerated mix-major.
    let mut columns: Vec<Vec<(f64, f64)>> = vec![Vec::new(); method_names.len()];
    let mut row_labels: Vec<String> = Vec::new();

    for mix_idx in 1..=5 {
        let prepared = prepare_mix(mix_idx);
        let ns = prepared.mix.num_sources();
        let mut per_method: Vec<MethodScores> = Vec::new();
        for b in &baselines {
            let t = Stopwatch::start();
            let scores = run_baseline(b.as_ref(), &prepared);
            eprintln!("  [msig{mix_idx}] {:<14} {:6.1}s", b.name(), t.secs());
            per_method.push(scores);
        }
        let t = Stopwatch::start();
        let (dhf_scores, _result) = run_dhf(&prepared, &cfg);
        eprintln!("  [msig{mix_idx}] {:<14} {:6.1}s", "DHF", t.secs());
        per_method.push(dhf_scores);

        for s in 0..ns {
            row_labels.push(format!("MSig{mix_idx} source{}", s + 1));
            for (mi, m) in per_method.iter().enumerate() {
                columns[mi].push(m.per_source[s]);
            }
        }
    }

    // Header.
    print!("{:<18}", "case");
    for name in &method_names {
        print!(" | {name:^16}");
    }
    println!();
    println!("{}", "-".repeat(18 + method_names.len() * 19));
    // Rows with per-case best-SDR marker.
    for (case, label) in row_labels.iter().enumerate() {
        print!("{label:<18}");
        let best = columns.iter().map(|c| c[case].0).fold(f64::NEG_INFINITY, f64::max);
        for col in &columns {
            let (sdr, mse_v) = col[case];
            let marker = if (sdr - best).abs() < 1e-9 { "*" } else { " " };
            print!(" |{marker}{}", fmt_cell(sdr, mse_v));
        }
        println!();
    }
    println!("{}", "-".repeat(18 + method_names.len() * 19));
    // Paper-style averages.
    print!("{:<18}", "Average");
    for col in &columns {
        let sdrs: Vec<f64> = col.iter().map(|&(s, _)| s).filter(|s| s.is_finite()).collect();
        let mses: Vec<f64> = col.iter().map(|&(_, m)| m).filter(|m| m.is_finite()).collect();
        print!(" | {}", fmt_cell(average_sdr_db(&sdrs), average_mse(&mses)));
    }
    println!();

    // Shape summary against the paper's claims.
    let dhf_col = columns.len() - 1;
    let dhf_avg = average_sdr_db(&columns[dhf_col].iter().map(|&(s, _)| s).collect::<Vec<_>>());
    let best_baseline_avg = columns[..dhf_col]
        .iter()
        .map(|c| {
            average_sdr_db(&c.iter().map(|&(s, _)| s).filter(|s| s.is_finite()).collect::<Vec<_>>())
        })
        .fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "shape check: DHF average SDR {dhf_avg:.2} dB vs best baseline {best_baseline_avg:.2} dB -> {}",
        if dhf_avg > best_baseline_avg { "DHF WINS (matches paper)" } else { "MISMATCH" }
    );
    println!("total wall time: {:.0}s", watch.secs());
}
