//! **Figure 3** — in-painting quality of the four convolution-prior
//! variants on the same masked quasi-periodic spectrogram:
//!
//! 1. conventional convolutions,
//! 2. harmonic convolutions configured as in Zhang et al. [21]
//!    (anchor > 1, max-pooling in frequency),
//! 3. the Spectrally Accurate design (anchor 1, no frequency pooling),
//! 4. SpAc plus time dilation.
//!
//! Expected shape: harmonic variants reveal the vertical harmonic pattern
//! earlier than conventional convolutions; the SpAc variants reach lower
//! hidden-region error than the anchor>1 + pooling baseline; dilation
//! helps further on pattern-aligned (constant-frequency) inputs.

use dhf_bench::{env_usize, fast_mode};
use dhf_nn::ablation::PriorVariant;
use dhf_nn::{DeepPriorNet, NetConfig};
use dhf_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a pattern-aligned-style magnitude image: constant harmonic rows
/// (the target at 1 "Hz" with decaying harmonics) plus a weak noise floor,
/// with a block of frames hidden, mimicking a crossover mask.
fn masked_ridge_image(bins: usize, frames: usize) -> (Tensor, Tensor, Vec<usize>) {
    let mut target = Tensor::filled(&[1, bins, frames], 0.03);
    let bins_per_hz = 8;
    for (h, amp) in [(1, 0.9f32), (2, 0.55), (3, 0.30), (4, 0.15)] {
        let row = h * bins_per_hz;
        if row < bins {
            for m in 0..frames {
                target.data_mut()[row * frames + m] = amp;
            }
        }
    }
    // Hide three frame bands (simulated crossovers) across all bins.
    let hidden: Vec<usize> = vec![frames / 5, frames / 2, 4 * frames / 5];
    let mut mask = Tensor::filled(&[1, bins, frames], 1.0);
    for &h in &hidden {
        for dm in 0..3usize {
            let m = (h + dm).min(frames - 1);
            for b in 0..bins {
                mask.data_mut()[b * frames + m] = 0.0;
            }
        }
    }
    (target, mask, hidden)
}

/// Mean squared error over the hidden cells only.
fn hidden_mse(output: &Tensor, truth: &Tensor, mask: &Tensor) -> f64 {
    let mut err = 0.0f64;
    let mut count = 0usize;
    for i in 0..truth.numel() {
        if mask.data()[i] < 0.5 {
            let d = (output.data()[i] - truth.data()[i]) as f64;
            err += d * d;
            count += 1;
        }
    }
    err / count.max(1) as f64
}

fn main() {
    let bins = 40;
    let frames = 48;
    let iters_list: Vec<usize> = if fast_mode() {
        vec![20, 60]
    } else {
        vec![env_usize("DHF_FIG3_IT1", 50), env_usize("DHF_FIG3_IT2", 150), 300]
    };
    let (target, mask, _hidden) = masked_ridge_image(bins, frames);

    println!("=== Figure 3: hidden-region reconstruction MSE by prior variant ===");
    println!("(image {bins}x{frames}, three hidden frame bands, same budget per variant)");
    print!("{:<40}", "variant");
    for it in &iters_list {
        print!(" | MSE@{it:<5}");
    }
    println!();
    println!("{}", "-".repeat(40 + iters_list.len() * 13));

    let base = NetConfig { base_channels: 8, depth: 2, ..NetConfig::default() };
    let mut results: Vec<(String, Vec<f64>)> = Vec::new();
    for variant in PriorVariant::all(6) {
        let cfg = variant.configure(&base);
        let mut row = Vec::new();
        for &iters in &iters_list {
            let mut rng = StdRng::seed_from_u64(0xF163);
            let mut net = DeepPriorNet::new(&cfg, bins, frames, &mut rng).expect("network builds");
            net.fit(&target, &mask, iters, 0.01);
            row.push(hidden_mse(&net.output_image(), &target, &mask));
        }
        print!("{:<40}", variant.label());
        for v in &row {
            print!(" | {v:>9.2e}");
        }
        println!();
        results.push((variant.label(), row));
    }

    // Shape check: SpAc-dilated beats the Zhang baseline at the final
    // budget, as Figure 3 demonstrates.
    let last = iters_list.len() - 1;
    let baseline = results[1].1[last];
    let spac_dil = results[3].1[last];
    println!();
    println!(
        "shape check: SpAc+dilation {spac_dil:.2e} vs harmonic baseline {baseline:.2e} -> {}",
        if spac_dil < baseline { "SpAc WINS (matches paper)" } else { "MISMATCH" }
    );
}
