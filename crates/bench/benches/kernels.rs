//! Criterion micro-benchmarks of the computational kernels underlying the
//! paper pipeline: FFT, STFT, harmonic convolution forward/backward, one
//! Adam step of the full SpAc LU-Net, and pattern alignment.

use criterion::{criterion_group, criterion_main, Criterion};
use dhf_core::PatternAligner;
use dhf_dsp::fft::fft_real;
use dhf_dsp::stft::{stft, StftConfig};
use dhf_nn::{DeepPriorNet, NetConfig};
use dhf_tensor::ops::harmonic;
use dhf_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let x: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("fft_real_4096", |b| b.iter(|| black_box(fft_real(black_box(&x)))));
    let y: Vec<f64> = (0..6000).map(|i| (i as f64 * 0.21).cos()).collect();
    c.bench_function("fft_real_6000_bluestein", |b| b.iter(|| black_box(fft_real(black_box(&y)))));
}

fn bench_fft_plan_cache(c: &mut Criterion) {
    use dhf_dsp::fft::FftPlanner;
    use dhf_dsp::Complex;
    let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.23).sin()).collect();
    // Hot path: one planner reused across frames — twiddles, bit-reversal
    // and scratch are built exactly once.
    let mut planner = FftPlanner::new();
    let mut half = Vec::new();
    c.bench_function("rfft_512_cached_plan", |b| {
        b.iter(|| {
            planner.rfft_into(black_box(&x), &mut half);
            black_box(&half);
        })
    });
    assert_eq!(planner.plans_built(), 2, "repeated same-size transforms must share one plan set");
    // The full-size complex transform the packed path replaced: promoting
    // the real frame to 512 complex points costs roughly twice the work.
    let mut buf = Vec::new();
    c.bench_function("fft_complex_promoted_512_cached_plan", |b| {
        b.iter(|| {
            buf.clear();
            buf.extend(x.iter().map(|&v| Complex::from_real(v)));
            planner.fft_inplace(black_box(&mut buf));
            black_box(&buf);
        })
    });
    // Cold path: a fresh planner per transform rebuilds every table — the
    // cost the cache removes from the per-frame hot loop.
    c.bench_function("rfft_512_cold_plan", |b| {
        b.iter(|| {
            let mut p = FftPlanner::new();
            let mut h = Vec::new();
            p.rfft_into(black_box(&x), &mut h);
            black_box(h)
        })
    });
}

fn bench_stft(c: &mut Criterion) {
    let fs = 100.0;
    let x: Vec<f64> = (0..9000).map(|i| (i as f64 * 0.11).sin()).collect();
    let cfg = StftConfig::new(512, 128, fs).unwrap();
    c.bench_function("stft_9000x512", |b| b.iter(|| black_box(stft(black_box(&x), &cfg).unwrap())));
    // Engine variant: reuses the spectrogram buffer as well as the plan.
    let mut engine = dhf_dsp::StftEngine::new();
    let mut spec = engine.stft(&x, &cfg).unwrap();
    c.bench_function("stft_9000x512_engine_reused", |b| {
        b.iter(|| {
            engine.stft_into(black_box(&x), &cfg, &mut spec).unwrap();
            black_box(spec.frames());
        })
    });
}

fn bench_harmonic_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // Pin the production scalar: the tensor stack is generic over f32/f64.
    let x: Tensor<f32> = Tensor::rand_normal(&[8, 65, 88], 1.0, &mut rng);
    let w = Tensor::rand_normal(&[8, 8, 4, 3], 0.2, &mut rng);
    let mut out = Tensor::zeros(&[8, 65, 88]);
    c.bench_function("harmonic_conv_fwd_8x65x88", |b| {
        b.iter(|| harmonic::forward(black_box(&x), black_box(&w), 1, 13, &mut out))
    });
    let go = Tensor::rand_normal(&[8, 65, 88], 1.0, &mut rng);
    let mut gx = Tensor::zeros(&[8, 65, 88]);
    let mut gw = Tensor::zeros(&[8, 8, 4, 3]);
    c.bench_function("harmonic_conv_bwd_8x65x88", |b| {
        b.iter(|| {
            harmonic::backward(
                black_box(&x),
                black_box(&w),
                black_box(&go),
                1,
                13,
                &mut gx,
                &mut gw,
            )
        })
    });
}

fn bench_deep_prior_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = NetConfig::default();
    let mut net = DeepPriorNet::new(&cfg, 65, 88, &mut rng).unwrap();
    let target = Tensor::filled(&[1, 65, 88], 0.2);
    let mask = Tensor::filled(&[1, 65, 88], 1.0);
    c.bench_function("spac_lunet_adam_step_65x88", |b| {
        b.iter(|| black_box(net.fit(black_box(&target), black_box(&mask), 1, 0.01)))
    });
}

fn bench_pattern_alignment(c: &mut Criterion) {
    let fs = 100.0;
    let n = 9000;
    let track: Vec<f64> = (0..n).map(|i| 1.3 + 0.2 * (i as f64 / 900.0).sin()).collect();
    let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let aligner = PatternAligner::new(&track, fs, 16.0).unwrap();
    c.bench_function("unwarp_9000", |b| {
        b.iter(|| black_box(aligner.unwarp(black_box(&signal)).unwrap()))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_fft, bench_fft_plan_cache, bench_stft, bench_harmonic_conv,
              bench_deep_prior_step, bench_pattern_alignment
}
criterion_main!(kernels);
