//! Regression bound on the *disabled* cost of `dhf_obs` tracing.
//!
//! The span API sits inside every hot loop of the pipeline, so its
//! runtime-disabled path must stay at "one relaxed atomic load" cost.
//! This test times the disabled fast path directly and fails if it ever
//! grows past a deliberately generous ceiling — loose enough for noisy
//! shared CI runners (the real cost is a few nanoseconds), tight enough
//! to catch an accidental allocation, syscall, or lock on the path.

use dhf_obs::Stage;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`passes` mean cost (seconds/call) of `f` run `iters` times.
fn per_call(iters: u32, passes: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let sw = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(sw.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// Generous CI-safe ceiling: two orders of magnitude above the measured
/// cost on a quiet machine, far below anything that touches a lock, the
/// allocator, or the clock.
const CEILING_SECS: f64 = 250e-9;

#[test]
fn disabled_span_guard_is_a_relaxed_load() {
    dhf_obs::set_enabled(false);
    let cost = per_call(1_000_000, 3, || {
        let guard = dhf_obs::span(black_box(Stage::NnFit));
        black_box(&guard);
    });
    assert!(
        cost < CEILING_SECS,
        "disabled span guard costs {:.1} ns/call (ceiling {:.0} ns)",
        cost * 1e9,
        CEILING_SECS * 1e9,
    );
}

#[test]
fn disabled_record_is_a_relaxed_load() {
    dhf_obs::set_enabled(false);
    let cost = per_call(1_000_000, 3, || {
        dhf_obs::record(black_box(Stage::QueueWait), black_box(1e-6));
    });
    assert!(
        cost < CEILING_SECS,
        "disabled record costs {:.1} ns/call (ceiling {:.0} ns)",
        cost * 1e9,
        CEILING_SECS * 1e9,
    );
    assert_eq!(dhf_obs::pending_events(), 0, "disabled record must not enqueue");
}
