//! Diagnostic: per-round behaviour of DHF on one Table-1 mix.

use dhf_bench::{bench_dhf_config, prepare_mix, score_estimates};
use dhf_core::separate;
use dhf_dsp::stats::{energy, rms};

fn main() {
    let idx: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(5);
    let prepared = prepare_mix(idx);
    let cfg = bench_dhf_config();
    let tracks = prepared.mix.f0_tracks();
    println!("mix {idx}: {} sources, {} samples", tracks.len(), prepared.observed.len());
    for (i, s) in prepared.mix.sources.iter().enumerate() {
        println!(
            "  source{}: rms {:.4}, mean f0 {:.2}",
            i + 1,
            rms(&s.samples),
            s.f0.iter().sum::<f64>() / s.f0.len() as f64
        );
    }
    let result = separate(&prepared.observed, prepared.mix.fs, &tracks, &cfg).unwrap();
    for r in &result.rounds {
        println!(
            "round -> source{}: bins {} frames {} hidden {:.2}% dil {} loss {:?}",
            r.source_index + 1,
            r.bins,
            r.frames,
            100.0 * r.hidden_fraction,
            r.dilation,
            r.train.map(|t| (t.initial_loss, t.final_loss)),
        );
    }
    for (i, est) in result.sources.iter().enumerate() {
        println!(
            "  est{}: rms {:.4} (truth {:.4}), energy ratio {:.2}",
            i + 1,
            rms(est),
            rms(&prepared.mix.sources[i].samples),
            energy(est) / energy(&prepared.mix.sources[i].samples)
        );
    }
    let scores = score_estimates(&prepared.mix, &result.sources);
    for (i, (sdr, mse)) in scores.iter().enumerate() {
        println!("  source{}: SDR {sdr:.2} dB, MSE {mse:.2e}", i + 1);
    }
}
