//! Serving-runtime load generator: drives many concurrent synthetic
//! sessions through a [`dhf_serve::SessionManager`] and reports aggregate
//! throughput plus end-to-end latency percentiles.
//!
//! Knobs (environment variables, all optional):
//!
//! * `DHF_SCENARIO` — `separation` (default: raw two-source separation
//!   sessions), `oximetry` (dual-wavelength fetal-SpO2 sessions over
//!   synthetic desaturation recordings), or `artifact` (the oximetry
//!   fleet under gait-artifact contamination with the HPSS
//!   transient-rejection front filter enabled — its cost shows up as
//!   the `hpss_filter` stage in the fleet stage table).
//! * `DHF_SESSIONS` — concurrent sessions (default 64).
//! * `DHF_WORKERS` — worker shards (default: available parallelism).
//! * `DHF_CLIENTS` — client threads generating load (default 4).
//! * `DHF_STREAM_SECONDS` — per-session stream length (default 60 s at
//!   100 Hz).
//! * `DHF_PACKET` — samples per push (default 250, i.e. 2.5 s packets).
//! * `DHF_FAST=1` — smoke settings (16 sessions, 20 s streams).
//! * `DHF_PROFILE=0` — disable `dhf_obs` stage tracing (default on:
//!   the run records per-stage latency, scrapes the fleet telemetry
//!   once a second into `stage_profile.jsonl`, and writes the final
//!   Prometheus exposition next to `BENCH_serve.json`).
//!
//! ```sh
//! cargo run --release -p dhf_bench --bin loadgen
//! DHF_SESSIONS=256 DHF_WORKERS=8 cargo run --release -p dhf_bench --bin loadgen
//! DHF_SCENARIO=oximetry cargo run --release -p dhf_bench --bin loadgen
//! ```

use dhf_bench::{
    append_jsonl, bench_json_dir, env_usize, fast_mode, stage_breakdown_json, write_bench_json,
    JsonObject,
};
use dhf_core::DhfConfig;
use dhf_oximetry::{Calibration, OximetryConfig};
use dhf_serve::{ServeConfig, SessionManager};
use dhf_stream::{HpssFrontConfig, StreamingConfig};
use dhf_synth::artifact::{self, ArtifactConfig};
use dhf_synth::dualwave::{generate, DualWaveConfig, Spo2Scenario};
use dhf_synth::invivo::{CALIBRATION_K, CALIBRATION_W0, CALIBRATION_W1};
use std::sync::Arc;
use std::time::Instant;

const FS: f64 = 100.0;

/// One synthetic device: its session id, the channel(s) it streams, and
/// the shared f0 tracks. Separation devices leave `lambda2` empty.
struct DeviceStream {
    id: dhf_serve::SessionId,
    lambda1: Vec<f64>,
    lambda2: Option<Vec<f64>>,
    tracks: Vec<Vec<f64>>,
}

/// Two drifting quasi-periodic sources (the shared `dhf_synth` fixture),
/// parameterized per session.
fn make_mix(n: usize, variant: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let duet = dhf_synth::duet::drifting_duet(FS, n, variant as u64);
    (duet.mixed, duet.f0_tracks)
}

/// Per-session dual-wavelength desaturation recording (distinct seed per
/// session) for the oximetry scenario; the artifact scenario additionally
/// contaminates both channels with a seeded gait-artifact impact train.
fn make_oximetry_stream(
    seconds: f64,
    variant: usize,
    artifact: bool,
) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let cfg = DualWaveConfig::new(Spo2Scenario::desaturation(0.55, 0.35), seconds)
        .with_seed(0xF_0E7A + variant as u64);
    let mut rec = generate(&cfg);
    if artifact {
        artifact::apply(&mut rec, &ArtifactConfig::gait(seconds, 0xA57 + variant as u64));
    }
    let [l1, l2] = rec.mixed;
    (l1, l2, vec![rec.f0.maternal, rec.f0.fetal])
}

/// One client thread: streams its slice of the session fleet round-robin,
/// packet by packet, polling as it goes. Returns separated samples and
/// SpO2 windows collected via poll (close-time remainders are counted by
/// the main thread).
fn run_client(manager: &SessionManager, sessions: &[DeviceStream], packet: usize) -> (u64, u64) {
    let n = sessions.first().map_or(0, |d| d.lambda1.len());
    let mut polled_samples = 0u64;
    let mut polled_windows = 0u64;
    let mut drain = |out: dhf_serve::SessionOutput| {
        polled_samples += out.blocks.iter().map(|b| b.len() as u64).sum::<u64>();
        polled_windows += out.spo2.len() as u64;
    };
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + packet).min(n);
        for dev in sessions {
            let t: Vec<&[f64]> = dev.tracks.iter().map(|t| &t[lo..hi]).collect();
            loop {
                let pushed = match &dev.lambda2 {
                    None => manager.push(dev.id, &dev.lambda1[lo..hi], &t),
                    Some(l2) => {
                        manager.push_oximetry(dev.id, &dev.lambda1[lo..hi], &l2[lo..hi], &t)
                    }
                };
                match pushed {
                    Ok(_) => break,
                    Err(dhf_serve::ServeError::Busy { .. }) => {
                        // Drain our own output and yield to the workers.
                        if let Ok(out) = manager.poll(dev.id) {
                            drain(out);
                        }
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("push failed: {e}"),
                }
            }
            if let Ok(out) = manager.poll(dev.id) {
                drain(out);
            }
        }
        lo = hi;
    }
    (polled_samples, polled_windows)
}

fn main() {
    let scenario = std::env::var("DHF_SCENARIO").unwrap_or_else(|_| "separation".into());
    let (oximetry, artifact) = match scenario.as_str() {
        "separation" => (false, false),
        "oximetry" => (true, false),
        "artifact" => (true, true),
        other => {
            panic!("unknown DHF_SCENARIO `{other}` (use `separation`, `oximetry`, or `artifact`)")
        }
    };
    let sessions = env_usize("DHF_SESSIONS", if fast_mode() { 16 } else { 64 });
    let default_workers = std::thread::available_parallelism().map_or(2, |p| p.get());
    let workers = env_usize("DHF_WORKERS", default_workers);
    let clients = env_usize("DHF_CLIENTS", 4).clamp(1, sessions.max(1));
    let stream_seconds = env_usize("DHF_STREAM_SECONDS", if fast_mode() { 20 } else { 60 });
    let packet = env_usize("DHF_PACKET", 250);
    let n = (stream_seconds as f64 * FS) as usize;

    // The deterministic in-painter isolates runtime overhead (scheduling,
    // queueing, stitching, FFT) from deep-prior training time, mirroring
    // the `throughput` bench.
    let dhf = DhfConfig::fast().with_harmonic_interp();
    let mut scfg = StreamingConfig::new(3000, 600, dhf).expect("valid streaming config");
    if artifact {
        scfg = scfg.with_hpss_front(HpssFrontConfig::default());
    }
    let serve_cfg = ServeConfig::new(workers).expect("valid serve config");
    // Oximetry sessions: 20 s SpO2 windows every 10 s under the
    // simulator's forward calibration.
    let ocfg = OximetryConfig::new(
        1,
        (20.0 * FS) as usize,
        (10.0 * FS) as usize,
        Calibration { w0: CALIBRATION_W0, w1: CALIBRATION_W1, k: CALIBRATION_K },
    )
    .expect("valid oximetry config");

    println!(
        "loadgen[{scenario}]: {sessions} sessions x {stream_seconds} s @ {FS} Hz, \
         {workers} workers, {clients} client threads, {packet}-sample packets"
    );

    println!("synthesizing {} samples...", sessions * n * if oximetry { 2 } else { 1 });
    let manager = Arc::new(SessionManager::new(serve_cfg));
    let mut fleet: Vec<Vec<DeviceStream>> = (0..clients).map(|_| Vec::new()).collect();
    for s in 0..sessions {
        let dev = if oximetry {
            let (lambda1, lambda2, tracks) =
                make_oximetry_stream(stream_seconds as f64, s, artifact);
            let id = manager
                .open_oximetry(FS, 2, scfg.clone(), ocfg.clone())
                .expect("open oximetry session");
            DeviceStream { id, lambda1, lambda2: Some(lambda2), tracks }
        } else {
            let (lambda1, tracks) = make_mix(n, s);
            let id = manager.open(FS, 2, scfg.clone()).expect("open session");
            DeviceStream { id, lambda1, lambda2: None, tracks }
        };
        fleet[s % clients].push(dev);
    }
    assert!(manager.open_sessions() >= 64 || sessions < 64, "loadgen drives >= 64 sessions");

    // Stage tracing (default on): workers record per-stage spans, and a
    // scraper thread snapshots the fleet telemetry once a second into a
    // JSON-lines profile so the load window's time course (queue depth,
    // throughput, per-stage counts) survives the run.
    let profile = std::env::var("DHF_PROFILE").map(|v| v != "0").unwrap_or(true);
    dhf_obs::set_enabled(profile);
    let profile_path = bench_json_dir().join("stage_profile.jsonl");
    if profile {
        let _ = std::fs::remove_file(&profile_path);
    }
    let stop_scraper = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let t0 = Instant::now();
    let (polled, polled_windows) = std::thread::scope(|scope| {
        if profile {
            let manager = Arc::clone(&manager);
            let stop = Arc::clone(&stop_scraper);
            scope.spawn(move || {
                // Millisecond ticks so the stop flag is seen promptly
                // (the scraper join sits inside the measured wall);
                // one scrape per second of load, plus a final scrape on
                // the way out so even sub-second runs leave a profile.
                let mut last_scrape = Instant::now();
                loop {
                    let stopping = stop.load(std::sync::atomic::Ordering::Relaxed);
                    if !stopping && last_scrape.elapsed().as_secs_f64() < 1.0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        continue;
                    }
                    last_scrape = Instant::now();
                    let t = manager.telemetry();
                    let line = JsonObject::new()
                        .num("t_secs", t0.elapsed().as_secs_f64())
                        .int("samples_out", t.samples_out())
                        .int("packets", t.latency().count())
                        .int(
                            "queue_depth_samples",
                            t.shards.iter().map(|s| s.queue_depth_samples as u64).sum(),
                        )
                        .int("queue_depth_hwm_samples", t.queue_depth_hwm())
                        .int("batch_packets_hwm", t.batch_packets_hwm())
                        .int("batch_sessions_hwm", t.batch_sessions_hwm())
                        .obj("stages", stage_breakdown_json(&t.stage_breakdown()));
                    append_jsonl("stage_profile.jsonl", &line);
                    if stopping {
                        break;
                    }
                }
            });
        }
        let handles: Vec<_> = fleet
            .iter()
            .map(|slice| {
                let manager = Arc::clone(&manager);
                scope.spawn(move || run_client(&manager, slice, packet))
            })
            .collect();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0u64, 0u64), |(a, b), (x, y)| (a + x, b + y));
        stop_scraper.store(true, std::sync::atomic::Ordering::Relaxed);
        out
    });
    let manager = Arc::into_inner(manager).expect("all clients joined");
    let report = manager.shutdown().expect("graceful shutdown");
    let wall = t0.elapsed();
    // Disable only after shutdown: the graceful close processes each
    // session's queued leftovers and flushes it, and those packets
    // belong in the stage profile too.
    dhf_obs::set_enabled(false);

    let closed: u64 = report
        .sessions
        .iter()
        .map(|(_, o)| o.blocks.iter().map(|b| b.len() as u64).sum::<u64>())
        .sum();
    let closed_windows: u64 = report.sessions.iter().map(|(_, o)| o.spo2.len() as u64).sum();
    let telemetry = &report.telemetry;
    println!("\nper-shard telemetry:");
    print!("{telemetry}");

    let total_out = telemetry.samples_out();
    if oximetry {
        assert_eq!(
            polled_windows + closed_windows,
            telemetry.spo2_updates(),
            "every SpO2 window is accounted for"
        );
    } else {
        assert_eq!(polled + closed, total_out, "every emitted sample is accounted for");
    }
    let fmt_ms = |p: Option<f64>| p.map_or("-".into(), |v| format!("{:.3} ms", v * 1e3));
    println!("\naggregate over the load window ({:.2} s wall):", wall.as_secs_f64());
    println!(
        "  {} sessions, {} workers: {:.0} separated samples/sec ({:.1}x realtime)",
        sessions,
        workers,
        total_out as f64 / wall.as_secs_f64(),
        total_out as f64 / wall.as_secs_f64() / FS,
    );
    if oximetry {
        let stats = telemetry.spo2_stats();
        println!(
            "  spo2 trend: {} windows ({:.1}/sec); min {:.3} / mean {:.3} / max {:.3}",
            stats.count(),
            stats.count() as f64 / wall.as_secs_f64(),
            stats.min().unwrap_or(f64::NAN),
            stats.mean().unwrap_or(f64::NAN),
            stats.max().unwrap_or(f64::NAN),
        );
    }
    println!(
        "  ingest latency (enqueue -> processed): p50 {} / p95 {} / p99 {}  ({} packets)",
        fmt_ms(telemetry.latency_percentile(50.0)),
        fmt_ms(telemetry.latency_percentile(95.0)),
        fmt_ms(telemetry.latency_percentile(99.0)),
        telemetry.latency().count(),
    );

    // Machine-readable record of the run, so the serving perf trajectory
    // is tracked across PRs (CI uploads it as an artifact).
    let p_ms = |p: f64| telemetry.latency_percentile(p).map_or(f64::NAN, |v| v * 1e3);
    let mut json = JsonObject::new()
        .str("bench", "loadgen")
        .str("scenario", &scenario)
        .int("sessions", sessions as u64)
        .int("workers", workers as u64)
        .int("clients", clients as u64)
        .int("stream_seconds", stream_seconds as u64)
        .int("packet_samples", packet as u64)
        .num("wall_seconds", wall.as_secs_f64())
        .int("samples_out", total_out)
        .num("samples_per_sec", total_out as f64 / wall.as_secs_f64())
        .num("realtime_x", total_out as f64 / wall.as_secs_f64() / FS)
        .num("latency_p50_ms", p_ms(50.0))
        .num("latency_p95_ms", p_ms(95.0))
        .num("latency_p99_ms", p_ms(99.0))
        .int("packets_processed", telemetry.latency().count())
        .int("plans_built", telemetry.plans_built())
        .int("warm_fits", telemetry.warm_hits())
        .int("cold_fits", telemetry.cold_fits())
        .int("warm_pool_size", telemetry.warm_pool_size())
        .int("dropped_samples", telemetry.dropped_samples())
        .int("queue_depth_hwm_samples", telemetry.queue_depth_hwm())
        .int("batch_packets_hwm", telemetry.batch_packets_hwm())
        .int("batch_sessions_hwm", telemetry.batch_sessions_hwm());
    if profile {
        json = json.obj("stage_breakdown", stage_breakdown_json(&telemetry.stage_breakdown()));
        // Final Prometheus exposition of the same fleet telemetry — what
        // a `/metrics` endpoint would have served at shutdown.
        let prom_path = bench_json_dir().join("loadgen.prom");
        std::fs::write(&prom_path, telemetry.prometheus()).expect("write prometheus scrape");
        println!("  wrote {} and {}", prom_path.display(), profile_path.display());
    }
    if oximetry {
        let stats = telemetry.spo2_stats();
        json = json.obj(
            "spo2",
            JsonObject::new()
                .int("windows", stats.count())
                .num("min", stats.min().unwrap_or(f64::NAN))
                .num("mean", stats.mean().unwrap_or(f64::NAN))
                .num("max", stats.max().unwrap_or(f64::NAN)),
        );
    }
    let path = write_bench_json("BENCH_serve.json", &json);
    println!("  wrote {}", path.display());
}
