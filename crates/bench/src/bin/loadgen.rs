//! Serving-runtime load generator: drives many concurrent synthetic
//! sessions through a [`dhf_serve::SessionManager`] and reports aggregate
//! throughput plus end-to-end latency percentiles.
//!
//! Knobs (environment variables, all optional):
//!
//! * `DHF_SESSIONS` — concurrent sessions (default 64).
//! * `DHF_WORKERS` — worker shards (default: available parallelism).
//! * `DHF_CLIENTS` — client threads generating load (default 4).
//! * `DHF_STREAM_SECONDS` — per-session stream length (default 60 s at
//!   100 Hz).
//! * `DHF_PACKET` — samples per push (default 250, i.e. 2.5 s packets).
//! * `DHF_FAST=1` — smoke settings (16 sessions, 20 s streams).
//!
//! ```sh
//! cargo run --release -p dhf_bench --bin loadgen
//! DHF_SESSIONS=256 DHF_WORKERS=8 cargo run --release -p dhf_bench --bin loadgen
//! ```

use dhf_bench::{env_usize, fast_mode};
use dhf_core::DhfConfig;
use dhf_serve::{ServeConfig, SessionManager};
use dhf_stream::StreamingConfig;
use std::sync::Arc;
use std::time::Instant;

const FS: f64 = 100.0;

/// One synthetic device: its session id, mixed signal, and f0 tracks.
type DeviceStream = (dhf_serve::SessionId, Vec<f64>, Vec<Vec<f64>>);

/// Two drifting quasi-periodic sources (the shared `dhf_synth` fixture),
/// parameterized per session.
fn make_mix(n: usize, variant: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let duet = dhf_synth::duet::drifting_duet(FS, n, variant as u64);
    (duet.mixed, duet.f0_tracks)
}

/// One client thread: streams its slice of the session fleet round-robin,
/// packet by packet, polling as it goes. Returns separated samples
/// collected via poll (close-time remainders are counted by the main
/// thread).
fn run_client(manager: &SessionManager, sessions: &[DeviceStream], packet: usize) -> u64 {
    let n = sessions.first().map_or(0, |(_, mix, _)| mix.len());
    let mut polled_samples = 0u64;
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + packet).min(n);
        for (id, mix, tracks) in sessions {
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            loop {
                match manager.push(*id, &mix[lo..hi], &t) {
                    Ok(_) => break,
                    Err(dhf_serve::ServeError::Busy { .. }) => {
                        // Drain our own output and yield to the workers.
                        if let Ok(out) = manager.poll(*id) {
                            polled_samples +=
                                out.blocks.iter().map(|b| b.len() as u64).sum::<u64>();
                        }
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("push failed: {e}"),
                }
            }
            if let Ok(out) = manager.poll(*id) {
                polled_samples += out.blocks.iter().map(|b| b.len() as u64).sum::<u64>();
            }
        }
        lo = hi;
    }
    polled_samples
}

fn main() {
    let sessions = env_usize("DHF_SESSIONS", if fast_mode() { 16 } else { 64 });
    let default_workers = std::thread::available_parallelism().map_or(2, |p| p.get());
    let workers = env_usize("DHF_WORKERS", default_workers);
    let clients = env_usize("DHF_CLIENTS", 4).clamp(1, sessions.max(1));
    let stream_seconds = env_usize("DHF_STREAM_SECONDS", if fast_mode() { 20 } else { 60 });
    let packet = env_usize("DHF_PACKET", 250);
    let n = (stream_seconds as f64 * FS) as usize;

    // The deterministic in-painter isolates runtime overhead (scheduling,
    // queueing, stitching, FFT) from deep-prior training time, mirroring
    // the `throughput` bench.
    let dhf = DhfConfig::fast().with_harmonic_interp();
    let scfg = StreamingConfig::new(3000, 600, dhf).expect("valid streaming config");
    let serve_cfg = ServeConfig::new(workers).expect("valid serve config");

    println!(
        "loadgen: {sessions} sessions x {stream_seconds} s @ {FS} Hz, \
         {workers} workers, {clients} client threads, {packet}-sample packets"
    );

    println!("synthesizing {} samples...", sessions * n);
    let manager = Arc::new(SessionManager::new(serve_cfg));
    let mut fleet: Vec<Vec<DeviceStream>> = (0..clients).map(|_| Vec::new()).collect();
    for s in 0..sessions {
        let (mix, tracks) = make_mix(n, s);
        let id = manager.open(FS, 2, scfg.clone()).expect("open session");
        fleet[s % clients].push((id, mix, tracks));
    }
    assert!(manager.open_sessions() >= 64 || sessions < 64, "loadgen drives >= 64 sessions");

    let t0 = Instant::now();
    let polled: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .map(|slice| {
                let manager = Arc::clone(&manager);
                scope.spawn(move || run_client(&manager, slice, packet))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });
    let manager = Arc::into_inner(manager).expect("all clients joined");
    let report = manager.shutdown().expect("graceful shutdown");
    let wall = t0.elapsed();

    let closed: u64 = report
        .sessions
        .iter()
        .map(|(_, o)| o.blocks.iter().map(|b| b.len() as u64).sum::<u64>())
        .sum();
    let telemetry = &report.telemetry;
    println!("\nper-shard telemetry:");
    print!("{telemetry}");

    let total_out = telemetry.samples_out();
    assert_eq!(polled + closed, total_out, "every emitted sample is accounted for");
    let fmt_ms = |p: Option<f64>| p.map_or("-".into(), |v| format!("{:.3} ms", v * 1e3));
    println!("\naggregate over the load window ({:.2} s wall):", wall.as_secs_f64());
    println!(
        "  {} sessions, {} workers: {:.0} separated samples/sec ({:.1}x realtime)",
        sessions,
        workers,
        total_out as f64 / wall.as_secs_f64(),
        total_out as f64 / wall.as_secs_f64() / FS,
    );
    println!(
        "  ingest latency (enqueue -> processed): p50 {} / p95 {} / p99 {}  ({} packets)",
        fmt_ms(telemetry.latency_percentile(50.0)),
        fmt_ms(telemetry.latency_percentile(95.0)),
        fmt_ms(telemetry.latency_percentile(99.0)),
        telemetry.latency().count(),
    );
}
