//! Shared harness for the DHF paper-reproduction benches.
//!
//! Each `harness = false` bench target regenerates one table or figure of
//! the paper; this crate holds the common machinery: the method roster,
//! per-mix evaluation, environment-variable knobs, table formatting and
//! PGM spectrogram export.
//!
//! Knobs (all optional):
//!
//! * `DHF_ITERS` — deep-prior iterations per round (default 200).
//! * `DHF_DURATION_S` — synthesized-signal duration (default 90 s).
//! * `DHF_SEED` — dataset seed (default 42).
//! * `DHF_FAST=1` — drastically reduced settings for smoke runs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use dhf_baselines::{
    emd::Emd, masking::SpectralMasking, nmf::Nmf, repet::Repet, repet::RepetExtended, vmd::Vmd,
    SeparationContext, Separator,
};
use dhf_core::{separate, DhfConfig, SeparationResult};
use dhf_dsp::filter::band_limit;
use dhf_metrics::{mse, sdr_db};
use dhf_synth::table1::{mixed_signal_with_duration, MixedSignal};
use std::io::Write as _;
use std::path::PathBuf;

/// Reads an environment knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads an integer environment knob with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `true` when `DHF_FAST=1` (smoke mode).
pub fn fast_mode() -> bool {
    std::env::var("DHF_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Synthesized-signal duration for benches.
pub fn duration_s() -> f64 {
    if fast_mode() {
        30.0
    } else {
        env_f64("DHF_DURATION_S", 90.0)
    }
}

/// Deep-prior iterations for benches.
pub fn dhf_iterations() -> usize {
    if fast_mode() {
        40
    } else {
        env_usize("DHF_ITERS", 200)
    }
}

/// Dataset seed.
pub fn seed() -> u64 {
    env_usize("DHF_SEED", 42) as u64
}

/// The paper's evaluation band-limit: `[0, 12] Hz` (§4.2).
pub const EVAL_BAND_HZ: f64 = 12.0;

/// The DHF configuration used by all benches (paper defaults, bench-sized
/// iteration budget). Extra knobs for ablation probes:
/// `DHF_KEEP_VISIBLE=0`, `DHF_COMB_BW`, `DHF_MASK_BW`.
pub fn bench_dhf_config() -> DhfConfig {
    let mut cfg = if fast_mode() { DhfConfig::fast() } else { DhfConfig::default() };
    cfg.inpaint.iterations = dhf_iterations();
    cfg.inpaint.keep_visible = std::env::var("DHF_KEEP_VISIBLE").map(|v| v != "0").unwrap_or(true);
    cfg.comb_bandwidth_hz = env_f64("DHF_COMB_BW", cfg.comb_bandwidth_hz);
    cfg.mask_bandwidth_hz = env_f64("DHF_MASK_BW", cfg.mask_bandwidth_hz);
    cfg
}

/// A rendered, band-limited Table-1 mix ready for evaluation.
pub struct PreparedMix {
    /// The underlying mixed signal with ground truth.
    pub mix: MixedSignal,
    /// Band-limited observation handed to every method.
    pub observed: Vec<f64>,
}

/// Renders and band-limits Table-1 mixed signal `index`.
pub fn prepare_mix(index: usize) -> PreparedMix {
    let mix = mixed_signal_with_duration(index, seed(), duration_s());
    let observed = band_limit(&mix.samples, mix.fs, EVAL_BAND_HZ).expect("valid band limit");
    PreparedMix { mix, observed }
}

/// Per-source scores of one method on one mix.
#[derive(Debug, Clone)]
pub struct MethodScores {
    /// Method display name.
    pub method: String,
    /// `(sdr_db, mse)` per source.
    pub per_source: Vec<(f64, f64)>,
}

/// Scores estimates against the ground-truth sources, skipping the edge
/// samples distorted by filter/STFT boundaries.
pub fn score_estimates(mix: &MixedSignal, estimates: &[Vec<f64>]) -> Vec<(f64, f64)> {
    let n = mix.samples.len();
    // 5 s on each side: outside every method's analysis-window taper
    // (REPET segments, DHF's unwarped windows), so the comparison
    // reflects steady-state separation quality for all methods alike.
    let margin = (5.0 * mix.fs) as usize;
    let lo = margin.min(n / 4);
    let hi = n - margin.min(n / 4);
    mix.sources
        .iter()
        .zip(estimates)
        .map(|(truth, est)| {
            (
                sdr_db(&truth.samples[lo..hi], &est[lo..hi]),
                mse(&truth.samples[lo..hi], &est[lo..hi]),
            )
        })
        .collect()
}

/// The six baselines of Table 2, in paper column order.
pub fn baseline_roster() -> Vec<Box<dyn Separator>> {
    vec![
        Box::new(Emd::default()),
        Box::new(Vmd::default()),
        Box::new(Nmf::default()),
        Box::new(Repet::default()),
        Box::new(RepetExtended::default()),
        Box::new(SpectralMasking::default()),
    ]
}

/// Runs one baseline on a prepared mix.
pub fn run_baseline(sep: &dyn Separator, prepared: &PreparedMix) -> MethodScores {
    let tracks = prepared.mix.f0_tracks();
    let ctx = SeparationContext { fs: prepared.mix.fs, f0_tracks: &tracks };
    let per_source = match sep.separate(&prepared.observed, &ctx) {
        Ok(est) => score_estimates(&prepared.mix, &est),
        Err(e) => {
            eprintln!("warning: {} failed: {e}", sep.name());
            prepared.mix.sources.iter().map(|_| (f64::NEG_INFINITY, f64::INFINITY)).collect()
        }
    };
    MethodScores { method: sep.name().to_string(), per_source }
}

/// Runs DHF on a prepared mix, returning scores plus the full result (for
/// masked-energy-ratio analysis).
pub fn run_dhf(prepared: &PreparedMix, cfg: &DhfConfig) -> (MethodScores, SeparationResult) {
    let tracks = prepared.mix.f0_tracks();
    let result =
        separate(&prepared.observed, prepared.mix.fs, &tracks, cfg).expect("DHF run failed");
    let per_source = score_estimates(&prepared.mix, &result.sources);
    (MethodScores { method: "DHF".into(), per_source }, result)
}

/// Formats an SDR/MSE cell the way Table 2 prints them.
pub fn fmt_cell(sdr: f64, mse_v: f64) -> String {
    if sdr.is_finite() {
        format!("{sdr:>7.2} {mse_v:>8.1e}")
    } else {
        format!("{:>7} {:>8}", "-inf", "-")
    }
}

/// Minimal JSON object builder for machine-readable bench artifacts
/// (`BENCH_*.json`). The workspace is offline/no-serde, so this renders
/// the small flat-ish objects the perf-tracking pipeline needs by hand.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a numeric field (non-finite values render as `null`).
    pub fn num(self, key: &str, v: f64) -> Self {
        let rendered = if v.is_finite() { format!("{v}") } else { "null".to_string() };
        self.push(key, rendered)
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, v: u64) -> Self {
        self.push(key, format!("{v}"))
    }

    /// Adds a string field (escapes quotes and backslashes).
    pub fn str(self, key: &str, v: &str) -> Self {
        let escaped: String = v
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect();
        self.push(key, format!("\"{escaped}\""))
    }

    /// Adds a nested object field.
    pub fn obj(self, key: &str, o: JsonObject) -> Self {
        let rendered = o.render();
        self.push(key, rendered)
    }

    /// Renders the object as a JSON string.
    pub fn render(&self) -> String {
        let body: Vec<String> = self.fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Renders a [`dhf_obs::StageBreakdown`] as a nested JSON object: one
/// object per non-empty stage (count, mean/p50/p95/max in milliseconds),
/// plus the ring-overflow tally. This is the `stage_breakdown` block the
/// `BENCH_*.json` artifacts carry.
pub fn stage_breakdown_json(b: &dhf_obs::StageBreakdown) -> JsonObject {
    let ms = |v: Option<f64>| v.map_or(f64::NAN, |s| s * 1e3);
    let mut out = JsonObject::new();
    for (stage, h) in b.iter_nonempty() {
        out = out.obj(
            stage.name(),
            JsonObject::new()
                .int("count", h.count())
                .num("mean_ms", ms(h.mean()))
                .num("p50_ms", ms(h.percentile(50.0)))
                .num("p95_ms", ms(h.percentile(95.0)))
                .num("max_ms", ms(h.max())),
        );
    }
    out.int("dropped_events", b.dropped_events())
}

/// Appends `obj` as one JSON-lines record to `<name>` in
/// [`bench_json_dir`] and returns the path. Used by the loadgen's
/// periodic telemetry scrape (`stage_profile.jsonl`).
pub fn append_jsonl(name: &str, obj: &JsonObject) -> PathBuf {
    let path = bench_json_dir().join(name);
    let mut file =
        std::fs::OpenOptions::new().create(true).append(true).open(&path).expect("open jsonl");
    writeln!(file, "{}", obj.render()).expect("append jsonl");
    path
}

/// The workspace `target/` directory, anchored at the workspace root
/// (`CARGO_TARGET_DIR`, else `crates/bench/../../target`) so bench
/// targets — whose working directory is the package dir — and bins
/// resolve the same location.
fn workspace_target_dir() -> PathBuf {
    std::env::var("CARGO_TARGET_DIR").map(PathBuf::from).unwrap_or_else(|_| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("target")
    })
}

/// Directory for machine-readable bench JSON (override with
/// `DHF_BENCH_JSON_DIR`; defaults to `<workspace>/target/bench-artifacts`).
pub fn bench_json_dir() -> PathBuf {
    let dir = std::env::var("DHF_BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace_target_dir().join("bench-artifacts"));
    std::fs::create_dir_all(&dir).expect("create bench json dir");
    dir
}

/// Writes `obj` as `<name>` (e.g. `BENCH_dsp.json`) into
/// [`bench_json_dir`] and returns the path.
pub fn write_bench_json(name: &str, obj: &JsonObject) -> PathBuf {
    let path = bench_json_dir().join(name);
    std::fs::write(&path, obj.render() + "\n").expect("write bench json");
    path
}

/// Output directory for figure artefacts
/// (`<workspace>/target/paper-artifacts`).
pub fn artifact_dir() -> PathBuf {
    let dir = workspace_target_dir().join("paper-artifacts");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

/// Writes a magnitude image (bin-major `bins × frames`) as an 8-bit PGM,
/// log-compressed, frequency increasing upward.
pub fn write_pgm(path: &std::path::Path, image: &[f64], bins: usize, frames: usize) {
    assert_eq!(image.len(), bins * frames);
    let peak = image.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut file = std::fs::File::create(path).expect("create pgm");
    writeln!(file, "P2\n{frames} {bins}\n255").expect("pgm header");
    for b in (0..bins).rev() {
        let row: Vec<String> = (0..frames)
            .map(|m| {
                let v = image[b * frames + m] / peak;
                let db = (20.0 * v.max(1e-4).log10()).clamp(-60.0, 0.0);
                format!("{}", ((db + 60.0) / 60.0 * 255.0) as u8)
            })
            .collect();
        writeln!(file, "{}", row.join(" ")).expect("pgm row");
    }
}

/// Simple wall-clock stopwatch for bench logs.
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}
