//! Fixed-bucket latency histogram for serving telemetry.
//!
//! Latencies span orders of magnitude (a hot-cache chunk separates in
//! microseconds, a cold plan build or a queue stall takes milliseconds to
//! seconds), so the buckets are geometrically spaced: every bucket covers
//! the same *ratio*, giving constant relative resolution at every scale.
//! Recording and merging are O(1)/O(buckets) with no allocation, so the
//! histogram can sit on a serving hot path and shards can merge their
//! histograms into one fleet-wide view at snapshot time.

/// A fixed-layout histogram of positive values (latencies, by convention
/// in seconds — any single consistent unit works).
///
/// The layout is decided at construction (`lo`, `hi`, bucket count) and
/// never changes, which is what makes [`merge`](LatencyHistogram::merge)
/// a plain per-bucket addition. Values outside `[lo, hi]` land in
/// dedicated underflow/overflow buckets, so no sample is ever lost.
/// Exact extremes are tracked separately: percentile estimates are
/// clamped to the observed range, so a single-sample histogram reports
/// that sample exactly at every percentile.
///
/// ```
/// use dhf_metrics::LatencyHistogram;
///
/// let mut shard = LatencyHistogram::for_serving();
/// for packet in 0..100u32 {
///     shard.record(0.8e-3 + 0.04e-3 * packet as f64); // 0.8 ms .. 4.8 ms
/// }
/// let (p50, p95) = (shard.percentile(50.0).unwrap(), shard.percentile(95.0).unwrap());
/// assert!(p50 <= p95 && p95 <= shard.max().unwrap());
///
/// // Per-shard histograms merge into one fleet-wide view at snapshot
/// // time (same layout, so merging is plain per-bucket addition).
/// let mut fleet = LatencyHistogram::for_serving();
/// fleet.merge(&shard);
/// assert_eq!(fleet.count(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Lower edge of the first regular bucket.
    lo: f64,
    /// Upper edge of the last regular bucket.
    hi: f64,
    /// `counts[0]` is underflow, `counts[n+1]` overflow, the `n` regular
    /// buckets sit in between with geometric edges.
    counts: Vec<u64>,
    total: u64,
    /// Running sum of every recorded value (exact values, not bucket
    /// midpoints), so [`mean`](LatencyHistogram::mean) is exact up to
    /// float rounding rather than bucket resolution.
    sum: f64,
    /// Exact observed extremes (NaN until the first record).
    min_seen: f64,
    max_seen: f64,
    /// Precomputed `ln(lo)` and per-bucket log width.
    ln_lo: f64,
    ln_step: f64,
}

/// Equality compares the recorded *distribution*: layout, bucket counts,
/// total, and exact extremes. The running `sum` is deliberately excluded —
/// its low bits depend on accumulation order, so a merged histogram and
/// one recorded sequentially can differ by an ulp while holding exactly
/// the same samples.
impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.lo == other.lo
            && self.hi == other.hi
            && self.counts == other.counts
            && self.total == other.total
            && option_eq(self.min(), other.min())
            && option_eq(self.max(), other.max())
    }
}

/// NaN-free `Option<f64>` equality (extremes are `None` until recorded).
fn option_eq(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

impl LatencyHistogram {
    /// Creates a histogram with `buckets` geometric buckets spanning
    /// `[lo, hi]`, plus underflow/overflow buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi`, both finite, and `buckets > 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && lo.is_finite(), "lo must be positive and finite");
        assert!(hi > lo && hi.is_finite(), "hi must exceed lo and be finite");
        assert!(buckets > 0, "need at least one bucket");
        let ln_lo = lo.ln();
        let ln_step = (hi.ln() - ln_lo) / buckets as f64;
        LatencyHistogram {
            lo,
            hi,
            counts: vec![0; buckets + 2],
            total: 0,
            sum: 0.0,
            min_seen: f64::NAN,
            max_seen: f64::NAN,
            ln_lo,
            ln_step,
        }
    }

    /// The default serving layout: 1 µs to 60 s in 128 geometric buckets
    /// (≈ 15% relative resolution per bucket).
    pub fn for_serving() -> Self {
        LatencyHistogram::new(1e-6, 60.0, 128)
    }

    /// Records one value. Non-finite values are ignored; non-positive
    /// values count as underflow.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        // NaN extremes mean "nothing recorded yet".
        if self.min_seen.is_nan() || v < self.min_seen {
            self.min_seen = v;
        }
        if self.max_seen.is_nan() || v > self.max_seen {
            self.max_seen = v;
        }
    }

    /// Index into `counts` (0 = underflow, len-1 = overflow).
    fn bucket_index(&self, v: f64) -> usize {
        if v < self.lo {
            return 0;
        }
        if v >= self.hi {
            return self.counts.len() - 1;
        }
        let b = ((v.ln() - self.ln_lo) / self.ln_step) as usize;
        // Guard the float edge cases at the boundaries.
        1 + b.min(self.counts.len() - 3)
    }

    /// Adds every sample of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the layouts (range or bucket count) differ — merging
    /// across layouts would silently misattribute counts.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge histograms with different layouts"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            if self.min_seen.is_nan() || other.min_seen < self.min_seen {
                self.min_seen = other.min_seen;
            }
            if self.max_seen.is_nan() || other.max_seen > self.max_seen {
                self.max_seen = other.max_seen;
            }
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of every recorded value (`0.0` while empty). Exact recorded
    /// values are summed, not bucket midpoints, so `sum / count` is the
    /// true arithmetic mean up to float rounding.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean of the recorded values, or `None` before the
    /// first record.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum / self.total as f64)
        }
    }

    /// Smallest recorded value, or `None` before the first record.
    pub fn min(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min_seen)
        }
    }

    /// Largest recorded value, or `None` before the first record.
    pub fn max(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max_seen)
        }
    }

    /// Estimates the `p`-th percentile (`p` in `[0, 100]`), or `None` for
    /// an empty histogram.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// `⌈p/100·count⌉`-th smallest sample, clamped to the exact observed
    /// `[min, max]` — so the error is bounded by the bucket's relative
    /// width, and degenerate histograms (single sample, constant stream)
    /// report exactly.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        let mut idx = self.counts.len() - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                idx = i;
                break;
            }
        }
        let raw = if idx == 0 {
            // The underflow bucket spans [min_seen, lo).
            self.min_seen
        } else if idx == self.counts.len() - 1 {
            // The overflow bucket spans [hi, max_seen].
            self.max_seen
        } else {
            // Geometric midpoint of the regular bucket's edges.
            let ln_lo = self.ln_lo + (idx - 1) as f64 * self.ln_step;
            (ln_lo + 0.5 * self.ln_step).exp()
        };
        Some(raw.clamp(self.min_seen, self.max_seen))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::for_serving()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::for_serving();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(100.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_sample_is_reported_exactly_at_every_percentile() {
        let mut h = LatencyHistogram::for_serving();
        h.record(3.7e-3);
        assert_eq!(h.count(), 1);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(3.7e-3), "p{p}");
        }
        assert_eq!(h.min(), Some(3.7e-3));
        assert_eq!(h.max(), Some(3.7e-3));
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        // 100 samples: 1 ms .. 100 ms. With 15% bucket resolution, p50
        // must land near 50 ms and p99 near 100 ms.
        let mut h = LatencyHistogram::for_serving();
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p95 = h.percentile(95.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!((p50 / 50e-3 - 1.0).abs() < 0.20, "p50 {p50}");
        assert!((p95 / 95e-3 - 1.0).abs() < 0.20, "p95 {p95}");
        assert!((p99 / 99e-3 - 1.0).abs() < 0.20, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99, "percentiles must be monotone");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new(1e-6, 10.0, 64);
        let mut b = LatencyHistogram::new(1e-6, 10.0, 64);
        let mut whole = LatencyHistogram::new(1e-6, 10.0, 64);
        for i in 0..50 {
            let v = 1e-4 * (1.0 + i as f64);
            a.record(v);
            whole.record(v);
        }
        for i in 0..30 {
            let v = 2e-2 * (1.0 + i as f64);
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal recording everything into one");
        assert_eq!(a.count(), 80);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = LatencyHistogram::for_serving();
        a.record(0.25);
        a.record(0.50);
        let before = a.clone();
        a.merge(&LatencyHistogram::for_serving());
        assert_eq!(a, before);

        let mut empty = LatencyHistogram::for_serving();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = LatencyHistogram::new(1e-6, 10.0, 64);
        let b = LatencyHistogram::new(1e-6, 10.0, 65);
        a.merge(&b);
    }

    #[test]
    fn out_of_range_samples_survive_in_edge_buckets() {
        let mut h = LatencyHistogram::new(1e-3, 1.0, 16);
        h.record(1e-9); // underflow
        h.record(1e6); // overflow
        h.record(0.0); // non-positive -> underflow
        assert_eq!(h.count(), 3);
        // NaN / infinities are dropped, not misfiled.
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        // The percentile clamp keeps estimates inside the observed range.
        assert_eq!(h.percentile(0.0), Some(0.0));
        assert_eq!(h.percentile(100.0), Some(1e6));
    }

    #[test]
    fn bucket_index_clamps_every_float_edge() {
        let h = LatencyHistogram::for_serving();
        let n = h.counts.len();
        let (last_regular, overflow) = (n - 2, n - 1);

        // The exact range boundaries: `lo` opens the first regular
        // bucket, `hi` is already overflow (buckets are half-open).
        assert_eq!(h.bucket_index(h.lo), 1);
        assert_eq!(h.bucket_index(h.hi), overflow);
        assert_eq!(h.bucket_index(h.lo.next_down()), 0);
        assert_eq!(h.bucket_index(h.hi.next_up()), overflow);
        // One ulp inside either end stays in a regular bucket — this is
        // where `(v.ln() - ln_lo) / ln_step` can round to exactly the
        // bucket count and would index out of range without the clamp.
        assert_eq!(h.bucket_index(h.lo.next_up()), 1);
        assert_eq!(h.bucket_index(h.hi.next_down()), last_regular);

        // Non-positive values never reach `ln()` (NaN index otherwise).
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(-1.0), 0);
        assert_eq!(h.bucket_index(f64::MIN_POSITIVE), 0);

        // Every interior bucket edge and its ulp-neighbours: always a
        // regular bucket, and the index is monotone in the value.
        let mut prev = 1;
        for i in 0..=(n - 2) {
            let edge = (h.ln_lo + i as f64 * h.ln_step).exp();
            for v in [edge.next_down(), edge, edge.next_up()] {
                if v < h.lo || v >= h.hi {
                    continue;
                }
                let idx = h.bucket_index(v);
                assert!((1..=last_regular).contains(&idx), "edge {i}: {v:e} -> {idx}");
                assert!(idx >= prev, "index must be monotone: {v:e} -> {idx} after {prev}");
                prev = idx;
            }
        }
    }

    #[test]
    fn sum_and_mean_on_empty_histogram() {
        let h = LatencyHistogram::for_serving();
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn sum_and_mean_track_recorded_values() {
        let mut h = LatencyHistogram::for_serving();
        h.record(1e-3);
        h.record(2e-3);
        h.record(3e-3);
        assert!((h.sum() - 6e-3).abs() < 1e-15);
        assert!((h.mean().unwrap() - 2e-3).abs() < 1e-15);
        // Non-finite values are dropped from the sum too.
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!((h.sum() - 6e-3).abs() < 1e-15);
    }

    #[test]
    fn merge_adds_sums_and_means_follow() {
        let mut a = LatencyHistogram::for_serving();
        let mut b = LatencyHistogram::for_serving();
        for i in 1..=10 {
            a.record(i as f64 * 1e-3);
        }
        for i in 1..=5 {
            b.record(i as f64 * 1e-2);
        }
        let (sa, sb) = (a.sum(), b.sum());
        a.merge(&b);
        assert!((a.sum() - (sa + sb)).abs() < 1e-12);
        assert!((a.mean().unwrap() - (sa + sb) / 15.0).abs() < 1e-12);

        // Merging an empty histogram leaves the sum untouched.
        let before = a.sum();
        a.merge(&LatencyHistogram::for_serving());
        assert_eq!(a.sum(), before);
    }

    #[test]
    fn constant_stream_reports_the_constant() {
        let mut h = LatencyHistogram::for_serving();
        for _ in 0..1000 {
            h.record(42e-3);
        }
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(h.percentile(p), Some(42e-3));
        }
    }
}
