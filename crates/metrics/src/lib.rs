//! Separation-quality metrics with the paper's aggregation rules (§4.2).
//!
//! * [`sdr_db`] — signal-to-distortion ratio in dB.
//! * [`si_sdr_db`] — scale-invariant SDR (optimal gain applied first).
//! * [`mse`] — mean squared error.
//! * [`average_sdr_db`] — "arithmetic averaging in their original linear
//!   scale": mean of the linear power ratios, reported back in dB.
//! * [`average_mse`] — geometric mean, exactly as the paper averages MSE.
//! * [`pearson`] — correlation coefficient (Figure 6's metric).
//! * [`masked_energy_ratio`] — fraction of hidden (masked) energy that
//!   belongs to the target source, the x-axis of Figure 5(a).
//! * [`LatencyHistogram`] — fixed-bucket latency distribution for the
//!   serving runtime (record/merge/percentile).
//!
//! # Example
//!
//! ```
//! let reference = vec![1.0, -1.0, 1.0, -1.0];
//! let estimate = vec![0.9, -1.1, 1.0, -0.9];
//! let sdr = dhf_metrics::sdr_db(&reference, &estimate);
//! assert!(sdr > 10.0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod latency;

pub use latency::LatencyHistogram;

/// Signal-to-distortion ratio in dB:
/// `10·log10(‖s‖² / ‖ŝ − s‖²)`.
///
/// Returns `f64::INFINITY` for an exact match and `f64::NEG_INFINITY` for a
/// zero reference.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sdr_db(reference: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(reference.len(), estimate.len(), "sdr_db requires equal lengths");
    let sig: f64 = reference.iter().map(|&v| v * v).sum();
    if sig <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let err: f64 = reference.iter().zip(estimate).map(|(&r, &e)| (e - r) * (e - r)).sum();
    if err <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (sig / err).log10()
}

/// Scale-invariant SDR: the estimate is first projected onto the reference
/// (optimal scalar gain), removing any global amplitude mismatch.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn si_sdr_db(reference: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(reference.len(), estimate.len(), "si_sdr_db requires equal lengths");
    let dot: f64 = reference.iter().zip(estimate).map(|(&r, &e)| r * e).sum();
    let sig: f64 = reference.iter().map(|&v| v * v).sum();
    if sig <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let alpha = dot / sig;
    let scaled: Vec<f64> = reference.iter().map(|&r| alpha * r).collect();
    let num: f64 = scaled.iter().map(|&v| v * v).sum();
    let den: f64 = scaled.iter().zip(estimate).map(|(&s, &e)| (e - s) * (e - s)).sum();
    if den <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (num / den).log10()
}

/// Mean squared error between reference and estimate.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn mse(reference: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(reference.len(), estimate.len(), "mse requires equal lengths");
    assert!(!reference.is_empty(), "mse of empty signals is undefined");
    reference.iter().zip(estimate).map(|(&r, &e)| (e - r) * (e - r)).sum::<f64>()
        / reference.len() as f64
}

/// Averages SDR values the paper's way: arithmetic mean of the *linear*
/// power ratios `10^(SDR/10)`, converted back to dB.
///
/// Returns `f64::NEG_INFINITY` for an empty list.
pub fn average_sdr_db(sdrs_db: &[f64]) -> f64 {
    if sdrs_db.is_empty() {
        return f64::NEG_INFINITY;
    }
    let mean_linear =
        sdrs_db.iter().map(|&d| 10f64.powf(d / 10.0)).sum::<f64>() / sdrs_db.len() as f64;
    10.0 * mean_linear.log10()
}

/// Averages MSE values the paper's way: geometric mean.
///
/// Returns 0 when the list is empty and NaN if any value is negative.
pub fn average_mse(mses: &[f64]) -> f64 {
    if mses.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = mses.iter().map(|&m| m.ln()).sum();
    (log_sum / mses.len() as f64).exp()
}

/// Pearson correlation coefficient; 0 when either input is constant.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal lengths");
    if x.len() < 2 {
        return 0.0;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx < f64::EPSILON || syy < f64::EPSILON {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Correlation *error* relative to the ideal correlation of 1, the quantity
/// the paper improves "by 80.5%" in §4.3: `1 − pearson`.
pub fn correlation_error(x: &[f64], y: &[f64]) -> f64 {
    1.0 - pearson(x, y)
}

/// Masked energy ratio (Figure 5a): the fraction of the energy hidden by a
/// separation round's mask that belongs to the target source.
///
/// `target_mag` and `mixed_mag` are magnitude images (same layout);
/// `hidden[i] == true` marks cells concealed by the mask. Low values mean
/// the round must recover a weak target buried under strong interference —
/// the regime where the paper shows DHF's largest gains.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn masked_energy_ratio(target_mag: &[f64], mixed_mag: &[f64], hidden: &[bool]) -> f64 {
    assert_eq!(target_mag.len(), mixed_mag.len());
    assert_eq!(target_mag.len(), hidden.len());
    let mut t = 0.0;
    let mut m = 0.0;
    for i in 0..hidden.len() {
        if hidden[i] {
            t += target_mag[i] * target_mag[i];
            m += mixed_mag[i] * mixed_mag[i];
        }
    }
    if m <= 0.0 {
        0.0
    } else {
        (t / m).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, f: f64) -> Vec<f64> {
        (0..n).map(|i| (std::f64::consts::TAU * f * i as f64 / n as f64).sin()).collect()
    }

    #[test]
    fn sdr_of_perfect_estimate_is_infinite() {
        let x = tone(100, 3.0);
        assert_eq!(sdr_db(&x, &x), f64::INFINITY);
    }

    #[test]
    fn sdr_of_scaled_estimate_is_finite_but_si_sdr_is_not() {
        let x = tone(256, 5.0);
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v).collect();
        let sdr = sdr_db(&x, &y);
        assert!(sdr.is_finite() && sdr < 10.0, "sdr {sdr}");
        assert_eq!(si_sdr_db(&x, &y), f64::INFINITY);
    }

    #[test]
    fn sdr_decreases_with_noise_level() {
        let x = tone(512, 4.0);
        let mk = |amp: f64| -> Vec<f64> {
            x.iter()
                .enumerate()
                .map(|(i, &v)| v + amp * ((i * 31 % 17) as f64 - 8.0) / 8.0)
                .collect()
        };
        let good = sdr_db(&x, &mk(0.01));
        let bad = sdr_db(&x, &mk(0.3));
        assert!(good > bad + 20.0, "{good} vs {bad}");
    }

    #[test]
    fn known_sdr_value() {
        // Error exactly 10 dB below the signal.
        let x = vec![1.0; 100];
        let e: Vec<f64> = (0..100)
            .map(|i| 1.0 + if i % 2 == 0 { 0.1_f64.sqrt() } else { -(0.1_f64.sqrt()) })
            .collect();
        assert!((sdr_db(&x, &e) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mse_matches_manual_computation() {
        let r = vec![1.0, 2.0, 3.0];
        let e = vec![1.5, 2.0, 2.0];
        assert!((mse(&r, &e) - (0.25 + 0.0 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_sdr_is_linear_scale_mean() {
        // 0 dB and 20 dB → linear 1 and 100 → mean 50.5 → 17.03 dB.
        let avg = average_sdr_db(&[0.0, 20.0]);
        assert!((avg - 10.0 * 50.5f64.log10()).abs() < 1e-9);
        // NOT the naive 10 dB arithmetic mean.
        assert!((avg - 10.0).abs() > 5.0);
    }

    #[test]
    fn average_mse_is_geometric() {
        let avg = average_mse(&[1e-2, 1e-4]);
        assert!((avg - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn pearson_basics() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((correlation_error(&x, &y)).abs() < 1e-12);
        let z = vec![3.3; 50];
        assert_eq!(pearson(&x, &z), 0.0);
    }

    #[test]
    fn masked_energy_ratio_bounds() {
        let target = vec![1.0, 0.0, 2.0];
        let mixed = vec![2.0, 5.0, 2.0];
        let hidden = vec![true, false, true];
        // (1 + 4) / (4 + 4) = 0.625
        assert!((masked_energy_ratio(&target, &mixed, &hidden) - 0.625).abs() < 1e-12);
        // No hidden cells → 0.
        assert_eq!(masked_energy_ratio(&target, &mixed, &[false; 3]), 0.0);
    }

    #[test]
    fn empty_aggregates_are_defined() {
        assert_eq!(average_sdr_db(&[]), f64::NEG_INFINITY);
        assert_eq!(average_mse(&[]), 0.0);
    }

    #[test]
    fn si_sdr_closed_form_orthogonal_error() {
        // Estimate = reference + orthogonal error: the optimal gain is 1,
        // so SI-SDR = 10·log10(‖s‖²/‖e‖²) exactly. With a reference of
        // alternating ±1 and an error of alternating ±0.1 in quadrature
        // (shifted by one sample on a period-4 pattern) the vectors are
        // orthogonal and the ratio is 100 → 20 dB.
        let n = 400;
        let reference: Vec<f64> = (0..n).map(|i| if i % 4 < 2 { 1.0 } else { -1.0 }).collect();
        let error: Vec<f64> = (0..n).map(|i| if (i + 1) % 4 < 2 { 0.1 } else { -0.1 }).collect();
        let dot: f64 = reference.iter().zip(&error).map(|(&a, &b)| a * b).sum();
        assert!(dot.abs() < 1e-12, "construction must be orthogonal");
        let estimate: Vec<f64> = reference.iter().zip(&error).map(|(&r, &e)| r + e).collect();
        assert!((si_sdr_db(&reference, &estimate) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn si_sdr_is_scale_invariant_where_sdr_is_not() {
        let x = tone(512, 3.0);
        let noisy: Vec<f64> =
            x.iter().enumerate().map(|(i, &v)| v + 0.05 * ((i % 7) as f64 - 3.0)).collect();
        let scaled: Vec<f64> = noisy.iter().map(|&v| 3.7 * v).collect();
        assert!((si_sdr_db(&x, &noisy) - si_sdr_db(&x, &scaled)).abs() < 1e-9);
        assert!((sdr_db(&x, &noisy) - sdr_db(&x, &scaled)).abs() > 1.0);
    }

    #[test]
    fn pearson_affine_invariance_and_anticorrelation() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 13) % 29) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| -4.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|&v| 0.5 * v - 100.0).collect();
        assert!((pearson(&x, &z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn averaging_rules_closed_form() {
        // Linear-scale SDR mean: 10 dB and 30 dB → (10 + 1000)/2 = 505 →
        // 27.03 dB, far above the naive 20 dB.
        let avg = average_sdr_db(&[10.0, 30.0]);
        assert!((avg - 10.0 * 505.0f64.log10()).abs() < 1e-9);
        // Geometric MSE mean of three known values.
        let gm = average_mse(&[1e-1, 1e-3, 1e-5]);
        assert!((gm - 1e-3).abs() < 1e-12);
        // Singleton averages are the identity under both rules.
        assert!((average_sdr_db(&[7.3]) - 7.3).abs() < 1e-9);
        assert!((average_mse(&[4.2e-3]) - 4.2e-3).abs() < 1e-12);
    }

    #[test]
    fn mse_is_symmetric_and_zero_iff_identical() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.91).cos()).collect();
        assert!((mse(&x, &y) - mse(&y, &x)).abs() < 1e-15);
        assert_eq!(mse(&x, &x), 0.0);
        assert!(mse(&x, &y) > 0.0);
    }
}
