//! Streaming engine configuration.

use crate::hpss::HpssFrontConfig;
use crate::StreamError;
use dhf_core::DhfConfig;
use dhf_nn::WarmFitParams;

/// Chunking parameters of a streaming session.
///
/// A session analyzes the stream in chunks of `chunk_len` samples spaced
/// `chunk_len - overlap` apart; consecutive chunks share `overlap` samples
/// that are cross-faded at emission. Larger chunks give each DHF round
/// more context (better separation, especially for low fundamentals that
/// need many cycles per analysis window) at the cost of latency; larger
/// overlaps smooth seams harder at the cost of redundant computation.
///
/// An optional HPSS transient-rejection front filter
/// ([`with_hpss_front`](Self::with_hpss_front)) scrubs motion artifacts
/// from each chunk before separation; it is off by default so
/// clean-signal sessions pay nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingConfig {
    chunk_len: usize,
    overlap: usize,
    dhf: DhfConfig,
    hpss_front: Option<HpssFrontConfig>,
}

impl StreamingConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] if `chunk_len` is zero or
    /// `overlap > chunk_len / 2` (each output sample must be covered by at
    /// most two chunks for the two-way cross-fade to reconstruct unit
    /// gain).
    pub fn new(chunk_len: usize, overlap: usize, dhf: DhfConfig) -> Result<Self, StreamError> {
        if chunk_len == 0 {
            return Err(StreamError::InvalidConfig {
                name: "chunk_len",
                message: "must be positive".into(),
            });
        }
        if overlap > chunk_len / 2 {
            return Err(StreamError::InvalidConfig {
                name: "overlap",
                message: format!("must be at most chunk_len/2 = {}", chunk_len / 2),
            });
        }
        Ok(StreamingConfig { chunk_len, overlap, dhf, hpss_front: None })
    }

    /// Enables the HPSS transient-rejection front filter: each analysis
    /// chunk is replaced by its harmonic-only HPSS resynthesis before
    /// separation (see [`FrontFilter`](crate::FrontFilter)). Parameters
    /// are validated against the sample rate when the session opens.
    pub fn with_hpss_front(mut self, front: HpssFrontConfig) -> Self {
        self.hpss_front = Some(front);
        self
    }

    /// The HPSS front-filter parameters, if the filter is enabled.
    pub fn hpss_front(&self) -> Option<&HpssFrontConfig> {
        self.hpss_front.as_ref()
    }

    /// Enables deep-prior warm starting with the default fine-tune budget:
    /// from the second chunk on, each source's in-painting resumes the
    /// previous chunk's trained weights with a bounded fine-tune instead of
    /// refitting from scratch (see `dhf_core::inpaint`).
    pub fn with_warm_start(self) -> Self {
        self.with_warm_start_params(WarmFitParams::default())
    }

    /// Enables deep-prior warm starting with an explicit fine-tune budget.
    pub fn with_warm_start_params(mut self, warm: WarmFitParams) -> Self {
        self.dhf.inpaint.warm = Some(warm);
        self
    }

    /// The warm fine-tune budget, if warm starting is enabled.
    pub fn warm_start(&self) -> Option<&WarmFitParams> {
        self.dhf.inpaint.warm.as_ref()
    }

    /// Samples per analysis chunk.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Samples shared (and cross-faded) between consecutive chunks.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// Stride between chunk starts: `chunk_len - overlap`.
    pub fn hop(&self) -> usize {
        self.chunk_len - self.overlap
    }

    /// The per-chunk DHF pipeline configuration.
    pub fn dhf(&self) -> &DhfConfig {
        &self.dhf
    }

    /// Worst-case samples between ingesting a sample and emitting its
    /// separated estimate (excluding [`flush`](crate::StreamingSeparator::flush)):
    /// a sample waits at most until the chunk whose emit region contains
    /// it is complete, i.e. one full chunk.
    pub fn max_latency_samples(&self) -> usize {
        self.chunk_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        let dhf = DhfConfig::fast();
        assert!(StreamingConfig::new(0, 0, dhf.clone()).is_err());
        assert!(StreamingConfig::new(100, 51, dhf.clone()).is_err());
        let ok = StreamingConfig::new(100, 50, dhf.clone()).unwrap();
        assert_eq!(ok.hop(), 50);
        assert_eq!(ok.max_latency_samples(), 100);
        assert!(StreamingConfig::new(100, 0, dhf).is_ok());
    }

    #[test]
    fn hpss_front_defaults_off_and_round_trips() {
        let cfg = StreamingConfig::new(100, 0, DhfConfig::fast()).unwrap();
        assert!(cfg.hpss_front().is_none());
        let front = HpssFrontConfig { kernel_time: 9, ..HpssFrontConfig::default() };
        let cfg = cfg.with_hpss_front(front.clone());
        assert_eq!(cfg.hpss_front(), Some(&front));
    }
}
