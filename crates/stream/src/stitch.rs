//! Overlap-add stitching of consecutive chunk estimates.

/// Raised-cosine cross-fade weights for a seam of `overlap` samples: the
/// weight of the *incoming* chunk at each seam position. The outgoing
/// chunk gets the complement, so the pair sums to exactly 1 everywhere
/// (constant-gain stitching of coherent estimates) and both ends taper
/// smoothly — sample 0 is almost entirely the outgoing chunk, the last
/// sample almost entirely the incoming one.
pub fn crossfade_weights(overlap: usize) -> Vec<f64> {
    (0..overlap)
        .map(|i| {
            let x = (i as f64 + 0.5) / overlap as f64;
            0.5 * (1.0 - (std::f64::consts::PI * x).cos())
        })
        .collect()
}

/// Blends the seam in place: `into[i] = old[i]·(1-w) + new[i]·w`, with a
/// precomputed weight table (see [`crossfade_weights`]) so per-chunk
/// blending does no allocation or trig.
///
/// # Panics
///
/// Panics if the slices disagree in length or `weights` is shorter than
/// the seam.
pub(crate) fn blend_seam(old_tail: &[f64], incoming: &[f64], weights: &[f64], into: &mut [f64]) {
    assert_eq!(old_tail.len(), incoming.len());
    assert_eq!(old_tail.len(), into.len());
    assert!(weights.len() >= into.len(), "weight table shorter than seam");
    for i in 0..into.len() {
        into[i] = old_tail[i] * (1.0 - weights[i]) + incoming[i] * weights[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_unit_gain_and_taper() {
        let w = crossfade_weights(64);
        assert_eq!(w.len(), 64);
        for (i, &wi) in w.iter().enumerate() {
            assert!((0.0..=1.0).contains(&wi), "weight {wi} at {i}");
        }
        // Monotone ramp from ~0 to ~1.
        for i in 1..w.len() {
            assert!(w[i] > w[i - 1]);
        }
        assert!(w[0] < 0.01);
        assert!(w[63] > 0.99);
        // Symmetric: w[i] + w[n-1-i] == 1 (the complement weight).
        for i in 0..64 {
            assert!((w[i] + w[63 - i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn blending_identical_estimates_is_identity() {
        let est = vec![0.3, -0.7, 1.1, 0.0, 2.5];
        let w = crossfade_weights(5);
        let mut out = vec![0.0; 5];
        blend_seam(&est, &est, &w, &mut out);
        for (a, b) in est.iter().zip(&out) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_overlap_is_fine() {
        assert!(crossfade_weights(0).is_empty());
        blend_seam(&[], &[], &[], &mut []);
    }
}
