//! The online chunked separator.

use crate::hpss::FrontFilter;
use crate::stitch::{blend_seam, crossfade_weights};
use crate::{StreamError, StreamingConfig};
use dhf_core::{DhfError, RoundContext};

/// Seed stride between chunks, so chunk `c` round `r` draws deep-prior
/// noise from salt `c·CHUNK_SALT_STRIDE + r` — never colliding with a
/// neighbouring chunk's rounds.
const CHUNK_SALT_STRIDE: u64 = 0x1000;

/// A contiguous run of separated output samples.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBlock {
    /// Absolute stream position of the first sample in the block.
    pub start: usize,
    /// Separated estimates, one inner vector per source (track order),
    /// all the same length.
    pub sources: Vec<Vec<f64>>,
}

impl StreamBlock {
    /// Number of samples in the block (per source).
    pub fn len(&self) -> usize {
        self.sources.first().map_or(0, Vec::len)
    }

    /// Whether the block carries no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of [`StreamingSeparator::flush`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlushOutcome {
    /// Final output block, if any samples were still pending.
    pub block: Option<StreamBlock>,
    /// Trailing samples that could not be separated because the leftover
    /// was too short to unwarp into one analysis window.
    pub dropped_samples: usize,
}

/// Online DHF separation with bounded latency.
///
/// Samples (and the matching per-source f0 values) are ingested
/// incrementally with [`push`](StreamingSeparator::push); whenever a full
/// analysis chunk is available the separator runs the multi-round DHF
/// pipeline on it through a persistent [`RoundContext`] (cached FFT plans
/// and reused spectrogram buffers) and emits the chunk's stride worth of
/// stitched output. Consecutive chunks overlap by
/// [`StreamingConfig::overlap`] samples; the seam is cross-faded with
/// raised-cosine weights so stitching artifacts stay far below the
/// separation error (see the equivalence property test).
///
/// ```
/// use dhf_core::DhfConfig;
/// use dhf_stream::{StreamingConfig, StreamingSeparator};
///
/// # fn main() -> Result<(), dhf_stream::StreamError> {
/// let fs = 100.0;
/// // Tiny chunks keep this example quick; production streams use ~30 s
/// // chunks (see `StreamingConfig`) for better separation quality.
/// let cfg = StreamingConfig::new(400, 100, DhfConfig::fast().with_harmonic_interp())?;
/// let mut sep = StreamingSeparator::new(fs, 1, cfg)?;
///
/// let mut emitted = 0;
/// for packet_start in (0..600).step_by(100) {
///     // 1 s packets of a 1.3 Hz quasi-periodic source, plus its f0.
///     let samples: Vec<f64> = (packet_start..packet_start + 100)
///         .map(|i| (std::f64::consts::TAU * 1.3 * i as f64 / fs).sin())
///         .collect();
///     let track = vec![1.3; 100];
///     for block in sep.push(&samples, &[&track])? {
///         assert_eq!(block.start, emitted, "blocks arrive contiguous, in order");
///         emitted += block.len();
///     }
/// }
/// let tail = sep.flush()?;
/// emitted += tail.block.map_or(0, |b| b.len());
/// assert_eq!(emitted, 600, "every ingested sample came back separated");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingSeparator {
    fs: f64,
    n_sources: usize,
    cfg: StreamingConfig,
    ctx: RoundContext,
    /// Buffered mixed samples; `buf[0]` sits at absolute position `buf_start`.
    buf: Vec<f64>,
    /// Buffered f0 tracks, indexed like `buf`.
    tracks: Vec<Vec<f64>>,
    buf_start: usize,
    /// Total samples ingested over the session.
    ingested: usize,
    /// Absolute start of the next chunk to analyze.
    next_start: usize,
    /// Chunks separated so far (drives seed decorrelation).
    chunk_index: u64,
    /// Per-source estimates for `[next_start, next_start + overlap)` from
    /// the previous chunk, awaiting the cross-fade (empty before the first
    /// chunk and right after a flush).
    tail: Vec<Vec<f64>>,
    /// Precomputed seam cross-fade weights (length = `overlap`).
    xfade: Vec<f64>,
    /// Blocks separated by a partially-failed [`push`](Self::push),
    /// delivered by the next successful push or flush.
    pending: Vec<StreamBlock>,
    /// Optional HPSS transient-rejection filter applied to each chunk
    /// before separation. Stateless across chunks (each call analyzes
    /// only its own samples), so [`reset`](Self::reset) has nothing to
    /// clear here — only its buffer capacities persist, which is the
    /// point.
    front: Option<FrontFilter>,
}

// Sessions are owned by serving-runtime worker threads and handed over at
// open; every piece of session state must stay `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StreamingSeparator>();
    assert_send::<crate::StreamingConfig>();
    assert_send::<StreamBlock>();
    assert_send::<FlushOutcome>();
    assert_send::<crate::StreamError>();
};

impl StreamingSeparator {
    /// Opens a session for `n_sources` sources sampled at `fs` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a non-positive sample
    /// rate or zero sources.
    pub fn new(fs: f64, n_sources: usize, cfg: StreamingConfig) -> Result<Self, StreamError> {
        if fs <= 0.0 || !fs.is_finite() {
            return Err(StreamError::InvalidConfig {
                name: "fs",
                message: "sample rate must be positive and finite".into(),
            });
        }
        if n_sources == 0 {
            return Err(StreamError::InvalidConfig {
                name: "n_sources",
                message: "need at least one source".into(),
            });
        }
        let mut ctx = RoundContext::new(cfg.dhf());
        // The streaming hot loop runs one separation per chunk; skip the
        // spectrogram-sized diagnostic clones the offline API collects.
        ctx.set_collect_reports(false);
        let xfade = crossfade_weights(cfg.overlap());
        let front = match cfg.hpss_front() {
            Some(fc) => Some(FrontFilter::new(fc.clone(), fs)?),
            None => None,
        };
        Ok(StreamingSeparator {
            fs,
            n_sources,
            cfg,
            ctx,
            buf: Vec::new(),
            tracks: vec![Vec::new(); n_sources],
            buf_start: 0,
            ingested: 0,
            next_start: 0,
            chunk_index: 0,
            tail: Vec::new(),
            xfade,
            pending: Vec::new(),
            front,
        })
    }

    /// The session's chunking configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.cfg
    }

    /// Sample rate the session was opened with.
    pub fn sample_rate(&self) -> f64 {
        self.fs
    }

    /// Number of sources the session separates.
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// Total samples ingested so far.
    pub fn samples_ingested(&self) -> usize {
        self.ingested
    }

    /// Absolute stream position up to which output has been emitted.
    pub fn samples_emitted(&self) -> usize {
        self.next_start
    }

    /// FFT plans built by the session's separation context; constant after
    /// the first chunk of a steady stream (the plan-cache invariant).
    pub fn fft_plans_built(&self) -> usize {
        self.ctx.fft_plans_built()
    }

    /// Deep-prior fits resumed warm from a previous chunk's weights.
    /// Always zero unless the configuration enables warm starting
    /// ([`StreamingConfig::with_warm_start`]).
    pub fn warm_hits(&self) -> u64 {
        self.ctx.warm_hits()
    }

    /// Deep-prior fits trained from scratch (first chunk, or a cold
    /// fallback after a track discontinuity changed the net architecture).
    pub fn cold_fits(&self) -> u64 {
        self.ctx.cold_fits()
    }

    /// Sources currently holding a resident trained net that the next
    /// chunk can resume.
    pub fn warm_resident(&self) -> usize {
        self.ctx.warm_resident()
    }

    /// Snapshots every resident warm net as `(source index, weights)`
    /// pairs — the hand-off format for serving runtimes that pool warm
    /// state across recycled sessions.
    pub fn export_warm_state(&self) -> Vec<(usize, dhf_nn::WeightState)> {
        self.ctx.export_warm_state()
    }

    /// Seeds per-source warm state captured from a compatible earlier
    /// session. Snapshots whose architecture does not match the nets this
    /// session builds are ignored at fit time (cold fallback), never
    /// adopted wrongly.
    pub fn import_warm_state(&mut self, state: Vec<(usize, dhf_nn::WeightState)>) {
        self.ctx.import_warm_state(state);
    }

    /// Rewinds the session to a fresh stream at position 0, discarding all
    /// buffered samples, stitching state, and pending blocks — but keeping
    /// the separation context's cached FFT plans, window tables, and
    /// spectrogram buffers hot.
    ///
    /// This is the session-reuse hook for serving runtimes: recycling a
    /// separator for a new stream of the same shape skips the first-chunk
    /// plan-building cost entirely (see the `reset_reuses_cached_plans`
    /// test).
    pub fn reset(&mut self) {
        self.buf.clear();
        for t in &mut self.tracks {
            t.clear();
        }
        self.buf_start = 0;
        self.ingested = 0;
        self.next_start = 0;
        self.chunk_index = 0;
        self.tail.clear();
        self.pending.clear();
        // Warm weights belong to the stream that trained them; a new
        // stream must cold-start so a reset session reproduces a fresh
        // one bit for bit.
        self.ctx.clear_warm_state();
    }

    /// Ingests `samples` plus each source's matching f0 values, returning
    /// every output block that became ready (zero or more).
    ///
    /// # Errors
    ///
    /// Returns a validation error (wrong track count/length, non-positive
    /// f0 — located by absolute stream position) before buffering anything,
    /// or a wrapped [`DhfError`] if a chunk separation fails. Blocks
    /// already separated by the failing call are retained and delivered by
    /// the next successful `push` or [`flush`](Self::flush) — no emitted
    /// stride is ever lost.
    pub fn push(
        &mut self,
        samples: &[f64],
        f0_tracks: &[&[f64]],
    ) -> Result<Vec<StreamBlock>, StreamError> {
        if f0_tracks.len() != self.n_sources {
            return Err(StreamError::SourceCountMismatch {
                expected: self.n_sources,
                got: f0_tracks.len(),
            });
        }
        for t in f0_tracks {
            if t.len() != samples.len() {
                return Err(StreamError::TrackLengthMismatch {
                    signal: samples.len(),
                    track: t.len(),
                });
            }
        }
        for (ti, t) in f0_tracks.iter().enumerate() {
            if let Some(i) = t.iter().position(|&f| !f.is_finite() || f <= 0.0) {
                return Err(StreamError::NonPositiveTrackValue {
                    track: ti,
                    sample: self.ingested + i,
                });
            }
        }

        self.buf.extend_from_slice(samples);
        for (stored, pushed) in self.tracks.iter_mut().zip(f0_tracks) {
            stored.extend_from_slice(pushed);
        }
        self.ingested += samples.len();

        let mut blocks = std::mem::take(&mut self.pending);
        while self.ingested >= self.next_start + self.cfg.chunk_len() {
            match self.process_chunk() {
                Ok(block) => blocks.push(block),
                Err(e) => {
                    // Keep the strides this call already separated; the
                    // next successful push or flush delivers them.
                    self.pending = blocks;
                    return Err(e);
                }
            }
        }
        Ok(blocks)
    }

    /// Separates the chunk at `next_start` and emits its stride.
    fn process_chunk(&mut self) -> Result<StreamBlock, StreamError> {
        let _span = dhf_obs::span(dhf_obs::Stage::ChunkAdvance);
        let s = self.next_start;
        let chunk_len = self.cfg.chunk_len();
        let overlap = self.cfg.overlap();
        let hop = self.cfg.hop();
        let off = s - self.buf_start;

        let mixed = match self.front.as_mut() {
            Some(f) => f.filter(&self.buf[off..off + chunk_len]),
            None => &self.buf[off..off + chunk_len],
        };
        let chunk_tracks: Vec<&[f64]> =
            self.tracks.iter().map(|t| &t[off..off + chunk_len]).collect();
        let salt = self.chunk_index * CHUNK_SALT_STRIDE;
        let result = self.ctx.separate_refs(mixed, self.fs, &chunk_tracks, salt)?;

        let mut sources = Vec::with_capacity(self.n_sources);
        for (src, est) in result.sources.iter().enumerate() {
            let mut out = vec![0.0f64; hop];
            if overlap > 0 && !self.tail.is_empty() {
                blend_seam(&self.tail[src], &est[..overlap], &self.xfade, &mut out[..overlap]);
            } else {
                out[..overlap].copy_from_slice(&est[..overlap]);
            }
            out[overlap..].copy_from_slice(&est[overlap..hop]);
            sources.push(out);
        }
        self.tail = result.sources.iter().map(|est| est[hop..].to_vec()).collect();

        self.chunk_index += 1;
        self.next_start = s + hop;
        self.discard_consumed();
        Ok(StreamBlock { start: s, sources })
    }

    /// Drops buffered samples no future chunk will read. One `chunk_len`
    /// of history *behind* the emit point is retained so that
    /// [`flush`](Self::flush) can run its final chunk at full length
    /// (reaching back past already-emitted samples) instead of a short
    /// chunk that would force the pipeline's window-shrink heuristic and
    /// degrade the stream's last seconds.
    fn discard_consumed(&mut self) {
        let keep_abs = self.next_start.saturating_sub(self.cfg.chunk_len());
        let keep_from = keep_abs.saturating_sub(self.buf_start);
        if keep_from > 0 {
            self.buf.drain(..keep_from);
            for t in &mut self.tracks {
                t.drain(..keep_from);
            }
            self.buf_start = keep_abs;
        }
    }

    /// Ends the stream: separates whatever remains past the last emitted
    /// sample as one final (shorter) chunk, cross-fades it with the stored
    /// tail, and emits everything.
    ///
    /// If the leftover is too short for even one analysis window, the
    /// stored tail is emitted as-is and the uncoverable remainder is
    /// reported in [`FlushOutcome::dropped_samples`].
    ///
    /// The session stays usable afterwards; stitching restarts at the
    /// current stream position.
    ///
    /// # Errors
    ///
    /// Propagates non-length chunk separation failures.
    pub fn flush(&mut self) -> Result<FlushOutcome, StreamError> {
        let _span = dhf_obs::span(dhf_obs::Stage::ChunkFlush);
        let s = self.next_start;
        let end = self.ingested;
        let overlap = self.cfg.overlap();
        let remaining = end.saturating_sub(s);

        let outcome = if remaining == 0 {
            FlushOutcome { block: self.take_tail_block(s), dropped_samples: 0 }
        } else {
            // Run the final chunk at full length where history allows,
            // reaching back past already-emitted samples: a short final
            // chunk would trip the pipeline's window-shrink heuristic and
            // separate the stream's last seconds with a coarser analysis
            // than every interior chunk got.
            let full_start = end.saturating_sub(self.cfg.chunk_len());
            let len = end - full_start;
            let off = full_start - self.buf_start;
            let emit_off = s - full_start;
            let mixed = match self.front.as_mut() {
                Some(f) => f.filter(&self.buf[off..off + len]),
                None => &self.buf[off..off + len],
            };
            let chunk_tracks: Vec<&[f64]> =
                self.tracks.iter().map(|t| &t[off..off + len]).collect();
            let salt = self.chunk_index * CHUNK_SALT_STRIDE;
            match self.ctx.separate_refs(mixed, self.fs, &chunk_tracks, salt) {
                Ok(result) => {
                    let seam = if self.tail.is_empty() { 0 } else { overlap.min(remaining) };
                    let mut sources = Vec::with_capacity(self.n_sources);
                    for (src, est) in result.sources.iter().enumerate() {
                        let mut out = est[emit_off..].to_vec();
                        if seam > 0 {
                            let incoming: Vec<f64> = out[..seam].to_vec();
                            blend_seam(
                                &self.tail[src][..seam],
                                &incoming,
                                &self.xfade,
                                &mut out[..seam],
                            );
                        }
                        sources.push(out);
                    }
                    FlushOutcome {
                        block: Some(StreamBlock { start: s, sources }),
                        dropped_samples: 0,
                    }
                }
                Err(DhfError::InputTooShort { .. }) => {
                    let covered = self.tail.first().map_or(0, Vec::len).min(remaining);
                    FlushOutcome {
                        block: self.take_tail_block(s),
                        dropped_samples: remaining - covered,
                    }
                }
                Err(e) => return Err(e.into()),
            }
        };

        // Reset stitching state at the new stream position.
        self.tail.clear();
        self.next_start = self.ingested;
        self.chunk_index += 1;
        self.discard_consumed();
        Ok(self.merge_pending(outcome))
    }

    /// Prepends blocks retained from a partially-failed push to the flush
    /// outcome. Pending blocks and the flush block are contiguous strides,
    /// so they merge into one block.
    fn merge_pending(&mut self, outcome: FlushOutcome) -> FlushOutcome {
        if self.pending.is_empty() {
            return outcome;
        }
        let mut drained = self.pending.drain(..);
        let mut merged = drained.next().expect("non-empty pending");
        for b in drained {
            debug_assert_eq!(merged.start + merged.len(), b.start);
            for (dst, est) in merged.sources.iter_mut().zip(&b.sources) {
                dst.extend_from_slice(est);
            }
        }
        if let Some(b) = outcome.block {
            debug_assert_eq!(merged.start + merged.len(), b.start);
            for (dst, est) in merged.sources.iter_mut().zip(&b.sources) {
                dst.extend_from_slice(est);
            }
        }
        FlushOutcome { block: Some(merged), dropped_samples: outcome.dropped_samples }
    }

    /// Wraps the stored tail (if any) as a block starting at `s`.
    fn take_tail_block(&mut self, s: usize) -> Option<StreamBlock> {
        if self.tail.is_empty() || self.tail[0].is_empty() {
            return None;
        }
        let sources = std::mem::take(&mut self.tail);
        Some(StreamBlock { start: s, sources })
    }
}

/// Convenience wrapper: streams `mixed` through a fresh session in one
/// call and returns the concatenated per-source estimates plus the count
/// of trailing samples the flush could not cover.
///
/// # Errors
///
/// Same conditions as [`StreamingSeparator::push`] / `flush`.
pub fn separate_streamed(
    mixed: &[f64],
    fs: f64,
    f0_tracks: &[Vec<f64>],
    cfg: &StreamingConfig,
) -> Result<(Vec<Vec<f64>>, usize), StreamError> {
    let mut sep = StreamingSeparator::new(fs, f0_tracks.len(), cfg.clone())?;
    let track_refs: Vec<&[f64]> = f0_tracks.iter().map(Vec::as_slice).collect();
    let mut blocks = sep.push(mixed, &track_refs)?;
    let flushed = sep.flush()?;
    if let Some(b) = flushed.block {
        blocks.push(b);
    }
    let mut out = vec![Vec::new(); f0_tracks.len()];
    for b in blocks {
        debug_assert_eq!(out[0].len(), b.start, "blocks must be contiguous from 0");
        for (src, est) in b.sources.iter().enumerate() {
            out[src].extend_from_slice(est);
        }
    }
    Ok((out, flushed.dropped_samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhf_core::{DhfConfig, DhfError};

    /// Two drifting quasi-periodic sources (same family as the core tests).
    fn make_mix(fs: f64, n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
        let track1: Vec<f64> = (0..n)
            .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 2.0).sin())
            .collect();
        let track2: Vec<f64> = (0..n)
            .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 3.0).cos())
            .collect();
        let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
            let mut phase = 0.0;
            track
                .iter()
                .map(|&f| {
                    phase += std::f64::consts::TAU * f / fs;
                    amp * (phase.sin() + h2 * (2.0 * phase).sin())
                })
                .collect()
        };
        let s1 = render(&track1, 1.0, 0.5);
        let s2 = render(&track2, 0.35, 0.3);
        let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
        (mix, s1, s2, vec![track1, track2])
    }

    fn fast_stream_cfg(chunk_len: usize, overlap: usize) -> StreamingConfig {
        StreamingConfig::new(chunk_len, overlap, DhfConfig::fast().with_harmonic_interp()).unwrap()
    }

    /// Deep-prior path (no harmonic-interp bypass) with warm starting on.
    fn warm_stream_cfg(chunk_len: usize, overlap: usize) -> StreamingConfig {
        StreamingConfig::new(chunk_len, overlap, DhfConfig::fast()).unwrap().with_warm_start()
    }

    #[test]
    fn warm_start_resumes_weights_across_chunks() {
        let fs = 100.0;
        let n = 6600;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = warm_stream_cfg(3000, 400);
        assert!(cfg.warm_start().is_some());

        let mut sep = StreamingSeparator::new(fs, 1, cfg.clone()).unwrap();
        assert_eq!(sep.warm_hits() + sep.cold_fits(), 0);
        let refs: [&[f64]; 1] = [&tracks[0]];
        sep.push(&mix, &refs).unwrap();
        // Two full chunks are complete here (the shrunken flush chunk may
        // legitimately go cold — its geometry differs — so assert before).
        assert_eq!(sep.cold_fits(), 1, "only the first chunk trains from scratch");
        assert_eq!(sep.warm_hits(), 1, "the second chunk must resume the first's weights");
        assert_eq!(sep.warm_resident(), 1);
        sep.flush().unwrap();

        // Warm sessions stay fully deterministic.
        let tracks1 = tracks[..1].to_vec();
        let (a, _) = separate_streamed(&mix, fs, &tracks1, &cfg).unwrap();
        let (b, _) = separate_streamed(&mix, fs, &tracks1, &cfg).unwrap();
        assert_eq!(a, b, "warm-started streaming must be bit-deterministic");
    }

    #[test]
    fn reset_clears_warm_state_and_reproduces_a_fresh_session() {
        let fs = 100.0;
        let n = 6600;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = warm_stream_cfg(3000, 400);
        let tracks1 = tracks[..1].to_vec();
        let (fresh, _) = separate_streamed(&mix, fs, &tracks1, &cfg).unwrap();

        let mut sep = StreamingSeparator::new(fs, 1, cfg).unwrap();
        let refs: [&[f64]; 1] = [&tracks1[0]];
        sep.push(&mix, &refs).unwrap();
        sep.flush().unwrap();
        assert!(sep.warm_resident() > 0);
        sep.reset();
        assert_eq!(sep.warm_resident(), 0, "reset must drop warm weights with the stream");

        let mut blocks = sep.push(&mix, &refs).unwrap();
        if let Some(b) = sep.flush().unwrap().block {
            blocks.push(b);
        }
        let mut reused = vec![Vec::new(); 1];
        for b in blocks {
            for (src, est) in b.sources.iter().enumerate() {
                reused[src].extend_from_slice(est);
            }
        }
        assert_eq!(reused, fresh, "warm state must not leak across reset");
    }

    #[test]
    fn exported_warm_state_warms_a_fresh_session() {
        let fs = 100.0;
        let n = 3000; // exactly one chunk
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = warm_stream_cfg(3000, 400);
        let refs: [&[f64]; 1] = [&tracks[0]];

        let mut donor = StreamingSeparator::new(fs, 1, cfg.clone()).unwrap();
        donor.push(&mix, &refs).unwrap();
        assert_eq!(donor.cold_fits(), 1);
        let state = donor.export_warm_state();
        assert_eq!(state.len(), 1, "the trained net must be exportable");

        let mut warmed = StreamingSeparator::new(fs, 1, cfg).unwrap();
        warmed.import_warm_state(state);
        warmed.push(&mix, &refs).unwrap();
        assert_eq!(warmed.cold_fits(), 0, "the seeded snapshot must be adopted");
        assert_eq!(warmed.warm_hits(), 1);
    }

    #[test]
    fn emits_hop_sized_blocks_with_bounded_latency() {
        let fs = 100.0;
        let n = 9000;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = fast_stream_cfg(3000, 600);
        let hop = cfg.hop();
        let mut sep = StreamingSeparator::new(fs, 2, cfg).unwrap();

        let mut emitted = 0usize;
        for (i, chunk) in mix.chunks(250).enumerate() {
            let lo = i * 250;
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..lo + chunk.len()]).collect();
            let blocks = sep.push(chunk, &t).unwrap();
            for b in &blocks {
                assert_eq!(b.start, emitted, "blocks must be contiguous");
                assert_eq!(b.len(), hop);
                assert_eq!(b.sources.len(), 2);
                emitted += b.len();
            }
            // Latency bound: everything older than one chunk is out.
            let ingested = lo + chunk.len();
            assert!(
                emitted + sep.config().max_latency_samples() >= ingested,
                "latency exceeded: emitted {emitted} of {ingested}"
            );
        }
        assert_eq!(emitted, sep.samples_emitted());
        assert!(emitted >= n - sep.config().max_latency_samples());

        let fin = sep.flush().unwrap();
        assert_eq!(fin.dropped_samples, 0);
        let last = fin.block.unwrap();
        assert_eq!(last.start, emitted);
        assert_eq!(emitted + last.len(), n, "flush must emit the remainder");
    }

    #[test]
    fn push_validates_tracks_with_absolute_positions() {
        let fs = 100.0;
        let cfg = fast_stream_cfg(3000, 600);
        let mut sep = StreamingSeparator::new(fs, 2, cfg).unwrap();
        let zeros = [0.0f64; 100];
        let good = vec![1.3f64; 100];
        assert!(sep.push(&zeros, &[&good, &good]).is_ok());

        // Wrong source count.
        assert!(matches!(
            sep.push(&zeros, &[&good]),
            Err(StreamError::SourceCountMismatch { expected: 2, got: 1 })
        ));
        // Wrong track length.
        let short = vec![1.3f64; 99];
        assert!(matches!(
            sep.push(&zeros, &[&good, &short]),
            Err(StreamError::TrackLengthMismatch { signal: 100, track: 99 })
        ));
        // Non-positive value at absolute stream position 100 + 40 = 140.
        let mut bad = vec![1.3f64; 100];
        bad[40] = -0.5;
        assert!(matches!(
            sep.push(&zeros, &[&good, &bad]),
            Err(StreamError::NonPositiveTrackValue { track: 1, sample: 140 })
        ));
        // A failed push buffers nothing.
        assert_eq!(sep.samples_ingested(), 100);
    }

    #[test]
    fn streaming_is_deterministic() {
        let fs = 100.0;
        let n = 7000;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = fast_stream_cfg(3000, 400);
        let (a, _) = separate_streamed(&mix, fs, &tracks, &cfg).unwrap();
        let (b, _) = separate_streamed(&mix, fs, &tracks, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chunking_is_invariant_to_push_granularity() {
        let fs = 100.0;
        let n = 7000;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = fast_stream_cfg(3000, 400);
        // All at once.
        let (all, dropped_all) = separate_streamed(&mix, fs, &tracks, &cfg).unwrap();
        // Sample-dribbled in uneven pieces.
        let mut sep = StreamingSeparator::new(fs, 2, cfg).unwrap();
        let mut emitted = vec![Vec::new(); 2];
        let mut lo = 0usize;
        for &piece in [333usize, 1000, 77, 2590, 3000].iter().cycle() {
            if lo >= n {
                break;
            }
            let hi = (lo + piece).min(n);
            let t: Vec<&[f64]> = tracks.iter().map(|t| &t[lo..hi]).collect();
            for b in sep.push(&mix[lo..hi], &t).unwrap() {
                for (src, est) in b.sources.iter().enumerate() {
                    emitted[src].extend_from_slice(est);
                }
            }
            lo = hi;
        }
        let fin = sep.flush().unwrap();
        if let Some(b) = fin.block {
            for (src, est) in b.sources.iter().enumerate() {
                emitted[src].extend_from_slice(est);
            }
        }
        assert_eq!(dropped_all, fin.dropped_samples);
        assert_eq!(all, emitted, "push granularity must not change the output");
    }

    #[test]
    fn plan_cache_settles_after_first_chunk() {
        let fs = 100.0;
        let n = 15000;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = fast_stream_cfg(3000, 600);
        let mut sep = StreamingSeparator::new(fs, 2, cfg).unwrap();
        let track_refs: Vec<&[f64]> = tracks.iter().map(Vec::as_slice).collect();

        // Feed exactly one chunk, then record the plan count.
        let t: Vec<&[f64]> = track_refs.iter().map(|t| &t[..3000]).collect();
        sep.push(&mix[..3000], &t).unwrap();
        let plans_after_first = sep.fft_plans_built();
        assert!(plans_after_first > 0);

        // Stream the rest: steady-state chunks build no new plans.
        let t: Vec<&[f64]> = track_refs.iter().map(|t| &t[3000..]).collect();
        sep.push(&mix[3000..], &t).unwrap();
        assert!(sep.samples_emitted() > 3000);
        assert_eq!(
            sep.fft_plans_built(),
            plans_after_first,
            "steady-state chunks must reuse cached FFT plans"
        );
    }

    #[test]
    fn reset_reuses_cached_plans_and_reproduces_a_fresh_session() {
        let fs = 100.0;
        let n = 7000;
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = fast_stream_cfg(3000, 400);

        // Reference: a brand-new session over the stream.
        let (fresh, fresh_dropped) = separate_streamed(&mix, fs, &tracks, &cfg).unwrap();

        // Reused: run a session once, reset, run the same stream again.
        let mut sep = StreamingSeparator::new(fs, 2, cfg).unwrap();
        let track_refs: Vec<&[f64]> = tracks.iter().map(Vec::as_slice).collect();
        sep.push(&mix, &track_refs).unwrap();
        sep.flush().unwrap();
        let plans_first_run = sep.fft_plans_built();

        sep.reset();
        assert_eq!(sep.samples_ingested(), 0);
        assert_eq!(sep.samples_emitted(), 0);
        let mut blocks = sep.push(&mix, &track_refs).unwrap();
        let fin = sep.flush().unwrap();
        if let Some(b) = fin.block {
            blocks.push(b);
        }
        let mut reused = vec![Vec::new(); 2];
        for b in blocks {
            for (src, est) in b.sources.iter().enumerate() {
                reused[src].extend_from_slice(est);
            }
        }
        assert_eq!(fin.dropped_samples, fresh_dropped);
        assert_eq!(reused, fresh, "a reset session must reproduce a fresh one bit-for-bit");
        assert_eq!(
            sep.fft_plans_built(),
            plans_first_run,
            "reset must keep the plan cache hot (no rebuilt plans on reuse)"
        );
    }

    #[test]
    fn reset_discards_pending_blocks_from_a_failed_push() {
        let fs = 100.0;
        let cfg = fast_stream_cfg(3000, 0);
        let mut sep = StreamingSeparator::new(fs, 1, cfg).unwrap();
        let n = 6000;
        let mixed: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 1.3 * i as f64 / fs).sin()).collect();
        let mut track = vec![1.3f64; 3000];
        track.resize(n, 1e-7);
        assert!(sep.push(&mixed, &[&track]).is_err());

        sep.reset();
        let good = vec![1.3f64; n];
        let blocks = sep.push(&mixed, &[&good]).unwrap();
        // Post-reset blocks restart at position 0 with nothing stale mixed in.
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks.iter().map(StreamBlock::len).sum::<usize>(), 6000);
    }

    #[test]
    fn failed_chunk_retains_earlier_blocks() {
        let fs = 100.0;
        let n = 6000;
        let cfg = fast_stream_cfg(3000, 0);
        let mut sep = StreamingSeparator::new(fs, 1, cfg).unwrap();
        let mixed: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 1.3 * i as f64 / fs).sin()).collect();
        // Healthy first chunk; the second chunk's track is so slow it
        // unwarps to nothing and fails with InputTooShort mid-push.
        let mut track = vec![1.3f64; 3000];
        track.resize(n, 1e-7);
        let err = sep.push(&mixed, &[&track]).unwrap_err();
        assert!(matches!(err, StreamError::Dhf(DhfError::InputTooShort { .. })));
        // The stride separated before the failure is not lost: flush
        // delivers it (and reports the unseparable remainder as dropped).
        let fin = sep.flush().unwrap();
        let block = fin.block.unwrap();
        assert_eq!(block.start, 0);
        assert_eq!(block.len(), 3000);
        assert_eq!(fin.dropped_samples, 3000);
    }

    #[test]
    fn flush_on_short_leftover_reports_drop() {
        let fs = 100.0;
        let n = 3100; // one chunk + 100 leftover samples (< one window)
        let (mix, _, _, tracks) = make_mix(fs, n);
        let cfg = fast_stream_cfg(3000, 600);
        let (out, dropped) = separate_streamed(&mix, fs, &tracks, &cfg).unwrap();
        // The chunk emits [0, 2400) and leaves a 600-sample tail; the
        // 700 leftover samples past 2400 still form a viable (shrunken-
        // window) final chunk, so everything is covered.
        assert_eq!(dropped, 0);
        assert_eq!(out[0].len(), n);

        // A stream far shorter than one analysis window drops everything.
        let (mix, _, _, tracks) = make_mix(fs, 50);
        let (out, dropped) = separate_streamed(&mix, fs, &tracks, &cfg).unwrap();
        assert_eq!(dropped, 50);
        assert!(out[0].is_empty());
    }
}
