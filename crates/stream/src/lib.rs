//! **Streaming DHF** — chunked online separation for continuous wearable
//! streams.
//!
//! The offline [`dhf_core::separate`] needs the whole recording up front;
//! wearables emit PPG/respiration *continuously*. This crate runs the same
//! multi-round DHF machinery on overlapping analysis chunks and stitches
//! the per-chunk source estimates with a windowed (raised-cosine)
//! overlap-add, so chunk seams do not show up in SI-SDR while output
//! latency stays bounded by one chunk:
//!
//! ```text
//! chunk c   [··········· chunk_len ···········]
//! chunk c+1              [··········· chunk_len ···········]
//!           |· emitted ·|· overlap ·|
//!                        ^ cross-faded between c and c+1
//! ```
//!
//! Each chunk is separated by a persistent [`dhf_core::RoundContext`], so
//! FFT plans, window tables, and spectrogram buffers are built once per
//! session and reused for every chunk — the property that lets one host
//! serve many concurrent sessions (see the `throughput` bench).
//!
//! # Example
//!
//! ```
//! use dhf_core::DhfConfig;
//! use dhf_stream::{StreamingConfig, StreamingSeparator};
//!
//! # fn main() -> Result<(), dhf_stream::StreamError> {
//! let fs = 100.0;
//! let cfg = StreamingConfig::new(3000, 600, DhfConfig::fast())?;
//! let mut sep = StreamingSeparator::new(fs, 2, cfg)?;
//! // Feed samples as they arrive, e.g. 1 s at a time, with the two
//! // sources' instantaneous f0 estimates.
//! let samples = vec![0.0; 100];
//! let f0_a = vec![1.3; 100];
//! let f0_b = vec![2.2; 100];
//! let blocks = sep.push(&samples, &[&f0_a, &f0_b])?;
//! for block in blocks {
//!     println!("emitted {} samples from {}", block.len(), block.start);
//! }
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hpss;
mod separator;
mod stitch;

pub use config::StreamingConfig;
pub use hpss::{FrontFilter, HpssFrontConfig};
pub use separator::{separate_streamed, FlushOutcome, StreamBlock, StreamingSeparator};
pub use stitch::crossfade_weights;

use dhf_core::DhfError;

/// Errors from the streaming engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A streaming configuration parameter was outside its valid domain.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A push supplied a different number of f0 tracks than the session
    /// was opened with.
    SourceCountMismatch {
        /// Sources declared at session start.
        expected: usize,
        /// Tracks supplied in the offending push.
        got: usize,
    },
    /// A pushed track's length differs from the pushed sample count.
    TrackLengthMismatch {
        /// Samples pushed.
        signal: usize,
        /// Length of the offending track slice.
        track: usize,
    },
    /// A pushed f0 value was non-positive or non-finite, located by
    /// source and *absolute* stream position.
    NonPositiveTrackValue {
        /// Index of the offending source.
        track: usize,
        /// Absolute sample index in the stream.
        sample: usize,
    },
    /// The underlying per-chunk DHF separation failed.
    Dhf(DhfError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::InvalidConfig { name, message } => {
                write!(f, "invalid streaming parameter `{name}`: {message}")
            }
            StreamError::SourceCountMismatch { expected, got } => {
                write!(f, "push supplied {got} f0 tracks, session has {expected} sources")
            }
            StreamError::TrackLengthMismatch { signal, track } => {
                write!(f, "pushed track length {track} does not match pushed samples {signal}")
            }
            StreamError::NonPositiveTrackValue { track, sample } => {
                write!(
                    f,
                    "f0 track {track} has a non-positive or non-finite value at stream \
                     position {sample}"
                )
            }
            StreamError::Dhf(e) => write!(f, "chunk separation failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DhfError> for StreamError {
    fn from(e: DhfError) -> Self {
        StreamError::Dhf(e)
    }
}
