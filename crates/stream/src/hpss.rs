//! Allocation-free streaming HPSS front filter.
//!
//! Motion artifacts — footfall impacts, sensor knocks, cable snags — are
//! *percussive*: broadband vertical stripes in the spectrogram, while the
//! maternal/fetal PPG mixture DHF separates is *harmonic*: narrow
//! horizontal ridges. Median-based harmonic–percussive source separation
//! (HPSS) tells the two apart with a pair of median filters, and the
//! harmonic-only resynthesis makes a cheap transient-rejection pre-filter
//! for the separation chunks.
//!
//! [`FrontFilter`] runs the same algorithm as the offline
//! `dhf_baselines::hpss::MedianHpss` reference, restructured for the
//! streaming hot loop: one [`StftEngine`] with cached FFT plans, the SoA
//! [`Spectrogram`] workspace, [`dhf_dsp::simd`] kernels for magnitudes and
//! mask application (so `DHF_FORCE_SCALAR` bit-identity holds through the
//! filter), and reusable buffers everywhere — steady state allocates
//! nothing after the first chunk.

use crate::StreamError;
use dhf_dsp::median::median_filter_2d_into;
use dhf_dsp::simd;
use dhf_dsp::stft::{Spectrogram, StftConfig, StftEngine};

/// Parameters of the streaming HPSS transient-rejection front filter.
///
/// The filter runs its *own* short STFT over each chunk, independent of
/// the separation pipeline's analysis windows: artifact rejection wants
/// time resolution comparable to an impact's ring-down (tens of
/// milliseconds to a second), far finer than the multi-second windows
/// harmonic separation needs. Defaults are tuned on the motion-artifact
/// robustness scenarios (see `tests/artifact_robustness.rs`) at the
/// repo-wide 100 Hz sample rate; the gait demonstration there uses a
/// shorter, sharper configuration picked by the same sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct HpssFrontConfig {
    /// STFT analysis window in samples (Hann). Default 128 (1.28 s at
    /// 100 Hz): long enough to resolve maternal/fetal fundamentals from
    /// DC, short enough that an impact occupies few frames.
    pub window_len: usize,
    /// STFT hop in samples. Default 32 (75 % overlap).
    pub hop: usize,
    /// Median width along the time axis (frames) for the
    /// harmonic-enhanced image. Forced odd. Default 17.
    pub kernel_time: usize,
    /// Median width along the frequency axis (bins) for the
    /// percussive-enhanced image. Forced odd. Default 17.
    pub kernel_freq: usize,
    /// Soft-mask exponent (2.0 = Wiener-like).
    pub power: f64,
    /// Multiplier on the harmonic-enhanced image before masking; raising
    /// it keeps more of the chunk.
    pub margin_h: f64,
    /// Multiplier on the percussive-enhanced image; raising it rejects
    /// more aggressively (only clearly-harmonic cells survive).
    /// Default 2.0 — the spike/wander scenarios favor a rejection bias.
    pub margin_p: f64,
}

impl Default for HpssFrontConfig {
    fn default() -> Self {
        HpssFrontConfig {
            window_len: 128,
            hop: 32,
            kernel_time: 17,
            kernel_freq: 17,
            power: 2.0,
            margin_h: 1.0,
            margin_p: 2.0,
        }
    }
}

impl HpssFrontConfig {
    /// Validates the parameters against a sample rate, returning the STFT
    /// configuration the filter will run.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] if the window/hop pair is
    /// degenerate (zero window, zero hop, hop beyond the window) or the
    /// mask shaping is non-finite.
    pub(crate) fn stft_config(&self, fs: f64) -> Result<StftConfig, StreamError> {
        if !(self.power.is_finite() && self.margin_h.is_finite() && self.margin_p.is_finite())
            || self.power <= 0.0
            || self.margin_h < 0.0
            || self.margin_p < 0.0
        {
            return Err(StreamError::InvalidConfig {
                name: "hpss_front",
                message: "power must be positive and margins non-negative and finite".into(),
            });
        }
        StftConfig::new(self.window_len, self.hop, fs)
            .map_err(|e| StreamError::InvalidConfig { name: "hpss_front", message: e.to_string() })
    }
}

/// The streaming front filter: harmonic-only HPSS resynthesis of each
/// chunk, with every buffer reused across calls.
///
/// Built by [`StreamingSeparator::new`](crate::StreamingSeparator) when
/// the session's [`StreamingConfig`](crate::StreamingConfig) carries an
/// [`HpssFrontConfig`]; also usable standalone (benches, equivalence
/// tests). The filter is stateless across chunks — each call analyzes
/// only the samples it is given — so chunk results never depend on
/// session history.
#[derive(Debug)]
pub struct FrontFilter {
    cfg: HpssFrontConfig,
    stft: StftConfig,
    engine: StftEngine,
    spec: Spectrogram,
    /// Mean-subtracted, zero-padded input.
    padded: Vec<f64>,
    /// Frame-major magnitude image (matching the SoA planes).
    mag_fm: Vec<f64>,
    /// Bin-major transpose of `mag_fm` for the along-time median.
    mag_bm: Vec<f64>,
    /// Harmonic-enhanced image, bin-major.
    enh_h: Vec<f64>,
    /// Percussive-enhanced image, frame-major.
    enh_p: Vec<f64>,
    /// Frame-major soft harmonic mask.
    mask: Vec<f64>,
    /// Median window gather scratch.
    scratch: Vec<f64>,
    /// Raw inverse-STFT output before trimming.
    resynth: Vec<f64>,
    /// Filtered chunk handed back to the caller.
    out: Vec<f64>,
}

impl FrontFilter {
    /// Creates a filter for streams sampled at `fs` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for degenerate parameters
    /// (a zero window/hop, a hop exceeding the window, or kernels the
    /// chunk spectrogram cannot support).
    pub fn new(cfg: HpssFrontConfig, fs: f64) -> Result<Self, StreamError> {
        let stft = cfg.stft_config(fs)?;
        Ok(FrontFilter {
            cfg,
            stft,
            engine: StftEngine::new(),
            spec: Spectrogram::workspace(),
            padded: Vec::new(),
            mag_fm: Vec::new(),
            mag_bm: Vec::new(),
            enh_h: Vec::new(),
            enh_p: Vec::new(),
            mask: Vec::new(),
            scratch: Vec::new(),
            resynth: Vec::new(),
            out: Vec::new(),
        })
    }

    /// The filter's parameters.
    pub fn config(&self) -> &HpssFrontConfig {
        &self.cfg
    }

    /// Filters one chunk, returning the harmonic-only resynthesis (same
    /// length as `x`). Chunks shorter than one analysis window pass
    /// through unchanged.
    ///
    /// The chunk's mean is subtracted before analysis and restored after:
    /// the PPG DC level carries the oximetry denominator and must survive
    /// the filter untouched, and a large DC ridge would otherwise
    /// dominate both median images.
    pub fn filter(&mut self, x: &[f64]) -> &[f64] {
        let _span = dhf_obs::span(dhf_obs::Stage::HpssFilter);
        let w = self.stft.window_len();
        let hop = self.stft.hop();
        self.out.clear();
        if x.len() < w {
            self.out.extend_from_slice(x);
            return &self.out;
        }
        let mean = x.iter().sum::<f64>() / x.len() as f64;

        // Zero-pad up to the next full-frame coverage so the analysis
        // reaches every sample (`frames_for` floors otherwise and the
        // inverse would zero the uncovered tail).
        let frames_needed = (x.len() - w).div_ceil(hop) + 1;
        let padded_len = (frames_needed - 1) * hop + w;
        self.padded.clear();
        self.padded.extend(x.iter().map(|&v| v - mean));
        self.padded.resize(padded_len, 0.0);

        self.engine
            .stft_into(&self.padded, &self.stft, &mut self.spec)
            .expect("padded chunk spans at least one window");
        let (bins, frames) = (self.spec.bins(), self.spec.frames());

        // Magnitudes straight off the SoA planes (one kernel pass), then
        // a scalar transpose for the along-time median.
        self.mag_fm.clear();
        self.mag_fm.resize(bins * frames, 0.0);
        simd::magnitude_into(&mut self.mag_fm, self.spec.re_plane(), self.spec.im_plane());
        self.mag_bm.clear();
        self.mag_bm.resize(bins * frames, 0.0);
        for m in 0..frames {
            let row = m * bins;
            for b in 0..bins {
                self.mag_bm[b * frames + m] = self.mag_fm[row + b];
            }
        }

        // Harmonic enhancement: median along time (bin-major rows are
        // bins, so a 1×k kernel slides over frames). Percussive
        // enhancement: median along frequency on the frame-major image
        // (rows are frames, the 1×k kernel slides over bins).
        median_filter_2d_into(
            &self.mag_bm,
            bins,
            frames,
            1,
            self.cfg.kernel_time,
            &mut self.enh_h,
            &mut self.scratch,
        );
        median_filter_2d_into(
            &self.mag_fm,
            frames,
            bins,
            1,
            self.cfg.kernel_freq,
            &mut self.enh_p,
            &mut self.scratch,
        );

        // Frame-major soft harmonic mask, applied to both planes with the
        // dispatched multiply kernel.
        let (p, mh, mp) = (self.cfg.power, self.cfg.margin_h, self.cfg.margin_p);
        self.mask.clear();
        self.mask.reserve(bins * frames);
        for m in 0..frames {
            for b in 0..bins {
                let eh = (self.enh_h[b * frames + m] * mh).powf(p);
                let ep = (self.enh_p[m * bins + b] * mp).powf(p);
                self.mask.push(eh / (eh + ep + 1e-10));
            }
        }
        for m in 0..frames {
            let gains = &self.mask[m * bins..(m + 1) * bins];
            let (re, im) = self.spec.frame_mut(m);
            simd::mul_in_place(re, gains);
            simd::mul_in_place(im, gains);
        }

        self.engine.istft_into(&self.spec, &mut self.resynth);
        self.out.extend(self.resynth[..x.len()].iter().map(|&v| v + mean));
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp_mix(n: usize, fs: f64) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for (i, v) in x.iter_mut().enumerate() {
            let t = i as f64 / fs;
            *v = (std::f64::consts::TAU * 2.0 * t).sin()
                + 0.4 * (std::f64::consts::TAU * 4.0 * t).sin();
        }
        let mut k = 75;
        while k < n {
            for j in 0..12.min(n - k) {
                x[k + j] += 2.5 * (-(j as f64) / 4.0).exp();
            }
            k += 150;
        }
        x
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let bad = HpssFrontConfig { window_len: 0, ..HpssFrontConfig::default() };
        assert!(FrontFilter::new(bad, 100.0).is_err());
        let bad = HpssFrontConfig { hop: 200, ..HpssFrontConfig::default() };
        assert!(FrontFilter::new(bad, 100.0).is_err());
        let bad = HpssFrontConfig { power: f64::NAN, ..HpssFrontConfig::default() };
        assert!(FrontFilter::new(bad, 100.0).is_err());
        let bad = HpssFrontConfig { margin_p: -1.0, ..HpssFrontConfig::default() };
        assert!(FrontFilter::new(bad, 100.0).is_err());
    }

    #[test]
    fn short_chunk_passes_through() {
        let mut f = FrontFilter::new(HpssFrontConfig::default(), 100.0).unwrap();
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(f.filter(&x), &x[..]);
    }

    #[test]
    fn preserves_length_and_mean_offset() {
        let mut f = FrontFilter::new(HpssFrontConfig::default(), 100.0).unwrap();
        // Odd length that is not hop-aligned, with a DC offset.
        let x: Vec<f64> = hp_mix(1873, 100.0).iter().map(|v| v + 5.0).collect();
        let y = f.filter(&x);
        assert_eq!(y.len(), x.len());
        let mean_y = y.iter().sum::<f64>() / y.len() as f64;
        // The harmonic mask only attenuates AC cells; the restored mean
        // keeps the DC operating point.
        assert!((mean_y - 5.0).abs() < 0.15, "mean drifted to {mean_y}");
    }

    #[test]
    fn attenuates_clicks_keeps_tone() {
        let fs = 100.0;
        let n = 3000;
        let clean: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 2.0 * t).sin()
                    + 0.4 * (std::f64::consts::TAU * 4.0 * t).sin()
            })
            .collect();
        let mixed = hp_mix(n, fs);
        let mut f = FrontFilter::new(HpssFrontConfig::default(), fs).unwrap();
        let y = f.filter(&mixed).to_vec();
        let lo = 300;
        let hi = n - 300;
        let err_before: f64 = (lo..hi).map(|i| (mixed[i] - clean[i]).powi(2)).sum::<f64>().sqrt();
        let err_after: f64 = (lo..hi).map(|i| (y[i] - clean[i]).powi(2)).sum::<f64>().sqrt();
        // Defaults measure ~0.63x on this fixture (shorter windows do
        // better on synthetic clicks but worse on the e2e scenarios).
        assert!(
            err_after < 0.7 * err_before,
            "filter should clearly attenuate click energy: {err_after} vs {err_before}"
        );
    }

    #[test]
    fn steady_state_reuses_buffers() {
        let mut f = FrontFilter::new(HpssFrontConfig::default(), 100.0).unwrap();
        let x = hp_mix(2000, 100.0);
        f.filter(&x);
        let caps = (
            f.padded.capacity(),
            f.mag_fm.capacity(),
            f.mag_bm.capacity(),
            f.enh_h.capacity(),
            f.enh_p.capacity(),
            f.mask.capacity(),
            f.resynth.capacity(),
            f.out.capacity(),
        );
        f.filter(&x);
        assert_eq!(
            caps,
            (
                f.padded.capacity(),
                f.mag_fm.capacity(),
                f.mag_bm.capacity(),
                f.enh_h.capacity(),
                f.enh_p.capacity(),
                f.mask.capacity(),
                f.resynth.capacity(),
                f.out.capacity(),
            ),
            "second identical chunk must not grow any buffer"
        );
    }

    #[test]
    fn chunk_results_are_independent_of_history() {
        let x = hp_mix(1600, 100.0);
        let z = hp_mix(2400, 100.0);
        let mut fresh = FrontFilter::new(HpssFrontConfig::default(), 100.0).unwrap();
        let want = fresh.filter(&x).to_vec();
        let mut used = FrontFilter::new(HpssFrontConfig::default(), 100.0).unwrap();
        used.filter(&z);
        assert_eq!(used.filter(&x), &want[..], "filter must be stateless across chunks");
    }
}
