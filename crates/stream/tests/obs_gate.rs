//! The tracing-gate invariant (property test): enabling `dhf_obs` span
//! collection must not change a single output bit of the streaming
//! separator. Tracing observes the pipeline; it must never perturb it.
//!
//! The property runs the same mix through [`separate_streamed`] once
//! with the gate shut and once with it open, requiring `f64`-exact
//! equality (not tolerance-based: the traced code path is the same code
//! path, so any divergence at all is a bug). While the gate is open the
//! streaming stages must actually land in the thread-local ring —
//! otherwise the "enabled" arm silently tested nothing.

use dhf_core::DhfConfig;
use dhf_obs::Stage;
use dhf_stream::{separate_streamed, StreamingConfig};
use proptest::prelude::*;

/// Two drifting quasi-periodic sources (same family as the stitching
/// test, shorter: the property is bit-equality, not separation quality).
fn make_mix(fs: f64, n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 4.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 7.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + h2 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0, 0.5);
    let s2 = render(&track2, 0.35, 0.3);
    let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
    (mix, vec![track1, track2])
}

/// Empty this thread's span ring so later event counts are attributable
/// to the run under test, not to earlier proptest cases.
fn clear_ring() {
    let mut discard = dhf_obs::StageBreakdown::new();
    dhf_obs::drain_thread_into(&mut discard);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn tracing_gate_never_changes_streaming_output(
        chunk_len in 2600usize..3400,
        overlap_frac in 0.10f64..0.40,
    ) {
        let fs = 100.0;
        let n = 6000;
        let overlap = ((chunk_len as f64 * overlap_frac) as usize).min(chunk_len / 2);
        let (mix, tracks) = make_mix(fs, n);
        let dhf = DhfConfig::fast().with_harmonic_interp();
        let scfg = StreamingConfig::new(chunk_len, overlap, dhf).unwrap();

        // Gate shut (the default): the reference run.
        dhf_obs::set_enabled(false);
        let (quiet, quiet_dropped) = separate_streamed(&mix, fs, &tracks, &scfg).unwrap();

        // Probe whether this build can record at all: `dhf_obs` compiled
        // with `obs-off` pins the gate shut, and the bit-equality below
        // must hold either way, but the "events landed" check only
        // applies when recording is possible.
        dhf_obs::set_enabled(true);
        dhf_obs::record(Stage::ChunkAdvance, 1e-9);
        let recording = dhf_obs::pending_events() > 0;
        clear_ring();

        // Gate open: same inputs, spans recorded into this thread's ring.
        let traced = separate_streamed(&mix, fs, &tracks, &scfg);
        dhf_obs::set_enabled(false);
        let (traced, traced_dropped) = traced.unwrap();
        let mut breakdown = dhf_obs::StageBreakdown::new();
        dhf_obs::drain_thread_into(&mut breakdown);

        prop_assert_eq!(quiet_dropped, traced_dropped);
        prop_assert_eq!(quiet.len(), traced.len());
        for (src, (q, t)) in quiet.iter().zip(&traced).enumerate() {
            prop_assert_eq!(q.len(), t.len());
            for (i, (a, b)) in q.iter().zip(t).enumerate() {
                // Bit-exact: tracing must be a pure observer.
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "source {} sample {}: {} (quiet) != {} (traced)",
                    src, i, a, b
                );
            }
        }

        if recording {
            for stage in [Stage::ChunkAdvance, Stage::ChunkFlush, Stage::NnFit] {
                prop_assert!(
                    breakdown.stage(stage).count() > 0,
                    "gate was open but no {} spans were recorded",
                    stage
                );
            }
        }
    }
}
