//! Warm-start invariants (property and regression tests): deep-prior
//! warm starting is a *latency* optimization, so it must not cost the
//! things the cold path guarantees — bit-determinism per seed, dispatch
//! independence across SIMD levels, and separation quality within a
//! bounded gap of the cold path.

use dhf_core::DhfConfig;
use dhf_dsp::simd::{self, Level};
use dhf_metrics::si_sdr_db;
use dhf_stream::{separate_streamed, StreamingConfig};
use proptest::prelude::*;
use std::sync::Mutex;

/// The dispatch override is process-global; tests pinning it must not
/// interleave (see `dhf_dsp`'s simd_equivalence tests).
static DISPATCH: Mutex<()> = Mutex::new(());

/// Two drifting quasi-periodic sources (same family as the equivalence
/// tests).
fn make_mix(fs: f64, n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 2.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 3.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + h2 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0, 0.5);
    let s2 = render(&track2, 0.35, 0.3);
    let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
    (mix, s1, s2, vec![track1, track2])
}

/// Deep-prior configuration with warm starting pinned ON (independent of
/// the `DHF_WARM_START` environment).
fn warm_cfg(chunk_len: usize, overlap: usize) -> StreamingConfig {
    StreamingConfig::new(chunk_len, overlap, DhfConfig::fast()).unwrap().with_warm_start()
}

/// Deep-prior configuration with warm starting pinned OFF.
fn cold_cfg(chunk_len: usize, overlap: usize) -> StreamingConfig {
    let mut dhf = DhfConfig::fast();
    dhf.inpaint.warm = None;
    StreamingConfig::new(chunk_len, overlap, dhf).unwrap()
}

fn bits(sources: &[Vec<f64>]) -> Vec<Vec<u64>> {
    sources.iter().map(|s| s.iter().map(|v| v.to_bits()).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Warm-started streaming is bit-deterministic: two sessions over the
    /// same stream produce bit-identical estimates for any chunk
    /// geometry, exactly like the cold path.
    #[test]
    fn warm_streaming_is_bit_deterministic(
        chunk_len in 2600usize..3400,
        overlap_frac in 0.0f64..0.4,
    ) {
        let fs = 100.0;
        let n = 6500;
        let overlap = ((chunk_len as f64 * overlap_frac) as usize).min(chunk_len / 2);
        let (mix, _, _, tracks) = make_mix(fs, n);
        let tracks1 = tracks[..1].to_vec();
        let cfg = warm_cfg(chunk_len, overlap);
        let (a, _) = separate_streamed(&mix, fs, &tracks1, &cfg).unwrap();
        let (b, _) = separate_streamed(&mix, fs, &tracks1, &cfg).unwrap();
        prop_assert_eq!(bits(&a), bits(&b), "chunk_len {}, overlap {}", chunk_len, overlap);
    }
}

/// Warm-started streaming is bit-identical at every SIMD dispatch level
/// the host can run: the f32 fine-tune path inherits the kernel layer's
/// bit-identity contract, so `DHF_FORCE_SCALAR=1` CI runs reproduce
/// native results exactly.
#[test]
fn warm_streaming_is_bit_identical_across_dispatch_levels() {
    let _guard = DISPATCH.lock().unwrap();
    struct AutoDispatch;
    impl Drop for AutoDispatch {
        fn drop(&mut self) {
            simd::set_dispatch_override(None);
        }
    }
    let _auto = AutoDispatch;

    let fs = 100.0;
    let n = 6500;
    let (mix, _, _, tracks) = make_mix(fs, n);
    let tracks1 = tracks[..1].to_vec();
    let cfg = warm_cfg(3000, 400);

    let mut reference: Option<(Level, Vec<Vec<u64>>)> = None;
    for level in [Level::Scalar, Level::Sse2, Level::Avx2, Level::Neon] {
        simd::set_dispatch_override(Some(level));
        if simd::active_level() != level {
            continue; // host cannot run this level
        }
        let (out, _) = separate_streamed(&mix, fs, &tracks1, &cfg).unwrap();
        let out_bits = bits(&out);
        match &reference {
            None => reference = Some((level, out_bits)),
            Some((ref_level, ref_bits)) => assert_eq!(
                &out_bits, ref_bits,
                "warm streaming diverged between {ref_level:?} and {level:?}"
            ),
        }
    }
    assert!(reference.is_some(), "at least the scalar level must run");
}

/// Warm-vs-cold quality regression: resuming the previous chunk's
/// weights (bounded fine-tune) must stay within a fixed SI-SDR gap of
/// training every chunk from scratch — the warm path buys latency, not
/// a quality cliff.
#[test]
fn warm_start_quality_stays_within_gap_of_cold() {
    let fs = 100.0;
    let n = 9000;
    let (mix, s1, s2, tracks) = make_mix(fs, n);
    let truths = [&s1, &s2];

    let (cold, dropped_cold) = separate_streamed(&mix, fs, &tracks, &cold_cfg(3000, 400)).unwrap();
    let (warm, dropped_warm) = separate_streamed(&mix, fs, &tracks, &warm_cfg(3000, 400)).unwrap();
    assert_eq!(dropped_cold, 0);
    assert_eq!(dropped_warm, 0);

    // Interior scoring (clear of the global stream edges).
    let (lo, hi) = (500, n - 500);
    for (src, truth) in truths.iter().enumerate() {
        let cold_db = si_sdr_db(&truth[lo..hi], &cold[src][lo..hi]);
        let warm_db = si_sdr_db(&truth[lo..hi], &warm[src][lo..hi]);
        // Measured on this fixture: source 0 cold 16.2 / warm 16.2 dB;
        // source 1 cold 0.3 / warm 3.3 dB — carrying weights forward
        // actually helps the weak source, since the resumed net starts
        // near a good basin. Bound any regression at 1.5 dB.
        assert!(
            warm_db > cold_db - 1.5,
            "source {src}: warm {warm_db:.2} dB fell more than 1.5 dB below cold {cold_db:.2} dB"
        );
        // And the warm path must still genuinely separate.
        let mix_db = si_sdr_db(&truth[lo..hi], &mix[lo..hi]);
        assert!(
            warm_db > mix_db,
            "source {src}: warm {warm_db:.2} dB must beat mix-as-estimate {mix_db:.2} dB"
        );
    }
}
