//! The stitching invariant (property test): chunked streaming separation
//! must match offline [`dhf_core::separate`] on the interior of every
//! chunk, across randomized chunk and overlap sizes.
//!
//! The deterministic harmonic-interpolation in-painter is used so the
//! comparison measures *chunking and stitching* error, not deep-prior
//! seed noise. Agreement is scored as the SI-SDR of the streamed estimate
//! against the offline estimate (higher = closer); the floor is far above
//! any audible seam artifact yet leaves room for the genuine boundary
//! effects of finite chunks (unwarp phase origin, STFT edge taper).

use dhf_core::{separate, DhfConfig};
use dhf_metrics::si_sdr_db;
use dhf_stream::{separate_streamed, StreamingConfig};
use proptest::prelude::*;

/// Two drifting quasi-periodic sources (same family as the core tests),
/// with drift fast enough that every analysis chunk sees the full ratio
/// range: a ratio that *locks* near an integer for a whole chunk starves
/// the deterministic in-painter of visible cells in the locked rows — the
/// pathological case the deep prior exists for, and deliberately not what
/// this stitching test measures.
fn make_mix(fs: f64, n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let track1: Vec<f64> = (0..n)
        .map(|i| 1.35 + 0.30 * (i as f64 / n as f64 * std::f64::consts::TAU * 6.0).sin())
        .collect();
    let track2: Vec<f64> = (0..n)
        .map(|i| 2.50 + 0.45 * (i as f64 / n as f64 * std::f64::consts::TAU * 9.0).cos())
        .collect();
    let render = |track: &[f64], amp: f64, h2: f64| -> Vec<f64> {
        let mut phase = 0.0;
        track
            .iter()
            .map(|&f| {
                phase += std::f64::consts::TAU * f / fs;
                amp * (phase.sin() + h2 * (2.0 * phase).sin())
            })
            .collect()
    };
    let s1 = render(&track1, 1.0, 0.5);
    let s2 = render(&track2, 0.35, 0.3);
    let mix: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
    (mix, vec![track1, track2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn streaming_matches_offline_on_chunk_interiors(
        chunk_len in 2600usize..3600,
        overlap_frac in 0.10f64..0.45,
    ) {
        // A broad grid sweep over (chunk_len, overlap) measured a worst
        // interior agreement of 8.1 dB; genuine stitching defects (seam
        // discontinuities, mis-indexed blocks, zeroed rows) score at or
        // below 0 dB.
        const INTERIOR_AGREEMENT_DB: f64 = 6.0;
        let fs = 100.0;
        let n = 9000;
        let overlap = ((chunk_len as f64 * overlap_frac) as usize).min(chunk_len / 2);
        let (mix, tracks) = make_mix(fs, n);
        let dhf = DhfConfig::fast().with_harmonic_interp();

        let offline = separate(&mix, fs, &tracks, &dhf).unwrap();
        let scfg = StreamingConfig::new(chunk_len, overlap, dhf).unwrap();
        let (streamed, dropped) = separate_streamed(&mix, fs, &tracks, &scfg).unwrap();
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(streamed[0].len(), n);

        // Interior of each chunk's emitted stride: skip the cross-faded
        // seam at the front and stay clear of the global stream edges
        // (where the offline reference itself has boundary error).
        let hop = scfg.hop();
        let n_chunks = streamed[0].len() / hop;
        for (src, (off, st)) in offline.sources.iter().zip(&streamed).enumerate() {
            for c in 0..n_chunks {
                let lo = (c * hop + overlap).max(500);
                let hi = ((c + 1) * hop).min(n - 500);
                if hi <= lo + 200 {
                    continue;
                }
                let agreement = si_sdr_db(&off[lo..hi], &st[lo..hi]);
                prop_assert!(
                    agreement > INTERIOR_AGREEMENT_DB,
                    "source {} chunk {} [{}, {}): streamed vs offline only {:.2} dB \
                     (chunk_len {}, overlap {})",
                    src, c, lo, hi, agreement, chunk_len, overlap
                );
            }
        }
    }
}
