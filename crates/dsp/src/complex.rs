//! Minimal complex-number type used throughout the DSP stack.
//!
//! The crate deliberately avoids external numeric dependencies, so this is a
//! small, `Copy`, `f64`-based complex type with exactly the operations the
//! FFT/STFT stack needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
///
/// # Example
///
/// ```
/// use dhf_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let c = a * b;
/// assert_eq!(c, Complex::new(5.0, 5.0));
/// ```
/// The layout is `#[repr(C)]` — `re` at offset 0, `im` at offset 8 — so a
/// `[Complex]` buffer can be reinterpreted as interleaved `[re, im, re,
/// im, …]` `f64` lanes by the SIMD kernel layer ([`crate::simd`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the unit phasor `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Example
    ///
    /// ```
    /// use dhf_dsp::Complex;
    /// let w = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((w.re).abs() < 1e-12 && (w.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Complex::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::iter::Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn addition_and_subtraction_are_componentwise() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 4.0);
        assert_eq!(a + b, Complex::new(0.5, 6.0));
        assert_eq!(a - b, Complex::new(1.5, -2.0));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        // (2+3i)(4-5i) = 8 -10i +12i +15 = 23 + 2i
        assert_eq!(a * b, Complex::new(23.0, 2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn abs_and_norm_sqr_agree() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_folds_over_zero() {
        let v = vec![Complex::new(1.0, 1.0); 4];
        let s: Complex = v.into_iter().sum();
        assert_eq!(s, Complex::new(4.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }
}
