//! Small statistics helpers shared across the workspace.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root-mean-square amplitude.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        (x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }
}

/// Signal energy `Σ x²`.
pub fn energy(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum()
}

/// Minimum and maximum, ignoring NaNs; `None` for an empty slice.
pub fn min_max(x: &[f64]) -> Option<(f64, f64)> {
    let mut it = x.iter().filter(|v| !v.is_nan());
    let first = *it.next()?;
    Some(it.fold((first, first), |(lo, hi), &v| (lo.min(v), hi.max(v))))
}

/// Median of a slice (averages the central pair for even lengths);
/// `None` for an empty slice.
pub fn median(x: &[f64]) -> Option<f64> {
    if x.is_empty() {
        return None;
    }
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    Some(if n % 2 == 1 { v[n / 2] } else { 0.5 * (v[n / 2 - 1] + v[n / 2]) })
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns 0 if either sample is constant.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal lengths");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx < f64::EPSILON || syy < f64::EPSILON {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Ordinary least squares fit `y ≈ w0 + w1·x`; returns `(w0, w1)`.
///
/// Returns `(mean(y), 0)` when `x` is constant.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "linear_fit requires equal lengths");
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let mx = mean(x);
    let my = mean(y);
    let mut num = 0.0;
    let mut den = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        num += (a - mx) * (b - my);
        den += (a - mx) * (a - mx);
    }
    if den < f64::EPSILON {
        (my, 0.0)
    } else {
        let w1 = num / den;
        (my - w1 * mx, w1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_of_known_sample() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 4.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rms_of_unit_sine_is_inv_sqrt2() {
        let x: Vec<f64> =
            (0..10000).map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin()).collect();
        assert!((rms(&x) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn min_max_ignores_nan() {
        let x = [1.0, f64::NAN, -2.0, 5.0];
        assert_eq!(min_max(&x), Some((-2.0, 5.0)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v - 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yneg: Vec<f64> = x.iter().map(|&v| -2.0 * v).collect();
        assert!((pearson(&x, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let x = vec![1.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn linear_fit_recovers_coefficients() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.5 - 1.5 * v).collect();
        let (w0, w1) = linear_fit(&x, &y);
        assert!((w0 - 2.5).abs() < 1e-10);
        assert!((w1 + 1.5).abs() < 1e-10);
    }

    #[test]
    fn energy_matches_rms() {
        let x = [1.0, -2.0, 3.0];
        assert!((energy(&x) - 14.0).abs() < 1e-12);
        assert!((rms(&x) - (14.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
