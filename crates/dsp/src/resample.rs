//! Sample-rate conversion on uniform and non-uniform grids.

use crate::interp::{linear_interp, Pchip};
use crate::{DspError, Result};

/// Resamples a uniformly sampled signal from `fs_in` to `fs_out` using
/// monotone cubic (PCHIP) interpolation.
///
/// The output covers the same time span `[0, (n-1)/fs_in]`.
///
/// # Errors
///
/// Returns an error if the signal is empty or a rate is not positive.
///
/// # Example
///
/// ```
/// use dhf_dsp::resample::resample_uniform;
/// let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
/// let y = resample_uniform(&x, 100.0, 50.0)?;
/// assert_eq!(y.len(), 50);
/// # Ok::<(), dhf_dsp::DspError>(())
/// ```
pub fn resample_uniform(signal: &[f64], fs_in: f64, fs_out: f64) -> Result<Vec<f64>> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if fs_in <= 0.0 || fs_in.is_nan() || fs_out <= 0.0 || fs_out.is_nan() {
        return Err(DspError::InvalidParameter {
            name: "fs",
            message: "sample rates must be positive".into(),
        });
    }
    let n = signal.len();
    let duration = (n - 1) as f64 / fs_in;
    let m = (duration * fs_out).floor() as usize + 1;
    let ts: Vec<f64> = (0..n).map(|i| i as f64 / fs_in).collect();
    let interp = Pchip::new(&ts, signal)?;
    Ok((0..m).map(|j| interp.eval(j as f64 / fs_out)).collect())
}

/// Samples `(xs, ys)` (non-uniform, strictly increasing `xs`) onto an
/// arbitrary query grid with linear interpolation, clamping outside the
/// input span.
///
/// # Errors
///
/// Propagates interpolation validation errors.
pub fn sample_at(xs: &[f64], ys: &[f64], queries: &[f64]) -> Result<Vec<f64>> {
    linear_interp(xs, ys, queries)
}

/// Generates the uniform time axis `0, 1/fs, …, (n-1)/fs`.
pub fn time_axis(n: usize, fs: f64) -> Vec<f64> {
    (0..n).map(|i| i as f64 / fs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resample_is_lossless() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).cos()).collect();
        let y = resample_uniform(&x, 100.0, 100.0).unwrap();
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn downsample_preserves_low_frequency_content() {
        let fs = 200.0;
        let x: Vec<f64> =
            (0..2000).map(|i| (2.0 * std::f64::consts::PI * 2.0 * i as f64 / fs).sin()).collect();
        let y = resample_uniform(&x, fs, 50.0).unwrap();
        // Compare against analytic values on the coarse grid.
        for (j, &v) in y.iter().enumerate() {
            let t = j as f64 / 50.0;
            let expected = (2.0 * std::f64::consts::PI * 2.0 * t).sin();
            assert!((v - expected).abs() < 1e-2, "at {t}: {v} vs {expected}");
        }
    }

    #[test]
    fn upsample_doubles_length_approximately() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = resample_uniform(&x, 10.0, 20.0).unwrap();
        assert_eq!(y.len(), 199);
        // Linear data must be reproduced exactly by PCHIP.
        for (j, &v) in y.iter().enumerate() {
            assert!((v - j as f64 / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(resample_uniform(&[1.0, 2.0], 0.0, 1.0).is_err());
        assert!(resample_uniform(&[], 1.0, 1.0).is_err());
    }

    #[test]
    fn time_axis_spacing() {
        let t = time_axis(5, 10.0);
        assert_eq!(t.len(), 5);
        assert!((t[4] - 0.4).abs() < 1e-12);
    }
}
