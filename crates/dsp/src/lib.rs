//! DSP substrate for the Deep Harmonic Finesse (DHF) reproduction.
//!
//! Everything the DHF pipeline and its baselines need from classical signal
//! processing lives here, implemented from scratch:
//!
//! * [`Complex`] arithmetic and an FFT stack ([`fft`]) combining an iterative
//!   radix-2 transform, Bluestein's algorithm for arbitrary lengths, and a
//!   packed real transform (an N-point real DFT via one N/2-point complex
//!   FFT) behind one plan-cached [`fft::FftPlanner`].
//! * Short-time Fourier analysis ([`stft`]) with COLA-correct inversion,
//!   reading and writing the flat SoA [`Spectrogram`] workspace (contiguous
//!   `re`/`im` planes, one half-spectrum slice per frame).
//! * Window functions ([`window`]).
//! * FIR / IIR filtering ([`filter`]): windowed-sinc band-pass design and
//!   Butterworth biquads with zero-phase application.
//! * Interpolation ([`interp`]): linear, natural cubic spline and monotone
//!   PCHIP, the workhorses of the paper's pattern aligner (Eqs. 3–7).
//! * Resampling ([`resample`]), phase utilities ([`phase`]), simple
//!   statistics ([`stats`]), peak picking and median filtering
//!   ([`peaks`], [`median`]).
//!
//! # Example
//!
//! ```
//! use dhf_dsp::fft::fft_real;
//!
//! // A pure 5 Hz cosine sampled at 64 Hz concentrates at bin 5.
//! let fs = 64.0;
//! let x: Vec<f64> = (0..64)
//!     .map(|n| (2.0 * std::f64::consts::PI * 5.0 * n as f64 / fs).cos())
//!     .collect();
//! let spec = fft_real(&x);
//! let peak = (0..33).max_by(|&a, &b| {
//!     spec[a].abs().partial_cmp(&spec[b].abs()).unwrap()
//! }).unwrap();
//! assert_eq!(peak, 5);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod fft;
pub mod filter;
pub mod interp;
pub mod median;
pub mod peaks;
pub mod phase;
pub mod resample;
pub mod simd;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Complex;
pub use fft::FftPlanner;
pub use stft::{Spectrogram, StftConfig, StftEngine};

/// Errors produced by DSP routines.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// The input slice was empty where a non-empty signal is required.
    EmptyInput,
    /// Two related inputs disagreed in length.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// A configuration parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// Interpolation abscissae were not strictly increasing.
    NonMonotonicAbscissae,
}

impl std::fmt::Display for DspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DspError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            DspError::NonMonotonicAbscissae => {
                write!(f, "interpolation abscissae must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for DspError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DspError>;
