//! Phase utilities: unwrapping, cumulative phase from frequency tracks, and
//! cyclic interpolation across masked gaps.
//!
//! The paper's §3.4 interpolates the real and imaginary parts of each bin's
//! phasor separately, then re-derives the phase, so that interpolation
//! respects the circular topology of angles — [`interpolate_cyclic`]
//! implements exactly that.

/// Unwraps a wrapped phase sequence so consecutive differences stay within
/// `(-π, π]`.
///
/// # Example
///
/// ```
/// use dhf_dsp::phase::unwrap;
/// let tau = std::f64::consts::TAU;
/// // A linear ramp wrapped into (-π, π]: unwrap recovers the ramp.
/// let wrapped: Vec<f64> = (0..20)
///     .map(|i| {
///         let p: f64 = 0.9 * i as f64;
///         (p + std::f64::consts::PI).rem_euclid(tau) - std::f64::consts::PI
///     })
///     .collect();
/// let un = unwrap(&wrapped);
/// for (i, v) in un.iter().enumerate() {
///     assert!((v - 0.9 * i as f64).abs() < 1e-9);
/// }
/// ```
pub fn unwrap(phase: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phase.len());
    let mut offset = 0.0;
    let tau = std::f64::consts::TAU;
    for (i, &p) in phase.iter().enumerate() {
        if i > 0 {
            let mut d = p + offset - out[i - 1];
            while d > std::f64::consts::PI {
                offset -= tau;
                d -= tau;
            }
            while d < -std::f64::consts::PI {
                offset += tau;
                d += tau;
            }
        }
        out.push(p + offset);
    }
    out
}

/// Cumulative unrolled phase `Φ[n] = 2π·Σ_{i<n} f[i]·Δt` of a frequency
/// track sampled at `fs` (paper Eq. 4, left-Riemann form). `Φ[0] = 0` so
/// the first sample carries zero accumulated phase.
pub fn cumulative_phase(freq_track: &[f64], fs: f64) -> Vec<f64> {
    let dt = 1.0 / fs;
    let tau = std::f64::consts::TAU;
    let mut out = Vec::with_capacity(freq_track.len());
    let mut acc = 0.0;
    for &f in freq_track {
        out.push(tau * acc);
        acc += f * dt;
    }
    out
}

/// Interpolates angles across masked gaps the cyclic way: the cosine and
/// sine of the angle are interpolated independently over the valid samples
/// and the angle re-derived with `atan2` (paper §3.4).
///
/// `valid[i] == true` marks samples whose phase is trusted; the rest are
/// re-estimated. If fewer than two samples are valid the input is returned
/// unchanged.
///
/// # Panics
///
/// Panics if `phase.len() != valid.len()`.
pub fn interpolate_cyclic(phase: &[f64], valid: &[bool]) -> Vec<f64> {
    let mut out = Vec::new();
    interpolate_cyclic_into(phase, valid, &mut out);
    out
}

/// Like [`interpolate_cyclic`], writing into an existing buffer (cleared
/// first) and allocating nothing: the hot path walks straight from one
/// valid anchor to the next, interpolating the unit phasor across each
/// gap and clamping beyond the outermost anchors.
///
/// # Panics
///
/// Panics if `phase.len() != valid.len()`.
pub fn interpolate_cyclic_into(phase: &[f64], valid: &[bool], out: &mut Vec<f64>) {
    assert_eq!(phase.len(), valid.len(), "phase/valid length mismatch");
    let n = phase.len();
    out.clear();
    out.extend_from_slice(phase);
    let n_valid = valid.iter().filter(|&&v| v).count();
    if n_valid < 2 || n_valid == n {
        return;
    }
    // All valid indices exist (n_valid >= 2), so these unwraps are safe.
    let first = valid.iter().position(|&v| v).expect("has valid samples");
    let last = valid.iter().rposition(|&v| v).expect("has valid samples");
    // Outside the anchored range the phasor clamps to the end anchors;
    // re-deriving through atan2 wraps the anchor angle into (-π, π].
    let lead = phase[first].sin().atan2(phase[first].cos());
    for slot in &mut out[..first] {
        *slot = lead;
    }
    let trail = phase[last].sin().atan2(phase[last].cos());
    for slot in &mut out[last + 1..n] {
        *slot = trail;
    }
    // Interior gaps: linear interpolation of cos/sin between the two
    // bracketing anchors, angle re-derived per cell.
    let mut a = first;
    for b in first + 1..=last {
        if !valid[b] {
            continue;
        }
        if b > a + 1 {
            let (ca, sa) = (phase[a].cos(), phase[a].sin());
            let (cb, sb) = (phase[b].cos(), phase[b].sin());
            let span = b as f64 - a as f64;
            for (i, slot) in out[a + 1..b].iter_mut().enumerate() {
                let t = ((a + 1 + i) as f64 - a as f64) / span;
                let ci = ca + t * (cb - ca);
                let si = sa + t * (sb - sa);
                *slot = si.atan2(ci);
            }
        }
        a = b;
    }
}

/// Wraps an angle into `(-π, π]`.
#[inline]
pub fn wrap_angle(theta: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let w = (theta + std::f64::consts::PI).rem_euclid(tau) - std::f64::consts::PI;
    if w == -std::f64::consts::PI {
        std::f64::consts::PI
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn unwrap_identity_when_already_smooth() {
        let p: Vec<f64> = (0..10).map(|i| 0.1 * i as f64).collect();
        assert_eq!(unwrap(&p), p);
    }

    #[test]
    fn cumulative_phase_of_constant_frequency_is_linear() {
        let fs = 100.0;
        let track = vec![2.0; 200]; // 2 Hz
        let phi = cumulative_phase(&track, fs);
        // After 1 second (100 samples) the phase advanced by 2·2π.
        assert!((phi[99] - 2.0 * std::f64::consts::TAU).abs() < 0.2);
        // Strictly increasing.
        assert!(phi.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn cyclic_interp_bridges_wrap_point() {
        // Angles near ±π: naive linear interpolation would pass through 0,
        // cyclic interpolation stays near ±π.
        let phase = vec![PI - 0.1, 0.0, -(PI - 0.1)];
        let valid = vec![true, false, true];
        let out = interpolate_cyclic(&phase, &valid);
        assert!(out[1].abs() > PI - 0.2, "interpolated through zero: {}", out[1]);
    }

    #[test]
    fn cyclic_interp_keeps_valid_samples() {
        let phase = vec![0.3, 0.9, 1.4, 2.2];
        let valid = vec![true, false, true, true];
        let out = interpolate_cyclic(&phase, &valid);
        assert_eq!(out[0], 0.3);
        assert_eq!(out[2], 1.4);
        assert_eq!(out[3], 2.2);
        assert!((out[1] - 0.85).abs() < 0.2);
    }

    #[test]
    fn cyclic_interp_with_no_valid_points_is_identity() {
        let phase = vec![0.1, 0.2];
        let out = interpolate_cyclic(&phase, &[false, false]);
        assert_eq!(out, phase);
    }

    #[test]
    fn wrap_angle_is_in_range() {
        for k in -20..20 {
            let theta = k as f64 * 1.3;
            let w = wrap_angle(theta);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
            // Same point on the circle.
            assert!((w.cos() - theta.cos()).abs() < 1e-9);
            assert!((w.sin() - theta.sin()).abs() < 1e-9);
        }
    }
}
