//! Window functions for short-time analysis.

/// Supported window shapes.
///
/// # Example
///
/// ```
/// use dhf_dsp::window::WindowKind;
/// let w = WindowKind::Hann.samples(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12); // periodic Hann starts at zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// Rectangular (all ones).
    Rectangular,
    /// Periodic Hann window, COLA at hop = N/2, N/4, ...
    #[default]
    Hann,
    /// Periodic Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl WindowKind {
    /// Generates `n` window samples (periodic convention, suitable for STFT).
    pub fn samples(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let nf = n as f64;
        let tau = 2.0 * std::f64::consts::PI;
        (0..n)
            .map(|i| {
                let x = i as f64 / nf;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (tau * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (tau * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Sum of the window samples (useful for amplitude normalization).
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.samples(n).iter().sum()
    }
}

/// Checks the constant-overlap-add (COLA) property of `window` at hop `hop`:
/// `Σ_m w[n - m·hop]` must be constant for all `n`.
///
/// Returns the maximum relative deviation from the mean overlap sum; values
/// below ~1e-12 mean the pair reconstructs perfectly in overlap-add ISTFT.
pub fn cola_deviation(window: &[f64], hop: usize) -> f64 {
    let n = window.len();
    if n == 0 || hop == 0 {
        return f64::INFINITY;
    }
    // Accumulate the periodic overlap sum over one hop period.
    let mut acc = vec![0.0f64; hop];
    for (i, &w) in window.iter().enumerate() {
        acc[i % hop] += w;
    }
    let mean = acc.iter().sum::<f64>() / hop as f64;
    if mean.abs() < f64::EPSILON {
        return f64::INFINITY;
    }
    acc.iter().map(|&v| ((v - mean) / mean).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_is_cola_at_half_and_quarter_hop() {
        let w = WindowKind::Hann.samples(128);
        assert!(cola_deviation(&w, 64) < 1e-12);
        assert!(cola_deviation(&w, 32) < 1e-12);
    }

    #[test]
    fn rectangular_is_cola_at_full_hop() {
        let w = WindowKind::Rectangular.samples(64);
        assert!(cola_deviation(&w, 64) < 1e-12);
        assert!(cola_deviation(&w, 32) < 1e-12);
    }

    #[test]
    fn hann_peak_is_one_and_symmetric() {
        let w = WindowKind::Hann.samples(64);
        let peak = w.iter().cloned().fold(0.0, f64::max);
        assert!((peak - 1.0).abs() < 1e-3);
        for i in 1..32 {
            assert!((w[i] - w[64 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn window_kinds_have_expected_means() {
        // Coherent gain sanity: Hann mean 0.5, Hamming 0.54, Blackman 0.42.
        let n = 1024;
        for (kind, mean) in
            [(WindowKind::Hann, 0.5), (WindowKind::Hamming, 0.54), (WindowKind::Blackman, 0.42)]
        {
            let g = kind.coherent_gain(n) / n as f64;
            assert!((g - mean).abs() < 1e-6, "{kind:?}: {g}");
        }
    }

    #[test]
    fn zero_length_window_is_empty() {
        assert!(WindowKind::Hann.samples(0).is_empty());
    }

    #[test]
    fn blackman_is_not_cola_at_half_hop() {
        let w = WindowKind::Blackman.samples(128);
        assert!(cola_deviation(&w, 64) > 1e-6);
    }
}
