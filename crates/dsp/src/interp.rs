//! Interpolation primitives.
//!
//! The DHF pattern aligner (paper Eqs. 6–7) is implemented as two sequential
//! 1-D interpolations, and EMD's envelope construction needs cubic splines;
//! this module provides linear, natural cubic-spline, and monotone PCHIP
//! interpolants over strictly increasing abscissae.

use crate::{DspError, Result};

fn validate_xy(xs: &[f64], ys: &[f64]) -> Result<()> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if xs.len() != ys.len() {
        return Err(DspError::LengthMismatch { expected: xs.len(), actual: ys.len() });
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(DspError::NonMonotonicAbscissae);
    }
    Ok(())
}

/// Index of the knot interval containing `x` (clamped to the ends).
#[inline]
fn locate(xs: &[f64], x: f64) -> usize {
    match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(i) => i.min(xs.len() - 2),
        Err(0) => 0,
        Err(i) if i >= xs.len() => xs.len() - 2,
        Err(i) => i - 1,
    }
}

/// Like [`locate`], but starts from a cursor left by the previous query.
/// Non-decreasing query sequences — the pattern aligner's resampling
/// grids, which dominate the separation hot path — advance the cursor by
/// short forward walks (O(knots + queries) overall) instead of one binary
/// search per query; a backward jump falls back to [`locate`]. Always
/// returns exactly the interval [`locate`] would.
#[inline]
fn locate_hinted(xs: &[f64], x: f64, hint: &mut usize) -> usize {
    let last = xs.len() - 2;
    let mut i = (*hint).min(last);
    if x < xs[i] {
        i = locate(xs, x);
    } else {
        while i < last && xs[i + 1] <= x {
            i += 1;
        }
    }
    *hint = i;
    i
}

/// Piecewise-linear interpolation of `(xs, ys)` evaluated at each query
/// point, extrapolating by clamping to the end values.
///
/// # Errors
///
/// Returns an error if inputs are empty, mismatched, or `xs` is not strictly
/// increasing.
///
/// # Example
///
/// ```
/// use dhf_dsp::interp::linear_interp;
/// let y = linear_interp(&[0.0, 1.0, 2.0], &[0.0, 10.0, 0.0], &[0.5, 1.5, 5.0])?;
/// assert_eq!(y, vec![5.0, 5.0, 0.0]);
/// # Ok::<(), dhf_dsp::DspError>(())
/// ```
pub fn linear_interp(xs: &[f64], ys: &[f64], queries: &[f64]) -> Result<Vec<f64>> {
    validate_xy(xs, ys)?;
    if xs.len() == 1 {
        return Ok(vec![ys[0]; queries.len()]);
    }
    let mut out = Vec::with_capacity(queries.len());
    let mut hint = 0usize;
    for &q in queries {
        out.push(if q <= xs[0] {
            ys[0]
        } else if q >= xs[xs.len() - 1] {
            ys[ys.len() - 1]
        } else {
            let i = locate_hinted(xs, q, &mut hint);
            let t = (q - xs[i]) / (xs[i + 1] - xs[i]);
            ys[i] + t * (ys[i + 1] - ys[i])
        });
    }
    Ok(out)
}

/// Natural cubic spline through `(xs, ys)`.
///
/// Second derivatives vanish at both ends; evaluation clamps outside the
/// knot range to linear extension of the boundary segments' endpoint value.
///
/// # Example
///
/// ```
/// use dhf_dsp::interp::CubicSpline;
/// let s = CubicSpline::new(&[0.0, 1.0, 2.0, 3.0], &[0.0, 1.0, 0.0, -1.0])?;
/// assert!((s.eval(1.0) - 1.0).abs() < 1e-12); // interpolates knots
/// # Ok::<(), dhf_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural cubic spline.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/mismatched inputs or non-increasing `xs`.
    /// With fewer than three points the spline degrades gracefully to
    /// linear interpolation.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self> {
        validate_xy(xs, ys)?;
        let n = xs.len();
        let mut m = vec![0.0; n];
        if n >= 3 {
            // Thomas algorithm on the tridiagonal natural-spline system.
            let mut sub = vec![0.0; n];
            let mut diag = vec![0.0; n];
            let mut sup = vec![0.0; n];
            let mut rhs = vec![0.0; n];
            diag[0] = 1.0;
            diag[n - 1] = 1.0;
            for i in 1..n - 1 {
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                sub[i] = h0;
                diag[i] = 2.0 * (h0 + h1);
                sup[i] = h1;
                rhs[i] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
            }
            for i in 1..n {
                let w = sub[i] / diag[i - 1];
                diag[i] -= w * sup[i - 1];
                rhs[i] -= w * rhs[i - 1];
            }
            m[n - 1] = rhs[n - 1] / diag[n - 1];
            for i in (0..n - 1).rev() {
                m[i] = (rhs[i] - sup[i] * m[i + 1]) / diag[i];
            }
        }
        Ok(CubicSpline { xs: xs.to_vec(), ys: ys.to_vec(), m })
    }

    /// Evaluates the spline at `x` (clamped outside the knot range).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if n == 1 {
            return self.ys[0];
        }
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = locate(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        a * self.ys[i]
            + b * self.ys[i + 1]
            + ((a * a * a - a) * self.m[i] + (b * b * b - b) * self.m[i + 1]) * h * h / 6.0
    }

    /// Evaluates the spline at many points.
    pub fn eval_many(&self, queries: &[f64]) -> Vec<f64> {
        queries.iter().map(|&q| self.eval(q)).collect()
    }
}

/// Monotone piecewise-cubic Hermite interpolant (PCHIP, Fritsch–Carlson).
///
/// Unlike the natural cubic spline it never overshoots the data, which makes
/// it the safe choice when resampling warped time axes that must stay
/// monotone.
#[derive(Debug, Clone)]
pub struct Pchip {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// First derivatives at the knots.
    d: Vec<f64>,
}

impl Pchip {
    /// Fits a monotone PCHIP interpolant.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/mismatched inputs or non-increasing `xs`.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self> {
        validate_xy(xs, ys)?;
        let n = xs.len();
        let mut d = vec![0.0; n];
        if n >= 2 {
            let h: Vec<f64> = (0..n - 1).map(|i| xs[i + 1] - xs[i]).collect();
            let delta: Vec<f64> = (0..n - 1).map(|i| (ys[i + 1] - ys[i]) / h[i]).collect();
            if n == 2 {
                d[0] = delta[0];
                d[1] = delta[0];
            } else {
                for i in 1..n - 1 {
                    if delta[i - 1] * delta[i] <= 0.0 {
                        d[i] = 0.0;
                    } else {
                        let w1 = 2.0 * h[i] + h[i - 1];
                        let w2 = h[i] + 2.0 * h[i - 1];
                        d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                    }
                }
                d[0] = pchip_end_derivative(h[0], h[1], delta[0], delta[1]);
                d[n - 1] = pchip_end_derivative(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
            }
        }
        Ok(Pchip { xs: xs.to_vec(), ys: ys.to_vec(), d })
    }

    /// Evaluates the interpolant at `x` (clamped outside the knot range).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if n == 1 {
            return self.ys[0];
        }
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        self.eval_interval(x, locate(&self.xs, x))
    }

    /// Hermite evaluation inside knot interval `i`.
    #[inline]
    fn eval_interval(&self, x: f64, i: usize) -> f64 {
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.d[i] + h01 * self.ys[i + 1] + h11 * h * self.d[i + 1]
    }

    /// Evaluates the interpolant at many points. Non-decreasing query
    /// sequences (the aligner's resampling grids) are evaluated with a
    /// forward-walking cursor instead of one binary search per query.
    pub fn eval_many(&self, queries: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.eval_many_into(queries, &mut out);
        out
    }

    /// Like [`Pchip::eval_many`], writing into an existing buffer (cleared
    /// first) so steady-state callers re-allocate nothing.
    pub fn eval_many_into(&self, queries: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(queries.len());
        let n = self.xs.len();
        if n == 1 {
            out.extend(queries.iter().map(|_| self.ys[0]));
            return;
        }
        let mut hint = 0usize;
        for &q in queries {
            out.push(if q <= self.xs[0] {
                self.ys[0]
            } else if q >= self.xs[n - 1] {
                self.ys[n - 1]
            } else {
                self.eval_interval(q, locate_hinted(&self.xs, q, &mut hint))
            });
        }
    }
}

/// One-sided three-point end derivative with monotonicity limiting
/// (Fritsch–Carlson boundary treatment).
fn pchip_end_derivative(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let d = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if d * d0 <= 0.0 {
        0.0
    } else if d0 * d1 <= 0.0 && d.abs() > 3.0 * d0.abs() {
        3.0 * d0
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interp_hits_knots_and_midpoints() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [2.0, 4.0, 0.0];
        let out = linear_interp(&xs, &ys, &[0.0, 0.5, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out, vec![2.0, 3.0, 4.0, 2.0, 0.0]);
    }

    #[test]
    fn linear_interp_clamps_outside_range() {
        let out = linear_interp(&[0.0, 1.0], &[5.0, 7.0], &[-1.0, 2.0]).unwrap();
        assert_eq!(out, vec![5.0, 7.0]);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert_eq!(linear_interp(&[], &[], &[0.0]).unwrap_err(), DspError::EmptyInput);
        assert!(matches!(
            linear_interp(&[0.0, 1.0], &[0.0], &[0.5]).unwrap_err(),
            DspError::LengthMismatch { .. }
        ));
        assert_eq!(
            linear_interp(&[0.0, 0.0], &[1.0, 2.0], &[0.0]).unwrap_err(),
            DspError::NonMonotonicAbscissae
        );
    }

    #[test]
    fn cubic_spline_interpolates_knots() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 0.8).sin()).collect();
        let s = CubicSpline::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((s.eval(*x) - y).abs() < 1e-10);
        }
    }

    #[test]
    fn cubic_spline_tracks_smooth_function() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
        let s = CubicSpline::new(&xs, &ys).unwrap();
        for i in 0..200 {
            let x = 0.5 + i as f64 * 0.04;
            assert!((s.eval(x) - x.sin()).abs() < 1e-3, "at {x}");
        }
    }

    #[test]
    fn cubic_spline_reproduces_straight_line_exactly() {
        let xs = [0.0, 1.0, 2.5, 4.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 1.0).collect();
        let s = CubicSpline::new(&xs, &ys).unwrap();
        for i in 0..40 {
            let x = i as f64 * 0.1;
            assert!((s.eval(x) - (3.0 * x - 1.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn pchip_interpolates_knots() {
        let xs = [0.0, 1.0, 2.0, 3.5, 5.0];
        let ys = [0.0, 2.0, 1.0, 1.0, 8.0];
        let p = Pchip::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((p.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pchip_preserves_monotonicity() {
        // Step-like monotone data: spline would overshoot, PCHIP must not.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 0.0, 1.0, 1.0, 1.0];
        let p = Pchip::new(&xs, &ys).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=400 {
            let x = i as f64 * 0.01;
            let v = p.eval(x);
            assert!(v >= prev - 1e-12, "not monotone at {x}");
            assert!((-1e-12..=1.0 + 1e-12).contains(&v), "overshoot at {x}: {v}");
            prev = v;
        }
    }

    #[test]
    fn two_point_interpolants_are_linear() {
        let s = CubicSpline::new(&[0.0, 2.0], &[1.0, 5.0]).unwrap();
        let p = Pchip::new(&[0.0, 2.0], &[1.0, 5.0]).unwrap();
        assert!((s.eval(1.0) - 3.0).abs() < 1e-12);
        assert!((p.eval(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hinted_lookup_matches_per_query_eval() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 0.9).sin()).collect();
        let p = Pchip::new(&xs, &ys).unwrap();
        let fwd: Vec<f64> = (0..300).map(|i| i as f64 * 0.07 - 0.5).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let mixed: Vec<f64> = fwd.iter().zip(&rev).flat_map(|(&a, &b)| [a, b]).collect();
        for qs in [&fwd, &rev, &mixed] {
            // The cursor walk must agree bit-for-bit with per-query
            // binary-search evaluation, in any query order.
            for (q, v) in qs.iter().zip(&p.eval_many(qs)) {
                assert_eq!(*v, p.eval(*q), "pchip at {q}");
            }
            for (q, v) in qs.iter().zip(&linear_interp(&xs, &ys, qs).unwrap()) {
                assert_eq!(*v, linear_interp(&xs, &ys, &[*q]).unwrap()[0], "linear at {q}");
            }
        }
        // Reused output buffer path.
        let mut out = Vec::new();
        p.eval_many_into(&fwd, &mut out);
        assert_eq!(out, p.eval_many(&fwd));
    }

    #[test]
    fn locate_hinted_matches_locate_from_any_cursor() {
        // Uneven knots so interval widths differ; queries hit every
        // knot exactly, one ulp to either side, and every midpoint.
        let xs: Vec<f64> = (0..8).map(|i| (i as f64).sqrt()).collect();
        let last = xs.len() - 2;
        let mut queries: Vec<f64> = xs.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        for &k in &xs {
            queries.extend([k.next_down(), k, k.next_up()]);
        }
        for &q in &queries {
            let want = locate(&xs, q);
            // Every possible cursor position, including one past the
            // last interval (a stale hint from a longer grid).
            for start in 0..=xs.len() {
                let mut hint = start;
                assert_eq!(locate_hinted(&xs, q, &mut hint), want, "q {q} from hint {start}");
                assert!(hint <= last, "cursor must stay clamped");
                // Repeating the query must return the same interval
                // without moving the cursor.
                assert_eq!(locate_hinted(&xs, q, &mut hint), want, "repeat of q {q}");
                assert_eq!(hint, want.min(last));
            }
        }
        // A non-decreasing sweep over the knots walks the cursor to the
        // final interval (the aligner's steady-state access pattern).
        let mut hint = 0usize;
        for &q in &xs {
            locate_hinted(&xs, q, &mut hint);
        }
        assert_eq!(hint, last);
    }

    #[test]
    fn single_point_is_constant() {
        let out = linear_interp(&[1.0], &[42.0], &[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(out, vec![42.0; 3]);
    }
}
