//! Short-time Fourier transform and its inverse.
//!
//! The DHF pipeline operates on complex spectrograms: masks and in-painting
//! act on the magnitude, phase is interpolated separately, and the result is
//! resynthesized with a weighted overlap-add inverse (synthesis window equal
//! to the analysis window, normalized by the squared-window overlap), which
//! reconstructs COLA-compliant configurations exactly in the interior.

use crate::complex::Complex;
use crate::fft::FftPlanner;
use crate::simd;
use crate::window::{cola_deviation, WindowKind};
use crate::{DspError, Result};
use std::cell::RefCell;

/// STFT analysis parameters.
///
/// # Example
///
/// ```
/// use dhf_dsp::StftConfig;
/// let cfg = StftConfig::new(128, 32, 16.0)?;
/// assert_eq!(cfg.bins(), 65);
/// # Ok::<(), dhf_dsp::DspError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StftConfig {
    window_len: usize,
    hop: usize,
    fs: f64,
    kind: WindowKind,
}

impl StftConfig {
    /// Creates a configuration with a Hann window.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `window_len` or `hop` is
    /// zero, `hop > window_len`, or `fs` is not positive.
    pub fn new(window_len: usize, hop: usize, fs: f64) -> Result<Self> {
        Self::with_window(window_len, hop, fs, WindowKind::Hann)
    }

    /// Creates a configuration with an explicit window shape.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StftConfig::new`].
    pub fn with_window(window_len: usize, hop: usize, fs: f64, kind: WindowKind) -> Result<Self> {
        if window_len == 0 {
            return Err(DspError::InvalidParameter {
                name: "window_len",
                message: "must be positive".into(),
            });
        }
        if hop == 0 || hop > window_len {
            return Err(DspError::InvalidParameter {
                name: "hop",
                message: format!("must be in 1..={window_len}"),
            });
        }
        if fs <= 0.0 || fs.is_nan() {
            return Err(DspError::InvalidParameter {
                name: "fs",
                message: "sample rate must be positive".into(),
            });
        }
        Ok(StftConfig { window_len, hop, fs, kind })
    }

    /// Analysis window length in samples.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Hop (stride) between frames in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Sample rate of the time-domain signal, in Hz.
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Window shape.
    pub fn window_kind(&self) -> WindowKind {
        self.kind
    }

    /// Number of non-redundant frequency bins (`window_len/2 + 1`).
    pub fn bins(&self) -> usize {
        self.window_len / 2 + 1
    }

    /// Frequency resolution: Hz per bin.
    pub fn hz_per_bin(&self) -> f64 {
        self.fs / self.window_len as f64
    }

    /// Centre frequency of bin `k` in Hz.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.hz_per_bin()
    }

    /// Bin index closest to frequency `hz` (clamped to the valid range).
    pub fn frequency_to_bin(&self, hz: f64) -> usize {
        let k = (hz / self.hz_per_bin()).round();
        (k.max(0.0) as usize).min(self.bins() - 1)
    }

    /// Start time (seconds) of frame `m`.
    pub fn frame_time(&self, m: usize) -> f64 {
        (m * self.hop) as f64 / self.fs
    }

    /// Number of frames produced for a signal of `n` samples.
    pub fn frames_for(&self, n: usize) -> usize {
        if n < self.window_len {
            0
        } else {
            (n - self.window_len) / self.hop + 1
        }
    }

    /// Maximum relative COLA deviation of this window/hop pair; near zero
    /// means exact interior reconstruction through [`istft`].
    pub fn cola_deviation(&self) -> f64 {
        cola_deviation(&self.kind.samples(self.window_len), self.hop)
    }
}

/// A complex spectrogram stored as a flat structure-of-arrays workspace:
/// two contiguous `f64` planes (`re`, `im`) in frame-major order
/// (`plane[frame * bins + bin]`), plus the configuration that produced it.
///
/// Frame-major SoA is the hot-path layout: each STFT frame's half
/// spectrum is one contiguous slice per plane, so the packed real FFT
/// analyzes and resynthesizes directly into the workspace with no
/// per-frame allocation or strided scatter, and the whole workspace is
/// reused across rounds/chunks (capacity survives
/// [`StftEngine::stft_into`] re-analysis). Stage images that the neural
/// in-painter consumes (magnitude, masks) remain bin-major `[freq, time]`;
/// [`Spectrogram::magnitude_into`] and
/// [`Spectrogram::set_magnitude_phase`] transpose at the boundary.
///
/// # Example
///
/// ```
/// use dhf_dsp::stft::{stft, StftConfig};
///
/// let cfg = StftConfig::new(64, 16, 16.0)?;
/// let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.3).sin()).collect();
/// let spec = stft(&x, &cfg)?;
/// assert_eq!(spec.bins(), 33);
/// // Each frame's half spectrum is one contiguous slice per plane.
/// let (re, im) = spec.frame(0);
/// assert_eq!(re.len(), spec.bins());
/// assert_eq!(im.len(), spec.bins());
/// // (bin, frame) access agrees with the planes.
/// assert_eq!(spec.at(3, 0).re, re[3]);
/// # Ok::<(), dhf_dsp::DspError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    config: StftConfig,
    bins: usize,
    frames: usize,
    /// Real plane, frame-major (`re[frame * bins + bin]`).
    re: Vec<f64>,
    /// Imaginary plane, frame-major.
    im: Vec<f64>,
    /// Original signal length, kept so the inverse can trim padding.
    signal_len: usize,
}

impl Spectrogram {
    /// Creates an empty reusable workspace. Shape, configuration and data
    /// are fully overwritten by the first [`StftEngine::stft_into`]; until
    /// then the spectrogram has zero frames.
    pub fn workspace() -> Self {
        let placeholder = StftConfig::new(128, 32, 16.0).expect("valid placeholder layout");
        Spectrogram {
            config: placeholder,
            bins: placeholder.bins(),
            frames: 0,
            re: Vec::new(),
            im: Vec::new(),
            signal_len: 0,
        }
    }

    /// Builds a spectrogram from raw SoA planes (frame-major).
    ///
    /// # Panics
    ///
    /// Panics if the planes are not both `config.bins() * frames` long.
    pub fn from_parts(
        config: StftConfig,
        frames: usize,
        re: Vec<f64>,
        im: Vec<f64>,
        signal_len: usize,
    ) -> Self {
        let bins = config.bins();
        assert_eq!(re.len(), bins * frames, "re plane length mismatch");
        assert_eq!(im.len(), bins * frames, "im plane length mismatch");
        Spectrogram { config, bins, frames, re, im, signal_len }
    }

    /// Resets configuration and shape, resizing the planes (reusing their
    /// capacity) and zeroing them.
    pub(crate) fn reset_layout(&mut self, config: StftConfig, frames: usize, signal_len: usize) {
        self.config = config;
        self.bins = config.bins();
        self.frames = frames;
        self.signal_len = signal_len;
        let cells = self.bins * frames;
        self.re.clear();
        self.re.resize(cells, 0.0);
        self.im.clear();
        self.im.resize(cells, 0.0);
    }

    /// The analysis configuration.
    pub fn config(&self) -> &StftConfig {
        &self.config
    }

    /// Number of frequency bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Length of the analyzed signal in samples.
    pub fn signal_len(&self) -> usize {
        self.signal_len
    }

    /// Complex coefficient at (`bin`, `frame`), assembled from the planes.
    #[inline]
    pub fn at(&self, bin: usize, frame: usize) -> Complex {
        let i = frame * self.bins + bin;
        Complex::new(self.re[i], self.im[i])
    }

    /// Overwrites the coefficient at (`bin`, `frame`), scattering into the
    /// planes (the write-side complement of [`Spectrogram::at`]).
    #[inline]
    pub fn set_at(&mut self, bin: usize, frame: usize, value: Complex) {
        let i = frame * self.bins + bin;
        self.re[i] = value.re;
        self.im[i] = value.im;
    }

    /// The whole real plane, frame-major.
    pub fn re_plane(&self) -> &[f64] {
        &self.re
    }

    /// The whole imaginary plane, frame-major.
    pub fn im_plane(&self) -> &[f64] {
        &self.im
    }

    /// One frame's half spectrum as `(re, im)` slice views.
    #[inline]
    pub fn frame(&self, frame: usize) -> (&[f64], &[f64]) {
        let lo = frame * self.bins;
        let hi = lo + self.bins;
        (&self.re[lo..hi], &self.im[lo..hi])
    }

    /// Mutable `(re, im)` slice views of one frame's half spectrum.
    #[inline]
    pub fn frame_mut(&mut self, frame: usize) -> (&mut [f64], &mut [f64]) {
        let lo = frame * self.bins;
        let hi = lo + self.bins;
        (&mut self.re[lo..hi], &mut self.im[lo..hi])
    }

    /// Magnitude image, bin-major (`bins × frames`) — the `[freq, time]`
    /// layout the in-painting stage consumes.
    pub fn magnitude(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.magnitude_into(&mut out);
        out
    }

    /// Writes the bin-major magnitude image into `out` (cleared first),
    /// reusing its capacity.
    pub fn magnitude_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.bins * self.frames, 0.0);
        // Magnitudes over the whole contiguous planes in one kernel pass
        // (√(re²+im²) rather than `hypot` — exactly rounded and immune to
        // overflow at any magnitude a spectrogram can hold), then a scalar
        // transpose into the bin-major image.
        let mut flat = vec![0.0; self.re.len()];
        simd::magnitude_into(&mut flat, &self.re, &self.im);
        for m in 0..self.frames {
            let row = m * self.bins;
            for b in 0..self.bins {
                out[b * self.frames + m] = flat[row + b];
            }
        }
    }

    /// Total energy `Σ|X|²` of the spectrogram, accumulated in the
    /// deterministic lane order of [`simd::sum_sq2`].
    pub fn energy(&self) -> f64 {
        simd::sum_sq2(&self.re, &self.im)
    }

    /// Rebuilds every coefficient in place from bin-major magnitude and
    /// phase images (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if image sizes disagree with this spectrogram's shape.
    pub fn set_magnitude_phase(&mut self, magnitude: &[f64], phase: &[f64]) {
        assert_eq!(magnitude.len(), self.re.len(), "magnitude size mismatch");
        assert_eq!(phase.len(), self.re.len(), "phase size mismatch");
        for m in 0..self.frames {
            let row = m * self.bins;
            for b in 0..self.bins {
                let src = b * self.frames + m;
                let (mag, ph) = (magnitude[src], phase[src]);
                let (sin, cos) = ph.sin_cos();
                self.re[row + b] = mag * cos;
                self.im[row + b] = mag * sin;
            }
        }
    }

    /// Scales each coefficient in place by a bin-major gain image.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != bins * frames`.
    pub fn apply_mask_in_place(&mut self, mask: &[f64]) {
        assert_eq!(mask.len(), self.re.len(), "mask size mismatch");
        for m in 0..self.frames {
            let row = m * self.bins;
            for b in 0..self.bins {
                let g = mask[b * self.frames + m];
                self.re[row + b] *= g;
                self.im[row + b] *= g;
            }
        }
    }

    /// Scales every coefficient of a single bin row by `gain` (used by the
    /// comb restriction, whose gain is constant over time).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= bins`.
    pub fn scale_bin(&mut self, bin: usize, gain: f64) {
        assert!(bin < self.bins, "bin out of range");
        let mut i = bin;
        for _ in 0..self.frames {
            self.re[i] *= gain;
            self.im[i] *= gain;
            i += self.bins;
        }
    }

    /// Scales every frame by a per-bin gain vector (time-constant gains,
    /// e.g. the comb restriction): each frame's contiguous plane slices
    /// are multiplied elementwise by `gains` in one kernel call.
    ///
    /// # Panics
    ///
    /// Panics if `gains.len() != bins`.
    pub fn scale_bins(&mut self, gains: &[f64]) {
        assert_eq!(gains.len(), self.bins, "gain vector size mismatch");
        for m in 0..self.frames {
            let lo = m * self.bins;
            let hi = lo + self.bins;
            simd::mul_in_place(&mut self.re[lo..hi], gains);
            simd::mul_in_place(&mut self.im[lo..hi], gains);
        }
    }
}

/// A reusable STFT engine: owns an [`FftPlanner`] plus window and frame
/// scratch buffers, so that analyzing/resynthesizing many signals with the
/// same configuration (the streaming hot path) recomputes no twiddle
/// tables and performs no per-frame allocation.
///
/// The free functions [`stft`] and [`istft`] delegate to a thread-local
/// engine; code that processes many frames (chunked streaming, benches)
/// should own one and call [`StftEngine::stft_into`] /
/// [`StftEngine::istft_into`] to also reuse the output buffers.
#[derive(Debug, Default)]
pub struct StftEngine {
    planner: FftPlanner,
    window: Vec<f64>,
    /// Precomputed `window[i]²` for the overlap-add normalization — the
    /// product is identical to multiplying on the fly, so the vectorized
    /// accumulate stays bit-identical to the historical scalar loop.
    window_sq: Vec<f64>,
    window_key: Option<(WindowKind, usize)>,
    frame: Vec<f64>,
    norm: Vec<f64>,
}

impl StftEngine {
    /// Creates an engine with empty caches; plans and windows are built
    /// lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The engine's FFT planner (e.g. for cache statistics).
    pub fn planner(&self) -> &FftPlanner {
        &self.planner
    }

    fn ensure_window(&mut self, kind: WindowKind, len: usize) {
        if self.window_key != Some((kind, len)) {
            self.window = kind.samples(len);
            self.window_sq = self.window.iter().map(|&w| w * w).collect();
            self.window_key = Some((kind, len));
        }
    }

    /// Computes the STFT of `signal`, reusing internal scratch buffers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`stft`].
    pub fn stft(&mut self, signal: &[f64], config: &StftConfig) -> Result<Spectrogram> {
        let mut spec = Spectrogram::workspace();
        self.stft_into(signal, config, &mut spec)?;
        Ok(spec)
    }

    /// Computes the STFT of `signal` into an existing spectrogram
    /// workspace, reusing its SoA planes (resized as needed) as well as
    /// the engine's scratch. Each frame's packed real FFT writes its half
    /// spectrum directly into the frame's contiguous plane slices. After
    /// the call `spec` is fully overwritten: configuration, shape and data
    /// all describe the new analysis.
    ///
    /// # Errors
    ///
    /// Same conditions as [`stft`].
    pub fn stft_into(
        &mut self,
        signal: &[f64],
        config: &StftConfig,
        spec: &mut Spectrogram,
    ) -> Result<()> {
        let w = config.window_len();
        if signal.len() < w {
            return Err(DspError::InvalidParameter {
                name: "signal",
                message: format!("needs at least {w} samples, got {}", signal.len()),
            });
        }
        // Inputs validated: from here the analysis runs to completion,
        // so the span measures real work only.
        let _span = dhf_obs::span(dhf_obs::Stage::StftAnalysis);
        let frames = config.frames_for(signal.len());
        self.ensure_window(config.window_kind(), w);
        spec.reset_layout(*config, frames, signal.len());
        let mut frame = std::mem::take(&mut self.frame);
        frame.clear();
        frame.resize(w, 0.0);
        for m in 0..frames {
            let start = m * config.hop();
            simd::mul_into(&mut frame, &signal[start..start + w], &self.window);
            let (re, im) = spec.frame_mut(m);
            self.planner.rfft_split_into(&frame, re, im);
        }
        self.frame = frame;
        Ok(())
    }

    /// Inverse STFT by weighted overlap-add, reusing internal scratch.
    /// Semantics are identical to [`istft`].
    pub fn istft(&mut self, spec: &Spectrogram) -> Vec<f64> {
        let mut out = Vec::new();
        self.istft_into(spec, &mut out);
        out
    }

    /// Inverse STFT into an existing output buffer (cleared and refilled),
    /// reusing the engine's window/normalization scratch. Each frame's
    /// half spectrum is read straight from the workspace's contiguous
    /// plane slices.
    pub fn istft_into(&mut self, spec: &Spectrogram, out: &mut Vec<f64>) {
        let _span = dhf_obs::span(dhf_obs::Stage::Istft);
        let config = spec.config();
        let w = config.window_len();
        let hop = config.hop();
        let frames = spec.frames();
        let n = if frames == 0 { 0 } else { (frames - 1) * hop + w };
        self.ensure_window(config.window_kind(), w);

        out.clear();
        out.resize(n, 0.0);
        let mut norm = std::mem::take(&mut self.norm);
        let mut frame = std::mem::take(&mut self.frame);
        norm.clear();
        norm.resize(n, 0.0);
        for m in 0..frames {
            let (re, im) = spec.frame(m);
            self.planner.irfft_split_into(re, im, w, &mut frame);
            let start = m * hop;
            simd::mul_add_in_place(&mut out[start..start + w], &frame, &self.window);
            simd::add_in_place(&mut norm[start..start + w], &self.window_sq);
        }
        // Normalize by the squared-window overlap. Near the edges the
        // overlap sum decays to ~0; for *modified* spectrograms the
        // numerator no longer tapers to match, so an unguarded division
        // would blow up the boundary samples (and, in iterative pipelines,
        // cascade). A relative floor keeps the interior exact and merely
        // tapers the edges.
        let norm_peak = norm.iter().cloned().fold(0.0f64, f64::max);
        let floor = 0.25 * norm_peak;
        for i in 0..n {
            if norm[i] > 1e-12 {
                out[i] /= norm[i].max(floor);
            }
        }
        out.resize(spec.signal_len(), 0.0);
        self.norm = norm;
        self.frame = frame;
    }
}

// `StftEngine` holds an `FftPlanner`; the serving runtime moves
// engine-holding sessions between worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StftEngine>();
    assert_send::<Spectrogram>();
};

thread_local! {
    /// Shared engine behind the free-function API.
    static THREAD_ENGINE: RefCell<StftEngine> = RefCell::new(StftEngine::new());
}

/// Computes the STFT of `signal`.
///
/// Frames start at multiples of the hop; no centre padding is applied, so
/// frame `m` covers samples `[m·hop, m·hop + window_len)`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the signal is shorter than one
/// window.
pub fn stft(signal: &[f64], config: &StftConfig) -> Result<Spectrogram> {
    THREAD_ENGINE.with(|e| e.borrow_mut().stft(signal, config))
}

/// Inverse STFT by weighted overlap-add.
///
/// Uses the analysis window for synthesis and normalizes by the squared
/// window overlap, which makes the inverse exact in the interior for COLA
/// window/hop pairs and least-squares optimal after spectrogram
/// modification. The output is trimmed/padded to `spec.signal_len()`.
pub fn istft(spec: &Spectrogram) -> Vec<f64> {
    THREAD_ENGINE.with(|e| e.borrow_mut().istft(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirp(n: usize, fs: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * std::f64::consts::PI * (2.0 * t + 0.05 * t * t)).sin()
            })
            .collect()
    }

    #[test]
    fn config_validates_parameters() {
        assert!(StftConfig::new(0, 1, 1.0).is_err());
        assert!(StftConfig::new(64, 0, 1.0).is_err());
        assert!(StftConfig::new(64, 65, 1.0).is_err());
        assert!(StftConfig::new(64, 16, -1.0).is_err());
        assert!(StftConfig::new(64, 16, 16.0).is_ok());
    }

    #[test]
    fn stft_shape_matches_config() {
        let cfg = StftConfig::new(128, 32, 16.0).unwrap();
        let x = chirp(1024, 16.0);
        let s = stft(&x, &cfg).unwrap();
        assert_eq!(s.bins(), 65);
        assert_eq!(s.frames(), (1024 - 128) / 32 + 1);
        assert_eq!(s.signal_len(), 1024);
    }

    #[test]
    fn stft_too_short_signal_errors() {
        let cfg = StftConfig::new(128, 32, 16.0).unwrap();
        assert!(stft(&[0.0; 64], &cfg).is_err());
    }

    #[test]
    fn istft_reconstructs_interior_exactly() {
        let fs = 100.0;
        let cfg = StftConfig::new(256, 64, fs).unwrap();
        assert!(cfg.cola_deviation() < 1e-12);
        let x = chirp(2048, fs);
        let s = stft(&x, &cfg).unwrap();
        let y = istft(&s);
        assert_eq!(y.len(), x.len());
        // Interior (skip one window at each end): exact reconstruction.
        for i in 256..(2048 - 256) {
            assert!((x[i] - y[i]).abs() < 1e-9, "sample {i}: {} vs {}", x[i], y[i]);
        }
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        let fs = 64.0;
        let cfg = StftConfig::new(128, 32, fs).unwrap();
        let f0 = 8.0;
        let x: Vec<f64> =
            (0..1024).map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin()).collect();
        let s = stft(&x, &cfg).unwrap();
        let target_bin = cfg.frequency_to_bin(f0);
        assert_eq!(target_bin, 16);
        for m in 0..s.frames() {
            let mags: Vec<f64> = (0..s.bins()).map(|k| s.at(k, m).abs()).collect();
            let peak =
                mags.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            assert_eq!(peak, target_bin);
        }
    }

    #[test]
    fn magnitude_phase_round_trip() {
        let cfg = StftConfig::new(64, 16, 16.0).unwrap();
        let x = chirp(512, 16.0);
        let s = stft(&x, &cfg).unwrap();
        let mag = s.magnitude();
        let phase: Vec<f64> = {
            let (bins, frames) = (s.bins(), s.frames());
            let mut out = vec![0.0; bins * frames];
            for b in 0..bins {
                for m in 0..frames {
                    out[b * frames + m] = s.at(b, m).arg();
                }
            }
            out
        };
        let mut rebuilt = s.clone();
        rebuilt.set_magnitude_phase(&mag, &phase);
        for b in 0..s.bins() {
            for m in 0..s.frames() {
                assert!((s.at(b, m) - rebuilt.at(b, m)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn apply_mask_zeroes_selected_bins() {
        let cfg = StftConfig::new(64, 16, 16.0).unwrap();
        let x = chirp(512, 16.0);
        let s = stft(&x, &cfg).unwrap();
        let mut mask = vec![1.0; s.bins() * s.frames()];
        for m in 0..s.frames() {
            mask[3 * s.frames() + m] = 0.0;
        }
        let mut masked = s.clone();
        masked.apply_mask_in_place(&mask);
        for m in 0..s.frames() {
            assert_eq!(masked.at(3, m), Complex::ZERO);
            assert_eq!(masked.at(4, m), s.at(4, m));
        }
    }

    #[test]
    fn frequency_bin_round_trip() {
        let cfg = StftConfig::new(128, 32, 16.0).unwrap();
        for k in 0..cfg.bins() {
            assert_eq!(cfg.frequency_to_bin(cfg.bin_frequency(k)), k);
        }
    }

    #[test]
    fn engine_matches_free_functions_and_caches_one_plan_set() {
        let cfg = StftConfig::new(128, 32, 16.0).unwrap();
        let x = chirp(1024, 16.0);
        let mut engine = StftEngine::new();
        let mut spec = engine.stft(&x, &cfg).unwrap();
        let free = stft(&x, &cfg).unwrap();
        assert_eq!(spec.re_plane(), free.re_plane());
        assert_eq!(spec.im_plane(), free.im_plane());
        // Re-analyzing many signals of the same layout reuses one plan set
        // and the same SoA planes.
        for round in 0..8 {
            let y: Vec<f64> = x.iter().map(|&v| v * (round + 1) as f64).collect();
            engine.stft_into(&y, &cfg, &mut spec).unwrap();
        }
        // One real-split table (128) + one half-size radix-2 plan (64).
        assert_eq!(engine.planner().plans_built(), 2, "same-size frames must share one plan set");
        // Inverse through the engine matches the free function.
        let mut out = Vec::new();
        engine.istft_into(&spec, &mut out);
        assert_eq!(out, istft(&spec));
    }

    #[test]
    fn in_place_mutators_and_frame_views_are_consistent() {
        let cfg = StftConfig::new(64, 16, 16.0).unwrap();
        let x = chirp(512, 16.0);
        let s = stft(&x, &cfg).unwrap();
        let mag = s.magnitude();
        let mask: Vec<f64> =
            (0..s.bins() * s.frames()).map(|i| if i % 3 == 0 { 0.0 } else { 0.5 }).collect();

        // Frame views agree with (bin, frame) access.
        for m in 0..s.frames() {
            let (re, im) = s.frame(m);
            for b in 0..s.bins() {
                assert_eq!(s.at(b, m), Complex::new(re[b], im[b]));
            }
        }

        // Masking in place matches per-cell scaling.
        let mut masked = s.clone();
        masked.apply_mask_in_place(&mask);
        for b in 0..s.bins() {
            for m in 0..s.frames() {
                let expect = s.at(b, m).scale(mask[b * s.frames() + m]);
                assert!((masked.at(b, m) - expect).abs() < 1e-15);
            }
        }

        // Rebuilding from the magnitude image with zero phase zeroes the
        // imaginary plane and leaves magnitudes intact.
        let mut rebuilt = s.clone();
        rebuilt.set_magnitude_phase(&mag, &vec![0.0; mag.len()]);
        assert!(rebuilt.im_plane().iter().all(|&v| v == 0.0));
        for b in 0..s.bins() {
            for m in 0..s.frames() {
                assert!((rebuilt.at(b, m).re - mag[b * s.frames() + m]).abs() < 1e-12);
            }
        }

        let mut scaled = s.clone();
        scaled.scale_bin(3, 0.0);
        for m in 0..s.frames() {
            assert_eq!(scaled.at(3, m), Complex::ZERO);
            assert_eq!(scaled.at(4, m), s.at(4, m));
        }
    }

    #[test]
    fn energy_is_nonnegative_and_additive_in_masking() {
        let cfg = StftConfig::new(64, 16, 16.0).unwrap();
        let x = chirp(512, 16.0);
        let s = stft(&x, &cfg).unwrap();
        let full = s.energy();
        let half_mask: Vec<f64> =
            (0..s.bins() * s.frames()).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let inv_mask: Vec<f64> = half_mask.iter().map(|&m| 1.0 - m).collect();
        let masked = |mask: &[f64]| {
            let mut sp = s.clone();
            sp.apply_mask_in_place(mask);
            sp.energy()
        };
        let e1 = masked(&half_mask);
        let e2 = masked(&inv_mask);
        assert!((e1 + e2 - full).abs() < 1e-6 * full.max(1.0));
    }
}
