//! Fast Fourier transforms.
//!
//! Two engines are provided behind one entry point:
//!
//! * an in-place iterative radix-2 Cooley–Tukey transform for power-of-two
//!   lengths, and
//! * Bluestein's chirp-z algorithm for arbitrary lengths, which reduces an
//!   N-point DFT to a circular convolution carried out with the radix-2
//!   engine.
//!
//! The convention is the unnormalized forward DFT
//! `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`; [`ifft`] divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex;

/// Returns `true` if `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Next power of two greater than or equal to `n`.
///
/// # Example
///
/// ```
/// assert_eq!(dhf_dsp::fft::next_power_of_two(600), 1024);
/// assert_eq!(dhf_dsp::fft::next_power_of_two(1024), 1024);
/// ```
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place radix-2 FFT.
///
/// `sign` is -1.0 for the forward transform, +1.0 for the inverse kernel
/// (without the 1/N normalization).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
fn fft_radix2_inplace(buf: &mut [Complex], sign: f64) {
    let n = buf.len();
    assert!(is_power_of_two(n), "radix-2 FFT requires power-of-two length");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = buf[i + k];
                let v = buf[i + k + half] * w;
                buf[i + k] = u + v;
                buf[i + k + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length.
///
/// Power-of-two lengths use radix-2 directly; other lengths fall back to
/// Bluestein's algorithm. The input is borrowed and an owned spectrum is
/// returned.
///
/// # Example
///
/// ```
/// use dhf_dsp::{fft::fft, Complex};
/// let x = vec![Complex::ONE; 6]; // constant signal of non-pow2 length
/// let spec = fft(&x);
/// assert!((spec[0].re - 6.0).abs() < 1e-9);
/// for k in 1..6 {
///     assert!(spec[k].abs() < 1e-9);
/// }
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_inplace(&mut buf);
    buf
}

/// Forward DFT, transforming the buffer in place (arbitrary length).
pub fn fft_inplace(buf: &mut Vec<Complex>) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if is_power_of_two(n) {
        fft_radix2_inplace(buf, -1.0);
    } else {
        let out = bluestein(buf, -1.0);
        *buf = out;
    }
}

/// Inverse DFT with 1/N normalization so that `ifft(fft(x)) == x`.
///
/// # Example
///
/// ```
/// use dhf_dsp::{fft::{fft, ifft}, Complex};
/// let x: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, -(i as f64))).collect();
/// let y = ifft(&fft(&x));
/// for (a, b) in x.iter().zip(&y) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut buf = input.to_vec();
    if is_power_of_two(n) {
        fft_radix2_inplace(&mut buf, 1.0);
    } else {
        buf = bluestein(&buf, 1.0);
    }
    let scale = 1.0 / n as f64;
    for v in &mut buf {
        *v = v.scale(scale);
    }
    buf
}

/// Bluestein chirp-z transform: N-point DFT via a (2N-1)-padded circular
/// convolution evaluated with the radix-2 engine.
fn bluestein(input: &[Complex], sign: f64) -> Vec<Complex> {
    let n = input.len();
    let m = next_power_of_two(2 * n - 1);
    let pi = std::f64::consts::PI;

    // Chirp w[k] = e^{sign·iπ k²/N}. Use k² mod 2N to keep the angle small
    // and numerically stable for long signals.
    let mut chirp = Vec::with_capacity(n);
    for k in 0..n {
        let kk = (k as u128 * k as u128) % (2 * n as u128);
        chirp.push(Complex::cis(sign * pi * kk as f64 / n as f64));
    }

    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_radix2_inplace(&mut a, -1.0);
    fft_radix2_inplace(&mut b, -1.0);
    for i in 0..m {
        a[i] *= b[i];
    }
    fft_radix2_inplace(&mut a, 1.0);
    let scale = 1.0 / m as f64;

    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        out.push(a[k].scale(scale) * chirp[k]);
    }
    out
}

/// Forward DFT of a real signal, returning only the non-redundant half
/// (`N/2 + 1` bins for even `N`, `(N+1)/2` for odd `N`).
///
/// # Example
///
/// ```
/// use dhf_dsp::fft::fft_real;
/// let x = vec![1.0, 0.0, -1.0, 0.0]; // cos at Nyquist/2
/// let spec = fft_real(&x);
/// assert_eq!(spec.len(), 3);
/// assert!((spec[1].re - 2.0).abs() < 1e-12);
/// ```
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
    let full = fft(&buf);
    let half = input.len() / 2 + 1;
    full.into_iter().take(half.max(1).min(input.len().max(1))).collect()
}

/// Inverse of [`fft_real`]: reconstructs a length-`n` real signal from its
/// half spectrum by mirroring Hermitian symmetry.
///
/// # Panics
///
/// Panics if `half.len()` is inconsistent with `n` (must equal `n/2 + 1`
/// for even `n` or `(n+1)/2` for odd `n`).
pub fn ifft_real(half: &[Complex], n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let expected = n / 2 + 1;
    assert_eq!(half.len(), expected.min(n), "half spectrum length inconsistent with signal length");
    let mut full = vec![Complex::ZERO; n];
    for (k, &v) in half.iter().enumerate() {
        full[k] = v;
    }
    for k in half.len()..n {
        full[k] = full[n - k].conj();
    }
    ifft(&full).into_iter().map(|c| c.re).collect()
}

/// Frequency (Hz) of each bin of an `n`-point DFT at sample rate `fs`,
/// for the non-negative half `0..=n/2`.
pub fn rfft_frequencies(n: usize, fs: f64) -> Vec<f64> {
    (0..=n / 2).map(|k| k as f64 * fs / n as f64).collect()
}

/// Circular convolution of two equal-length sequences via the FFT.
pub fn circular_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "circular convolution requires equal lengths");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let fa = fft(&a.iter().map(|&x| Complex::from_real(x)).collect::<Vec<_>>());
    let fb = fft(&b.iter().map(|&x| Complex::from_real(x)).collect::<Vec<_>>());
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    ifft(&prod).into_iter().map(|c| c.re).collect()
}

/// Linear (acyclic) autocorrelation of `x` for non-negative lags,
/// normalized so lag 0 equals 1 (unless the signal is all-zero).
///
/// Computed in O(N log N) via zero-padded FFT.
pub fn autocorrelation(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let m = next_power_of_two(2 * n);
    let mut buf = vec![Complex::ZERO; m];
    for (i, &v) in x.iter().enumerate() {
        buf[i] = Complex::from_real(v);
    }
    fft_radix2_inplace(&mut buf, -1.0);
    for v in buf.iter_mut() {
        *v = Complex::from_real(v.norm_sqr());
    }
    fft_radix2_inplace(&mut buf, 1.0);
    let r0 = buf[0].re;
    let norm = if r0.abs() < f64::EPSILON { 1.0 } else { r0 };
    (0..n).map(|k| buf[k].re / norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::cis(-2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64)
                    })
                    .sum()
            })
            .collect()
    }

    fn assert_spec_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} vs {y}");
        }
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.7).cos(),
                    (i as f64 * 0.11).cos() - 0.2,
                )
            })
            .collect()
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = test_signal(n);
            assert_spec_close(&fft(&x), &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for &n in &[3usize, 5, 6, 7, 12, 60, 100] {
            let x = test_signal(n);
            assert_spec_close(&fft(&x), &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft_all_lengths() {
        for &n in &[1usize, 2, 3, 5, 8, 17, 100, 128] {
            let x = test_signal(n);
            let y = ifft(&fft(&x));
            assert_spec_close(&x, &y, 1e-8 * n as f64);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let x = test_signal(n);
        let spec = fft(&x);
        let et: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((et - ef).abs() < 1e-8 * et);
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 256;
        let f = 17.0;
        let x: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / n as f64).sin()).collect();
        let spec = fft_real(&x);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, 17);
        // everything else is numerically zero
        for (k, &m) in mags.iter().enumerate() {
            if k != 17 {
                assert!(m < 1e-9, "bin {k} leaked {m}");
            }
        }
    }

    #[test]
    fn real_round_trip_even_and_odd() {
        for &n in &[8usize, 9, 100, 101] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).sin() + 0.1).collect();
            let y = ifft_real(&fft_real(&x), n);
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rfft_frequencies_span_zero_to_nyquist() {
        let f = rfft_frequencies(100, 100.0);
        assert_eq!(f.len(), 51);
        assert!((f[0]).abs() < 1e-12);
        assert!((f[50] - 50.0).abs() < 1e-12);
        assert!((f[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circular_convolution_with_delta_is_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut delta = vec![0.0; 5];
        delta[0] = 1.0;
        let y = circular_convolve(&x, &delta);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn autocorrelation_peaks_at_signal_period() {
        let fs = 100.0;
        let period = 25; // 4 Hz at 100 Hz sampling
        let x: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let ac = autocorrelation(&x);
        assert!((ac[0] - 1.0).abs() < 1e-9);
        // find the max away from lag 0
        let lag = (10..200).max_by(|&a, &b| ac[a].partial_cmp(&ac[b]).unwrap()).unwrap();
        let freq = fs / lag as f64;
        assert!((freq - 4.0).abs() < 0.2, "estimated {freq} Hz");
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        assert!(autocorrelation(&[]).is_empty());
    }
}
