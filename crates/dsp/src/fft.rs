//! Fast Fourier transforms.
//!
//! Two engines are provided behind one entry point:
//!
//! * an in-place iterative radix-2 Cooley–Tukey transform for power-of-two
//!   lengths, and
//! * Bluestein's chirp-z algorithm for arbitrary lengths, which reduces an
//!   N-point DFT to a circular convolution carried out with the radix-2
//!   engine.
//!
//! All per-size state (bit-reversal permutations, stage twiddle tables,
//! Bluestein chirps and pre-transformed convolution kernels) lives in an
//! [`FftPlanner`]: the first transform of a given size builds a plan, every
//! later transform of that size reuses it, so repeated same-size transforms
//! — the STFT hot path — do no twiddle recomputation. The free functions
//! ([`fft`], [`ifft`], [`fft_real`], …) delegate to a thread-local planner
//! and therefore share plans within a thread; performance-critical callers
//! running many frames (streaming separation, benches) should hold their
//! own [`FftPlanner`] and use the `*_into` scratch-buffer entry points.
//!
//! The convention is the unnormalized forward DFT
//! `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`; [`ifft`] divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex;
use std::cell::RefCell;
use std::collections::HashMap;

/// Returns `true` if `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Next power of two greater than or equal to `n`.
///
/// # Example
///
/// ```
/// assert_eq!(dhf_dsp::fft::next_power_of_two(600), 1024);
/// assert_eq!(dhf_dsp::fft::next_power_of_two(1024), 1024);
/// ```
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// Cached state for one power-of-two transform size.
#[derive(Debug, Clone)]
struct Radix2Plan {
    n: usize,
    /// Bit-reversal permutation: `bitrev[i]` is the source index of `i`.
    bitrev: Vec<u32>,
    /// Forward stage twiddles, concatenated by stage: the stage with
    /// butterfly span `len` stores `cis(-2π·k/len)` for `k < len/2` at
    /// offset `len/2 - 1` (total `n - 1` entries). The inverse kernel
    /// conjugates on the fly.
    twiddles: Vec<Complex>,
}

impl Radix2Plan {
    fn new(n: usize) -> Self {
        debug_assert!(is_power_of_two(n));
        let mut bitrev = vec![0u32; n];
        let mut j = 0usize;
        for slot in bitrev.iter_mut().skip(1) {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            *slot = j as u32;
        }
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                twiddles.push(Complex::cis(ang));
            }
            len <<= 1;
        }
        Radix2Plan { n, bitrev, twiddles }
    }

    /// In-place radix-2 transform using the cached tables. `inverse`
    /// selects the conjugate (un-normalized) kernel.
    fn execute(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        for i in 1..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let tw = &self.twiddles[half - 1..half - 1 + half];
            let mut i = 0;
            while i < n {
                for k in 0..half {
                    let w = if inverse { tw[k].conj() } else { tw[k] };
                    let u = buf[i + k];
                    let v = buf[i + k + half] * w;
                    buf[i + k] = u + v;
                    buf[i + k + half] = u - v;
                }
                i += len;
            }
            len <<= 1;
        }
    }
}

/// Cached state for one non-power-of-two (Bluestein) transform size.
#[derive(Debug, Clone)]
struct BluesteinPlan {
    /// Convolution length: next power of two ≥ `2n - 1`.
    m: usize,
    /// Forward chirp `e^{-iπ k²/N}` (k² reduced mod 2N for stability).
    /// The inverse transform conjugates on the fly.
    chirp: Vec<Complex>,
    /// Radix-2 spectrum of the forward convolution kernel `b[k] = conj(chirp[k])`.
    kernel_fwd: Vec<Complex>,
    /// Radix-2 spectrum of the inverse convolution kernel `b[k] = chirp[k]`.
    kernel_inv: Vec<Complex>,
}

impl BluesteinPlan {
    fn new(n: usize, radix2_m: &Radix2Plan) -> Self {
        let m = radix2_m.n;
        debug_assert!(m >= 2 * n - 1);
        let pi = std::f64::consts::PI;
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n {
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            chirp.push(Complex::cis(-pi * kk as f64 / n as f64));
        }
        let mut kernel_fwd = vec![Complex::ZERO; m];
        let mut kernel_inv = vec![Complex::ZERO; m];
        kernel_fwd[0] = chirp[0].conj();
        kernel_inv[0] = chirp[0];
        for k in 1..n {
            let c = chirp[k].conj();
            kernel_fwd[k] = c;
            kernel_fwd[m - k] = c;
            kernel_inv[k] = chirp[k];
            kernel_inv[m - k] = chirp[k];
        }
        radix2_m.execute(&mut kernel_fwd, false);
        radix2_m.execute(&mut kernel_inv, false);
        BluesteinPlan { m, chirp, kernel_fwd, kernel_inv }
    }

    /// `chirp[k]` with the transform direction applied.
    #[inline]
    fn chirp_at(&self, k: usize, inverse: bool) -> Complex {
        if inverse {
            self.chirp[k].conj()
        } else {
            self.chirp[k]
        }
    }
}

/// A reusable FFT planner: computes and caches per-size plan state
/// (twiddle tables, bit-reversal permutations, Bluestein chirps and
/// kernel spectra) so that repeated transforms of the same size pay the
/// table-construction cost exactly once.
///
/// # Example
///
/// ```
/// use dhf_dsp::fft::FftPlanner;
/// use dhf_dsp::Complex;
///
/// let mut planner = FftPlanner::new();
/// let mut half = Vec::new();
/// for _ in 0..100 {
///     let frame = vec![1.0f64; 512];
///     planner.fft_real_into(&frame, &mut half);
/// }
/// // 100 same-size transforms built exactly one plan.
/// assert_eq!(planner.plans_built(), 1);
/// assert!((half[0].re - 512.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default)]
pub struct FftPlanner {
    radix2: HashMap<usize, Radix2Plan>,
    bluestein: HashMap<usize, BluesteinPlan>,
    /// Number of plans constructed over the planner's lifetime (cache
    /// misses); cache hits leave it unchanged.
    plans_built: usize,
    /// Scratch for the Bluestein convolution (length `m`).
    conv_scratch: Vec<Complex>,
    /// Scratch for real-transform promotion to complex.
    real_scratch: Vec<Complex>,
}

impl FftPlanner {
    /// Creates an empty planner; plans are built lazily per size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of plans constructed so far (one per distinct size and
    /// engine). Repeated same-size transforms do not increase this.
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }

    /// Number of distinct transform sizes currently cached.
    pub fn cached_sizes(&self) -> usize {
        self.radix2.len() + self.bluestein.len()
    }

    fn ensure_radix2(&mut self, n: usize) {
        let plans_built = &mut self.plans_built;
        self.radix2.entry(n).or_insert_with(|| {
            *plans_built += 1;
            Radix2Plan::new(n)
        });
    }

    fn ensure_bluestein(&mut self, n: usize) {
        let m = next_power_of_two(2 * n - 1);
        self.ensure_radix2(m);
        let plans_built = &mut self.plans_built;
        let radix2 = &self.radix2;
        self.bluestein.entry(n).or_insert_with(|| {
            *plans_built += 1;
            BluesteinPlan::new(n, &radix2[&m])
        });
    }

    /// Un-normalized transform of arbitrary length, in place.
    fn transform(&mut self, buf: &mut [Complex], inverse: bool) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        if is_power_of_two(n) {
            self.ensure_radix2(n);
            self.radix2[&n].execute(buf, inverse);
            return;
        }
        self.ensure_bluestein(n);
        // Take the scratch out so the plan borrows stay immutable.
        let mut a = std::mem::take(&mut self.conv_scratch);
        let plan = &self.bluestein[&n];
        let m = plan.m;
        let radix2_m = &self.radix2[&m];
        a.clear();
        a.resize(m, Complex::ZERO);
        for k in 0..n {
            a[k] = buf[k] * plan.chirp_at(k, inverse);
        }
        radix2_m.execute(&mut a, false);
        let kernel = if inverse { &plan.kernel_inv } else { &plan.kernel_fwd };
        for (ai, &ki) in a.iter_mut().zip(kernel) {
            *ai *= ki;
        }
        radix2_m.execute(&mut a, true);
        let scale = 1.0 / m as f64;
        for k in 0..n {
            buf[k] = a[k].scale(scale) * plan.chirp_at(k, inverse);
        }
        self.conv_scratch = a;
    }

    /// Forward DFT in place (arbitrary length).
    pub fn fft_inplace(&mut self, buf: &mut [Complex]) {
        self.transform(buf, false);
    }

    /// Inverse DFT in place, with the 1/N normalization.
    pub fn ifft_inplace(&mut self, buf: &mut [Complex]) {
        let n = buf.len();
        if n == 0 {
            return;
        }
        self.transform(buf, true);
        let scale = 1.0 / n as f64;
        for v in buf.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// Forward DFT of a real signal into `out` (cleared and refilled with
    /// the non-redundant half spectrum: `n/2 + 1` bins for even `n`,
    /// `(n+1)/2` for odd `n`). Reuses internal scratch, so repeated calls
    /// of one size allocate nothing after the first.
    pub fn fft_real_into(&mut self, input: &[f64], out: &mut Vec<Complex>) {
        let n = input.len();
        let mut buf = std::mem::take(&mut self.real_scratch);
        buf.clear();
        buf.extend(input.iter().map(|&x| Complex::from_real(x)));
        self.transform(&mut buf, false);
        let half = (n / 2 + 1).max(1).min(n.max(1));
        out.clear();
        out.extend_from_slice(&buf[..half.min(buf.len())]);
        self.real_scratch = buf;
    }

    /// Inverse of [`FftPlanner::fft_real_into`]: reconstructs a length-`n`
    /// real signal from its half spectrum into `out` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `half.len()` is inconsistent with `n` (must equal
    /// `n/2 + 1` for even `n` or `(n+1)/2` for odd `n`).
    pub fn ifft_real_into(&mut self, half: &[Complex], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            return;
        }
        let expected = n / 2 + 1;
        assert_eq!(
            half.len(),
            expected.min(n),
            "half spectrum length inconsistent with signal length"
        );
        let mut buf = std::mem::take(&mut self.real_scratch);
        buf.clear();
        buf.resize(n, Complex::ZERO);
        buf[..half.len()].copy_from_slice(half);
        for k in half.len()..n {
            buf[k] = buf[n - k].conj();
        }
        self.transform(&mut buf, true);
        let scale = 1.0 / n as f64;
        out.extend(buf.iter().map(|c| c.re * scale));
        self.real_scratch = buf;
    }
}

// The serving runtime ships planner-holding sessions across worker
// threads at open; a non-`Send` field sneaking in must fail the build,
// not the deployment.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FftPlanner>();
};

thread_local! {
    /// Shared planner behind the free-function API: all `fft`/`ifft`/
    /// `fft_real`/`ifft_real` calls on one thread reuse its plan cache.
    static THREAD_PLANNER: RefCell<FftPlanner> = RefCell::new(FftPlanner::new());
}

/// Runs `f` with the calling thread's shared [`FftPlanner`].
pub fn with_thread_planner<T>(f: impl FnOnce(&mut FftPlanner) -> T) -> T {
    THREAD_PLANNER.with(|p| f(&mut p.borrow_mut()))
}

/// Forward DFT of arbitrary length.
///
/// Power-of-two lengths use radix-2 directly; other lengths fall back to
/// Bluestein's algorithm. The input is borrowed and an owned spectrum is
/// returned. Plans are cached in a thread-local [`FftPlanner`].
///
/// # Example
///
/// ```
/// use dhf_dsp::{fft::fft, Complex};
/// let x = vec![Complex::ONE; 6]; // constant signal of non-pow2 length
/// let spec = fft(&x);
/// assert!((spec[0].re - 6.0).abs() < 1e-9);
/// for k in 1..6 {
///     assert!(spec[k].abs() < 1e-9);
/// }
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    with_thread_planner(|p| p.fft_inplace(&mut buf));
    buf
}

/// Forward DFT, transforming the buffer in place (arbitrary length).
pub fn fft_inplace(buf: &mut [Complex]) {
    with_thread_planner(|p| p.fft_inplace(buf));
}

/// Inverse DFT with 1/N normalization so that `ifft(fft(x)) == x`.
///
/// # Example
///
/// ```
/// use dhf_dsp::{fft::{fft, ifft}, Complex};
/// let x: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, -(i as f64))).collect();
/// let y = ifft(&fft(&x));
/// for (a, b) in x.iter().zip(&y) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    with_thread_planner(|p| p.ifft_inplace(&mut buf));
    buf
}

/// Forward DFT of a real signal, returning only the non-redundant half
/// (`N/2 + 1` bins for even `N`, `(N+1)/2` for odd `N`).
///
/// # Example
///
/// ```
/// use dhf_dsp::fft::fft_real;
/// let x = vec![1.0, 0.0, -1.0, 0.0]; // cos at Nyquist/2
/// let spec = fft_real(&x);
/// assert_eq!(spec.len(), 3);
/// assert!((spec[1].re - 2.0).abs() < 1e-12);
/// ```
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let mut out = Vec::new();
    with_thread_planner(|p| p.fft_real_into(input, &mut out));
    out
}

/// Inverse of [`fft_real`]: reconstructs a length-`n` real signal from its
/// half spectrum by mirroring Hermitian symmetry.
///
/// # Panics
///
/// Panics if `half.len()` is inconsistent with `n` (must equal `n/2 + 1`
/// for even `n` or `(n+1)/2` for odd `n`).
pub fn ifft_real(half: &[Complex], n: usize) -> Vec<f64> {
    let mut out = Vec::new();
    with_thread_planner(|p| p.ifft_real_into(half, n, &mut out));
    out
}

/// Frequency (Hz) of each bin of an `n`-point DFT at sample rate `fs`,
/// for the non-negative half `0..=n/2`.
pub fn rfft_frequencies(n: usize, fs: f64) -> Vec<f64> {
    (0..=n / 2).map(|k| k as f64 * fs / n as f64).collect()
}

/// Circular convolution of two equal-length sequences via the FFT.
pub fn circular_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "circular convolution requires equal lengths");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    with_thread_planner(|p| {
        let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::from_real(x)).collect();
        let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::from_real(x)).collect();
        p.fft_inplace(&mut fa);
        p.fft_inplace(&mut fb);
        for (x, &y) in fa.iter_mut().zip(&fb) {
            *x *= y;
        }
        p.ifft_inplace(&mut fa);
        fa.into_iter().map(|c| c.re).collect()
    })
}

/// Linear (acyclic) autocorrelation of `x` for non-negative lags,
/// normalized so lag 0 equals 1 (unless the signal is all-zero).
///
/// Computed in O(N log N) via zero-padded FFT.
pub fn autocorrelation(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let m = next_power_of_two(2 * n);
    let mut buf = vec![Complex::ZERO; m];
    for (i, &v) in x.iter().enumerate() {
        buf[i] = Complex::from_real(v);
    }
    with_thread_planner(|p| {
        p.fft_inplace(&mut buf);
        for v in buf.iter_mut() {
            *v = Complex::from_real(v.norm_sqr());
        }
        p.ifft_inplace(&mut buf);
    });
    let r0 = buf[0].re;
    let norm = if r0.abs() < f64::EPSILON { 1.0 } else { r0 };
    (0..n).map(|k| buf[k].re / norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::cis(-2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64)
                    })
                    .sum()
            })
            .collect()
    }

    fn assert_spec_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} vs {y}");
        }
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.7).cos(),
                    (i as f64 * 0.11).cos() - 0.2,
                )
            })
            .collect()
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = test_signal(n);
            assert_spec_close(&fft(&x), &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for &n in &[3usize, 5, 6, 7, 12, 60, 100] {
            let x = test_signal(n);
            assert_spec_close(&fft(&x), &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft_all_lengths() {
        for &n in &[1usize, 2, 3, 5, 8, 17, 100, 128] {
            let x = test_signal(n);
            let y = ifft(&fft(&x));
            assert_spec_close(&x, &y, 1e-8 * n as f64);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let x = test_signal(n);
        let spec = fft(&x);
        let et: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((et - ef).abs() < 1e-8 * et);
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 256;
        let f = 17.0;
        let x: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / n as f64).sin()).collect();
        let spec = fft_real(&x);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, 17);
        // everything else is numerically zero
        for (k, &m) in mags.iter().enumerate() {
            if k != 17 {
                assert!(m < 1e-9, "bin {k} leaked {m}");
            }
        }
    }

    #[test]
    fn real_round_trip_even_and_odd() {
        for &n in &[8usize, 9, 100, 101] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).sin() + 0.1).collect();
            let y = ifft_real(&fft_real(&x), n);
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rfft_frequencies_span_zero_to_nyquist() {
        let f = rfft_frequencies(100, 100.0);
        assert_eq!(f.len(), 51);
        assert!((f[0]).abs() < 1e-12);
        assert!((f[50] - 50.0).abs() < 1e-12);
        assert!((f[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circular_convolution_with_delta_is_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut delta = vec![0.0; 5];
        delta[0] = 1.0;
        let y = circular_convolve(&x, &delta);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn autocorrelation_peaks_at_signal_period() {
        let fs = 100.0;
        let period = 25; // 4 Hz at 100 Hz sampling
        let x: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let ac = autocorrelation(&x);
        assert!((ac[0] - 1.0).abs() < 1e-9);
        // find the max away from lag 0
        let lag = (10..200).max_by(|&a, &b| ac[a].partial_cmp(&ac[b]).unwrap()).unwrap();
        let freq = fs / lag as f64;
        assert!((freq - 4.0).abs() < 0.2, "estimated {freq} Hz");
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        assert!(autocorrelation(&[]).is_empty());
    }

    #[test]
    fn planner_reuses_one_plan_for_repeated_size() {
        let mut planner = FftPlanner::new();
        let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut half = Vec::new();
        for _ in 0..64 {
            planner.fft_real_into(&x, &mut half);
        }
        assert_eq!(planner.plans_built(), 1, "same-size transforms must share one plan");
        assert_eq!(planner.cached_sizes(), 1);
        // A second size adds exactly one more radix-2 plan.
        let y = vec![0.5f64; 1024];
        planner.fft_real_into(&y, &mut half);
        assert_eq!(planner.plans_built(), 2);
    }

    #[test]
    fn planner_bluestein_caches_kernel_and_radix2() {
        let mut planner = FftPlanner::new();
        let x = test_signal(60);
        for _ in 0..16 {
            let mut buf = x.clone();
            planner.fft_inplace(&mut buf);
        }
        // One Bluestein plan (size 60) + one radix-2 plan (size 128).
        assert_eq!(planner.plans_built(), 2);
        // The cached path still matches the naive DFT.
        let mut buf = x.clone();
        planner.fft_inplace(&mut buf);
        assert_spec_close(&buf, &naive_dft(&x), 1e-8 * 60.0);
    }

    #[test]
    fn planner_real_round_trip_matches_free_functions() {
        let mut planner = FftPlanner::new();
        for &n in &[16usize, 37, 100, 101] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos() - 0.2).collect();
            let mut half = Vec::new();
            planner.fft_real_into(&x, &mut half);
            assert_spec_close(&half, &fft_real(&x), 1e-9 * n as f64);
            let mut back = Vec::new();
            planner.ifft_real_into(&half, n, &mut back);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn planner_inverse_matches_forward_inverse_pair() {
        let mut planner = FftPlanner::new();
        for &n in &[12usize, 64, 90] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.fft_inplace(&mut buf);
            planner.ifft_inplace(&mut buf);
            assert_spec_close(&x, &buf, 1e-8 * n as f64);
        }
    }
}
