//! Fast Fourier transforms.
//!
//! Three engines are provided behind one entry point:
//!
//! * an in-place iterative radix-2 Cooley–Tukey transform for power-of-two
//!   lengths,
//! * Bluestein's chirp-z algorithm for arbitrary lengths, which reduces an
//!   N-point DFT to a circular convolution carried out with the radix-2
//!   engine, and
//! * a *packed real* transform ([`FftPlanner::rfft_into`] /
//!   [`FftPlanner::irfft_into`]): an even-length real N-point DFT computed
//!   via one N/2-point complex transform by packing even samples into the
//!   real lane and odd samples into the imaginary lane, then unscrambling
//!   with a cached split-twiddle table. Real transforms of odd length fall
//!   back to the full complex engine (Bluestein).
//!
//! All per-size state (bit-reversal permutations, stage twiddle tables,
//! Bluestein chirps and pre-transformed convolution kernels, real-split
//! twiddles) lives in an [`FftPlanner`]: the first transform of a given
//! size builds a plan, every later transform of that size reuses it, so
//! repeated same-size transforms — the STFT hot path — do no twiddle
//! recomputation. The free functions ([`fft`], [`ifft`], [`fft_real`], …)
//! delegate to a thread-local planner and therefore share plans within a
//! thread; performance-critical callers running many frames (streaming
//! separation, benches) should hold their own [`FftPlanner`] and use the
//! `*_into` scratch-buffer entry points.
//!
//! The convention is the unnormalized forward DFT
//! `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`; [`ifft`] divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex;
use crate::simd;
use std::cell::RefCell;
use std::collections::HashMap;

/// Returns `true` if `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Next power of two greater than or equal to `n`.
///
/// # Example
///
/// ```
/// assert_eq!(dhf_dsp::fft::next_power_of_two(600), 1024);
/// assert_eq!(dhf_dsp::fft::next_power_of_two(1024), 1024);
/// ```
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// Cached state for one power-of-two transform size.
#[derive(Debug, Clone)]
struct Radix2Plan {
    n: usize,
    /// Bit-reversal permutation: `bitrev[i]` is the source index of `i`.
    bitrev: Vec<u32>,
    /// Forward stage twiddles, concatenated by stage: the stage with
    /// butterfly span `len` stores `cis(-2π·k/len)` for `k < len/2` at
    /// offset `len/2 - 1` (total `n - 1` entries). The inverse kernel
    /// conjugates on the fly.
    twiddles: Vec<Complex>,
}

impl Radix2Plan {
    fn new(n: usize) -> Self {
        debug_assert!(is_power_of_two(n));
        let mut bitrev = vec![0u32; n];
        let mut j = 0usize;
        for slot in bitrev.iter_mut().skip(1) {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            *slot = j as u32;
        }
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                twiddles.push(Complex::cis(ang));
            }
            len <<= 1;
        }
        Radix2Plan { n, bitrev, twiddles }
    }

    /// In-place radix-2 transform using the cached tables. `inverse`
    /// selects the conjugate (un-normalized) kernel.
    fn execute(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        for i in 1..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let tw = &self.twiddles[half - 1..half - 1 + half];
            simd::radix2_stage(buf, tw, half, inverse);
            len <<= 1;
        }
    }
}

/// Cached state for one non-power-of-two (Bluestein) transform size.
#[derive(Debug, Clone)]
struct BluesteinPlan {
    /// Convolution length: next power of two ≥ `2n - 1`.
    m: usize,
    /// Forward chirp `e^{-iπ k²/N}` (k² reduced mod 2N for stability).
    /// The inverse transform conjugates on the fly.
    chirp: Vec<Complex>,
    /// Radix-2 spectrum of the forward convolution kernel `b[k] = conj(chirp[k])`.
    kernel_fwd: Vec<Complex>,
    /// Radix-2 spectrum of the inverse convolution kernel `b[k] = chirp[k]`.
    kernel_inv: Vec<Complex>,
}

impl BluesteinPlan {
    fn new(n: usize, radix2_m: &Radix2Plan) -> Self {
        let m = radix2_m.n;
        debug_assert!(m >= 2 * n - 1);
        let pi = std::f64::consts::PI;
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n {
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            chirp.push(Complex::cis(-pi * kk as f64 / n as f64));
        }
        let mut kernel_fwd = vec![Complex::ZERO; m];
        let mut kernel_inv = vec![Complex::ZERO; m];
        kernel_fwd[0] = chirp[0].conj();
        kernel_inv[0] = chirp[0];
        for k in 1..n {
            let c = chirp[k].conj();
            kernel_fwd[k] = c;
            kernel_fwd[m - k] = c;
            kernel_inv[k] = chirp[k];
            kernel_inv[m - k] = chirp[k];
        }
        radix2_m.execute(&mut kernel_fwd, false);
        radix2_m.execute(&mut kernel_inv, false);
        BluesteinPlan { m, chirp, kernel_fwd, kernel_inv }
    }

    /// `chirp[k]` with the transform direction applied.
    #[inline]
    fn chirp_at(&self, k: usize, inverse: bool) -> Complex {
        if inverse {
            self.chirp[k].conj()
        } else {
            self.chirp[k]
        }
    }
}

/// Cached split-twiddle table for one even packed-real transform size.
///
/// The N-point real DFT is computed as one M = N/2-point complex DFT of
/// `z[m] = x[2m] + i·x[2m+1]`; recovering `X[k]` from `Z` needs the
/// twiddles `e^{-2πi·k/N}` for `k ≤ M`, cached here.
#[derive(Debug, Clone)]
struct RealPlan {
    /// `cis(-2π·k/n)` for `k = 0..=n/2`.
    twiddle: Vec<Complex>,
}

impl RealPlan {
    fn new(n: usize) -> Self {
        debug_assert!(n >= 2 && n % 2 == 0);
        let m = n / 2;
        let mut twiddle = Vec::with_capacity(m + 1);
        for k in 0..=m {
            twiddle.push(Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64));
        }
        RealPlan { twiddle }
    }
}

/// A reusable FFT planner: computes and caches per-size plan state
/// (twiddle tables, bit-reversal permutations, Bluestein chirps and
/// kernel spectra, real-split twiddles) so that repeated transforms of the
/// same size pay the table-construction cost exactly once.
///
/// # Example
///
/// ```
/// use dhf_dsp::fft::FftPlanner;
/// use dhf_dsp::Complex;
///
/// let mut planner = FftPlanner::new();
/// let mut half = Vec::new();
/// for _ in 0..100 {
///     let frame = vec![1.0f64; 512];
///     planner.rfft_into(&frame, &mut half);
/// }
/// // 100 same-size real transforms built exactly two plans: the 256-point
/// // complex half-size plan plus the 512-point real-split table.
/// assert_eq!(planner.plans_built(), 2);
/// assert!((half[0].re - 512.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default)]
pub struct FftPlanner {
    radix2: HashMap<usize, Radix2Plan>,
    bluestein: HashMap<usize, BluesteinPlan>,
    real: HashMap<usize, RealPlan>,
    /// Number of plans constructed over the planner's lifetime (cache
    /// misses); cache hits leave it unchanged.
    plans_built: usize,
    /// Scratch for the Bluestein convolution (length `m`).
    conv_scratch: Vec<Complex>,
    /// Scratch for the packed real transform (length `n/2`, or `n` on the
    /// odd-length complex fallback).
    real_scratch: Vec<Complex>,
}

impl FftPlanner {
    /// Creates an empty planner; plans are built lazily per size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of plans constructed so far (one per distinct size and
    /// engine). Repeated same-size transforms do not increase this.
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }

    /// Number of distinct transform sizes currently cached.
    pub fn cached_sizes(&self) -> usize {
        self.radix2.len() + self.bluestein.len() + self.real.len()
    }

    fn ensure_radix2(&mut self, n: usize) {
        let plans_built = &mut self.plans_built;
        self.radix2.entry(n).or_insert_with(|| {
            *plans_built += 1;
            Radix2Plan::new(n)
        });
    }

    fn ensure_bluestein(&mut self, n: usize) {
        let m = next_power_of_two(2 * n - 1);
        self.ensure_radix2(m);
        let plans_built = &mut self.plans_built;
        let radix2 = &self.radix2;
        self.bluestein.entry(n).or_insert_with(|| {
            *plans_built += 1;
            BluesteinPlan::new(n, &radix2[&m])
        });
    }

    /// Un-normalized transform of arbitrary length, in place.
    fn transform(&mut self, buf: &mut [Complex], inverse: bool) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        if is_power_of_two(n) {
            self.ensure_radix2(n);
            self.radix2[&n].execute(buf, inverse);
            return;
        }
        self.ensure_bluestein(n);
        // Take the scratch out so the plan borrows stay immutable.
        let mut a = std::mem::take(&mut self.conv_scratch);
        let plan = &self.bluestein[&n];
        let m = plan.m;
        let radix2_m = &self.radix2[&m];
        a.clear();
        a.resize(m, Complex::ZERO);
        // Chirp premultiply; the inverse transform conjugates the chirp,
        // which is exactly `cmul_into` with `conj_b`.
        simd::cmul_into(&mut a[..n], &buf[..n], &plan.chirp, inverse);
        radix2_m.execute(&mut a, false);
        let kernel = if inverse { &plan.kernel_inv } else { &plan.kernel_fwd };
        simd::cmul_in_place(&mut a, kernel, false);
        radix2_m.execute(&mut a, true);
        let scale = 1.0 / m as f64;
        for k in 0..n {
            buf[k] = a[k].scale(scale) * plan.chirp_at(k, inverse);
        }
        self.conv_scratch = a;
    }

    /// Forward DFT in place (arbitrary length).
    pub fn fft_inplace(&mut self, buf: &mut [Complex]) {
        self.transform(buf, false);
    }

    /// Inverse DFT in place, with the 1/N normalization.
    pub fn ifft_inplace(&mut self, buf: &mut [Complex]) {
        let n = buf.len();
        if n == 0 {
            return;
        }
        self.transform(buf, true);
        let scale = 1.0 / n as f64;
        simd::scale_in_place(simd::complex_lanes_mut(buf), scale);
    }

    fn ensure_real(&mut self, n: usize) {
        let plans_built = &mut self.plans_built;
        self.real.entry(n).or_insert_with(|| {
            *plans_built += 1;
            RealPlan::new(n)
        });
    }

    /// Packs `input` (even length `n`) into an `n/2`-point complex signal
    /// and transforms it, leaving `Z` in the returned scratch buffer.
    fn rfft_pack_transform(&mut self, input: &[f64]) -> Vec<Complex> {
        let m = input.len() / 2;
        self.ensure_real(input.len());
        let mut buf = std::mem::take(&mut self.real_scratch);
        buf.clear();
        buf.extend(input.chunks_exact(2).map(|p| Complex::new(p[0], p[1])));
        debug_assert_eq!(buf.len(), m);
        self.transform(&mut buf, false);
        buf
    }

    /// Forward DFT of a real signal into `out` (cleared and refilled with
    /// the non-redundant half spectrum: `n/2 + 1` bins for even `n`,
    /// `(n+1)/2` for odd `n`).
    ///
    /// Even lengths run the packed path — one `n/2`-point complex
    /// transform plus an O(n) split — so a real transform costs roughly
    /// half a complex one. Odd lengths fall back to the full complex
    /// engine (Bluestein). Reuses internal scratch, so repeated calls of
    /// one size allocate nothing after the first.
    pub fn rfft_into(&mut self, input: &[f64], out: &mut Vec<Complex>) {
        let n = input.len();
        out.clear();
        if n == 0 {
            return;
        }
        if n == 1 {
            out.push(Complex::from_real(input[0]));
            return;
        }
        if n % 2 != 0 {
            // Odd length: full complex transform, emit the half spectrum.
            let mut buf = std::mem::take(&mut self.real_scratch);
            buf.clear();
            buf.extend(input.iter().map(|&x| Complex::from_real(x)));
            self.transform(&mut buf, false);
            out.extend_from_slice(&buf[..n / 2 + 1]);
            self.real_scratch = buf;
            return;
        }
        let z = self.rfft_pack_transform(input);
        let tw = &self.real[&n].twiddle;
        out.resize(n / 2 + 1, Complex::ZERO);
        simd::real_split_combine_aos(&z, tw, out);
        self.real_scratch = z;
    }

    /// Like [`FftPlanner::rfft_into`], but scatters the half spectrum into
    /// separate real/imaginary planes (the SoA spectrogram layout) instead
    /// of an array-of-structs buffer.
    ///
    /// # Panics
    ///
    /// Panics if `re`/`im` are not exactly `n/2 + 1` bins long (`(n+1)/2`
    /// for odd `n`).
    pub fn rfft_split_into(&mut self, input: &[f64], re: &mut [f64], im: &mut [f64]) {
        let n = input.len();
        let bins = if n == 0 { 0 } else { n / 2 + 1 };
        assert_eq!(re.len(), bins, "re plane size inconsistent with input length");
        assert_eq!(im.len(), bins, "im plane size inconsistent with input length");
        if n == 0 {
            return;
        }
        if n == 1 {
            re[0] = input[0];
            im[0] = 0.0;
            return;
        }
        if n % 2 != 0 {
            let mut buf = std::mem::take(&mut self.real_scratch);
            buf.clear();
            buf.extend(input.iter().map(|&x| Complex::from_real(x)));
            self.transform(&mut buf, false);
            for (k, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
                *r = buf[k].re;
                *i = buf[k].im;
            }
            self.real_scratch = buf;
            return;
        }
        let z = self.rfft_pack_transform(input);
        let tw = &self.real[&n].twiddle;
        simd::real_split_combine_soa(&z, tw, re, im);
        self.real_scratch = z;
    }

    /// Rebuilds the packed `n/2`-point spectrum `Z[k]` from a half
    /// spectrum reader, transforms it back, and unpacks the interleaved
    /// even/odd real samples into `out`. `half(k)` must return `X[k]` for
    /// `k = 0..=n/2`.
    fn irfft_unpack(&mut self, half: impl Fn(usize) -> Complex, n: usize, out: &mut Vec<f64>) {
        let m = n / 2;
        self.ensure_real(n);
        let mut buf = std::mem::take(&mut self.real_scratch);
        buf.clear();
        buf.resize(m, Complex::ZERO);
        {
            let tw = &self.real[&n].twiddle;
            for (k, slot) in buf.iter_mut().enumerate() {
                let xa = half(k);
                let xb = half(m - k).conj();
                let ze = (xa + xb).scale(0.5);
                let d = (xa - xb).scale(0.5);
                let zo = d * tw[k].conj();
                // Z[k] = Ze + i·Zo.
                *slot = ze + Complex::new(-zo.im, zo.re);
            }
        }
        self.transform(&mut buf, true);
        let scale = 1.0 / m as f64;
        out.reserve(n);
        for z in &buf {
            out.push(z.re * scale);
            out.push(z.im * scale);
        }
        self.real_scratch = buf;
    }

    /// Odd-length inverse real transform: Hermitian mirror + full complex
    /// inverse (Bluestein fallback of the packed path).
    fn irfft_odd(&mut self, half: impl Fn(usize) -> Complex, n: usize, out: &mut Vec<f64>) {
        let bins = n / 2 + 1;
        let mut buf = std::mem::take(&mut self.real_scratch);
        buf.clear();
        buf.resize(n, Complex::ZERO);
        for (k, slot) in buf.iter_mut().take(bins).enumerate() {
            *slot = half(k);
        }
        for k in bins..n {
            buf[k] = buf[n - k].conj();
        }
        self.transform(&mut buf, true);
        let scale = 1.0 / n as f64;
        out.extend(buf.iter().map(|c| c.re * scale));
        self.real_scratch = buf;
    }

    /// Inverse of [`FftPlanner::rfft_into`]: reconstructs a length-`n`
    /// real signal from its half spectrum into `out` (cleared first), via
    /// one `n/2`-point inverse complex transform for even `n`.
    ///
    /// # Panics
    ///
    /// Panics if `half.len()` is inconsistent with `n` (must equal
    /// `n/2 + 1` for even `n` or `(n+1)/2` for odd `n`).
    pub fn irfft_into(&mut self, half: &[Complex], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            return;
        }
        let expected = (n / 2 + 1).min(n);
        assert_eq!(half.len(), expected, "half spectrum length inconsistent with signal length");
        if n == 1 {
            out.push(half[0].re);
            return;
        }
        if n % 2 != 0 {
            self.irfft_odd(|k| half[k], n, out);
            return;
        }
        self.irfft_unpack(|k| half[k], n, out);
    }

    /// Like [`FftPlanner::irfft_into`], but gathers the half spectrum from
    /// separate real/imaginary planes (the SoA spectrogram layout).
    ///
    /// # Panics
    ///
    /// Panics if `re.len() != im.len()` or their length is inconsistent
    /// with `n`.
    pub fn irfft_split_into(&mut self, re: &[f64], im: &[f64], n: usize, out: &mut Vec<f64>) {
        assert_eq!(re.len(), im.len(), "re/im plane length mismatch");
        out.clear();
        if n == 0 {
            return;
        }
        let expected = (n / 2 + 1).min(n);
        assert_eq!(re.len(), expected, "half spectrum length inconsistent with signal length");
        if n == 1 {
            out.push(re[0]);
            return;
        }
        if n % 2 != 0 {
            self.irfft_odd(|k| Complex::new(re[k], im[k]), n, out);
            return;
        }
        self.irfft_unpack(|k| Complex::new(re[k], im[k]), n, out);
    }
}

// The serving runtime ships planner-holding sessions across worker
// threads at open; a non-`Send` field sneaking in must fail the build,
// not the deployment.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FftPlanner>();
};

thread_local! {
    /// Shared planner behind the free-function API: all `fft`/`ifft`/
    /// `fft_real`/`ifft_real` calls on one thread reuse its plan cache.
    static THREAD_PLANNER: RefCell<FftPlanner> = RefCell::new(FftPlanner::new());
}

/// Runs `f` with the calling thread's shared [`FftPlanner`].
pub fn with_thread_planner<T>(f: impl FnOnce(&mut FftPlanner) -> T) -> T {
    THREAD_PLANNER.with(|p| f(&mut p.borrow_mut()))
}

/// Forward DFT of arbitrary length.
///
/// Power-of-two lengths use radix-2 directly; other lengths fall back to
/// Bluestein's algorithm. The input is borrowed and an owned spectrum is
/// returned. Plans are cached in a thread-local [`FftPlanner`].
///
/// # Example
///
/// ```
/// use dhf_dsp::{fft::fft, Complex};
/// let x = vec![Complex::ONE; 6]; // constant signal of non-pow2 length
/// let spec = fft(&x);
/// assert!((spec[0].re - 6.0).abs() < 1e-9);
/// for k in 1..6 {
///     assert!(spec[k].abs() < 1e-9);
/// }
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    with_thread_planner(|p| p.fft_inplace(&mut buf));
    buf
}

/// Forward DFT, transforming the buffer in place (arbitrary length).
pub fn fft_inplace(buf: &mut [Complex]) {
    with_thread_planner(|p| p.fft_inplace(buf));
}

/// Inverse DFT with 1/N normalization so that `ifft(fft(x)) == x`.
///
/// # Example
///
/// ```
/// use dhf_dsp::{fft::{fft, ifft}, Complex};
/// let x: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, -(i as f64))).collect();
/// let y = ifft(&fft(&x));
/// for (a, b) in x.iter().zip(&y) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    with_thread_planner(|p| p.ifft_inplace(&mut buf));
    buf
}

/// Forward DFT of a real signal, returning only the non-redundant half
/// (`N/2 + 1` bins for even `N`, `(N+1)/2` for odd `N`), via the packed
/// real path ([`FftPlanner::rfft_into`]).
///
/// # Example
///
/// ```
/// use dhf_dsp::fft::fft_real;
/// let x = vec![1.0, 0.0, -1.0, 0.0]; // cos at Nyquist/2
/// let spec = fft_real(&x);
/// assert_eq!(spec.len(), 3);
/// assert!((spec[1].re - 2.0).abs() < 1e-12);
/// ```
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let mut out = Vec::new();
    with_thread_planner(|p| p.rfft_into(input, &mut out));
    out
}

/// Inverse of [`fft_real`]: reconstructs a length-`n` real signal from its
/// half spectrum via the packed real path ([`FftPlanner::irfft_into`]).
///
/// # Panics
///
/// Panics if `half.len()` is inconsistent with `n` (must equal `n/2 + 1`
/// for even `n` or `(n+1)/2` for odd `n`).
pub fn ifft_real(half: &[Complex], n: usize) -> Vec<f64> {
    let mut out = Vec::new();
    with_thread_planner(|p| p.irfft_into(half, n, &mut out));
    out
}

/// Frequency (Hz) of each bin of an `n`-point DFT at sample rate `fs`,
/// for the non-negative half `0..=n/2`.
pub fn rfft_frequencies(n: usize, fs: f64) -> Vec<f64> {
    (0..=n / 2).map(|k| k as f64 * fs / n as f64).collect()
}

/// Circular convolution of two equal-length sequences via the FFT.
pub fn circular_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "circular convolution requires equal lengths");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    with_thread_planner(|p| {
        let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::from_real(x)).collect();
        let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::from_real(x)).collect();
        p.fft_inplace(&mut fa);
        p.fft_inplace(&mut fb);
        for (x, &y) in fa.iter_mut().zip(&fb) {
            *x *= y;
        }
        p.ifft_inplace(&mut fa);
        fa.into_iter().map(|c| c.re).collect()
    })
}

/// Linear (acyclic) autocorrelation of `x` for non-negative lags,
/// normalized so lag 0 equals 1 (unless the signal is all-zero).
///
/// Computed in O(N log N) via zero-padded FFT.
pub fn autocorrelation(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let m = next_power_of_two(2 * n);
    let mut buf = vec![Complex::ZERO; m];
    for (i, &v) in x.iter().enumerate() {
        buf[i] = Complex::from_real(v);
    }
    with_thread_planner(|p| {
        p.fft_inplace(&mut buf);
        for v in buf.iter_mut() {
            *v = Complex::from_real(v.norm_sqr());
        }
        p.ifft_inplace(&mut buf);
    });
    let r0 = buf[0].re;
    let norm = if r0.abs() < f64::EPSILON { 1.0 } else { r0 };
    (0..n).map(|k| buf[k].re / norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::cis(-2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64)
                    })
                    .sum()
            })
            .collect()
    }

    fn assert_spec_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} vs {y}");
        }
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.7).cos(),
                    (i as f64 * 0.11).cos() - 0.2,
                )
            })
            .collect()
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = test_signal(n);
            assert_spec_close(&fft(&x), &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for &n in &[3usize, 5, 6, 7, 12, 60, 100] {
            let x = test_signal(n);
            assert_spec_close(&fft(&x), &naive_dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft_all_lengths() {
        for &n in &[1usize, 2, 3, 5, 8, 17, 100, 128] {
            let x = test_signal(n);
            let y = ifft(&fft(&x));
            assert_spec_close(&x, &y, 1e-8 * n as f64);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let x = test_signal(n);
        let spec = fft(&x);
        let et: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((et - ef).abs() < 1e-8 * et);
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 256;
        let f = 17.0;
        let x: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / n as f64).sin()).collect();
        let spec = fft_real(&x);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, 17);
        // everything else is numerically zero
        for (k, &m) in mags.iter().enumerate() {
            if k != 17 {
                assert!(m < 1e-9, "bin {k} leaked {m}");
            }
        }
    }

    #[test]
    fn real_round_trip_even_and_odd() {
        for &n in &[8usize, 9, 100, 101] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).sin() + 0.1).collect();
            let y = ifft_real(&fft_real(&x), n);
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rfft_frequencies_span_zero_to_nyquist() {
        let f = rfft_frequencies(100, 100.0);
        assert_eq!(f.len(), 51);
        assert!((f[0]).abs() < 1e-12);
        assert!((f[50] - 50.0).abs() < 1e-12);
        assert!((f[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circular_convolution_with_delta_is_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut delta = vec![0.0; 5];
        delta[0] = 1.0;
        let y = circular_convolve(&x, &delta);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn autocorrelation_peaks_at_signal_period() {
        let fs = 100.0;
        let period = 25; // 4 Hz at 100 Hz sampling
        let x: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let ac = autocorrelation(&x);
        assert!((ac[0] - 1.0).abs() < 1e-9);
        // find the max away from lag 0
        let lag = (10..200).max_by(|&a, &b| ac[a].partial_cmp(&ac[b]).unwrap()).unwrap();
        let freq = fs / lag as f64;
        assert!((freq - 4.0).abs() < 0.2, "estimated {freq} Hz");
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        assert!(autocorrelation(&[]).is_empty());
    }

    #[test]
    fn planner_reuses_one_plan_set_for_repeated_size() {
        let mut planner = FftPlanner::new();
        let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut half = Vec::new();
        for _ in 0..64 {
            planner.rfft_into(&x, &mut half);
        }
        // One real-split table (512) + one half-size radix-2 plan (256).
        assert_eq!(planner.plans_built(), 2, "same-size transforms must share one plan set");
        assert_eq!(planner.cached_sizes(), 2);
        // A second size adds one more split table + one more radix-2 plan.
        let y = vec![0.5f64; 1024];
        planner.rfft_into(&y, &mut half);
        assert_eq!(planner.plans_built(), 4);
    }

    #[test]
    fn planner_bluestein_caches_kernel_and_radix2() {
        let mut planner = FftPlanner::new();
        let x = test_signal(60);
        for _ in 0..16 {
            let mut buf = x.clone();
            planner.fft_inplace(&mut buf);
        }
        // One Bluestein plan (size 60) + one radix-2 plan (size 128).
        assert_eq!(planner.plans_built(), 2);
        // The cached path still matches the naive DFT.
        let mut buf = x.clone();
        planner.fft_inplace(&mut buf);
        assert_spec_close(&buf, &naive_dft(&x), 1e-8 * 60.0);
    }

    #[test]
    fn planner_real_round_trip_matches_free_functions() {
        let mut planner = FftPlanner::new();
        for &n in &[16usize, 37, 100, 101] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos() - 0.2).collect();
            let mut half = Vec::new();
            planner.rfft_into(&x, &mut half);
            assert_spec_close(&half, &fft_real(&x), 1e-9 * n as f64);
            let mut back = Vec::new();
            planner.irfft_into(&half, n, &mut back);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn packed_rfft_matches_full_complex_transform() {
        // Pow2, even non-pow2, odd, and prime lengths: the packed path
        // must agree with promoting to a full complex DFT to ≤1e-9.
        let mut planner = FftPlanner::new();
        for &n in &[2usize, 4, 6, 8, 30, 64, 101, 127, 128, 256, 510] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin() + 0.2).collect();
            let full: Vec<Complex> = {
                let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
                planner.fft_inplace(&mut buf);
                buf[..n / 2 + 1].to_vec()
            };
            let mut half = Vec::new();
            planner.rfft_into(&x, &mut half);
            assert_spec_close(&half, &full, 1e-9);
        }
    }

    #[test]
    fn split_plane_variants_match_aos_variants() {
        let mut planner = FftPlanner::new();
        for &n in &[8usize, 60, 101, 256] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.47).cos() - 0.1).collect();
            let bins = n / 2 + 1;
            let mut half = Vec::new();
            planner.rfft_into(&x, &mut half);
            let mut re = vec![0.0; bins];
            let mut im = vec![0.0; bins];
            planner.rfft_split_into(&x, &mut re, &mut im);
            for k in 0..bins {
                assert_eq!(half[k].re, re[k], "re bin {k} of n {n}");
                assert_eq!(half[k].im, im[k], "im bin {k} of n {n}");
            }
            let mut back_aos = Vec::new();
            planner.irfft_into(&half, n, &mut back_aos);
            let mut back_soa = Vec::new();
            planner.irfft_split_into(&re, &im, n, &mut back_soa);
            assert_eq!(back_aos, back_soa);
            for (a, b) in x.iter().zip(&back_aos) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn packed_rfft_tiny_lengths() {
        let mut planner = FftPlanner::new();
        let mut half = Vec::new();
        planner.rfft_into(&[], &mut half);
        assert!(half.is_empty());
        planner.rfft_into(&[3.5], &mut half);
        assert_eq!(half.len(), 1);
        assert_eq!(half[0], Complex::from_real(3.5));
        let mut back = Vec::new();
        planner.irfft_into(&half, 1, &mut back);
        assert_eq!(back, vec![3.5]);
        planner.rfft_into(&[1.0, -2.0], &mut half);
        assert_eq!(half.len(), 2);
        assert!((half[0].re - -1.0).abs() < 1e-12 && half[0].im.abs() < 1e-12);
        assert!((half[1].re - 3.0).abs() < 1e-12 && half[1].im.abs() < 1e-12);
        planner.irfft_into(&half, 2, &mut back);
        assert!((back[0] - 1.0).abs() < 1e-12 && (back[1] - -2.0).abs() < 1e-12);
    }

    #[test]
    fn planner_inverse_matches_forward_inverse_pair() {
        let mut planner = FftPlanner::new();
        for &n in &[12usize, 64, 90] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.fft_inplace(&mut buf);
            planner.ifft_inplace(&mut buf);
            assert_spec_close(&x, &buf, 1e-8 * n as f64);
        }
    }
}
