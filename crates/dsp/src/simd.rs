//! Runtime-dispatched SIMD kernels for the spectral hot path.
//!
//! Every inner loop the separation pipeline leans on — radix-2
//! butterflies, the packed-real split-twiddle combine, window multiplies,
//! overlap-add accumulation, per-bin gain application, magnitude
//! extraction, and the energy reductions — funnels through the kernels in
//! this module. Each kernel exists in up to three forms:
//!
//! * a **scalar reference** implementation in [`scalar`], which is the
//!   single source of truth for semantics;
//! * an **x86_64** form using SSE2 (`f64x2`, baseline on every x86_64
//!   target) and AVX2 (`f64x4`, runtime-detected) intrinsics;
//! * an **aarch64 NEON** form (`f64x2`).
//!
//! # Determinism contract
//!
//! Every vector kernel is **bit-identical** to its scalar reference on all
//! inputs. Elementwise kernels achieve this for free (IEEE-754 operations
//! are exactly rounded, so the same multiply/add per element produces the
//! same bits regardless of lane width). Reduction kernels ([`sum_sq`],
//! [`sum_sq2`]) use a fixed *virtual lane width of four*: four independent
//! accumulators striped over the input, combined as
//! `(acc0 + acc1) + (acc2 + acc3)` plus a sequential tail — the scalar
//! reference performs the identical striping, so every dispatch level
//! produces the same bits and results never depend on which CPU ran the
//! reduction. Complex multiplies keep the scalar operand order for the
//! real part and rely only on the commutativity of IEEE addition for the
//! imaginary part, which is bit-exact.
//!
//! This contract is what lets the serving runtime guarantee bit-identical
//! serve-vs-serial results while still picking the fastest kernels per
//! machine, and it is locked by proptests (`simd_kernels_match_scalar_*`)
//! across all remainder lanes (`len % 4 ∈ {0, 1, 2, 3}`).
//!
//! # Dispatch
//!
//! The active level is resolved per call from, in order:
//!
//! 1. an explicit override installed with [`set_dispatch_override`] (or
//!    the [`force_scalar`] convenience wrapper) — used by benches for
//!    scalar-vs-SIMD A/B runs and by tests;
//! 2. the `DHF_FORCE_SCALAR` environment variable (`1`/`true`), read once
//!    per process — the CI knob;
//! 3. runtime CPU feature detection (AVX2 → SSE2 on x86_64, NEON on
//!    aarch64, scalar elsewhere).
//!
//! An override requesting a level the CPU cannot run is clamped to the
//! detected level, so `set_dispatch_override(Some(Level::Avx2))` is safe
//! everywhere.
//!
//! # Adding a kernel
//!
//! 1. Write the scalar reference in [`scalar`] — that defines the
//!    semantics, including the exact reduction/striping order.
//! 2. Add the dispatching wrapper here, with slice-length `assert`s so
//!    the `unsafe` variants can rely on validated bounds.
//! 3. Add the SSE2/AVX2 (and optionally NEON) forms, mirroring the
//!    scalar operation order per lane; document the `# Safety` contract.
//! 4. Extend the bit-identity proptest with the new kernel.

// The intrinsics below are the one sanctioned exception to the
// workspace-wide `unsafe_code = "deny"`: every unsafe block is a raw
// slice-to-lane reinterpretation or a feature-gated intrinsic call whose
// precondition is enforced by the dispatcher.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use crate::complex::Complex;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A SIMD dispatch level, ordered from narrowest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Scalar reference kernels (the semantic source of truth).
    Scalar,
    /// x86_64 SSE2: 128-bit `f64x2` lanes (baseline on x86_64).
    Sse2,
    /// x86_64 AVX2: 256-bit `f64x4` lanes (runtime-detected).
    Avx2,
    /// aarch64 NEON: 128-bit `f64x2` lanes.
    Neon,
}

impl Level {
    fn encode(self) -> u8 {
        match self {
            Level::Scalar => 1,
            Level::Sse2 => 2,
            Level::Avx2 => 3,
            Level::Neon => 4,
        }
    }

    fn decode(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Scalar),
            2 => Some(Level::Sse2),
            3 => Some(Level::Avx2),
            4 => Some(Level::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::Scalar => write!(f, "scalar"),
            Level::Sse2 => write!(f, "sse2"),
            Level::Avx2 => write!(f, "avx2"),
            Level::Neon => write!(f, "neon"),
        }
    }
}

/// Process-wide dispatch override: `0` = auto (env + detection), other
/// values are an encoded [`Level`].
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// What the hardware (and the `DHF_FORCE_SCALAR` env knob) supports,
/// resolved once per process.
fn detected_level() -> Level {
    static DETECTED: OnceLock<Level> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let forced = std::env::var("DHF_FORCE_SCALAR")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if forced {
            return Level::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else {
                Level::Sse2
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            Level::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            Level::Scalar
        }
    })
}

/// The dispatch level kernels will actually use right now.
pub fn active_level() -> Level {
    let detected = detected_level();
    match Level::decode(OVERRIDE.load(Ordering::Relaxed)) {
        // NEON and the x86 levels never coexist, so `min` on the enum
        // order clamps an impossible request to what the CPU can run.
        Some(l) => l.min(detected),
        None => detected,
    }
}

/// Installs (or with `None` removes) a process-wide dispatch override.
///
/// Overrides take precedence over `DHF_FORCE_SCALAR`; requests above the
/// detected capability are clamped. Thanks to the bit-identity contract,
/// flipping the level concurrently with running kernels changes which
/// instructions execute but never the results.
pub fn set_dispatch_override(level: Option<Level>) {
    OVERRIDE.store(level.map_or(0, Level::encode), Ordering::Relaxed);
}

/// Convenience wrapper: `force_scalar(true)` pins every kernel to the
/// scalar reference; `force_scalar(false)` restores auto dispatch.
pub fn force_scalar(on: bool) {
    set_dispatch_override(on.then_some(Level::Scalar));
}

/// Views a complex buffer as its interleaved `[re, im, …]` lane data.
///
/// Sound because [`Complex`] is `#[repr(C)] { re: f64, im: f64 }`: the
/// slice covers exactly `2 · len` contiguous `f64`s with no padding, and
/// `f64` admits every bit pattern.
#[inline]
pub fn complex_lanes(buf: &[Complex]) -> &[f64] {
    // SAFETY: see the doc comment — repr(C) guarantees layout, the length
    // is exact, and the lifetime is inherited from the borrow.
    unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<f64>(), buf.len() * 2) }
}

/// Mutable form of [`complex_lanes`].
#[inline]
pub fn complex_lanes_mut(buf: &mut [Complex]) -> &mut [f64] {
    // SAFETY: as `complex_lanes`, plus exclusivity carried over from the
    // unique borrow.
    unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<f64>(), buf.len() * 2) }
}

macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {
        match active_level() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `active_level()` returns `Avx2` only when runtime
            // detection confirmed the feature; slice bounds were checked
            // by the caller's asserts.
            Level::Avx2 => unsafe { x86::paste_avx2::$name($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86_64 baseline feature set.
            Level::Sse2 => unsafe { x86::paste_sse2::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON (fp+simd) is part of the aarch64 baseline.
            Level::Neon => unsafe { neon::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// `out[i] = a[i] · b[i]`.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(out.len(), a.len(), "mul_into length mismatch");
    assert_eq!(out.len(), b.len(), "mul_into length mismatch");
    dispatch!(mul_into(out, a, b))
}

/// `a[i] *= b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_in_place(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "mul_in_place length mismatch");
    dispatch!(mul_in_place(a, b))
}

/// `acc[i] += a[i] · b[i]` (separate multiply and add — no FMA — so every
/// dispatch level rounds identically).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_add_in_place(acc: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(acc.len(), a.len(), "mul_add_in_place length mismatch");
    assert_eq!(acc.len(), b.len(), "mul_add_in_place length mismatch");
    dispatch!(mul_add_in_place(acc, a, b))
}

/// `acc[i] += a[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_in_place(acc: &mut [f64], a: &[f64]) {
    assert_eq!(acc.len(), a.len(), "add_in_place length mismatch");
    dispatch!(add_in_place(acc, a))
}

/// `acc[i] -= a[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_in_place(acc: &mut [f64], a: &[f64]) {
    assert_eq!(acc.len(), a.len(), "sub_in_place length mismatch");
    dispatch!(sub_in_place(acc, a))
}

/// `a[i] *= s`.
pub fn scale_in_place(a: &mut [f64], s: f64) {
    dispatch!(scale_in_place(a, s))
}

/// `out[i] = √(re[i]² + im[i]²)`.
///
/// Note this is the plain square-root form, not `hypot`: it is what every
/// lane width computes identically (hardware `sqrt` is exactly rounded),
/// at the cost of `hypot`'s protection against overflow at magnitudes
/// around `1e154` — far beyond any spectrogram this pipeline produces.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn magnitude_into(out: &mut [f64], re: &[f64], im: &[f64]) {
    assert_eq!(out.len(), re.len(), "magnitude_into length mismatch");
    assert_eq!(out.len(), im.len(), "magnitude_into length mismatch");
    dispatch!(magnitude_into(out, re, im))
}

/// `Σ a[i]²` with the deterministic virtual-4-lane reduction order.
pub fn sum_sq(a: &[f64]) -> f64 {
    dispatch!(sum_sq(a))
}

/// `Σ (re[i]² + im[i]²)` with the deterministic virtual-4-lane reduction
/// order.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sum_sq2(re: &[f64], im: &[f64]) -> f64 {
    assert_eq!(re.len(), im.len(), "sum_sq2 length mismatch");
    dispatch!(sum_sq2(re, im))
}

/// One radix-2 butterfly stage over every block of `buf`: for each block
/// of `2·half` elements and each `k < half`,
/// `v = buf[i+k+half] · w_k`, `buf[i+k] = u + v`, `buf[i+k+half] = u - v`,
/// where `w_k = tw[k]` (conjugated when `inverse`).
///
/// # Panics
///
/// Panics if `tw.len() != half` or `buf.len()` is not a multiple of
/// `2·half`.
pub fn radix2_stage(buf: &mut [Complex], tw: &[Complex], half: usize, inverse: bool) {
    assert_eq!(tw.len(), half, "twiddle slice must cover one butterfly span");
    assert_eq!(buf.len() % (2 * half), 0, "buffer must hold whole butterfly blocks");
    dispatch!(radix2_stage(buf, tw, half, inverse))
}

/// Pointwise complex multiply `a[i] *= b[i]` (`b` conjugated when
/// `conj_b`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cmul_in_place(a: &mut [Complex], b: &[Complex], conj_b: bool) {
    assert_eq!(a.len(), b.len(), "cmul_in_place length mismatch");
    dispatch!(cmul_in_place(a, b, conj_b))
}

/// Pointwise complex multiply `out[i] = a[i] · b[i]` (`b` conjugated when
/// `conj_b`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cmul_into(out: &mut [Complex], a: &[Complex], b: &[Complex], conj_b: bool) {
    assert_eq!(out.len(), a.len(), "cmul_into length mismatch");
    assert_eq!(out.len(), b.len(), "cmul_into length mismatch");
    dispatch!(cmul_into(out, a, b, conj_b))
}

/// Packed-real split-twiddle combine into SoA planes: recovers the half
/// spectrum `X[k]`, `k = 0..=m`, of a real signal from the spectrum `z`
/// of its packed `m`-point complex transform, writing real parts to `re`
/// and imaginary parts to `im`.
///
/// `X[k] = Ze + tw[k]·Zo` with `Ze = (z[k] + z̄[m-k])/2` and
/// `Zo = -i·(z[k] - z̄[m-k])/2` (indices mod `m`).
///
/// # Panics
///
/// Panics if `tw.len() != z.len() + 1` or the output planes are not
/// `z.len() + 1` long.
pub fn real_split_combine_soa(z: &[Complex], tw: &[Complex], re: &mut [f64], im: &mut [f64]) {
    let m = z.len();
    assert_eq!(tw.len(), m + 1, "split twiddle table length mismatch");
    assert_eq!(re.len(), m + 1, "re plane length mismatch");
    assert_eq!(im.len(), m + 1, "im plane length mismatch");
    dispatch!(real_split_combine_soa(z, tw, re, im))
}

/// As [`real_split_combine_soa`], but writing an array-of-structs half
/// spectrum.
///
/// # Panics
///
/// Panics if `tw.len() != z.len() + 1` or `out.len() != z.len() + 1`.
pub fn real_split_combine_aos(z: &[Complex], tw: &[Complex], out: &mut [Complex]) {
    let m = z.len();
    assert_eq!(tw.len(), m + 1, "split twiddle table length mismatch");
    assert_eq!(out.len(), m + 1, "half spectrum length mismatch");
    dispatch!(real_split_combine_aos(z, tw, out))
}

/// Scalar reference kernels — the single source of truth for semantics.
///
/// Every SIMD variant must be bit-identical to the function of the same
/// name here; the reduction kernels deliberately stripe over a virtual
/// lane width of four so that vector implementations can match them
/// exactly (see the module docs).
pub mod scalar {
    use super::Complex;

    /// `out[i] = a[i] · b[i]`.
    pub fn mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * y;
        }
    }

    /// `a[i] *= b[i]`.
    pub fn mul_in_place(a: &mut [f64], b: &[f64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x *= y;
        }
    }

    /// `acc[i] += a[i] · b[i]`.
    pub fn mul_add_in_place(acc: &mut [f64], a: &[f64], b: &[f64]) {
        for ((o, &x), &y) in acc.iter_mut().zip(a).zip(b) {
            *o += x * y;
        }
    }

    /// `acc[i] += a[i]`.
    pub fn add_in_place(acc: &mut [f64], a: &[f64]) {
        for (o, &x) in acc.iter_mut().zip(a) {
            *o += x;
        }
    }

    /// `acc[i] -= a[i]`.
    pub fn sub_in_place(acc: &mut [f64], a: &[f64]) {
        for (o, &x) in acc.iter_mut().zip(a) {
            *o -= x;
        }
    }

    /// `a[i] *= s`.
    pub fn scale_in_place(a: &mut [f64], s: f64) {
        for x in a.iter_mut() {
            *x *= s;
        }
    }

    /// `out[i] = √(re[i]² + im[i]²)`.
    pub fn magnitude_into(out: &mut [f64], re: &[f64], im: &[f64]) {
        for ((o, &r), &i) in out.iter_mut().zip(re).zip(im) {
            *o = (r * r + i * i).sqrt();
        }
    }

    /// `Σ a[i]²` striped over four accumulators: `acc[j] += a[4c+j]²`,
    /// combined as `(acc0 + acc1) + (acc2 + acc3)` plus a sequential
    /// tail. This exact order is the determinism contract for every
    /// vector form.
    pub fn sum_sq(a: &[f64]) -> f64 {
        let main = a.len() & !3;
        let mut acc = [0.0f64; 4];
        for chunk in a[..main].chunks_exact(4) {
            for (s, &v) in acc.iter_mut().zip(chunk) {
                *s += v * v;
            }
        }
        let mut tail = 0.0;
        for &v in &a[main..] {
            tail += v * v;
        }
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
    }

    /// `Σ (re[i]² + im[i]²)` with the same virtual-4-lane striping as
    /// [`sum_sq`]; each lane adds the already-rounded `r² + i²`.
    pub fn sum_sq2(re: &[f64], im: &[f64]) -> f64 {
        let main = re.len() & !3;
        let mut acc = [0.0f64; 4];
        for (rc, ic) in re[..main].chunks_exact(4).zip(im[..main].chunks_exact(4)) {
            for ((s, &r), &i) in acc.iter_mut().zip(rc).zip(ic) {
                *s += r * r + i * i;
            }
        }
        let mut tail = 0.0;
        for (&r, &i) in re[main..].iter().zip(&im[main..]) {
            tail += r * r + i * i;
        }
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
    }

    /// One radix-2 butterfly stage (see the dispatching wrapper).
    pub fn radix2_stage(buf: &mut [Complex], tw: &[Complex], half: usize, inverse: bool) {
        let len = 2 * half;
        let n = buf.len();
        let mut i = 0;
        while i < n {
            for (k, &t) in tw.iter().enumerate() {
                let w = if inverse { t.conj() } else { t };
                let u = buf[i + k];
                let v = buf[i + k + half] * w;
                buf[i + k] = u + v;
                buf[i + k + half] = u - v;
            }
            i += len;
        }
    }

    /// Pointwise `a[i] *= b[i]` (conjugating `b` first when `conj_b`).
    pub fn cmul_in_place(a: &mut [Complex], b: &[Complex], conj_b: bool) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x *= if conj_b { y.conj() } else { y };
        }
    }

    /// Pointwise `out[i] = a[i] · b[i]` (conjugating `b` first when
    /// `conj_b`).
    pub fn cmul_into(out: &mut [Complex], a: &[Complex], b: &[Complex], conj_b: bool) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * if conj_b { y.conj() } else { y };
        }
    }

    /// `X[k]` of the packed real transform for one bin.
    #[inline]
    pub(super) fn split_bin(z: &[Complex], tw: &[Complex], m: usize, k: usize) -> Complex {
        let a = z[k % m];
        let b = z[(m - k) % m].conj();
        let ze = (a + b).scale(0.5);
        let d = a - b;
        // Zo = d·(-i)/2.
        let zo = Complex::new(d.im, -d.re).scale(0.5);
        ze + tw[k] * zo
    }

    /// Split-twiddle combine into SoA planes (see the dispatching
    /// wrapper).
    pub fn real_split_combine_soa(z: &[Complex], tw: &[Complex], re: &mut [f64], im: &mut [f64]) {
        let m = z.len();
        for (k, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
            let x = split_bin(z, tw, m, k);
            *r = x.re;
            *i = x.im;
        }
    }

    /// Split-twiddle combine into an AoS half spectrum.
    pub fn real_split_combine_aos(z: &[Complex], tw: &[Complex], out: &mut [Complex]) {
        let m = z.len();
        for (k, o) in out.iter_mut().enumerate() {
            *o = split_bin(z, tw, m, k);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2 (`f64x2`, one complex per vector) and AVX2 (`f64x4`, two
    //! complexes per vector) kernel forms.
    //!
    //! Complex multiplies follow the classic shuffle/addsub pattern; the
    //! per-lane operation order matches [`super::scalar`] exactly (see the
    //! module-level determinism contract).

    /// Generates the SSE2 and AVX2 kernel sets from one template.
    ///
    /// `$detect` is the `#[target_feature]` string; vector width is fixed
    /// per instantiation through the intrinsic aliases.
    macro_rules! x86_f64x2_kernels {
        ($modname:ident, $feature:literal) => {
            pub mod $modname {
                use super::super::{scalar, Complex};
                #[allow(clippy::wildcard_imports)]
                use core::arch::x86_64::*;

                /// `out[i] = a[i] · b[i]`.
                ///
                /// # Safety
                ///
                /// CPU must support the enabled feature; slices must be
                /// equal length (asserted by the dispatcher).
                #[target_feature(enable = $feature)]
                pub unsafe fn mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
                    let n = out.len();
                    let main = n & !1;
                    let (po, pa, pb) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
                    let mut i = 0;
                    while i < main {
                        // SAFETY: i + 1 < n on every loaded/stored lane.
                        unsafe {
                            let va = _mm_loadu_pd(pa.add(i));
                            let vb = _mm_loadu_pd(pb.add(i));
                            _mm_storeu_pd(po.add(i), _mm_mul_pd(va, vb));
                        }
                        i += 2;
                    }
                    if i < n {
                        out[i] = a[i] * b[i];
                    }
                }

                /// `a[i] *= b[i]`.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn mul_in_place(a: &mut [f64], b: &[f64]) {
                    let n = a.len();
                    let main = n & !1;
                    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
                    let mut i = 0;
                    while i < main {
                        // SAFETY: in-bounds lanes.
                        unsafe {
                            let va = _mm_loadu_pd(pa.add(i));
                            let vb = _mm_loadu_pd(pb.add(i));
                            _mm_storeu_pd(pa.add(i), _mm_mul_pd(va, vb));
                        }
                        i += 2;
                    }
                    if i < n {
                        a[i] *= b[i];
                    }
                }

                /// `acc[i] += a[i] · b[i]`.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn mul_add_in_place(acc: &mut [f64], a: &[f64], b: &[f64]) {
                    let n = acc.len();
                    let main = n & !1;
                    let (po, pa, pb) = (acc.as_mut_ptr(), a.as_ptr(), b.as_ptr());
                    let mut i = 0;
                    while i < main {
                        // SAFETY: in-bounds lanes. Multiply then add — no
                        // FMA — to round exactly like the scalar form.
                        unsafe {
                            let va = _mm_loadu_pd(pa.add(i));
                            let vb = _mm_loadu_pd(pb.add(i));
                            let vo = _mm_loadu_pd(po.add(i));
                            _mm_storeu_pd(po.add(i), _mm_add_pd(vo, _mm_mul_pd(va, vb)));
                        }
                        i += 2;
                    }
                    if i < n {
                        acc[i] += a[i] * b[i];
                    }
                }

                /// `acc[i] += a[i]`.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn add_in_place(acc: &mut [f64], a: &[f64]) {
                    let n = acc.len();
                    let main = n & !1;
                    let (po, pa) = (acc.as_mut_ptr(), a.as_ptr());
                    let mut i = 0;
                    while i < main {
                        // SAFETY: in-bounds lanes.
                        unsafe {
                            let vo = _mm_loadu_pd(po.add(i));
                            let va = _mm_loadu_pd(pa.add(i));
                            _mm_storeu_pd(po.add(i), _mm_add_pd(vo, va));
                        }
                        i += 2;
                    }
                    if i < n {
                        acc[i] += a[i];
                    }
                }

                /// `acc[i] -= a[i]`.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn sub_in_place(acc: &mut [f64], a: &[f64]) {
                    let n = acc.len();
                    let main = n & !1;
                    let (po, pa) = (acc.as_mut_ptr(), a.as_ptr());
                    let mut i = 0;
                    while i < main {
                        // SAFETY: in-bounds lanes.
                        unsafe {
                            let vo = _mm_loadu_pd(po.add(i));
                            let va = _mm_loadu_pd(pa.add(i));
                            _mm_storeu_pd(po.add(i), _mm_sub_pd(vo, va));
                        }
                        i += 2;
                    }
                    if i < n {
                        acc[i] -= a[i];
                    }
                }

                /// `a[i] *= s`.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn scale_in_place(a: &mut [f64], s: f64) {
                    let n = a.len();
                    let main = n & !1;
                    let pa = a.as_mut_ptr();
                    let vs = _mm_set1_pd(s);
                    let mut i = 0;
                    while i < main {
                        // SAFETY: in-bounds lanes.
                        unsafe {
                            let va = _mm_loadu_pd(pa.add(i));
                            _mm_storeu_pd(pa.add(i), _mm_mul_pd(va, vs));
                        }
                        i += 2;
                    }
                    if i < n {
                        a[i] *= s;
                    }
                }

                /// `out[i] = √(re[i]² + im[i]²)` (hardware `sqrt` is
                /// exactly rounded, so this matches the scalar form).
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn magnitude_into(out: &mut [f64], re: &[f64], im: &[f64]) {
                    let n = out.len();
                    let main = n & !1;
                    let (po, pr, pi) = (out.as_mut_ptr(), re.as_ptr(), im.as_ptr());
                    let mut i = 0;
                    while i < main {
                        // SAFETY: in-bounds lanes.
                        unsafe {
                            let r = _mm_loadu_pd(pr.add(i));
                            let im_v = _mm_loadu_pd(pi.add(i));
                            let s = _mm_add_pd(_mm_mul_pd(r, r), _mm_mul_pd(im_v, im_v));
                            _mm_storeu_pd(po.add(i), _mm_sqrt_pd(s));
                        }
                        i += 2;
                    }
                    if i < n {
                        out[i] = (re[i] * re[i] + im[i] * im[i]).sqrt();
                    }
                }

                /// Deterministic `Σ a[i]²`: two `f64x2` accumulators hold
                /// virtual lanes (0,1) and (2,3); combined in the scalar
                /// reference order.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn sum_sq(a: &[f64]) -> f64 {
                    let n = a.len();
                    let main = n & !3;
                    let pa = a.as_ptr();
                    let mut acc01 = _mm_setzero_pd();
                    let mut acc23 = _mm_setzero_pd();
                    let mut i = 0;
                    while i < main {
                        // SAFETY: i + 3 < n inside the stepped-by-4 loop.
                        unsafe {
                            let v01 = _mm_loadu_pd(pa.add(i));
                            let v23 = _mm_loadu_pd(pa.add(i + 2));
                            acc01 = _mm_add_pd(acc01, _mm_mul_pd(v01, v01));
                            acc23 = _mm_add_pd(acc23, _mm_mul_pd(v23, v23));
                        }
                        i += 4;
                    }
                    let mut l = [0.0f64; 4];
                    // SAFETY: `l` holds four f64 slots.
                    unsafe {
                        _mm_storeu_pd(l.as_mut_ptr(), acc01);
                        _mm_storeu_pd(l.as_mut_ptr().add(2), acc23);
                    }
                    let mut tail = 0.0;
                    for &v in &a[main..] {
                        tail += v * v;
                    }
                    ((l[0] + l[1]) + (l[2] + l[3])) + tail
                }

                /// Deterministic `Σ (re[i]² + im[i]²)`; striping as
                /// [`sum_sq`].
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn sum_sq2(re: &[f64], im: &[f64]) -> f64 {
                    let n = re.len();
                    let main = n & !3;
                    let (pr, pi) = (re.as_ptr(), im.as_ptr());
                    let mut acc01 = _mm_setzero_pd();
                    let mut acc23 = _mm_setzero_pd();
                    let mut i = 0;
                    while i < main {
                        // SAFETY: i + 3 < n inside the stepped-by-4 loop.
                        unsafe {
                            let r01 = _mm_loadu_pd(pr.add(i));
                            let i01 = _mm_loadu_pd(pi.add(i));
                            let r23 = _mm_loadu_pd(pr.add(i + 2));
                            let i23 = _mm_loadu_pd(pi.add(i + 2));
                            let t01 = _mm_add_pd(_mm_mul_pd(r01, r01), _mm_mul_pd(i01, i01));
                            let t23 = _mm_add_pd(_mm_mul_pd(r23, r23), _mm_mul_pd(i23, i23));
                            acc01 = _mm_add_pd(acc01, t01);
                            acc23 = _mm_add_pd(acc23, t23);
                        }
                        i += 4;
                    }
                    let mut l = [0.0f64; 4];
                    // SAFETY: `l` holds four f64 slots.
                    unsafe {
                        _mm_storeu_pd(l.as_mut_ptr(), acc01);
                        _mm_storeu_pd(l.as_mut_ptr().add(2), acc23);
                    }
                    let mut tail = 0.0;
                    for (&r, &i) in re[main..].iter().zip(&im[main..]) {
                        tail += r * r + i * i;
                    }
                    ((l[0] + l[1]) + (l[2] + l[3])) + tail
                }

                /// Complex multiply of one `f64x2` vector `[v.re, v.im]`
                /// by `[w.re, w.im]`: the real lane gets
                /// `v.re·w.re − v.im·w.im`, the imaginary lane
                /// `v.im·w.re + v.re·w.im` — the scalar products and
                /// rounding order exactly.
                ///
                /// # Safety
                ///
                /// CPU must support the enabled feature.
                #[inline]
                #[target_feature(enable = $feature)]
                unsafe fn cmul1(v: __m128d, w: __m128d) -> __m128d {
                    // Pure register arithmetic — intrinsic calls are safe
                    // inside a fn already gated on the same feature.
                    let wr = _mm_shuffle_pd(w, w, 0b00); // [w.re, w.re]
                    let wi = _mm_shuffle_pd(w, w, 0b11); // [w.im, w.im]
                    let t1 = _mm_mul_pd(v, wr); // [v.re·w.re, v.im·w.re]
                    let vs = _mm_shuffle_pd(v, v, 0b01); // [v.im, v.re]
                    let t2 = _mm_mul_pd(vs, wi); // [v.im·w.im, v.re·w.im]
                                                 // addsub: lane0 = t1 − t2, lane1 = t1 + t2.
                    let neg0 = _mm_set_pd(0.0, -0.0);
                    _mm_add_pd(t1, _mm_xor_pd(t2, neg0))
                }

                /// Sign mask that conjugates a packed complex (negates the
                /// imaginary lane).
                ///
                /// # Safety
                ///
                /// CPU must support the enabled feature.
                #[inline]
                #[target_feature(enable = $feature)]
                unsafe fn conj_mask() -> __m128d {
                    // Constant materialization only; safe inside the
                    // feature-gated fn.
                    _mm_set_pd(-0.0, 0.0)
                }

                /// One radix-2 butterfly stage, one complex per vector.
                ///
                /// # Safety
                ///
                /// As [`mul_into`]; dispatcher validates `tw.len() ==
                /// half` and the block structure.
                #[target_feature(enable = $feature)]
                pub unsafe fn radix2_stage(
                    buf: &mut [Complex],
                    tw: &[Complex],
                    half: usize,
                    inverse: bool,
                ) {
                    let len = 2 * half;
                    let n = buf.len();
                    let p = buf.as_mut_ptr().cast::<f64>();
                    let pt = tw.as_ptr().cast::<f64>();
                    let mut i = 0;
                    while i < n {
                        let mut k = 0;
                        while k < half {
                            // SAFETY: i + k + half < n by the block
                            // structure; Complex is repr(C) so index c
                            // lives at f64 offset 2c.
                            unsafe {
                                let mut w = _mm_loadu_pd(pt.add(2 * k));
                                if inverse {
                                    w = _mm_xor_pd(w, conj_mask());
                                }
                                let u = _mm_loadu_pd(p.add(2 * (i + k)));
                                let v = _mm_loadu_pd(p.add(2 * (i + k + half)));
                                let vw = cmul1(v, w);
                                _mm_storeu_pd(p.add(2 * (i + k)), _mm_add_pd(u, vw));
                                _mm_storeu_pd(p.add(2 * (i + k + half)), _mm_sub_pd(u, vw));
                            }
                            k += 1;
                        }
                        i += len;
                    }
                }

                /// Pointwise `a[i] *= b[i]`, one complex per vector.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn cmul_in_place(a: &mut [Complex], b: &[Complex], conj_b: bool) {
                    let n = a.len();
                    let pa = a.as_mut_ptr().cast::<f64>();
                    let pb = b.as_ptr().cast::<f64>();
                    for i in 0..n {
                        // SAFETY: index i < n; repr(C) layout.
                        unsafe {
                            let x = _mm_loadu_pd(pa.add(2 * i));
                            let mut y = _mm_loadu_pd(pb.add(2 * i));
                            if conj_b {
                                y = _mm_xor_pd(y, conj_mask());
                            }
                            _mm_storeu_pd(pa.add(2 * i), cmul1(x, y));
                        }
                    }
                }

                /// Pointwise `out[i] = a[i] · b[i]`, one complex per
                /// vector.
                ///
                /// # Safety
                ///
                /// As [`mul_into`].
                #[target_feature(enable = $feature)]
                pub unsafe fn cmul_into(
                    out: &mut [Complex],
                    a: &[Complex],
                    b: &[Complex],
                    conj_b: bool,
                ) {
                    let n = out.len();
                    let po = out.as_mut_ptr().cast::<f64>();
                    let pa = a.as_ptr().cast::<f64>();
                    let pb = b.as_ptr().cast::<f64>();
                    for i in 0..n {
                        // SAFETY: index i < n; repr(C) layout.
                        unsafe {
                            let x = _mm_loadu_pd(pa.add(2 * i));
                            let mut y = _mm_loadu_pd(pb.add(2 * i));
                            if conj_b {
                                y = _mm_xor_pd(y, conj_mask());
                            }
                            _mm_storeu_pd(po.add(2 * i), cmul1(x, y));
                        }
                    }
                }

                /// One split-combine bin pair is still cheapest in
                /// scalar at this width; delegate to the reference.
                ///
                /// # Safety
                ///
                /// No unsafe preconditions beyond the feature gate.
                #[target_feature(enable = $feature)]
                pub unsafe fn real_split_combine_soa(
                    z: &[Complex],
                    tw: &[Complex],
                    re: &mut [f64],
                    im: &mut [f64],
                ) {
                    scalar::real_split_combine_soa(z, tw, re, im);
                }

                /// See [`real_split_combine_soa`].
                ///
                /// # Safety
                ///
                /// No unsafe preconditions beyond the feature gate.
                #[target_feature(enable = $feature)]
                pub unsafe fn real_split_combine_aos(
                    z: &[Complex],
                    tw: &[Complex],
                    out: &mut [Complex],
                ) {
                    scalar::real_split_combine_aos(z, tw, out);
                }
            }
        };
    }

    x86_f64x2_kernels!(paste_sse2, "sse2");

    /// AVX2 kernels: true `f64x4` forms for the plane kernels and
    /// two-complexes-per-vector forms for the complex kernels, falling
    /// back to the SSE2 forms for remainders.
    pub mod paste_avx2 {
        use super::super::{scalar, Complex};
        #[allow(clippy::wildcard_imports)]
        use core::arch::x86_64::*;

        /// `out[i] = a[i] · b[i]`.
        ///
        /// # Safety
        ///
        /// CPU must support AVX2 (runtime-detected by the dispatcher);
        /// slices must be equal length (asserted by the dispatcher).
        #[target_feature(enable = "avx2")]
        pub unsafe fn mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
            let n = out.len();
            let main = n & !3;
            let (po, pa, pb) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
            let mut i = 0;
            while i < main {
                // SAFETY: i + 3 < n on every lane.
                unsafe {
                    let va = _mm256_loadu_pd(pa.add(i));
                    let vb = _mm256_loadu_pd(pb.add(i));
                    _mm256_storeu_pd(po.add(i), _mm256_mul_pd(va, vb));
                }
                i += 4;
            }
            for j in i..n {
                out[j] = a[j] * b[j];
            }
        }

        /// `a[i] *= b[i]`.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn mul_in_place(a: &mut [f64], b: &[f64]) {
            let n = a.len();
            let main = n & !3;
            let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
            let mut i = 0;
            while i < main {
                // SAFETY: in-bounds lanes.
                unsafe {
                    let va = _mm256_loadu_pd(pa.add(i));
                    let vb = _mm256_loadu_pd(pb.add(i));
                    _mm256_storeu_pd(pa.add(i), _mm256_mul_pd(va, vb));
                }
                i += 4;
            }
            for j in i..n {
                a[j] *= b[j];
            }
        }

        /// `acc[i] += a[i] · b[i]` (multiply then add — no FMA — to round
        /// exactly like the scalar form).
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn mul_add_in_place(acc: &mut [f64], a: &[f64], b: &[f64]) {
            let n = acc.len();
            let main = n & !3;
            let (po, pa, pb) = (acc.as_mut_ptr(), a.as_ptr(), b.as_ptr());
            let mut i = 0;
            while i < main {
                // SAFETY: in-bounds lanes.
                unsafe {
                    let va = _mm256_loadu_pd(pa.add(i));
                    let vb = _mm256_loadu_pd(pb.add(i));
                    let vo = _mm256_loadu_pd(po.add(i));
                    _mm256_storeu_pd(po.add(i), _mm256_add_pd(vo, _mm256_mul_pd(va, vb)));
                }
                i += 4;
            }
            for j in i..n {
                acc[j] += a[j] * b[j];
            }
        }

        /// `acc[i] += a[i]`.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn add_in_place(acc: &mut [f64], a: &[f64]) {
            let n = acc.len();
            let main = n & !3;
            let (po, pa) = (acc.as_mut_ptr(), a.as_ptr());
            let mut i = 0;
            while i < main {
                // SAFETY: in-bounds lanes.
                unsafe {
                    let vo = _mm256_loadu_pd(po.add(i));
                    let va = _mm256_loadu_pd(pa.add(i));
                    _mm256_storeu_pd(po.add(i), _mm256_add_pd(vo, va));
                }
                i += 4;
            }
            for j in i..n {
                acc[j] += a[j];
            }
        }

        /// `acc[i] -= a[i]`.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn sub_in_place(acc: &mut [f64], a: &[f64]) {
            let n = acc.len();
            let main = n & !3;
            let (po, pa) = (acc.as_mut_ptr(), a.as_ptr());
            let mut i = 0;
            while i < main {
                // SAFETY: in-bounds lanes.
                unsafe {
                    let vo = _mm256_loadu_pd(po.add(i));
                    let va = _mm256_loadu_pd(pa.add(i));
                    _mm256_storeu_pd(po.add(i), _mm256_sub_pd(vo, va));
                }
                i += 4;
            }
            for j in i..n {
                acc[j] -= a[j];
            }
        }

        /// `a[i] *= s`.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn scale_in_place(a: &mut [f64], s: f64) {
            let n = a.len();
            let main = n & !3;
            let pa = a.as_mut_ptr();
            let vs = _mm256_set1_pd(s);
            let mut i = 0;
            while i < main {
                // SAFETY: in-bounds lanes.
                unsafe {
                    let va = _mm256_loadu_pd(pa.add(i));
                    _mm256_storeu_pd(pa.add(i), _mm256_mul_pd(va, vs));
                }
                i += 4;
            }
            for x in &mut a[i..] {
                *x *= s;
            }
        }

        /// `out[i] = √(re[i]² + im[i]²)`.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn magnitude_into(out: &mut [f64], re: &[f64], im: &[f64]) {
            let n = out.len();
            let main = n & !3;
            let (po, pr, pi) = (out.as_mut_ptr(), re.as_ptr(), im.as_ptr());
            let mut i = 0;
            while i < main {
                // SAFETY: in-bounds lanes; vsqrtpd is exactly rounded.
                unsafe {
                    let r = _mm256_loadu_pd(pr.add(i));
                    let im_v = _mm256_loadu_pd(pi.add(i));
                    let s = _mm256_add_pd(_mm256_mul_pd(r, r), _mm256_mul_pd(im_v, im_v));
                    _mm256_storeu_pd(po.add(i), _mm256_sqrt_pd(s));
                }
                i += 4;
            }
            for j in i..n {
                out[j] = (re[j] * re[j] + im[j] * im[j]).sqrt();
            }
        }

        /// Deterministic `Σ a[i]²`: one `f64x4` accumulator whose lanes
        /// are exactly the scalar reference's virtual lanes.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn sum_sq(a: &[f64]) -> f64 {
            let n = a.len();
            let main = n & !3;
            let pa = a.as_ptr();
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i < main {
                // SAFETY: i + 3 < n in the stepped-by-4 loop.
                unsafe {
                    let v = _mm256_loadu_pd(pa.add(i));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
                }
                i += 4;
            }
            let mut l = [0.0f64; 4];
            // SAFETY: `l` holds four f64 slots.
            unsafe { _mm256_storeu_pd(l.as_mut_ptr(), acc) };
            let mut tail = 0.0;
            for &v in &a[main..] {
                tail += v * v;
            }
            ((l[0] + l[1]) + (l[2] + l[3])) + tail
        }

        /// Deterministic `Σ (re[i]² + im[i]²)`.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn sum_sq2(re: &[f64], im: &[f64]) -> f64 {
            let n = re.len();
            let main = n & !3;
            let (pr, pi) = (re.as_ptr(), im.as_ptr());
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i < main {
                // SAFETY: i + 3 < n in the stepped-by-4 loop.
                unsafe {
                    let r = _mm256_loadu_pd(pr.add(i));
                    let im_v = _mm256_loadu_pd(pi.add(i));
                    let t = _mm256_add_pd(_mm256_mul_pd(r, r), _mm256_mul_pd(im_v, im_v));
                    acc = _mm256_add_pd(acc, t);
                }
                i += 4;
            }
            let mut l = [0.0f64; 4];
            // SAFETY: `l` holds four f64 slots.
            unsafe { _mm256_storeu_pd(l.as_mut_ptr(), acc) };
            let mut tail = 0.0;
            for (&r, &i) in re[main..].iter().zip(&im[main..]) {
                tail += r * r + i * i;
            }
            ((l[0] + l[1]) + (l[2] + l[3])) + tail
        }

        /// Complex multiply of two packed complexes `[v0, v1]` by
        /// `[w0, w1]` (each `vj·wj`), matching the scalar product and
        /// rounding order per lane.
        ///
        /// # Safety
        ///
        /// CPU must support AVX2.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn cmul2(v: __m256d, w: __m256d) -> __m256d {
            // Pure register arithmetic — intrinsic calls are safe inside a
            // fn already gated on the same feature.
            let wr = _mm256_movedup_pd(w); // [w0.re, w0.re, w1.re, w1.re]
            let wi = _mm256_permute_pd(w, 0b1111); // [w0.im ×2, w1.im ×2]
            let t1 = _mm256_mul_pd(v, wr);
            let vs = _mm256_permute_pd(v, 0b0101); // swap re/im per complex
            let t2 = _mm256_mul_pd(vs, wi);
            // lane re = t1 − t2, lane im = t1 + t2.
            _mm256_addsub_pd(t1, t2)
        }

        /// Sign mask negating the imaginary lane of each packed complex.
        ///
        /// # Safety
        ///
        /// CPU must support AVX2.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn conj_mask2() -> __m256d {
            // Constant materialization only; safe inside the feature-gated
            // fn.
            _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
        }

        /// One radix-2 butterfly stage, two complexes (one twiddle pair)
        /// per vector; stages with `half < 2` use the scalar reference.
        ///
        /// # Safety
        ///
        /// As [`mul_into`]; dispatcher validates `tw.len() == half` and
        /// the block structure.
        #[target_feature(enable = "avx2")]
        pub unsafe fn radix2_stage(
            buf: &mut [Complex],
            tw: &[Complex],
            half: usize,
            inverse: bool,
        ) {
            if half < 2 {
                scalar::radix2_stage(buf, tw, half, inverse);
                return;
            }
            let len = 2 * half;
            let n = buf.len();
            let p = buf.as_mut_ptr().cast::<f64>();
            let pt = tw.as_ptr().cast::<f64>();
            // SAFETY: constant materialization.
            let cm = unsafe { conj_mask2() };
            let mut i = 0;
            while i < n {
                let mut k = 0;
                // `half` is a power of two ≥ 2, so pairs never leave a
                // remainder.
                while k < half {
                    // SAFETY: i + k + half + 1 < n by the block
                    // structure; repr(C) puts complex c at f64 offset 2c.
                    unsafe {
                        let mut w = _mm256_loadu_pd(pt.add(2 * k));
                        if inverse {
                            w = _mm256_xor_pd(w, cm);
                        }
                        let u = _mm256_loadu_pd(p.add(2 * (i + k)));
                        let v = _mm256_loadu_pd(p.add(2 * (i + k + half)));
                        let vw = cmul2(v, w);
                        _mm256_storeu_pd(p.add(2 * (i + k)), _mm256_add_pd(u, vw));
                        _mm256_storeu_pd(p.add(2 * (i + k + half)), _mm256_sub_pd(u, vw));
                    }
                    k += 2;
                }
                i += len;
            }
        }

        /// Pointwise `a[i] *= b[i]`, two complexes per vector.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn cmul_in_place(a: &mut [Complex], b: &[Complex], conj_b: bool) {
            let n = a.len();
            let main = n & !1;
            let pa = a.as_mut_ptr().cast::<f64>();
            let pb = b.as_ptr().cast::<f64>();
            // SAFETY: constant materialization.
            let cm = unsafe { conj_mask2() };
            let mut i = 0;
            while i < main {
                // SAFETY: complexes i, i+1 < n; repr(C) layout.
                unsafe {
                    let x = _mm256_loadu_pd(pa.add(2 * i));
                    let mut y = _mm256_loadu_pd(pb.add(2 * i));
                    if conj_b {
                        y = _mm256_xor_pd(y, cm);
                    }
                    _mm256_storeu_pd(pa.add(2 * i), cmul2(x, y));
                }
                i += 2;
            }
            if i < n {
                let y = if conj_b { b[i].conj() } else { b[i] };
                a[i] *= y;
            }
        }

        /// Pointwise `out[i] = a[i] · b[i]`, two complexes per vector.
        ///
        /// # Safety
        ///
        /// As [`mul_into`].
        #[target_feature(enable = "avx2")]
        pub unsafe fn cmul_into(out: &mut [Complex], a: &[Complex], b: &[Complex], conj_b: bool) {
            let n = out.len();
            let main = n & !1;
            let po = out.as_mut_ptr().cast::<f64>();
            let pa = a.as_ptr().cast::<f64>();
            let pb = b.as_ptr().cast::<f64>();
            // SAFETY: constant materialization.
            let cm = unsafe { conj_mask2() };
            let mut i = 0;
            while i < main {
                // SAFETY: complexes i, i+1 < n; repr(C) layout.
                unsafe {
                    let x = _mm256_loadu_pd(pa.add(2 * i));
                    let mut y = _mm256_loadu_pd(pb.add(2 * i));
                    if conj_b {
                        y = _mm256_xor_pd(y, cm);
                    }
                    _mm256_storeu_pd(po.add(2 * i), cmul2(x, y));
                }
                i += 2;
            }
            if i < n {
                let y = if conj_b { b[i].conj() } else { b[i] };
                out[i] = a[i] * y;
            }
        }

        /// Two split-combine bins per iteration: forward pair `z[k..k+2]`
        /// against the reversed, conjugated pair `[z[m−k], z[m−k−1]]`,
        /// with the edge bins (`k = 0`, `k = m`, odd leftover) delegated
        /// to the scalar reference.
        ///
        /// Returns the first uncombined interior bin.
        ///
        /// # Safety
        ///
        /// CPU must support AVX2; `z.len() == m`, `tw.len() == m + 1`;
        /// the caller stores pairs for `k` in `1..ret`.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn split_pair(z: &[Complex], tw: &[Complex], k: usize) -> __m256d {
            let m = z.len();
            let pz = z.as_ptr().cast::<f64>();
            let pt = tw.as_ptr().cast::<f64>();
            // SAFETY: caller guarantees 1 ≤ k and k + 1 ≤ m − 1, so both
            // the forward pair [k, k+1] and the reversed pair
            // [m−k−1, m−k] stay inside `z`.
            unsafe {
                let cm = conj_mask2();
                let a = _mm256_loadu_pd(pz.add(2 * k));
                // [z[m−k−1], z[m−k]] → swap the 128-bit halves →
                // [z[m−k], z[m−k−1]], then conjugate.
                let braw = _mm256_loadu_pd(pz.add(2 * (m - k - 1)));
                let b = _mm256_xor_pd(_mm256_permute2f128_pd(braw, braw, 0x01), cm);
                let halfv = _mm256_set1_pd(0.5);
                // Ze = (a + b)/2 — matches scalar (a + b).scale(0.5).
                let ze = _mm256_mul_pd(_mm256_add_pd(a, b), halfv);
                let d = _mm256_sub_pd(a, b);
                // Zo = (d.im, −d.re)/2: swap lanes, negate im lane, halve.
                let ds = _mm256_permute_pd(d, 0b0101);
                let zo = _mm256_mul_pd(_mm256_xor_pd(ds, cm), halfv);
                let t = _mm256_loadu_pd(pt.add(2 * k));
                // X = Ze + tw·Zo; cmul2(zo, t) keeps the scalar product
                // order (tw.re·zo parts first per lane).
                _mm256_add_pd(ze, cmul2(zo, t))
            }
        }

        /// Split-twiddle combine into SoA planes.
        ///
        /// # Safety
        ///
        /// As [`mul_into`]; dispatcher validates plane lengths.
        #[target_feature(enable = "avx2")]
        pub unsafe fn real_split_combine_soa(
            z: &[Complex],
            tw: &[Complex],
            re: &mut [f64],
            im: &mut [f64],
        ) {
            let m = z.len();
            if m < 4 {
                scalar::real_split_combine_soa(z, tw, re, im);
                return;
            }
            let (pr, pi) = (re.as_mut_ptr(), im.as_mut_ptr());
            // Edge bins wrap `(m − k) % m`; keep them scalar.
            let e0 = scalar::split_bin(z, tw, m, 0);
            re[0] = e0.re;
            im[0] = e0.im;
            let mut k = 1;
            while k + 2 <= m {
                // SAFETY: 1 ≤ k, k + 1 ≤ m − 1 (loop bound); outputs have
                // m + 1 slots so k + 1 is in bounds.
                unsafe {
                    let x = split_pair(z, tw, k);
                    // x = [re0, im0, re1, im1]; select lanes (0,2) and
                    // (1,3) into 128-bit stores.
                    let res = _mm256_castpd256_pd128(_mm256_permute4x64_pd(x, 0b00_00_10_00));
                    let ims = _mm256_castpd256_pd128(_mm256_permute4x64_pd(x, 0b00_00_11_01));
                    _mm_storeu_pd(pr.add(k), res);
                    _mm_storeu_pd(pi.add(k), ims);
                }
                k += 2;
            }
            while k <= m {
                let x = scalar::split_bin(z, tw, m, k);
                re[k] = x.re;
                im[k] = x.im;
                k += 1;
            }
        }

        /// Split-twiddle combine into an AoS half spectrum.
        ///
        /// # Safety
        ///
        /// As [`mul_into`]; dispatcher validates lengths.
        #[target_feature(enable = "avx2")]
        pub unsafe fn real_split_combine_aos(z: &[Complex], tw: &[Complex], out: &mut [Complex]) {
            let m = z.len();
            if m < 4 {
                scalar::real_split_combine_aos(z, tw, out);
                return;
            }
            let po = out.as_mut_ptr().cast::<f64>();
            out[0] = scalar::split_bin(z, tw, m, 0);
            let mut k = 1;
            while k + 2 <= m {
                // SAFETY: 1 ≤ k, k + 1 ≤ m − 1; out has m + 1 complexes.
                unsafe {
                    let x = split_pair(z, tw, k);
                    _mm256_storeu_pd(po.add(2 * k), x);
                }
                k += 2;
            }
            while k <= m {
                out[k] = scalar::split_bin(z, tw, m, k);
                k += 1;
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON (`f64x2`) kernel forms. The split-combine kernels delegate to
    //! the scalar reference — at two lanes the shuffle overhead of the
    //! reversed load outweighs the win.

    use super::{scalar, Complex};
    #[allow(clippy::wildcard_imports)]
    use core::arch::aarch64::*;

    /// `out[i] = a[i] · b[i]`.
    ///
    /// # Safety
    ///
    /// NEON is part of the aarch64 baseline; slices must be equal length
    /// (asserted by the dispatcher).
    pub unsafe fn mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        let n = out.len();
        let main = n & !1;
        let (po, pa, pb) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: in-bounds lanes.
            unsafe {
                let va = vld1q_f64(pa.add(i));
                let vb = vld1q_f64(pb.add(i));
                vst1q_f64(po.add(i), vmulq_f64(va, vb));
            }
            i += 2;
        }
        if i < n {
            out[i] = a[i] * b[i];
        }
    }

    /// `a[i] *= b[i]`.
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn mul_in_place(a: &mut [f64], b: &[f64]) {
        let n = a.len();
        let main = n & !1;
        let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: in-bounds lanes.
            unsafe {
                let va = vld1q_f64(pa.add(i));
                let vb = vld1q_f64(pb.add(i));
                vst1q_f64(pa.add(i), vmulq_f64(va, vb));
            }
            i += 2;
        }
        if i < n {
            a[i] *= b[i];
        }
    }

    /// `acc[i] += a[i] · b[i]` (multiply then add — no fused form — to
    /// round exactly like the scalar reference).
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn mul_add_in_place(acc: &mut [f64], a: &[f64], b: &[f64]) {
        let n = acc.len();
        let main = n & !1;
        let (po, pa, pb) = (acc.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: in-bounds lanes.
            unsafe {
                let va = vld1q_f64(pa.add(i));
                let vb = vld1q_f64(pb.add(i));
                let vo = vld1q_f64(po.add(i));
                vst1q_f64(po.add(i), vaddq_f64(vo, vmulq_f64(va, vb)));
            }
            i += 2;
        }
        if i < n {
            acc[i] += a[i] * b[i];
        }
    }

    /// `acc[i] += a[i]`.
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn add_in_place(acc: &mut [f64], a: &[f64]) {
        let n = acc.len();
        let main = n & !1;
        let (po, pa) = (acc.as_mut_ptr(), a.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: in-bounds lanes.
            unsafe {
                let vo = vld1q_f64(po.add(i));
                let va = vld1q_f64(pa.add(i));
                vst1q_f64(po.add(i), vaddq_f64(vo, va));
            }
            i += 2;
        }
        if i < n {
            acc[i] += a[i];
        }
    }

    /// `acc[i] -= a[i]`.
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn sub_in_place(acc: &mut [f64], a: &[f64]) {
        let n = acc.len();
        let main = n & !1;
        let (po, pa) = (acc.as_mut_ptr(), a.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: in-bounds lanes.
            unsafe {
                let vo = vld1q_f64(po.add(i));
                let va = vld1q_f64(pa.add(i));
                vst1q_f64(po.add(i), vsubq_f64(vo, va));
            }
            i += 2;
        }
        if i < n {
            acc[i] -= a[i];
        }
    }

    /// `a[i] *= s`.
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn scale_in_place(a: &mut [f64], s: f64) {
        let n = a.len();
        let main = n & !1;
        let pa = a.as_mut_ptr();
        // SAFETY: constant materialization.
        let vs = unsafe { vdupq_n_f64(s) };
        let mut i = 0;
        while i < main {
            // SAFETY: in-bounds lanes.
            unsafe {
                let va = vld1q_f64(pa.add(i));
                vst1q_f64(pa.add(i), vmulq_f64(va, vs));
            }
            i += 2;
        }
        if i < n {
            a[i] *= s;
        }
    }

    /// `out[i] = √(re[i]² + im[i]²)` (`vsqrtq_f64` is exactly rounded).
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn magnitude_into(out: &mut [f64], re: &[f64], im: &[f64]) {
        let n = out.len();
        let main = n & !1;
        let (po, pr, pi) = (out.as_mut_ptr(), re.as_ptr(), im.as_ptr());
        let mut i = 0;
        while i < main {
            // SAFETY: in-bounds lanes.
            unsafe {
                let r = vld1q_f64(pr.add(i));
                let im_v = vld1q_f64(pi.add(i));
                let s = vaddq_f64(vmulq_f64(r, r), vmulq_f64(im_v, im_v));
                vst1q_f64(po.add(i), vsqrtq_f64(s));
            }
            i += 2;
        }
        if i < n {
            out[i] = (re[i] * re[i] + im[i] * im[i]).sqrt();
        }
    }

    /// Deterministic `Σ a[i]²`: two `f64x2` accumulators hold virtual
    /// lanes (0,1) and (2,3), combined in the scalar reference order.
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn sum_sq(a: &[f64]) -> f64 {
        let n = a.len();
        let main = n & !3;
        let pa = a.as_ptr();
        // SAFETY: constant materialization.
        let mut acc01 = unsafe { vdupq_n_f64(0.0) };
        let mut acc23 = acc01;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 3 < n in the stepped-by-4 loop.
            unsafe {
                let v01 = vld1q_f64(pa.add(i));
                let v23 = vld1q_f64(pa.add(i + 2));
                acc01 = vaddq_f64(acc01, vmulq_f64(v01, v01));
                acc23 = vaddq_f64(acc23, vmulq_f64(v23, v23));
            }
            i += 4;
        }
        // SAFETY: lane extraction of live registers.
        let (l0, l1, l2, l3) = unsafe {
            (
                vgetq_lane_f64::<0>(acc01),
                vgetq_lane_f64::<1>(acc01),
                vgetq_lane_f64::<0>(acc23),
                vgetq_lane_f64::<1>(acc23),
            )
        };
        let mut tail = 0.0;
        for &v in &a[main..] {
            tail += v * v;
        }
        ((l0 + l1) + (l2 + l3)) + tail
    }

    /// Deterministic `Σ (re[i]² + im[i]²)`; striping as [`sum_sq`].
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn sum_sq2(re: &[f64], im: &[f64]) -> f64 {
        let n = re.len();
        let main = n & !3;
        let (pr, pi) = (re.as_ptr(), im.as_ptr());
        // SAFETY: constant materialization.
        let mut acc01 = unsafe { vdupq_n_f64(0.0) };
        let mut acc23 = acc01;
        let mut i = 0;
        while i < main {
            // SAFETY: i + 3 < n in the stepped-by-4 loop.
            unsafe {
                let r01 = vld1q_f64(pr.add(i));
                let i01 = vld1q_f64(pi.add(i));
                let r23 = vld1q_f64(pr.add(i + 2));
                let i23 = vld1q_f64(pi.add(i + 2));
                acc01 = vaddq_f64(acc01, vaddq_f64(vmulq_f64(r01, r01), vmulq_f64(i01, i01)));
                acc23 = vaddq_f64(acc23, vaddq_f64(vmulq_f64(r23, r23), vmulq_f64(i23, i23)));
            }
            i += 4;
        }
        // SAFETY: lane extraction of live registers.
        let (l0, l1, l2, l3) = unsafe {
            (
                vgetq_lane_f64::<0>(acc01),
                vgetq_lane_f64::<1>(acc01),
                vgetq_lane_f64::<0>(acc23),
                vgetq_lane_f64::<1>(acc23),
            )
        };
        let mut tail = 0.0;
        for (&r, &i) in re[main..].iter().zip(&im[main..]) {
            tail += r * r + i * i;
        }
        ((l0 + l1) + (l2 + l3)) + tail
    }

    /// Complex multiply of one `f64x2` vector `[v.re, v.im]` by `w`,
    /// matching the scalar product and rounding order (the `±1` multiply
    /// emulating addsub is exact).
    ///
    /// # Safety
    ///
    /// Register arithmetic only.
    #[inline]
    unsafe fn cmul1(v: float64x2_t, w: float64x2_t) -> float64x2_t {
        // SAFETY: pure register arithmetic.
        unsafe {
            let wr = vdupq_laneq_f64::<0>(w);
            let wi = vdupq_laneq_f64::<1>(w);
            let t1 = vmulq_f64(v, wr); // [v.re·w.re, v.im·w.re]
            let vs = vextq_f64::<1>(v, v); // [v.im, v.re]
            let t2 = vmulq_f64(vs, wi); // [v.im·w.im, v.re·w.im]
                                        // addsub: negate lane 0 of t2 (exact ±1 multiply), then add.
            let sign = vcombine_f64(vdup_n_f64(-1.0), vdup_n_f64(1.0));
            vaddq_f64(t1, vmulq_f64(t2, sign))
        }
    }

    /// Negates the imaginary lane (conjugation), via an exact ±1
    /// multiply.
    ///
    /// # Safety
    ///
    /// Register arithmetic only.
    #[inline]
    unsafe fn conj(v: float64x2_t) -> float64x2_t {
        // SAFETY: pure register arithmetic.
        unsafe {
            let sign = vcombine_f64(vdup_n_f64(1.0), vdup_n_f64(-1.0));
            vmulq_f64(v, sign)
        }
    }

    /// One radix-2 butterfly stage, one complex per vector.
    ///
    /// # Safety
    ///
    /// As [`mul_into`]; dispatcher validates `tw.len() == half` and the
    /// block structure.
    pub unsafe fn radix2_stage(buf: &mut [Complex], tw: &[Complex], half: usize, inverse: bool) {
        let len = 2 * half;
        let n = buf.len();
        let p = buf.as_mut_ptr().cast::<f64>();
        let pt = tw.as_ptr().cast::<f64>();
        let mut i = 0;
        while i < n {
            let mut k = 0;
            while k < half {
                // SAFETY: i + k + half < n by the block structure;
                // repr(C) puts complex c at f64 offset 2c.
                unsafe {
                    let mut w = vld1q_f64(pt.add(2 * k));
                    if inverse {
                        w = conj(w);
                    }
                    let u = vld1q_f64(p.add(2 * (i + k)));
                    let v = vld1q_f64(p.add(2 * (i + k + half)));
                    let vw = cmul1(v, w);
                    vst1q_f64(p.add(2 * (i + k)), vaddq_f64(u, vw));
                    vst1q_f64(p.add(2 * (i + k + half)), vsubq_f64(u, vw));
                }
                k += 1;
            }
            i += len;
        }
    }

    /// Pointwise `a[i] *= b[i]`, one complex per vector.
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn cmul_in_place(a: &mut [Complex], b: &[Complex], conj_b: bool) {
        let n = a.len();
        let pa = a.as_mut_ptr().cast::<f64>();
        let pb = b.as_ptr().cast::<f64>();
        for i in 0..n {
            // SAFETY: index i < n; repr(C) layout.
            unsafe {
                let x = vld1q_f64(pa.add(2 * i));
                let mut y = vld1q_f64(pb.add(2 * i));
                if conj_b {
                    y = conj(y);
                }
                vst1q_f64(pa.add(2 * i), cmul1(x, y));
            }
        }
    }

    /// Pointwise `out[i] = a[i] · b[i]`, one complex per vector.
    ///
    /// # Safety
    ///
    /// As [`mul_into`].
    pub unsafe fn cmul_into(out: &mut [Complex], a: &[Complex], b: &[Complex], conj_b: bool) {
        let n = out.len();
        let po = out.as_mut_ptr().cast::<f64>();
        let pa = a.as_ptr().cast::<f64>();
        let pb = b.as_ptr().cast::<f64>();
        for i in 0..n {
            // SAFETY: index i < n; repr(C) layout.
            unsafe {
                let x = vld1q_f64(pa.add(2 * i));
                let mut y = vld1q_f64(pb.add(2 * i));
                if conj_b {
                    y = conj(y);
                }
                vst1q_f64(po.add(2 * i), cmul1(x, y));
            }
        }
    }

    /// Delegates to the scalar reference (see the module docs).
    ///
    /// # Safety
    ///
    /// No unsafe preconditions.
    pub unsafe fn real_split_combine_soa(
        z: &[Complex],
        tw: &[Complex],
        re: &mut [f64],
        im: &mut [f64],
    ) {
        scalar::real_split_combine_soa(z, tw, re, im);
    }

    /// Delegates to the scalar reference (see the module docs).
    ///
    /// # Safety
    ///
    /// No unsafe preconditions.
    pub unsafe fn real_split_combine_aos(z: &[Complex], tw: &[Complex], out: &mut [Complex]) {
        scalar::real_split_combine_aos(z, tw, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels_to_test() -> Vec<Level> {
        let mut l = vec![Level::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            l.push(Level::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                l.push(Level::Avx2);
            }
        }
        #[cfg(target_arch = "aarch64")]
        l.push(Level::Neon);
        l
    }

    fn data(n: usize, seed: u64) -> Vec<f64> {
        // Small deterministic LCG; values span sign and magnitude.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0
            })
            .collect()
    }

    fn cdata(n: usize, seed: u64) -> Vec<Complex> {
        let re = data(n, seed);
        let im = data(n, seed ^ 0xABCD);
        re.into_iter().zip(im).map(|(r, i)| Complex::new(r, i)).collect()
    }

    /// Runs `f` once per dispatch level available on this machine,
    /// restoring auto dispatch afterwards.
    fn with_each_level(mut f: impl FnMut(Level)) {
        for l in levels_to_test() {
            set_dispatch_override(Some(l));
            f(l);
        }
        set_dispatch_override(None);
    }

    #[test]
    fn plane_kernels_bit_identical_across_levels_and_remainders() {
        for n in [0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 33, 64, 257] {
            let a = data(n, 1);
            let b = data(n, 2);
            let mut want_mul = vec![0.0; n];
            scalar::mul_into(&mut want_mul, &a, &b);
            let mut want_acc = data(n, 3);
            scalar::mul_add_in_place(&mut want_acc, &a, &b);
            let mut want_mag = vec![0.0; n];
            scalar::magnitude_into(&mut want_mag, &a, &b);
            let want_ss = scalar::sum_sq(&a);
            let want_ss2 = scalar::sum_sq2(&a, &b);

            with_each_level(|l| {
                let mut got = vec![0.0; n];
                mul_into(&mut got, &a, &b);
                assert_eq!(got, want_mul, "mul_into n={n} level={l}");
                let mut acc = data(n, 3);
                mul_add_in_place(&mut acc, &a, &b);
                assert_eq!(acc, want_acc, "mul_add n={n} level={l}");
                let mut mag = vec![0.0; n];
                magnitude_into(&mut mag, &a, &b);
                assert_eq!(mag, want_mag, "magnitude n={n} level={l}");
                assert_eq!(sum_sq(&a).to_bits(), want_ss.to_bits(), "sum_sq n={n} level={l}");
                assert_eq!(
                    sum_sq2(&a, &b).to_bits(),
                    want_ss2.to_bits(),
                    "sum_sq2 n={n} level={l}"
                );
            });
        }
    }

    #[test]
    fn complex_kernels_bit_identical_across_levels() {
        for half in [1usize, 2, 4, 8, 16] {
            let n = 4 * half; // two blocks
            let tw = cdata(half, 7);
            let src = cdata(n, 8);
            for inverse in [false, true] {
                let mut want = src.clone();
                scalar::radix2_stage(&mut want, &tw, half, inverse);
                with_each_level(|l| {
                    let mut got = src.clone();
                    radix2_stage(&mut got, &tw, half, inverse);
                    assert_eq!(got, want, "radix2 half={half} inv={inverse} level={l}");
                });
            }
        }
        for n in [0usize, 1, 2, 3, 5, 8, 31] {
            let a = cdata(n, 11);
            let b = cdata(n, 12);
            for conj_b in [false, true] {
                let mut want = a.clone();
                scalar::cmul_in_place(&mut want, &b, conj_b);
                with_each_level(|l| {
                    let mut got = a.clone();
                    cmul_in_place(&mut got, &b, conj_b);
                    assert_eq!(got, want, "cmul n={n} conj={conj_b} level={l}");
                });
            }
        }
        for m in [1usize, 2, 3, 4, 5, 8, 16, 33] {
            let z = cdata(m, 21);
            let tw = cdata(m + 1, 22);
            let mut want = vec![Complex::ZERO; m + 1];
            scalar::real_split_combine_aos(&z, &tw, &mut want);
            let mut want_re = vec![0.0; m + 1];
            let mut want_im = vec![0.0; m + 1];
            scalar::real_split_combine_soa(&z, &tw, &mut want_re, &mut want_im);
            with_each_level(|l| {
                let mut got = vec![Complex::ZERO; m + 1];
                real_split_combine_aos(&z, &tw, &mut got);
                assert_eq!(got, want, "combine aos m={m} level={l}");
                let mut gre = vec![0.0; m + 1];
                let mut gim = vec![0.0; m + 1];
                real_split_combine_soa(&z, &tw, &mut gre, &mut gim);
                assert_eq!(gre, want_re, "combine soa re m={m} level={l}");
                assert_eq!(gim, want_im, "combine soa im m={m} level={l}");
            });
        }
    }

    #[test]
    fn force_scalar_pins_and_releases_dispatch() {
        force_scalar(true);
        assert_eq!(active_level(), Level::Scalar);
        force_scalar(false);
        let auto = active_level();
        // Whatever auto resolves to, an over-capability request clamps.
        set_dispatch_override(Some(Level::Avx2));
        assert!(active_level() <= Level::Avx2.max(auto));
        set_dispatch_override(None);
        assert_eq!(active_level(), auto);
    }

    #[test]
    fn complex_lane_views_share_layout() {
        let mut buf = cdata(5, 31);
        let flat: Vec<f64> = buf.iter().flat_map(|c| [c.re, c.im]).collect();
        assert_eq!(complex_lanes(&buf), &flat[..]);
        complex_lanes_mut(&mut buf)[3] = 42.0;
        assert_eq!(buf[1].im, 42.0);
    }
}
