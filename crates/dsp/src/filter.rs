//! Digital filtering: windowed-sinc FIR design, Butterworth biquads,
//! zero-phase application, and moving-average helpers.
//!
//! The paper band-limits all mixed signals to `[0, 12] Hz` before evaluation
//! (§4.2) and splits PPG into AC/DC parts for oximetry (Eq. 11); both paths
//! are served from here.

use crate::complex::Complex;
use crate::fft::{fft, ifft, next_power_of_two};
use crate::{DspError, Result};

/// A linear-phase FIR filter described by its taps.
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Builds a filter from explicit taps.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Result<Self> {
        if taps.is_empty() {
            return Err(DspError::EmptyInput);
        }
        Ok(FirFilter { taps })
    }

    /// Designs a windowed-sinc low-pass filter.
    ///
    /// `cutoff_hz` is the -6 dB point; `num_taps` is forced odd so the filter
    /// has integer group delay.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `0 < cutoff_hz < fs/2`
    /// and `num_taps >= 3`.
    pub fn low_pass(fs: f64, cutoff_hz: f64, num_taps: usize) -> Result<Self> {
        if !(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0) {
            return Err(DspError::InvalidParameter {
                name: "cutoff_hz",
                message: format!("must be in (0, {})", fs / 2.0),
            });
        }
        if num_taps < 3 {
            return Err(DspError::InvalidParameter {
                name: "num_taps",
                message: "need at least 3 taps".into(),
            });
        }
        let n = if num_taps % 2 == 0 { num_taps + 1 } else { num_taps };
        let fc = cutoff_hz / fs;
        let mid = (n / 2) as isize;
        let tau = 2.0 * std::f64::consts::PI;
        let mut taps: Vec<f64> = (0..n as isize)
            .map(|i| {
                let k = (i - mid) as f64;
                let sinc = if k == 0.0 {
                    2.0 * fc
                } else {
                    (tau * fc * k).sin() / (std::f64::consts::PI * k)
                };
                // Blackman window for strong stop-band attenuation.
                let x = i as f64 / (n - 1) as f64;
                let w = 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos();
                sinc * w
            })
            .collect();
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Ok(FirFilter { taps })
    }

    /// Designs a windowed-sinc high-pass filter by spectral inversion of the
    /// complementary low-pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FirFilter::low_pass`].
    pub fn high_pass(fs: f64, cutoff_hz: f64, num_taps: usize) -> Result<Self> {
        let lp = FirFilter::low_pass(fs, cutoff_hz, num_taps)?;
        let n = lp.taps.len();
        let mid = n / 2;
        let mut taps: Vec<f64> = lp.taps.iter().map(|&t| -t).collect();
        taps[mid] += 1.0;
        Ok(FirFilter { taps })
    }

    /// Designs a band-pass filter as high-pass ∘ low-pass (convolved taps).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless
    /// `0 < lo_hz < hi_hz < fs/2`.
    pub fn band_pass(fs: f64, lo_hz: f64, hi_hz: f64, num_taps: usize) -> Result<Self> {
        if !(lo_hz > 0.0 && lo_hz < hi_hz && hi_hz < fs / 2.0) {
            return Err(DspError::InvalidParameter {
                name: "band",
                message: format!("need 0 < lo < hi < {}", fs / 2.0),
            });
        }
        let lp = FirFilter::low_pass(fs, hi_hz, num_taps)?;
        let hp = FirFilter::high_pass(fs, lo_hz, num_taps)?;
        Ok(FirFilter { taps: convolve_full(&lp.taps, &hp.taps) })
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Applies the filter with zero phase: the signal is padded by
    /// edge-reflection, convolved, and the group delay removed, so the output
    /// has the same length and no time shift.
    pub fn apply_zero_phase(&self, signal: &[f64]) -> Vec<f64> {
        if signal.is_empty() {
            return Vec::new();
        }
        let half = self.taps.len() / 2;
        let padded = reflect_pad(signal, half);
        let full = fft_convolve(&padded, &self.taps);
        // full length = padded + taps - 1; the aligned output starts at
        // 2*half (pad + group delay).
        full[2 * half..2 * half + signal.len()].to_vec()
    }

    /// Magnitude response at `freq_hz` for sample rate `fs`.
    pub fn magnitude_at(&self, fs: f64, freq_hz: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * freq_hz / fs;
        let mut re = 0.0;
        let mut im = 0.0;
        for (k, &t) in self.taps.iter().enumerate() {
            re += t * (omega * k as f64).cos();
            im -= t * (omega * k as f64).sin();
        }
        re.hypot(im)
    }
}

/// Full linear convolution (`a.len() + b.len() - 1` output samples),
/// computed directly for short kernels.
pub fn convolve_full(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Full linear convolution via zero-padded FFT — O(N log N), used for long
/// signals versus long kernels.
pub fn fft_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    if a.len().min(b.len()) <= 32 {
        return convolve_full(a, b);
    }
    let m = next_power_of_two(out_len);
    let mut fa = vec![Complex::ZERO; m];
    let mut fb = vec![Complex::ZERO; m];
    for (i, &v) in a.iter().enumerate() {
        fa[i] = Complex::from_real(v);
    }
    for (i, &v) in b.iter().enumerate() {
        fb[i] = Complex::from_real(v);
    }
    let fa = fft(&fa);
    let fb = fft(&fb);
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    ifft(&prod).into_iter().take(out_len).map(|c| c.re).collect()
}

/// Pads a signal by mirror reflection on both sides.
fn reflect_pad(signal: &[f64], pad: usize) -> Vec<f64> {
    let n = signal.len();
    let mut out = Vec::with_capacity(n + 2 * pad);
    for i in 0..pad {
        let idx = (pad - i).min(n - 1);
        out.push(signal[idx]);
    }
    out.extend_from_slice(signal);
    for i in 0..pad {
        let idx = n.saturating_sub(2 + i).min(n - 1);
        out.push(signal[idx]);
    }
    out
}

/// Second-order IIR section with normalized `a0 = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b: [f64; 3],
    a: [f64; 2],
}

impl Biquad {
    /// Butterworth low-pass biquad at cutoff `fc` (Hz), sample rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `0 < fc < fs/2`.
    pub fn butterworth_low_pass(fs: f64, fc: f64) -> Result<Self> {
        if !(fc > 0.0 && fc < fs / 2.0) {
            return Err(DspError::InvalidParameter {
                name: "fc",
                message: format!("must be in (0, {})", fs / 2.0),
            });
        }
        let k = (std::f64::consts::PI * fc / fs).tan();
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        let b0 = k * k * norm;
        Ok(Biquad {
            b: [b0, 2.0 * b0, b0],
            a: [2.0 * (k * k - 1.0) * norm, (1.0 - k / q + k * k) * norm],
        })
    }

    /// Butterworth high-pass biquad at cutoff `fc` (Hz), sample rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `0 < fc < fs/2`.
    pub fn butterworth_high_pass(fs: f64, fc: f64) -> Result<Self> {
        if !(fc > 0.0 && fc < fs / 2.0) {
            return Err(DspError::InvalidParameter {
                name: "fc",
                message: format!("must be in (0, {})", fs / 2.0),
            });
        }
        let k = (std::f64::consts::PI * fc / fs).tan();
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        Ok(Biquad {
            b: [norm, -2.0 * norm, norm],
            a: [2.0 * (k * k - 1.0) * norm, (1.0 - k / q + k * k) * norm],
        })
    }

    /// Causal (forward) application, direct form II transposed.
    pub fn apply(&self, signal: &[f64]) -> Vec<f64> {
        let mut z1 = 0.0;
        let mut z2 = 0.0;
        signal
            .iter()
            .map(|&x| {
                let y = self.b[0] * x + z1;
                z1 = self.b[1] * x - self.a[0] * y + z2;
                z2 = self.b[2] * x - self.a[1] * y;
                y
            })
            .collect()
    }

    /// Zero-phase application: forward pass, reverse, forward pass, reverse
    /// (the classic filtfilt scheme), with edge reflection padding.
    pub fn apply_zero_phase(&self, signal: &[f64]) -> Vec<f64> {
        if signal.is_empty() {
            return Vec::new();
        }
        let pad = (3 * 10).min(signal.len().saturating_sub(1));
        let padded = reflect_pad(signal, pad);
        let fwd = self.apply(&padded);
        let mut rev: Vec<f64> = fwd.into_iter().rev().collect();
        rev = self.apply(&rev);
        let out: Vec<f64> = rev.into_iter().rev().collect();
        out[pad..pad + signal.len()].to_vec()
    }
}

/// Centred moving average with window `len` (forced odd), edge-clamped.
///
/// This is the paper's DC extractor for pulse oximetry: the slowly varying
/// baseline of a PPG channel.
pub fn moving_average(signal: &[f64], len: usize) -> Vec<f64> {
    if signal.is_empty() || len <= 1 {
        return signal.to_vec();
    }
    let len = if len % 2 == 0 { len + 1 } else { len };
    let half = len / 2;
    let n = signal.len();
    // Prefix sums for O(N).
    let mut prefix = vec![0.0; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + signal[i];
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

/// Removes the best-fit straight line from a signal.
pub fn detrend(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n < 2 {
        return vec![0.0; n];
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = signal.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in signal.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    let slope = if den.abs() < f64::EPSILON { 0.0 } else { num / den };
    signal.iter().enumerate().map(|(i, &y)| y - (mean_y + slope * (i as f64 - mean_x))).collect()
}

/// Band-limits a signal to `[0, cutoff_hz]` with a zero-phase Butterworth
/// low-pass, the paper's pre-evaluation conditioning.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] unless `0 < cutoff_hz < fs/2`.
pub fn band_limit(signal: &[f64], fs: f64, cutoff_hz: f64) -> Result<Vec<f64>> {
    let biquad = Biquad::butterworth_low_pass(fs, cutoff_hz)?;
    Ok(biquad.apply_zero_phase(signal))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin()).collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn low_pass_passes_low_and_rejects_high() {
        let fs = 100.0;
        let f = FirFilter::low_pass(fs, 5.0, 101).unwrap();
        let low = f.apply_zero_phase(&tone(fs, 1.0, 2000));
        let high = f.apply_zero_phase(&tone(fs, 20.0, 2000));
        assert!(rms(&low[200..1800]) > 0.65);
        assert!(rms(&high[200..1800]) < 0.01);
    }

    #[test]
    fn high_pass_is_complementary() {
        let fs = 100.0;
        let f = FirFilter::high_pass(fs, 5.0, 101).unwrap();
        let low = f.apply_zero_phase(&tone(fs, 1.0, 2000));
        let high = f.apply_zero_phase(&tone(fs, 20.0, 2000));
        assert!(rms(&low[200..1800]) < 0.05);
        assert!(rms(&high[200..1800]) > 0.65);
    }

    #[test]
    fn band_pass_selects_middle_band() {
        let fs = 100.0;
        let f = FirFilter::band_pass(fs, 2.0, 10.0, 101).unwrap();
        let below = f.apply_zero_phase(&tone(fs, 0.3, 3000));
        let inside = f.apply_zero_phase(&tone(fs, 5.0, 3000));
        let above = f.apply_zero_phase(&tone(fs, 25.0, 3000));
        assert!(rms(&inside[500..2500]) > 0.6);
        assert!(rms(&below[500..2500]) < 0.1);
        assert!(rms(&above[500..2500]) < 0.02);
    }

    #[test]
    fn zero_phase_fir_has_no_delay() {
        let fs = 100.0;
        let f = FirFilter::low_pass(fs, 10.0, 101).unwrap();
        let x = tone(fs, 2.0, 2000);
        let y = f.apply_zero_phase(&x);
        assert_eq!(y.len(), x.len());
        // Cross-correlate at small lags: the peak must be at lag 0.
        let score = |lag: isize| -> f64 {
            let mut s = 0.0;
            for (i, &xi) in x.iter().enumerate().take(1800).skip(200) {
                let j = (i as isize + lag) as usize;
                s += xi * y[j];
            }
            s
        };
        let zero = score(0);
        for lag in [-5isize, -2, 2, 5] {
            assert!(zero >= score(lag), "delay detected at lag {lag}");
        }
    }

    #[test]
    fn fir_magnitude_response_matches_behavior() {
        let fs = 100.0;
        let f = FirFilter::low_pass(fs, 5.0, 101).unwrap();
        assert!(f.magnitude_at(fs, 0.5) > 0.95);
        assert!(f.magnitude_at(fs, 20.0) < 0.01);
    }

    #[test]
    fn biquad_low_pass_attenuates_high_frequencies() {
        let fs = 100.0;
        let bq = Biquad::butterworth_low_pass(fs, 5.0).unwrap();
        let low = bq.apply_zero_phase(&tone(fs, 1.0, 2000));
        let high = bq.apply_zero_phase(&tone(fs, 30.0, 2000));
        assert!(rms(&low[200..1800]) > 0.65);
        assert!(rms(&high[200..1800]) < 0.02);
    }

    #[test]
    fn biquad_high_pass_removes_dc() {
        let fs = 100.0;
        let bq = Biquad::butterworth_high_pass(fs, 0.5).unwrap();
        let x: Vec<f64> = tone(fs, 3.0, 2000).iter().map(|v| v + 10.0).collect();
        let y = bq.apply_zero_phase(&x);
        let mean = y[200..1800].iter().sum::<f64>() / 1600.0;
        assert!(mean.abs() < 0.05, "residual DC {mean}");
        assert!(rms(&y[200..1800]) > 0.6);
    }

    #[test]
    fn convolution_fft_matches_direct() {
        let a: Vec<f64> = (0..257).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let b: Vec<f64> = (0..64).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let direct = convolve_full(&a, &b);
        let fast = fft_convolve(&a, &b);
        assert_eq!(direct.len(), fast.len());
        for (x, y) in direct.iter().zip(&fast) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn moving_average_flattens_oscillation_keeps_dc() {
        let fs = 100.0;
        let x: Vec<f64> = tone(fs, 2.0, 1000).iter().map(|v| v + 3.0).collect();
        let dc = moving_average(&x, 51); // ≈ one 2 Hz period + 1
        for &v in &dc[100..900] {
            assert!((v - 3.0).abs() < 0.05, "dc {v}");
        }
    }

    #[test]
    fn detrend_removes_linear_ramp() {
        let x: Vec<f64> = (0..100).map(|i| 0.5 * i as f64 + 2.0).collect();
        let y = detrend(&x);
        assert!(rms(&y) < 1e-9);
    }

    #[test]
    fn band_limit_keeps_in_band_content() {
        let fs = 100.0;
        let x = tone(fs, 3.0, 2000);
        let y = band_limit(&x, fs, 12.0).unwrap();
        assert!(rms(&y[200..1800]) > 0.68);
    }

    #[test]
    fn design_rejects_invalid_cutoffs() {
        assert!(FirFilter::low_pass(100.0, 0.0, 11).is_err());
        assert!(FirFilter::low_pass(100.0, 60.0, 11).is_err());
        assert!(FirFilter::band_pass(100.0, 10.0, 5.0, 11).is_err());
        assert!(Biquad::butterworth_low_pass(100.0, 50.0).is_err());
    }

    #[test]
    fn empty_signal_passes_through() {
        let f = FirFilter::low_pass(100.0, 5.0, 11).unwrap();
        assert!(f.apply_zero_phase(&[]).is_empty());
        let bq = Biquad::butterworth_low_pass(100.0, 5.0).unwrap();
        assert!(bq.apply_zero_phase(&[]).is_empty());
    }
}
