//! Local-extremum detection, used by EMD's sifting step and by the
//! autocorrelation-based fundamental-frequency tracker.

/// Indices of strict local maxima (`x[i-1] < x[i] > x[i+1]`), with plateau
/// handling: the centre of a flat top counts once.
pub fn local_maxima(x: &[f64]) -> Vec<usize> {
    extrema(x, true)
}

/// Indices of strict local minima.
pub fn local_minima(x: &[f64]) -> Vec<usize> {
    extrema(x, false)
}

fn extrema(x: &[f64], maxima: bool) -> Vec<usize> {
    let n = x.len();
    let mut out = Vec::new();
    if n < 3 {
        return out;
    }
    let better = |a: f64, b: f64| if maxima { a > b } else { a < b };
    let mut i = 1;
    while i < n - 1 {
        if better(x[i], x[i - 1]) {
            // Walk over a possible plateau.
            let start = i;
            while i < n - 1 && x[i + 1] == x[i] {
                i += 1;
            }
            if i < n - 1 && better(x[i], x[i + 1]) {
                out.push((start + i) / 2);
            }
        }
        i += 1;
    }
    out
}

/// Largest local maximum in `x[lo..hi]` subject to a minimum height;
/// returns its index.
pub fn dominant_peak(x: &[f64], lo: usize, hi: usize, min_height: f64) -> Option<usize> {
    let hi = hi.min(x.len());
    if lo >= hi {
        return None;
    }
    local_maxima(&x[lo..hi])
        .into_iter()
        .map(|i| i + lo)
        .filter(|&i| x[i] >= min_height)
        .max_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap_or(std::cmp::Ordering::Equal))
}

/// Peak picking with a minimum separation: greedy selection of the highest
/// peaks such that chosen indices are at least `min_distance` apart.
pub fn peaks_with_distance(x: &[f64], min_distance: usize) -> Vec<usize> {
    let mut candidates = local_maxima(x);
    candidates.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut chosen: Vec<usize> = Vec::new();
    for c in candidates {
        if chosen.iter().all(|&p| p.abs_diff(c) >= min_distance) {
            chosen.push(c);
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_maxima_and_minima_of_sine() {
        let x: Vec<f64> =
            (0..200).map(|i| (2.0 * std::f64::consts::PI * i as f64 / 50.0).sin()).collect();
        let maxima = local_maxima(&x);
        let minima = local_minima(&x);
        assert_eq!(maxima.len(), 4);
        assert_eq!(minima.len(), 4);
        // First maximum near sample 12.5, first minimum near 37.5.
        assert!(maxima[0].abs_diff(12) <= 1);
        assert!(minima[0].abs_diff(37) <= 1);
    }

    #[test]
    fn plateau_counts_once() {
        let x = [0.0, 1.0, 1.0, 1.0, 0.0];
        assert_eq!(local_maxima(&x), vec![2]);
    }

    #[test]
    fn endpoints_are_not_extrema() {
        let x = [5.0, 1.0, 4.0];
        assert_eq!(local_maxima(&x), Vec::<usize>::new());
        assert_eq!(local_minima(&x), vec![1]);
    }

    #[test]
    fn dominant_peak_respects_bounds_and_height() {
        let x = [0.0, 3.0, 0.0, 5.0, 0.0, 1.0, 0.0];
        assert_eq!(dominant_peak(&x, 0, 7, 0.5), Some(3));
        assert_eq!(dominant_peak(&x, 0, 3, 0.5), Some(1));
        assert_eq!(dominant_peak(&x, 4, 7, 2.0), None);
    }

    #[test]
    fn min_distance_suppresses_nearby_peaks() {
        let x = [0.0, 2.0, 0.0, 1.9, 0.0, 0.0, 0.0, 3.0, 0.0];
        let p = peaks_with_distance(&x, 4);
        assert_eq!(p, vec![1, 7]);
    }

    #[test]
    fn short_input_has_no_extrema() {
        assert!(local_maxima(&[1.0, 2.0]).is_empty());
        assert!(local_minima(&[]).is_empty());
    }
}
