//! Sliding median filters over 1-D signals and across spectrogram frames.
//!
//! REPET builds its repeating-background model by taking medians across
//! frames spaced one repeating period apart; the helpers here serve that and
//! general robust smoothing.

use crate::stats::median;

/// Sliding-window median of width `len` (forced odd), edge-truncated: near
/// the boundaries the window shrinks rather than padding.
pub fn median_filter(x: &[f64], len: usize) -> Vec<f64> {
    if x.is_empty() || len <= 1 {
        return x.to_vec();
    }
    let len = if len % 2 == 0 { len + 1 } else { len };
    let half = len / 2;
    let n = x.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            median(&x[lo..hi]).unwrap_or(x[i])
        })
        .collect()
}

/// Median across a set of equal-length rows, elementwise.
///
/// Returns an empty vector if `rows` is empty.
///
/// # Panics
///
/// Panics if the rows have differing lengths.
pub fn median_across(rows: &[&[f64]]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let width = rows[0].len();
    for r in rows {
        assert_eq!(r.len(), width, "rows must have equal lengths");
    }
    let mut scratch = Vec::with_capacity(rows.len());
    (0..width)
        .map(|j| {
            scratch.clear();
            scratch.extend(rows.iter().map(|r| r[j]));
            median(&scratch).expect("non-empty scratch")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_filter_removes_impulse_noise() {
        let mut x = vec![1.0; 20];
        x[7] = 100.0;
        x[13] = -50.0;
        let y = median_filter(&x, 3);
        assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn median_filter_preserves_constant_signal() {
        let x = vec![3.5; 10];
        assert_eq!(median_filter(&x, 5), x);
    }

    #[test]
    fn median_filter_window_of_one_is_identity() {
        let x = vec![1.0, 9.0, 2.0];
        assert_eq!(median_filter(&x, 1), x);
    }

    #[test]
    fn median_across_rows() {
        let r1 = [1.0, 10.0, 3.0];
        let r2 = [2.0, 20.0, 1.0];
        let r3 = [3.0, 30.0, 2.0];
        let m = median_across(&[&r1, &r2, &r3]);
        assert_eq!(m, vec![2.0, 20.0, 2.0]);
    }

    #[test]
    fn median_across_empty_is_empty() {
        assert!(median_across(&[]).is_empty());
    }

    #[test]
    fn even_window_is_forced_to_next_odd() {
        let x: Vec<f64> = (0..25).map(|i| ((i * 17) % 11) as f64).collect();
        assert_eq!(median_filter(&x, 4), median_filter(&x, 5));
        assert_eq!(median_filter(&x, 6), median_filter(&x, 7));
    }

    #[test]
    fn odd_window_matches_manual_medians() {
        let x = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        // Width 3, edge-truncated: [med(5,1), med(5,1,4), med(1,4,2),
        // med(4,2,3), med(2,3)].
        assert_eq!(median_filter(&x, 3), vec![3.0, 4.0, 2.0, 3.0, 2.5]);
    }

    #[test]
    fn constant_input_is_fixed_point_for_any_window() {
        let x = vec![-2.25; 17];
        for len in [1usize, 2, 3, 4, 5, 8, 17, 40] {
            assert_eq!(median_filter(&x, len), x, "window {len}");
        }
    }

    #[test]
    fn window_larger_than_signal_degrades_to_global_medians() {
        let x = vec![1.0, 2.0, 100.0];
        // Width forced to 41; every edge-truncated window spans the whole
        // signal, so each output is the global median.
        assert_eq!(median_filter(&x, 40), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn even_and_odd_sample_counts_in_median_across() {
        let r1 = [1.0, 8.0];
        let r2 = [3.0, 2.0];
        // Even row count: mean of the two central values.
        assert_eq!(median_across(&[&r1, &r2]), vec![2.0, 5.0]);
        let r3 = [10.0, 4.0];
        assert_eq!(median_across(&[&r1, &r2, &r3]), vec![3.0, 4.0]);
    }
}
