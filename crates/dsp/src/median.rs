//! Sliding median filters over 1-D signals, 2-D images, and across
//! spectrogram frames.
//!
//! REPET builds its repeating-background model by taking medians across
//! frames spaced one repeating period apart; harmonic–percussive source
//! separation (HPSS) median-filters the magnitude spectrogram along time
//! and along frequency. The helpers here serve both and general robust
//! smoothing.

use crate::stats::median;

/// Sliding-window median of width `len` (forced odd), edge-truncated: near
/// the boundaries the window shrinks rather than padding.
pub fn median_filter(x: &[f64], len: usize) -> Vec<f64> {
    if x.is_empty() || len <= 1 {
        return x.to_vec();
    }
    let len = if len % 2 == 0 { len + 1 } else { len };
    let half = len / 2;
    let n = x.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            median(&x[lo..hi]).unwrap_or(x[i])
        })
        .collect()
}

/// Elementwise sliding median over an edge-clamped `k_rows × k_cols`
/// window of a row-major `rows × cols` image, written into `out`.
///
/// Window dimensions are forced odd (like [`median_filter`]); near the
/// borders the window shrinks to its in-bounds intersection rather than
/// padding, so edge medians are taken over fewer elements — matching the
/// 1-D filter's edge-truncation semantics exactly when one dimension
/// is 1. `out` and `scratch` are reused between calls, so steady state
/// allocates nothing once their capacity has grown to the image size.
///
/// The median itself selects order statistics (no averaging except the
/// even-count midpoint), so results equal a sort-based reference exactly.
///
/// # Panics
///
/// Panics if `img.len() != rows * cols`.
pub fn median_filter_2d_into(
    img: &[f64],
    rows: usize,
    cols: usize,
    k_rows: usize,
    k_cols: usize,
    out: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    assert_eq!(img.len(), rows * cols, "image shape mismatch: {} != {rows}x{cols}", img.len());
    out.clear();
    out.reserve(img.len());
    let kr = k_rows.max(1) | 1;
    let kc = k_cols.max(1) | 1;
    if kr == 1 && kc == 1 {
        out.extend_from_slice(img);
        return;
    }
    let (hr, hc) = (kr / 2, kc / 2);
    for r in 0..rows {
        let r_lo = r.saturating_sub(hr);
        let r_hi = (r + hr + 1).min(rows);
        for c in 0..cols {
            let c_lo = c.saturating_sub(hc);
            let c_hi = (c + hc + 1).min(cols);
            scratch.clear();
            for rr in r_lo..r_hi {
                scratch.extend_from_slice(&img[rr * cols + c_lo..rr * cols + c_hi]);
            }
            out.push(median_select(scratch));
        }
    }
}

/// Allocating convenience wrapper around [`median_filter_2d_into`].
pub fn median_filter_2d(
    img: &[f64],
    rows: usize,
    cols: usize,
    k_rows: usize,
    k_cols: usize,
) -> Vec<f64> {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    median_filter_2d_into(img, rows, cols, k_rows, k_cols, &mut out, &mut scratch);
    out
}

/// Median by selection instead of a full sort: the same order statistics
/// [`median`] reads off a sorted copy, at O(n) average. Reorders `v`.
fn median_select(v: &mut [f64]) -> f64 {
    debug_assert!(!v.is_empty(), "median of an empty window");
    let n = v.len();
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
    if n % 2 == 1 {
        *v.select_nth_unstable_by(n / 2, cmp).1
    } else {
        let (left, hi, _) = v.select_nth_unstable_by(n / 2, cmp);
        let lo = left.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lo + *hi)
    }
}

/// Median across a set of equal-length rows, elementwise.
///
/// Returns an empty vector if `rows` is empty.
///
/// # Panics
///
/// Panics if the rows have differing lengths.
pub fn median_across(rows: &[&[f64]]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let width = rows[0].len();
    for r in rows {
        assert_eq!(r.len(), width, "rows must have equal lengths");
    }
    let mut scratch = Vec::with_capacity(rows.len());
    (0..width)
        .map(|j| {
            scratch.clear();
            scratch.extend(rows.iter().map(|r| r[j]));
            median(&scratch).expect("non-empty scratch")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_filter_removes_impulse_noise() {
        let mut x = vec![1.0; 20];
        x[7] = 100.0;
        x[13] = -50.0;
        let y = median_filter(&x, 3);
        assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn median_filter_preserves_constant_signal() {
        let x = vec![3.5; 10];
        assert_eq!(median_filter(&x, 5), x);
    }

    #[test]
    fn median_filter_window_of_one_is_identity() {
        let x = vec![1.0, 9.0, 2.0];
        assert_eq!(median_filter(&x, 1), x);
    }

    #[test]
    fn median_across_rows() {
        let r1 = [1.0, 10.0, 3.0];
        let r2 = [2.0, 20.0, 1.0];
        let r3 = [3.0, 30.0, 2.0];
        let m = median_across(&[&r1, &r2, &r3]);
        assert_eq!(m, vec![2.0, 20.0, 2.0]);
    }

    #[test]
    fn median_across_empty_is_empty() {
        assert!(median_across(&[]).is_empty());
    }

    #[test]
    fn even_window_is_forced_to_next_odd() {
        let x: Vec<f64> = (0..25).map(|i| ((i * 17) % 11) as f64).collect();
        assert_eq!(median_filter(&x, 4), median_filter(&x, 5));
        assert_eq!(median_filter(&x, 6), median_filter(&x, 7));
    }

    #[test]
    fn odd_window_matches_manual_medians() {
        let x = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        // Width 3, edge-truncated: [med(5,1), med(5,1,4), med(1,4,2),
        // med(4,2,3), med(2,3)].
        assert_eq!(median_filter(&x, 3), vec![3.0, 4.0, 2.0, 3.0, 2.5]);
    }

    #[test]
    fn constant_input_is_fixed_point_for_any_window() {
        let x = vec![-2.25; 17];
        for len in [1usize, 2, 3, 4, 5, 8, 17, 40] {
            assert_eq!(median_filter(&x, len), x, "window {len}");
        }
    }

    #[test]
    fn window_larger_than_signal_degrades_to_global_medians() {
        let x = vec![1.0, 2.0, 100.0];
        // Width forced to 41; every edge-truncated window spans the whole
        // signal, so each output is the global median.
        assert_eq!(median_filter(&x, 40), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn median_2d_single_row_matches_1d_filter() {
        let x: Vec<f64> = (0..31).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        for k in [1usize, 3, 4, 7, 40] {
            assert_eq!(median_filter_2d(&x, 1, x.len(), 1, k), median_filter(&x, k), "k={k}");
        }
    }

    #[test]
    fn median_2d_single_column_matches_1d_filter() {
        let x: Vec<f64> = (0..23).map(|i| ((i * 19) % 11) as f64).collect();
        assert_eq!(median_filter_2d(&x, x.len(), 1, 5, 1), median_filter(&x, 5));
    }

    #[test]
    fn median_2d_removes_salt_and_pepper() {
        let (rows, cols) = (8, 9);
        let mut img = vec![2.0; rows * cols];
        img[2 * cols + 3] = 100.0;
        img[5 * cols + 7] = -40.0;
        let y = median_filter_2d(&img, rows, cols, 3, 3);
        assert!(y.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn median_2d_identity_kernel_copies() {
        let img: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(median_filter_2d(&img, 3, 4, 1, 1), img);
    }

    #[test]
    fn median_2d_matches_naive_gather_sort() {
        // Exhaustive check on a small image against the obvious
        // gather-and-sort reference, covering corner/edge clamping.
        let (rows, cols) = (5, 6);
        let img: Vec<f64> = (0..rows * cols).map(|i| (((i * 29) % 13) as f64) - 6.0).collect();
        for (kr, kc) in [(3, 3), (1, 5), (5, 1), (3, 7), (9, 9)] {
            let got = median_filter_2d(&img, rows, cols, kr, kc);
            let (hr, hc) = (kr / 2, kc / 2);
            for r in 0..rows {
                for c in 0..cols {
                    let mut win = Vec::new();
                    for rr in r.saturating_sub(hr)..(r + hr + 1).min(rows) {
                        for cc in c.saturating_sub(hc)..(c + hc + 1).min(cols) {
                            win.push(img[rr * cols + cc]);
                        }
                    }
                    let want = median(&win).unwrap();
                    assert_eq!(got[r * cols + c], want, "({r},{c}) kernel {kr}x{kc}");
                }
            }
        }
    }

    #[test]
    fn median_2d_reuses_buffers_without_allocating() {
        let img = vec![1.0; 4 * 4];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        median_filter_2d_into(&img, 4, 4, 3, 3, &mut out, &mut scratch);
        let (cap_o, cap_s) = (out.capacity(), scratch.capacity());
        median_filter_2d_into(&img, 4, 4, 3, 3, &mut out, &mut scratch);
        assert_eq!(out.capacity(), cap_o);
        assert_eq!(scratch.capacity(), cap_s);
    }

    #[test]
    fn even_and_odd_sample_counts_in_median_across() {
        let r1 = [1.0, 8.0];
        let r2 = [3.0, 2.0];
        // Even row count: mean of the two central values.
        assert_eq!(median_across(&[&r1, &r2]), vec![2.0, 5.0]);
        let r3 = [10.0, 4.0];
        assert_eq!(median_across(&[&r1, &r2, &r3]), vec![3.0, 4.0]);
    }
}
