//! The SIMD bit-identity invariant (property tests): every kernel in
//! [`dhf_dsp::simd`] must return **bit-identical** results at every
//! dispatch level the host can run — scalar, SSE2, AVX2, NEON — for any
//! input values and any length, including every tail residue
//! `len % 4 ∈ {0, 1, 2, 3}` (the widest lane is four `f64`s, so the
//! residue decides how much remainder handling runs).
//!
//! This is the contract that lets runtime dispatch (and the
//! `DHF_FORCE_SCALAR` escape hatch) change *which instructions execute*
//! without ever changing results — the serving determinism invariant in
//! `dhf_serve` builds directly on it.

use dhf_dsp::simd::{self, Level};
use dhf_dsp::Complex;
use proptest::prelude::*;
use std::sync::Mutex;

/// The dispatch override is process-global, so tests that pin it must not
/// interleave (results would still agree — that is the very invariant —
/// but each test's claimed level coverage would not be trustworthy).
static DISPATCH: Mutex<()> = Mutex::new(());

/// Levels this host can actually run: an override above the detected
/// capability is clamped, so requesting each level and reading back the
/// active one enumerates exactly the runnable set.
fn available_levels() -> Vec<Level> {
    let mut out = Vec::new();
    for l in [Level::Scalar, Level::Sse2, Level::Avx2, Level::Neon] {
        simd::set_dispatch_override(Some(l));
        if simd::active_level() == l {
            out.push(l);
        }
    }
    simd::set_dispatch_override(None);
    out
}

/// Restores auto dispatch even if an assertion unwinds mid-test.
struct AutoDispatch;
impl Drop for AutoDispatch {
    fn drop(&mut self) {
        simd::set_dispatch_override(None);
    }
}

/// Deterministic value stream from a drawn seed: finite values spanning
/// signs and magnitudes, with exact `0.0`/`-0.0` sprinkled in (the bit
/// comparison distinguishes the two zeros).
fn values(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    (0..n)
        .map(|_| {
            let r = next();
            match r % 16 {
                0 => 0.0,
                1 => -0.0,
                2 => 1e-300 * (1.0 + (r >> 32) as f64),
                3 => -3.5e300 * ((r >> 32) as f64 / 4294967296.0),
                4..=7 => ((r >> 11) as f64 / (1u64 << 53) as f64) * 2e9 - 1e9,
                _ => ((r >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0,
            }
        })
        .collect()
}

fn complex_values(seed: u64, n: usize) -> Vec<Complex> {
    values(seed, 2 * n).chunks_exact(2).map(|p| Complex::new(p[0], p[1])).collect()
}

fn bits(a: &[f64]) -> Vec<u64> {
    a.iter().map(|v| v.to_bits()).collect()
}

fn cbits(a: &[Complex]) -> Vec<u64> {
    a.iter().flat_map(|c| [c.re.to_bits(), c.im.to_bits()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Elementwise and reduction kernels over real planes. The length is
    /// built as `4·q + r` with the residue drawn uniformly, so every
    /// tail shape is exercised by construction.
    #[test]
    fn plane_kernels_are_bit_identical_across_levels(
        q in 0usize..24,
        r in 0usize..4,
        seed in 1u64..u64::MAX,
        scale in -1e6f64..1e6,
    ) {
        let n = 4 * q + r;
        let a = values(seed, n);
        let b = values(seed.rotate_left(17) ^ 0xabcd, n);
        let acc0 = values(seed.rotate_left(39) ^ 0x1234, n);

        let _guard = DISPATCH.lock().unwrap();
        let _auto = AutoDispatch;
        // Scalar reference results, computed once through the public
        // reference module (the semantic source of truth).
        let mut want_mul = vec![0.0; n];
        simd::scalar::mul_into(&mut want_mul, &a, &b);
        let mut want_mul_add = acc0.clone();
        simd::scalar::mul_add_in_place(&mut want_mul_add, &a, &b);
        let mut want_add = acc0.clone();
        simd::scalar::add_in_place(&mut want_add, &a);
        let mut want_sub = acc0.clone();
        simd::scalar::sub_in_place(&mut want_sub, &a);
        let mut want_scale = acc0.clone();
        simd::scalar::scale_in_place(&mut want_scale, scale);
        let mut want_mag = vec![0.0; n];
        simd::scalar::magnitude_into(&mut want_mag, &a, &b);
        let want_sum = simd::scalar::sum_sq(&a);
        let want_sum2 = simd::scalar::sum_sq2(&a, &b);

        for level in available_levels() {
            simd::set_dispatch_override(Some(level));
            let mut out = vec![0.0; n];
            simd::mul_into(&mut out, &a, &b);
            prop_assert_eq!(bits(&out), bits(&want_mul), "mul_into at {} (n {})", level, n);

            let mut buf = a.clone();
            simd::mul_in_place(&mut buf, &b);
            prop_assert_eq!(bits(&buf), bits(&want_mul), "mul_in_place at {}", level);

            let mut buf = acc0.clone();
            simd::mul_add_in_place(&mut buf, &a, &b);
            prop_assert_eq!(bits(&buf), bits(&want_mul_add), "mul_add at {}", level);

            let mut buf = acc0.clone();
            simd::add_in_place(&mut buf, &a);
            prop_assert_eq!(bits(&buf), bits(&want_add), "add at {}", level);

            let mut buf = acc0.clone();
            simd::sub_in_place(&mut buf, &a);
            prop_assert_eq!(bits(&buf), bits(&want_sub), "sub at {}", level);

            let mut buf = acc0.clone();
            simd::scale_in_place(&mut buf, scale);
            prop_assert_eq!(bits(&buf), bits(&want_scale), "scale at {}", level);

            let mut out = vec![0.0; n];
            simd::magnitude_into(&mut out, &a, &b);
            prop_assert_eq!(bits(&out), bits(&want_mag), "magnitude at {}", level);

            prop_assert_eq!(
                simd::sum_sq(&a).to_bits(), want_sum.to_bits(),
                "sum_sq at {} (n {})", level, n
            );
            prop_assert_eq!(
                simd::sum_sq2(&a, &b).to_bits(), want_sum2.to_bits(),
                "sum_sq2 at {} (n {})", level, n
            );
        }
    }

    /// Complex kernels: butterfly stages, pointwise complex multiplies
    /// (plain and conjugated), and both split-twiddle real-FFT combines.
    /// `m` sweeps past several multiples of the lane width so the vector
    /// loop, the scalar edge bins, and the odd-leftover paths all run.
    #[test]
    fn complex_kernels_are_bit_identical_across_levels(
        half_log in 0u32..6,
        blocks in 1usize..4,
        flags in 0usize..4,
        m in 1usize..34,
        seed in 1u64..u64::MAX,
    ) {
        let (inverse, conj) = (flags & 1 != 0, flags & 2 != 0);
        let half = 1usize << half_log;
        let n = 2 * half * blocks;
        let buf0 = complex_values(seed, n);
        let tw: Vec<Complex> = (0..half)
            .map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / half as f64))
            .collect();
        let z = complex_values(seed ^ 0x5555, m);
        let b = complex_values(seed.rotate_left(23) ^ 0x9999, m);
        let split_tw: Vec<Complex> = (0..=m)
            .map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / m as f64))
            .collect();

        let _guard = DISPATCH.lock().unwrap();
        let _auto = AutoDispatch;
        let mut want_stage = buf0.clone();
        simd::scalar::radix2_stage(&mut want_stage, &tw, half, inverse);
        let mut want_cmul = vec![Complex::ZERO; m];
        simd::scalar::cmul_into(&mut want_cmul, &z, &b, conj);
        let (mut want_re, mut want_im) = (vec![0.0; m + 1], vec![0.0; m + 1]);
        simd::scalar::real_split_combine_soa(&z, &split_tw, &mut want_re, &mut want_im);
        let mut want_aos = vec![Complex::ZERO; m + 1];
        simd::scalar::real_split_combine_aos(&z, &split_tw, &mut want_aos);

        for level in available_levels() {
            simd::set_dispatch_override(Some(level));
            let mut buf = buf0.clone();
            simd::radix2_stage(&mut buf, &tw, half, inverse);
            prop_assert_eq!(
                cbits(&buf), cbits(&want_stage),
                "radix2_stage at {} (half {}, blocks {})", level, half, blocks
            );

            let mut out = vec![Complex::ZERO; m];
            simd::cmul_into(&mut out, &z, &b, conj);
            prop_assert_eq!(cbits(&out), cbits(&want_cmul), "cmul_into at {}", level);

            let mut acc = z.clone();
            simd::cmul_in_place(&mut acc, &b, conj);
            prop_assert_eq!(cbits(&acc), cbits(&want_cmul), "cmul_in_place at {}", level);

            let (mut re, mut im) = (vec![0.0; m + 1], vec![0.0; m + 1]);
            simd::real_split_combine_soa(&z, &split_tw, &mut re, &mut im);
            prop_assert_eq!(bits(&re), bits(&want_re), "combine re at {} (m {})", level, m);
            prop_assert_eq!(bits(&im), bits(&want_im), "combine im at {} (m {})", level, m);

            let mut out = vec![Complex::ZERO; m + 1];
            simd::real_split_combine_aos(&z, &split_tw, &mut out);
            prop_assert_eq!(cbits(&out), cbits(&want_aos), "combine aos at {} (m {})", level, m);
        }
    }

    /// The whole-transform view: a packed real FFT and its inverse must
    /// come out bit-identical whichever level ran them (the transforms
    /// chain every kernel above, so this catches any level-dependent
    /// re-association the per-kernel tests might miss).
    #[test]
    fn fft_outputs_are_bit_identical_across_levels(
        n_log in 1u32..9,
        seed in 1u64..u64::MAX,
    ) {
        let n = 1usize << n_log;
        let signal = values(seed, n);
        let _guard = DISPATCH.lock().unwrap();
        let _auto = AutoDispatch;

        let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
        for level in available_levels() {
            simd::set_dispatch_override(Some(level));
            let spec = dhf_dsp::fft::fft_real(&signal);
            let back = dhf_dsp::fft::ifft_real(&spec, n);
            let got = (cbits(&spec), bits(&back));
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    prop_assert_eq!(&got.0, &want.0, "rfft spectrum at {} (n {})", level, n);
                    prop_assert_eq!(&got.1, &want.1, "irfft round trip at {} (n {})", level, n);
                }
            }
        }
    }
}
