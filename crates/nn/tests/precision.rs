//! The f32 accuracy budget: the production `f32` deep prior must track the
//! `f64` reference instantiation through a full in-painting fit.
//!
//! Both networks are built from the same seed — random initialization is
//! always drawn in `f32` and widened (see `dhf_tensor::Scalar`), so the two
//! runs start from identical weights and every divergence measured here is
//! attributable to arithmetic precision alone.

use dhf_nn::{DeepPriorNet, NetConfig, WarmFitParams};
use dhf_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BINS: usize = 16;
const FRAMES: usize = 12;

/// A harmonic-ridge in-painting task: constant bright row at bin 4,
/// hidden in frames 5..7 (the scenario from the nn unit tests, scored
/// here across precisions instead of against background).
fn target_and_mask<S: dhf_tensor::Scalar>() -> (Tensor<S>, Tensor<S>) {
    let mut t = Tensor::filled(&[1, BINS, FRAMES], S::from_f32(0.1));
    for fr in 0..FRAMES {
        t.data_mut()[4 * FRAMES + fr] = S::from_f32(0.8);
    }
    let mut mask = Tensor::filled(&[1, BINS, FRAMES], S::ONE);
    for fr in 5..7 {
        for b in 0..BINS {
            mask.data_mut()[b * FRAMES + fr] = S::ZERO;
        }
    }
    (t, mask)
}

fn fitted<S: dhf_tensor::Scalar>(iterations: usize) -> DeepPriorNet<S> {
    let cfg = NetConfig::default();
    let mut rng = StdRng::seed_from_u64(42);
    let mut net: DeepPriorNet<S> = DeepPriorNet::new(&cfg, BINS, FRAMES, &mut rng).unwrap();
    let (t, mask) = target_and_mask::<S>();
    net.fit(&t, &mask, iterations, 0.02);
    net
}

#[test]
fn f32_fit_tracks_the_f64_reference_within_budget() {
    const ITERS: usize = 120; // the FAST production budget
    let narrow = fitted::<f32>(ITERS);
    let wide = fitted::<f64>(ITERS);

    let out32 = narrow.output_image();
    let out64 = wide.output_image();
    assert_eq!(out32.shape(), out64.shape());

    // Elementwise budget over the whole image (magnitudes live in [0, 1]
    // behind the sigmoid head). Measured max gap on this seed: 2.2e-5
    // after 120 coupled optimization steps; budget 1e-3 leaves ~50x
    // headroom for toolchain-to-toolchain libm drift.
    let max_gap = out32
        .data()
        .iter()
        .zip(out64.data())
        .map(|(&a, &b)| (f64::from(a) - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_gap < 1e-3, "f32 output drifted {max_gap:.2e} from the f64 reference");

    // The in-painted (hidden) ridge cells — the quantity the pipeline
    // consumes — agree to the same budget.
    for fr in 5..7 {
        let a = f64::from(out32.data()[4 * FRAMES + fr]);
        let b = out64.data()[4 * FRAMES + fr];
        assert!((a - b).abs() < 1e-3, "hidden ridge frame {fr}: f32 {a:.4} vs f64 {b:.4}");
    }

    // Converged losses agree in scale: the f32 path reaches the same
    // optimization basin, not a different one.
    let (l32, l64) = (f64::from(narrow.loss_value()), f64::from(wide.loss_value()));
    assert!(
        (l32 - l64).abs() < 0.25 * l64.max(1e-6),
        "final losses diverged: f32 {l32:.3e} vs f64 {l64:.3e}"
    );
}

#[test]
fn warm_fine_tune_preserves_the_budget_across_precisions() {
    // Cold-fit both precisions, then warm fine-tune each toward a
    // slightly decayed target — the streaming chunk-to-chunk scenario.
    let mut narrow = fitted::<f32>(120);
    let mut wide = fitted::<f64>(120);

    let (t32, m32) = target_and_mask::<f32>();
    let (t64, m64) = target_and_mask::<f64>();
    let next32 = t32.map(|v| v * 0.95);
    let next64 = t64.map(|v| v * 0.95);
    let params = WarmFitParams::default();
    let r32 = narrow.fit_warm(&next32, &m32, &params);
    let r64 = wide.fit_warm(&next64, &m64, &params);

    // Both precisions resume from the same captured optimum…
    let start_gap = (f64::from(r32.initial_loss) - f64::from(r64.initial_loss)).abs();
    assert!(
        start_gap < 0.25 * f64::from(r64.initial_loss).max(1e-6),
        "warm initial losses diverged: f32 {} vs f64 {}",
        r32.initial_loss,
        r64.initial_loss
    );
    // …and land within budget of each other after the fine-tune.
    let gap = (f64::from(r32.final_loss) - f64::from(r64.final_loss)).abs();
    assert!(
        gap < 0.25 * f64::from(r64.final_loss).max(1e-6),
        "warm final losses diverged: f32 {} vs f64 {}",
        r32.final_loss,
        r64.final_loss
    );
    let max_gap = narrow
        .output_image()
        .data()
        .iter()
        .zip(wide.output_image().data())
        .map(|(&a, &b)| (f64::from(a) - b).abs())
        .fold(0.0f64, f64::max);
    // Measured on this seed: 7.8e-5 (losses 1.49936e-3 vs 1.49939e-3).
    assert!(max_gap < 2e-3, "warm f32 output drifted {max_gap:.2e} from the f64 reference");
}
