//! The deep-prior network: a light U-Net fit to a single masked
//! spectrogram (paper §3.2–3.3).

use crate::blocks::{conv_block, project_out};
use crate::config::{NetConfig, OutputActivation, WarmFitParams};
use crate::NnError;
use dhf_tensor::{init, optim::Adam, Graph, Scalar, Tensor, VarId};
use rand::Rng;

/// Summary of one [`DeepPriorNet::fit`] or [`DeepPriorNet::fit_warm`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Masked-MSE loss before the first update.
    pub initial_loss: f32,
    /// Masked-MSE loss after the last update.
    pub final_loss: f32,
    /// Number of optimizer steps actually taken (for warm fits this can be
    /// below the configured cap when the loss plateaus early).
    pub iterations: usize,
}

/// A portable snapshot of a trained prior: every trainable parameter plus
/// the fixed noise code `z`, in graph order.
///
/// The noise code travels with the weights on purpose — a deep prior's
/// weights are tuned to *its* `z`; restoring one without the other lands
/// far from the captured optimum. Snapshots are stored at `f32` (the
/// serving precision) regardless of the precision they were captured from.
///
/// A `fingerprint` of the architecture (extents, channel plan, convolution
/// flavour) guards restores: [`DeepPriorNet::restore_weights`] refuses a
/// state captured from a structurally different network.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightState {
    fingerprint: u64,
    tensors: Vec<Tensor<f32>>,
}

impl WeightState {
    /// Architecture fingerprint this state was captured from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total number of scalars in the snapshot (parameters + noise code).
    pub fn numel(&self) -> usize {
        self.tensors.iter().map(Tensor::numel).sum()
    }

    /// Serializes to a little-endian byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize =
            self.tensors.iter().map(|t| 4 + 4 * t.shape().len() + 4 * t.numel()).sum();
        let mut out = Vec::with_capacity(12 + payload);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for t in &self.tensors {
            out.extend_from_slice(&(t.shape().len() as u32).to_le_bytes());
            for &d in t.shape() {
                out.extend_from_slice(&(d as u32).to_le_bytes());
            }
            for &v in t.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a stream produced by [`WeightState::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when the stream is truncated or a
    /// declared shape is inconsistent with the remaining payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NnError> {
        const TRUNCATED: NnError = NnError::BadConfig("weight state bytes truncated");
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], NnError> {
            let end = pos.checked_add(n).ok_or(TRUNCATED)?;
            let slice = bytes.get(pos..end).ok_or(TRUNCATED)?;
            pos = end;
            Ok(slice)
        };
        let fingerprint = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let mut tensors = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            if rank > 8 {
                return Err(NnError::BadConfig("weight state tensor rank out of range"));
            }
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize);
            }
            let numel: usize = shape.iter().product();
            let raw = take(4 * numel)?;
            let data = raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap()));
            tensors.push(Tensor::from_vec(&shape, data.collect()));
        }
        if pos != bytes.len() {
            return Err(NnError::BadConfig("weight state bytes have trailing garbage"));
        }
        Ok(WeightState { fingerprint, tensors })
    }
}

/// A U-Net deep prior over a single `[1, F, T]` magnitude image.
///
/// Construction follows the paper's Fig. 2: encoder levels of two
/// convolution blocks followed by **time-only** average pooling, a
/// bottleneck block, and decoder levels of nearest upsampling, skip
/// concatenation, and one convolution block. Frequency pooling is attached
/// only when [`NetConfig::freq_pool`] is set (Zhang-baseline ablation).
///
/// The working precision is generic (default `f32`, the production path;
/// `f64` is the accuracy reference). Weight snapshots move through
/// [`WeightState`], enabling warm-started fine-tunes across streaming
/// chunks via [`DeepPriorNet::fit_warm`].
pub struct DeepPriorNet<S: Scalar = f32> {
    graph: Graph<S>,
    output: VarId,
    target: VarId,
    mask: VarId,
    loss: VarId,
    z: VarId,
    bins: usize,
    frames: usize,
    fingerprint: u64,
}

impl<S: Scalar> std::fmt::Debug for DeepPriorNet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepPriorNet")
            .field("bins", &self.bins)
            .field("frames", &self.frames)
            .field("params", &self.graph.param_count())
            .finish()
    }
}

impl<S: Scalar> DeepPriorNet<S> {
    /// Builds the network for a `bins × frames` spectrogram.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadExtent`] when `frames` (or `bins`, if
    /// frequency pooling is enabled) is not divisible by the pooling
    /// schedule, and [`NnError::BadConfig`] for degenerate configurations.
    pub fn new<R: Rng>(
        cfg: &NetConfig,
        bins: usize,
        frames: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if cfg.base_channels == 0 || cfg.in_channels == 0 {
            return Err(NnError::BadConfig("channel counts must be positive"));
        }
        let td = cfg.time_divisor();
        if frames % td != 0 || frames == 0 {
            return Err(NnError::BadExtent { axis: "time", extent: frames, divisor: td });
        }
        let fd = cfg.freq_divisor();
        if bins % fd != 0 || bins == 0 {
            return Err(NnError::BadExtent { axis: "freq", extent: bins, divisor: fd });
        }

        let mut g: Graph<S> = Graph::new();
        let z = g.input(init::noise_input(&[cfg.in_channels, bins, frames], cfg.z_std, rng));

        let mut x = z;
        let mut in_ch = cfg.in_channels;
        let mut skips: Vec<(VarId, usize)> = Vec::with_capacity(cfg.depth);
        // Encoder.
        for level in 0..cfg.depth {
            let ch = cfg.base_channels << level;
            x = conv_block(&mut g, x, in_ch, ch, &cfg.conv, cfg.relu_slope, rng);
            x = conv_block(&mut g, x, ch, ch, &cfg.conv, cfg.relu_slope, rng);
            skips.push((x, ch));
            x = g.avg_pool_time(x, 2);
            if let Some(fp) = cfg.freq_pool {
                x = g.max_pool_freq(x, fp);
            }
            in_ch = ch;
        }
        // Bottleneck.
        let bott_ch = cfg.base_channels << cfg.depth;
        x = conv_block(&mut g, x, in_ch, bott_ch, &cfg.conv, cfg.relu_slope, rng);
        in_ch = bott_ch;
        // Decoder.
        for level in (0..cfg.depth).rev() {
            x = g.upsample_time(x, 2);
            if let Some(fp) = cfg.freq_pool {
                x = g.upsample_freq(x, fp);
            }
            let (skip, skip_ch) = skips[level];
            x = g.concat(x, skip);
            let ch = cfg.base_channels << level;
            x = conv_block(&mut g, x, in_ch + skip_ch, ch, &cfg.conv, cfg.relu_slope, rng);
            in_ch = ch;
        }
        // Output projection + activation. The sigmoid head starts at the
        // configured background level so an undertrained prior cannot
        // flood hidden cells with mid-gray magnitude.
        let bias_init = match cfg.output {
            OutputActivation::Sigmoid => cfg.output_bias,
            _ => 0.0,
        };
        let proj = project_out(&mut g, x, in_ch, 1, bias_init, rng);
        let output = match cfg.output {
            OutputActivation::Sigmoid => g.sigmoid(proj),
            OutputActivation::LeakyRelu => g.leaky_relu(proj, 0.01),
            OutputActivation::Linear => proj,
        };

        let target = g.input(Tensor::zeros(&[1, bins, frames]));
        let mask = g.input(Tensor::zeros(&[1, bins, frames]));
        let loss = g.mse_masked(output, target, mask);

        let fingerprint = cfg.architecture_fingerprint(bins, frames);
        Ok(DeepPriorNet { graph: g, output, target, mask, loss, z, bins, frames, fingerprint })
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.graph.param_count()
    }

    /// Frequency bins the network was built for.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Time frames the network was built for.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Architecture fingerprint (see [`WeightState`]).
    pub fn weight_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Fits the prior to `target` under `mask` (1 = visible, 0 = hidden)
    /// with Adam for `iterations` steps.
    ///
    /// The loss only sees visible cells, so hidden cells are *in-painted*
    /// by the network's structural bias.
    ///
    /// # Panics
    ///
    /// Panics if `target`/`mask` are not `[1, bins, frames]`.
    pub fn fit(
        &mut self,
        target: &Tensor<S>,
        mask: &Tensor<S>,
        iterations: usize,
        lr: f32,
    ) -> TrainReport {
        assert_eq!(target.shape(), &[1, self.bins, self.frames], "target shape");
        assert_eq!(mask.shape(), &[1, self.bins, self.frames], "mask shape");
        self.graph.set_value(self.target, target.clone());
        self.graph.set_value(self.mask, mask.clone());
        let mut adam: Adam<S> = Adam::new(lr);
        self.graph.forward();
        let initial_loss = self.graph.value(self.loss).data()[0].to_f32();
        for _ in 0..iterations {
            self.graph.forward();
            self.graph.backward(self.loss);
            adam.step(&mut self.graph);
        }
        self.graph.forward();
        let final_loss = self.graph.value(self.loss).data()[0].to_f32();
        TrainReport { initial_loss, final_loss, iterations }
    }

    /// Fine-tunes the *current* weights toward a new target: at most
    /// `params.max_iterations` Adam steps, stopping early once the loss
    /// has failed to improve for `params.patience` consecutive steps.
    ///
    /// Unlike [`DeepPriorNet::fit`] this never re-initializes anything —
    /// it is the warm-start half of the streaming in-painter, where the
    /// previous chunk's converged prior is resumed on the next chunk's
    /// spectrogram. Optimizer moments are intentionally fresh per call
    /// (stale moments from a different target mislead more than they
    /// help).
    ///
    /// # Panics
    ///
    /// Panics if `target`/`mask` are not `[1, bins, frames]`.
    pub fn fit_warm(
        &mut self,
        target: &Tensor<S>,
        mask: &Tensor<S>,
        params: &WarmFitParams,
    ) -> TrainReport {
        assert_eq!(target.shape(), &[1, self.bins, self.frames], "target shape");
        assert_eq!(mask.shape(), &[1, self.bins, self.frames], "mask shape");
        self.graph.set_value(self.target, target.clone());
        self.graph.set_value(self.mask, mask.clone());
        let mut adam: Adam<S> = Adam::new(params.lr);
        self.graph.forward();
        let initial_loss = self.graph.value(self.loss).data()[0].to_f32();
        let mut best = f32::INFINITY;
        let mut stale = 0usize;
        let mut steps = 0usize;
        for _ in 0..params.max_iterations {
            self.graph.forward();
            let now = self.graph.value(self.loss).data()[0].to_f32();
            if now < best * (1.0 - params.min_rel_improvement) {
                best = now;
                stale = 0;
            } else {
                stale += 1;
                if stale >= params.patience {
                    break;
                }
            }
            self.graph.backward(self.loss);
            adam.step(&mut self.graph);
            steps += 1;
        }
        self.graph.forward();
        let final_loss = self.graph.value(self.loss).data()[0].to_f32();
        TrainReport { initial_loss, final_loss, iterations: steps }
    }

    /// Snapshots the trainable parameters and the noise code `z`.
    pub fn capture_weights(&self) -> WeightState {
        let mut tensors: Vec<Tensor<f32>> =
            self.graph.params().iter().map(|&p| self.graph.value(p).cast()).collect();
        tensors.push(self.graph.value(self.z).cast());
        WeightState { fingerprint: self.fingerprint, tensors }
    }

    /// Overwrites the trainable parameters and noise code from a snapshot,
    /// then re-runs the forward pass so the output image is consistent.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when the snapshot's fingerprint or
    /// any tensor shape disagrees with this network — the caller should
    /// fall back to a cold [`DeepPriorNet::fit`].
    pub fn restore_weights(&mut self, state: &WeightState) -> Result<(), NnError> {
        if state.fingerprint != self.fingerprint {
            return Err(NnError::BadConfig("weight state fingerprint mismatch"));
        }
        let ids: Vec<VarId> = self.graph.params().to_vec();
        if state.tensors.len() != ids.len() + 1 {
            return Err(NnError::BadConfig("weight state tensor count mismatch"));
        }
        for (&id, t) in ids.iter().zip(&state.tensors) {
            if self.graph.value(id).shape() != t.shape() {
                return Err(NnError::BadConfig("weight state tensor shape mismatch"));
            }
        }
        let z_state = state.tensors.last().expect("checked non-empty");
        if self.graph.value(self.z).shape() != z_state.shape() {
            return Err(NnError::BadConfig("weight state noise-code shape mismatch"));
        }
        for (&id, t) in ids.iter().zip(&state.tensors) {
            self.graph.set_value(id, t.cast());
        }
        self.graph.set_value(self.z, z_state.cast());
        self.graph.forward();
        Ok(())
    }

    /// The network's current output image `[1, bins, frames]`
    /// (call after [`DeepPriorNet::fit`]).
    pub fn output_image(&self) -> Tensor<S> {
        self.graph.value(self.output).clone()
    }

    /// Current masked-MSE loss value.
    pub fn loss_value(&self) -> f32 {
        self.graph.value(self.loss).data()[0].to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::ConvKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg() -> NetConfig {
        NetConfig {
            base_channels: 4,
            depth: 1,
            conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 1 },
            ..NetConfig::default()
        }
    }

    #[test]
    fn constructor_validates_extents() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = NetConfig { depth: 2, ..tiny_cfg() };
        // frames=10 not divisible by 4.
        assert!(matches!(
            DeepPriorNet::<f32>::new(&cfg, 16, 10, &mut rng),
            Err(NnError::BadExtent { axis: "time", .. })
        ));
        // freq pooling requires divisible bins.
        let cfg = NetConfig { depth: 2, freq_pool: Some(2), ..tiny_cfg() };
        assert!(matches!(
            DeepPriorNet::<f32>::new(&cfg, 18, 16, &mut rng),
            Err(NnError::BadExtent { axis: "freq", .. })
        ));
        assert!(DeepPriorNet::<f32>::new(&cfg, 16, 16, &mut rng).is_ok());
    }

    #[test]
    fn output_has_input_shape_and_sigmoid_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 12, 8, &mut rng).unwrap();
        let target = Tensor::filled(&[1, 12, 8], 0.3);
        let mask = Tensor::filled(&[1, 12, 8], 1.0);
        net.fit(&target, &mask, 1, 0.01);
        let out = net.output_image();
        assert_eq!(out.shape(), &[1, 12, 8]);
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fit_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        // Target: two bright harmonic rows.
        let mut t = Tensor::filled(&[1, 16, 8], 0.05);
        for fr in 0..8 {
            t.data_mut()[3 * 8 + fr] = 0.9;
            t.data_mut()[6 * 8 + fr] = 0.6;
        }
        let mask = Tensor::filled(&[1, 16, 8], 1.0);
        let report = net.fit(&t, &mask, 60, 0.02);
        assert!(
            report.final_loss < report.initial_loss * 0.5,
            "loss {} → {}",
            report.initial_loss,
            report.final_loss
        );
    }

    #[test]
    fn inpainting_fills_masked_column_from_harmonic_context() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = NetConfig {
            conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 2 },
            base_channels: 6,
            depth: 1,
            ..NetConfig::default()
        };
        let mut net: DeepPriorNet = DeepPriorNet::new(&cfg, 16, 12, &mut rng).unwrap();
        // A constant harmonic row at bin 4, hidden in frames 5..7.
        let mut t = Tensor::filled(&[1, 16, 12], 0.1);
        for fr in 0..12 {
            t.data_mut()[4 * 12 + fr] = 0.8;
        }
        let mut mask = Tensor::filled(&[1, 16, 12], 1.0);
        for fr in 5..7 {
            for b in 0..16 {
                mask.data_mut()[b * 12 + fr] = 0.0;
            }
        }
        net.fit(&t, &mask, 250, 0.02);
        let out = net.output_image();
        // The hidden part of the ridge is reconstructed above background.
        for fr in 5..7 {
            let ridge = out.data()[4 * 12 + fr];
            let bg = out.data()[9 * 12 + fr];
            assert!(ridge > bg + 0.2, "frame {fr}: ridge {ridge} not above background {bg}");
        }
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let mut rng = StdRng::seed_from_u64(4);
        let net: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        let n1 = net.param_count();
        assert!(n1 > 0);
        let mut rng = StdRng::seed_from_u64(99);
        let net2: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        assert_eq!(n1, net2.param_count(), "param count must not depend on rng");
    }

    #[test]
    fn restored_net_reproduces_output_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut a: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        let t = Tensor::filled(&[1, 16, 8], 0.4);
        let mask = Tensor::filled(&[1, 16, 8], 1.0);
        a.fit(&t, &mask, 25, 0.02);
        let state = a.capture_weights();

        // A net from an unrelated seed adopts the snapshot wholesale
        // (weights *and* noise code), so its output matches bit for bit.
        let mut rng = StdRng::seed_from_u64(12345);
        let mut b: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        assert_eq!(a.weight_fingerprint(), b.weight_fingerprint());
        b.restore_weights(&state).unwrap();
        assert_eq!(a.output_image().data(), b.output_image().data());
    }

    #[test]
    fn weight_state_round_trips_through_bytes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        let t = Tensor::filled(&[1, 16, 8], 0.2);
        let mask = Tensor::filled(&[1, 16, 8], 1.0);
        net.fit(&t, &mask, 5, 0.02);
        let state = net.capture_weights();
        let decoded = WeightState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(state, decoded);
        assert!(state.numel() > net.param_count(), "snapshot must include z");

        // Truncation is rejected, not misparsed.
        let bytes = state.to_bytes();
        assert!(WeightState::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(WeightState::from_bytes(&bytes[..7]).is_err());
    }

    #[test]
    fn restore_rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(7);
        let donor: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        let state = donor.capture_weights();
        // Different frame count → different fingerprint.
        let mut other: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 16, &mut rng).unwrap();
        assert!(other.restore_weights(&state).is_err());
        // Different dilation → same shapes, still refused.
        let cfg = NetConfig {
            conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 2 },
            ..tiny_cfg()
        };
        let mut other: DeepPriorNet = DeepPriorNet::new(&cfg, 16, 8, &mut rng).unwrap();
        assert!(other.restore_weights(&state).is_err());
    }

    #[test]
    fn warm_fit_resumes_near_the_captured_optimum() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        let mut t = Tensor::filled(&[1, 16, 8], 0.05);
        for fr in 0..8 {
            t.data_mut()[3 * 8 + fr] = 0.9;
        }
        let mask = Tensor::filled(&[1, 16, 8], 1.0);
        let cold = net.fit(&t, &mask, 120, 0.02);

        // A slightly shifted target (next "chunk"): the warm fine-tune
        // starts from the converged loss, far below a cold start.
        let next = t.map(|v| (v * 0.95).min(1.0));
        let warm = net.fit_warm(&next, &mask, &WarmFitParams::default());
        assert!(
            warm.initial_loss < cold.initial_loss * 0.5,
            "warm start {} should sit well below cold start {}",
            warm.initial_loss,
            cold.initial_loss
        );
        assert!(warm.iterations <= WarmFitParams::default().max_iterations);
        // Fresh Adam moments can overshoot for a step or two, but the
        // fine-tune must end far below where a cold start begins.
        assert!(
            warm.final_loss < cold.initial_loss * 0.5,
            "warm final {} vs cold start {}",
            warm.final_loss,
            cold.initial_loss
        );
    }

    #[test]
    fn warm_fit_early_stops_on_plateau() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net: DeepPriorNet = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        let t = Tensor::filled(&[1, 16, 8], 0.3);
        let mask = Tensor::filled(&[1, 16, 8], 1.0);
        net.fit(&t, &mask, 200, 0.02);
        // Refit on the *same* target: already converged, so the plateau
        // rule must fire long before the cap.
        let params = WarmFitParams { max_iterations: 400, ..WarmFitParams::default() };
        let warm = net.fit_warm(&t, &mask, &params);
        assert!(
            warm.iterations < params.max_iterations,
            "expected early stop, ran all {} steps",
            warm.iterations
        );
    }
}
