//! The deep-prior network: a light U-Net fit to a single masked
//! spectrogram (paper §3.2–3.3).

use crate::blocks::{conv_block, project_out};
use crate::config::{NetConfig, OutputActivation};
use crate::NnError;
use dhf_tensor::{init, optim::Adam, Graph, Tensor, VarId};
use rand::Rng;

/// Summary of one [`DeepPriorNet::fit`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Masked-MSE loss before the first update.
    pub initial_loss: f32,
    /// Masked-MSE loss after the last update.
    pub final_loss: f32,
    /// Number of optimizer steps taken.
    pub iterations: usize,
}

/// A U-Net deep prior over a single `[1, F, T]` magnitude image.
///
/// Construction follows the paper's Fig. 2: encoder levels of two
/// convolution blocks followed by **time-only** average pooling, a
/// bottleneck block, and decoder levels of nearest upsampling, skip
/// concatenation, and one convolution block. Frequency pooling is attached
/// only when [`NetConfig::freq_pool`] is set (Zhang-baseline ablation).
pub struct DeepPriorNet {
    graph: Graph,
    output: VarId,
    target: VarId,
    mask: VarId,
    loss: VarId,
    bins: usize,
    frames: usize,
}

impl std::fmt::Debug for DeepPriorNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepPriorNet")
            .field("bins", &self.bins)
            .field("frames", &self.frames)
            .field("params", &self.graph.param_count())
            .finish()
    }
}

impl DeepPriorNet {
    /// Builds the network for a `bins × frames` spectrogram.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadExtent`] when `frames` (or `bins`, if
    /// frequency pooling is enabled) is not divisible by the pooling
    /// schedule, and [`NnError::BadConfig`] for degenerate configurations.
    pub fn new<R: Rng>(
        cfg: &NetConfig,
        bins: usize,
        frames: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if cfg.base_channels == 0 || cfg.in_channels == 0 {
            return Err(NnError::BadConfig("channel counts must be positive"));
        }
        let td = cfg.time_divisor();
        if frames % td != 0 || frames == 0 {
            return Err(NnError::BadExtent { axis: "time", extent: frames, divisor: td });
        }
        let fd = cfg.freq_divisor();
        if bins % fd != 0 || bins == 0 {
            return Err(NnError::BadExtent { axis: "freq", extent: bins, divisor: fd });
        }

        let mut g = Graph::new();
        let z = g.input(init::noise_input(&[cfg.in_channels, bins, frames], cfg.z_std, rng));

        let mut x = z;
        let mut in_ch = cfg.in_channels;
        let mut skips: Vec<(VarId, usize)> = Vec::with_capacity(cfg.depth);
        // Encoder.
        for level in 0..cfg.depth {
            let ch = cfg.base_channels << level;
            x = conv_block(&mut g, x, in_ch, ch, &cfg.conv, cfg.relu_slope, rng);
            x = conv_block(&mut g, x, ch, ch, &cfg.conv, cfg.relu_slope, rng);
            skips.push((x, ch));
            x = g.avg_pool_time(x, 2);
            if let Some(fp) = cfg.freq_pool {
                x = g.max_pool_freq(x, fp);
            }
            in_ch = ch;
        }
        // Bottleneck.
        let bott_ch = cfg.base_channels << cfg.depth;
        x = conv_block(&mut g, x, in_ch, bott_ch, &cfg.conv, cfg.relu_slope, rng);
        in_ch = bott_ch;
        // Decoder.
        for level in (0..cfg.depth).rev() {
            x = g.upsample_time(x, 2);
            if let Some(fp) = cfg.freq_pool {
                x = g.upsample_freq(x, fp);
            }
            let (skip, skip_ch) = skips[level];
            x = g.concat(x, skip);
            let ch = cfg.base_channels << level;
            x = conv_block(&mut g, x, in_ch + skip_ch, ch, &cfg.conv, cfg.relu_slope, rng);
            in_ch = ch;
        }
        // Output projection + activation. The sigmoid head starts at the
        // configured background level so an undertrained prior cannot
        // flood hidden cells with mid-gray magnitude.
        let bias_init = match cfg.output {
            OutputActivation::Sigmoid => cfg.output_bias,
            _ => 0.0,
        };
        let proj = project_out(&mut g, x, in_ch, 1, bias_init, rng);
        let output = match cfg.output {
            OutputActivation::Sigmoid => g.sigmoid(proj),
            OutputActivation::LeakyRelu => g.leaky_relu(proj, 0.01),
            OutputActivation::Linear => proj,
        };

        let target = g.input(Tensor::zeros(&[1, bins, frames]));
        let mask = g.input(Tensor::zeros(&[1, bins, frames]));
        let loss = g.mse_masked(output, target, mask);

        Ok(DeepPriorNet { graph: g, output, target, mask, loss, bins, frames })
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.graph.param_count()
    }

    /// Frequency bins the network was built for.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Time frames the network was built for.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Fits the prior to `target` under `mask` (1 = visible, 0 = hidden)
    /// with Adam for `iterations` steps.
    ///
    /// The loss only sees visible cells, so hidden cells are *in-painted*
    /// by the network's structural bias.
    ///
    /// # Panics
    ///
    /// Panics if `target`/`mask` are not `[1, bins, frames]`.
    pub fn fit(
        &mut self,
        target: &Tensor,
        mask: &Tensor,
        iterations: usize,
        lr: f32,
    ) -> TrainReport {
        assert_eq!(target.shape(), &[1, self.bins, self.frames], "target shape");
        assert_eq!(mask.shape(), &[1, self.bins, self.frames], "mask shape");
        self.graph.set_value(self.target, target.clone());
        self.graph.set_value(self.mask, mask.clone());
        let mut adam = Adam::new(lr);
        self.graph.forward();
        let initial_loss = self.graph.value(self.loss).data()[0];
        for _ in 0..iterations {
            self.graph.forward();
            self.graph.backward(self.loss);
            adam.step(&mut self.graph);
        }
        self.graph.forward();
        let final_loss = self.graph.value(self.loss).data()[0];
        TrainReport { initial_loss, final_loss, iterations }
    }

    /// The network's current output image `[1, bins, frames]`
    /// (call after [`DeepPriorNet::fit`]).
    pub fn output_image(&self) -> Tensor {
        self.graph.value(self.output).clone()
    }

    /// Current masked-MSE loss value.
    pub fn loss_value(&self) -> f32 {
        self.graph.value(self.loss).data()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::ConvKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg() -> NetConfig {
        NetConfig {
            base_channels: 4,
            depth: 1,
            conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 1 },
            ..NetConfig::default()
        }
    }

    #[test]
    fn constructor_validates_extents() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = NetConfig { depth: 2, ..tiny_cfg() };
        // frames=10 not divisible by 4.
        assert!(matches!(
            DeepPriorNet::new(&cfg, 16, 10, &mut rng),
            Err(NnError::BadExtent { axis: "time", .. })
        ));
        // freq pooling requires divisible bins.
        let cfg = NetConfig { depth: 2, freq_pool: Some(2), ..tiny_cfg() };
        assert!(matches!(
            DeepPriorNet::new(&cfg, 18, 16, &mut rng),
            Err(NnError::BadExtent { axis: "freq", .. })
        ));
        assert!(DeepPriorNet::new(&cfg, 16, 16, &mut rng).is_ok());
    }

    #[test]
    fn output_has_input_shape_and_sigmoid_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = DeepPriorNet::new(&tiny_cfg(), 12, 8, &mut rng).unwrap();
        let target = Tensor::filled(&[1, 12, 8], 0.3);
        let mask = Tensor::filled(&[1, 12, 8], 1.0);
        net.fit(&target, &mask, 1, 0.01);
        let out = net.output_image();
        assert_eq!(out.shape(), &[1, 12, 8]);
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fit_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        // Target: two bright harmonic rows.
        let mut t = Tensor::filled(&[1, 16, 8], 0.05);
        for fr in 0..8 {
            t.data_mut()[3 * 8 + fr] = 0.9;
            t.data_mut()[6 * 8 + fr] = 0.6;
        }
        let mask = Tensor::filled(&[1, 16, 8], 1.0);
        let report = net.fit(&t, &mask, 60, 0.02);
        assert!(
            report.final_loss < report.initial_loss * 0.5,
            "loss {} → {}",
            report.initial_loss,
            report.final_loss
        );
    }

    #[test]
    fn inpainting_fills_masked_column_from_harmonic_context() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = NetConfig {
            conv: ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 2 },
            base_channels: 6,
            depth: 1,
            ..NetConfig::default()
        };
        let mut net = DeepPriorNet::new(&cfg, 16, 12, &mut rng).unwrap();
        // A constant harmonic row at bin 4, hidden in frames 5..7.
        let mut t = Tensor::filled(&[1, 16, 12], 0.1);
        for fr in 0..12 {
            t.data_mut()[4 * 12 + fr] = 0.8;
        }
        let mut mask = Tensor::filled(&[1, 16, 12], 1.0);
        for fr in 5..7 {
            for b in 0..16 {
                mask.data_mut()[b * 12 + fr] = 0.0;
            }
        }
        net.fit(&t, &mask, 250, 0.02);
        let out = net.output_image();
        // The hidden part of the ridge is reconstructed above background.
        for fr in 5..7 {
            let ridge = out.data()[4 * 12 + fr];
            let bg = out.data()[9 * 12 + fr];
            assert!(ridge > bg + 0.2, "frame {fr}: ridge {ridge} not above background {bg}");
        }
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        let n1 = net.param_count();
        assert!(n1 > 0);
        let mut rng = StdRng::seed_from_u64(99);
        let net2 = DeepPriorNet::new(&tiny_cfg(), 16, 8, &mut rng).unwrap();
        assert_eq!(n1, net2.param_count(), "param count must not depend on rng");
    }
}
