//! Reusable graph-building blocks: convolution + instance norm + activation.

use dhf_tensor::{init, Graph, Scalar, Tensor, VarId};
use rand::Rng;

/// Convolution flavour used inside the U-Net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvKind {
    /// Conventional same-padded 2-D convolution.
    Standard {
        /// Kernel extent along frequency (odd).
        kf: usize,
        /// Kernel extent along time (odd).
        kt: usize,
        /// Dilation along frequency.
        dil_f: usize,
        /// Dilation along time.
        dil_t: usize,
    },
    /// Dilated harmonic convolution (paper Eq. 8).
    Harmonic {
        /// Number of harmonics `H` reached in frequency.
        harmonics: usize,
        /// Kernel extent along time (odd).
        kt: usize,
        /// Anchor `n` of Eq. 2 (1 = spectrally accurate).
        anchor: usize,
        /// Dilation along time.
        dil_t: usize,
    },
}

impl ConvKind {
    /// Weight-tensor shape for `in_ch → out_ch`.
    pub fn weight_shape(&self, in_ch: usize, out_ch: usize) -> Vec<usize> {
        match *self {
            ConvKind::Standard { kf, kt, .. } => vec![out_ch, in_ch, kf, kt],
            ConvKind::Harmonic { harmonics, kt, .. } => vec![out_ch, in_ch, harmonics, kt],
        }
    }

    /// Appends the convolution node for input `x` with a fresh weight.
    pub fn build<S: Scalar, R: Rng>(
        &self,
        g: &mut Graph<S>,
        x: VarId,
        in_ch: usize,
        out_ch: usize,
        rng: &mut R,
    ) -> VarId {
        let w = g.param(init::kaiming_uniform(&self.weight_shape(in_ch, out_ch), rng));
        match *self {
            ConvKind::Standard { dil_f, dil_t, .. } => g.conv2d(x, w, dil_f, dil_t),
            ConvKind::Harmonic { anchor, dil_t, .. } => g.harmonic_conv(x, w, anchor, dil_t),
        }
    }
}

/// Appends `conv → bias → instance-norm → leaky-ReLU` and returns the
/// activated output.
pub fn conv_block<S: Scalar, R: Rng>(
    g: &mut Graph<S>,
    x: VarId,
    in_ch: usize,
    out_ch: usize,
    kind: &ConvKind,
    relu_slope: f32,
    rng: &mut R,
) -> VarId {
    let conv = kind.build(g, x, in_ch, out_ch, rng);
    let bias = g.param(Tensor::zeros(&[out_ch]));
    let biased = g.add_bias(conv, bias);
    let (gamma, beta) = init::norm_affine(out_ch);
    let gamma = g.param(gamma);
    let beta = g.param(beta);
    let normed = g.instance_norm(biased, gamma, beta);
    g.leaky_relu(normed, relu_slope)
}

/// Appends a 1×1 standard convolution used as the output projection.
///
/// `bias_init` sets the projection bias; with a sigmoid output head a
/// negative value (e.g. −3) starts the image near the background level so
/// the untrained prior does not flood hidden cells with mid-gray energy —
/// essential when the optimizer budget is small.
pub fn project_out<S: Scalar, R: Rng>(
    g: &mut Graph<S>,
    x: VarId,
    in_ch: usize,
    out_ch: usize,
    bias_init: f32,
    rng: &mut R,
) -> VarId {
    let w = g.param(init::kaiming_uniform(&[out_ch, in_ch, 1, 1], rng));
    let conv = g.conv2d(x, w, 1, 1);
    let bias = g.param(Tensor::filled(&[out_ch], S::from_f32(bias_init)));
    g.add_bias(conv, bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weight_shapes_per_kind() {
        let std = ConvKind::Standard { kf: 3, kt: 5, dil_f: 1, dil_t: 1 };
        assert_eq!(std.weight_shape(4, 8), vec![8, 4, 3, 5]);
        let harm = ConvKind::Harmonic { harmonics: 6, kt: 3, anchor: 1, dil_t: 2 };
        assert_eq!(harm.weight_shape(2, 3), vec![3, 2, 6, 3]);
    }

    #[test]
    fn conv_block_produces_expected_shape() {
        let mut g: Graph = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let x = g.input(Tensor::rand_normal(&[2, 8, 6], 1.0, &mut rng));
        let kind = ConvKind::Harmonic { harmonics: 3, kt: 3, anchor: 1, dil_t: 1 };
        let y = conv_block(&mut g, x, 2, 5, &kind, 0.1, &mut rng);
        assert_eq!(g.value(y).shape(), &[5, 8, 6]);
        // Trainable params: weight + bias + gamma + beta.
        assert_eq!(g.params().len(), 4);
    }

    #[test]
    fn project_out_collapses_channels() {
        let mut g: Graph = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.input(Tensor::rand_normal(&[6, 4, 4], 1.0, &mut rng));
        let y = project_out(&mut g, x, 6, 1, 0.0, &mut rng);
        assert_eq!(g.value(y).shape(), &[1, 4, 4]);
    }
}
