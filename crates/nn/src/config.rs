//! Network hyper-parameters.

use crate::blocks::ConvKind;

/// Activation applied to the network's single output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputActivation {
    /// Logistic sigmoid — appropriate when magnitudes are pre-normalized
    /// into `[0, 1]` (the DHF pipeline default).
    #[default]
    Sigmoid,
    /// Leaky ReLU with slope 0.01 — outputs unbounded non-negative-ish
    /// magnitudes.
    LeakyRelu,
    /// No output activation.
    Linear,
}

/// Hyper-parameters of [`DeepPriorNet`].
///
/// The defaults reproduce the paper's SpAc LU-Net: harmonic convolutions
/// with anchor 1, no frequency pooling, and a large time dilation that
/// matches the constant-frequency patterns created by pattern alignment
/// (the paper uses 13 or 15 depending on the masking situation, §4.2).
///
/// [`DeepPriorNet`]: crate::DeepPriorNet
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Channels of the noise input code `z`.
    pub in_channels: usize,
    /// Channel count of the first encoder level; each level doubles it.
    pub base_channels: usize,
    /// Number of time-pooling levels (the "Light" U-Net is shallow).
    pub depth: usize,
    /// Convolution flavour for all hidden layers.
    pub conv: ConvKind,
    /// Frequency max-pooling factor per level — **must stay `None` for the
    /// SpAc design**; `Some(2)` reproduces the Zhang-baseline ablation.
    pub freq_pool: Option<usize>,
    /// Output activation.
    pub output: OutputActivation,
    /// Negative slope of the hidden leaky ReLUs.
    pub relu_slope: f32,
    /// Standard deviation of the fixed noise input `z`.
    pub z_std: f32,
    /// Initial bias of the output projection. With a sigmoid head this
    /// sets the untrained image level: `σ(output_bias)` should sit near
    /// the *background* magnitude of the (normalized) target so hidden
    /// cells start dark instead of mid-gray. The DHF in-painter overrides
    /// it per round from the visible-cell statistics.
    pub output_bias: f32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            in_channels: 2,
            base_channels: 8,
            depth: 2,
            conv: ConvKind::Harmonic { harmonics: 4, kt: 3, anchor: 1, dil_t: 13 },
            freq_pool: None,
            output: OutputActivation::Sigmoid,
            relu_slope: 0.1,
            z_std: 0.1,
            output_bias: -3.0,
        }
    }
}

impl NetConfig {
    /// The paper's SpAc LU-Net with an explicit time dilation (13 or 15 in
    /// the paper, chosen per masking situation).
    pub fn spac(time_dilation: usize) -> Self {
        NetConfig {
            conv: ConvKind::Harmonic { harmonics: 4, kt: 3, anchor: 1, dil_t: time_dilation },
            ..NetConfig::default()
        }
    }

    /// Time extent divisor required by the pooling schedule.
    pub fn time_divisor(&self) -> usize {
        1 << self.depth
    }

    /// Frequency extent divisor required by the pooling schedule.
    pub fn freq_divisor(&self) -> usize {
        match self.freq_pool {
            Some(f) => f.pow(self.depth as u32),
            None => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_spectrally_accurate() {
        let cfg = NetConfig::default();
        assert!(cfg.freq_pool.is_none());
        match cfg.conv {
            ConvKind::Harmonic { anchor, .. } => assert_eq!(anchor, 1),
            _ => panic!("default must use harmonic convolutions"),
        }
    }

    #[test]
    fn divisors_follow_depth() {
        let cfg = NetConfig { depth: 3, freq_pool: Some(2), ..NetConfig::default() };
        assert_eq!(cfg.time_divisor(), 8);
        assert_eq!(cfg.freq_divisor(), 8);
        let spac = NetConfig::default();
        assert_eq!(spac.freq_divisor(), 1);
    }

    #[test]
    fn spac_constructor_sets_dilation() {
        let cfg = NetConfig::spac(15);
        match cfg.conv {
            ConvKind::Harmonic { dil_t, .. } => assert_eq!(dil_t, 15),
            _ => panic!(),
        }
    }
}
