//! Network hyper-parameters and shared optimizer budgets.

use crate::blocks::ConvKind;

/// Optimizer budget of a from-scratch deep-prior fit: how many Adam steps
/// at which learning rate.
///
/// The tuned budgets live here as named constants so every consumer — the
/// in-painter, the ablation harness, benchmarks — reads the same source of
/// truth instead of scattering magic `(iterations, lr)` pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitParams {
    /// Adam steps.
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl FitParams {
    /// Paper-faithful full-quality budget (§4.1: 300 iterations).
    pub const FULL: FitParams = FitParams { iterations: 300, lr: 0.01 };
    /// Reduced budget used by the streaming `fast()` preset.
    pub const FAST: FitParams = FitParams { iterations: 120, lr: 0.01 };
    /// Smoke-test budget for the Figure-3 ablation variants: just enough
    /// steps to separate the architectures on a synthetic ridge.
    pub const ABLATION_SMOKE: FitParams = FitParams { iterations: 30, lr: 0.02 };
}

/// Budget and stopping rule of a *warm* fine-tune: a bounded number of
/// Adam steps resumed from an already-trained weight state, with
/// loss-plateau early stopping.
///
/// Warm fits exploit the temporal coherence of adjacent streaming chunks —
/// the previous chunk's converged prior is a few dozen steps away from the
/// next chunk's optimum, not a few hundred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmFitParams {
    /// Hard cap on Adam steps for one warm fine-tune.
    pub max_iterations: usize,
    /// Adam learning rate (a fresh optimizer is used per fine-tune).
    pub lr: f32,
    /// Stop after this many consecutive steps without meaningful
    /// improvement over the best loss seen in this fine-tune.
    pub patience: usize,
    /// Relative improvement threshold: a step "improves" when the loss
    /// drops below `best * (1 - min_rel_improvement)`.
    pub min_rel_improvement: f32,
}

impl Default for WarmFitParams {
    fn default() -> Self {
        WarmFitParams { max_iterations: 40, lr: 0.01, patience: 6, min_rel_improvement: 1e-3 }
    }
}

/// Activation applied to the network's single output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputActivation {
    /// Logistic sigmoid — appropriate when magnitudes are pre-normalized
    /// into `[0, 1]` (the DHF pipeline default).
    #[default]
    Sigmoid,
    /// Leaky ReLU with slope 0.01 — outputs unbounded non-negative-ish
    /// magnitudes.
    LeakyRelu,
    /// No output activation.
    Linear,
}

/// Hyper-parameters of [`DeepPriorNet`].
///
/// The defaults reproduce the paper's SpAc LU-Net: harmonic convolutions
/// with anchor 1, no frequency pooling, and a large time dilation that
/// matches the constant-frequency patterns created by pattern alignment
/// (the paper uses 13 or 15 depending on the masking situation, §4.2).
///
/// [`DeepPriorNet`]: crate::DeepPriorNet
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Channels of the noise input code `z`.
    pub in_channels: usize,
    /// Channel count of the first encoder level; each level doubles it.
    pub base_channels: usize,
    /// Number of time-pooling levels (the "Light" U-Net is shallow).
    pub depth: usize,
    /// Convolution flavour for all hidden layers.
    pub conv: ConvKind,
    /// Frequency max-pooling factor per level — **must stay `None` for the
    /// SpAc design**; `Some(2)` reproduces the Zhang-baseline ablation.
    pub freq_pool: Option<usize>,
    /// Output activation.
    pub output: OutputActivation,
    /// Negative slope of the hidden leaky ReLUs.
    pub relu_slope: f32,
    /// Standard deviation of the fixed noise input `z`.
    pub z_std: f32,
    /// Initial bias of the output projection. With a sigmoid head this
    /// sets the untrained image level: `σ(output_bias)` should sit near
    /// the *background* magnitude of the (normalized) target so hidden
    /// cells start dark instead of mid-gray. The DHF in-painter overrides
    /// it per round from the visible-cell statistics.
    pub output_bias: f32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            in_channels: 2,
            base_channels: 8,
            depth: 2,
            conv: ConvKind::Harmonic { harmonics: 4, kt: 3, anchor: 1, dil_t: 13 },
            freq_pool: None,
            output: OutputActivation::Sigmoid,
            relu_slope: 0.1,
            z_std: 0.1,
            output_bias: -3.0,
        }
    }
}

impl NetConfig {
    /// The paper's SpAc LU-Net with an explicit time dilation (13 or 15 in
    /// the paper, chosen per masking situation).
    pub fn spac(time_dilation: usize) -> Self {
        NetConfig {
            conv: ConvKind::Harmonic { harmonics: 4, kt: 3, anchor: 1, dil_t: time_dilation },
            ..NetConfig::default()
        }
    }

    /// Time extent divisor required by the pooling schedule.
    pub fn time_divisor(&self) -> usize {
        1 << self.depth
    }

    /// Frequency extent divisor required by the pooling schedule.
    pub fn freq_divisor(&self) -> usize {
        match self.freq_pool {
            Some(f) => f.pow(self.depth as u32),
            None => 1,
        }
    }

    /// FNV-1a fingerprint of the architecture this configuration builds
    /// for a `bins × frames` image — the compatibility key guarding
    /// [`WeightState`](crate::WeightState) restores.
    ///
    /// `z_std` and `output_bias` are deliberately excluded: the noise code
    /// is restored with the snapshot, and the output bias is itself a
    /// trainable parameter — neither changes the *structure* a snapshot
    /// must match. The in-painter re-derives `output_bias` per round, so
    /// including it would spuriously invalidate every warm restore.
    pub fn architecture_fingerprint(&self, bins: usize, frames: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(bins as u64);
        eat(frames as u64);
        eat(self.in_channels as u64);
        eat(self.base_channels as u64);
        eat(self.depth as u64);
        match self.conv {
            ConvKind::Standard { kf, kt, dil_f, dil_t } => {
                eat(1);
                eat(kf as u64);
                eat(kt as u64);
                eat(dil_f as u64);
                eat(dil_t as u64);
            }
            ConvKind::Harmonic { harmonics, kt, anchor, dil_t } => {
                eat(2);
                eat(harmonics as u64);
                eat(kt as u64);
                eat(anchor as u64);
                eat(dil_t as u64);
            }
        }
        eat(self.freq_pool.map_or(0, |f| f as u64 + 1));
        eat(match self.output {
            OutputActivation::Sigmoid => 1,
            OutputActivation::LeakyRelu => 2,
            OutputActivation::Linear => 3,
        });
        eat(u64::from(self.relu_slope.to_bits()));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_spectrally_accurate() {
        let cfg = NetConfig::default();
        assert!(cfg.freq_pool.is_none());
        match cfg.conv {
            ConvKind::Harmonic { anchor, .. } => assert_eq!(anchor, 1),
            _ => panic!("default must use harmonic convolutions"),
        }
    }

    #[test]
    fn divisors_follow_depth() {
        let cfg = NetConfig { depth: 3, freq_pool: Some(2), ..NetConfig::default() };
        assert_eq!(cfg.time_divisor(), 8);
        assert_eq!(cfg.freq_divisor(), 8);
        let spac = NetConfig::default();
        assert_eq!(spac.freq_divisor(), 1);
    }

    #[test]
    fn spac_constructor_sets_dilation() {
        let cfg = NetConfig::spac(15);
        match cfg.conv {
            ConvKind::Harmonic { dil_t, .. } => assert_eq!(dil_t, 15),
            _ => panic!(),
        }
    }
}
