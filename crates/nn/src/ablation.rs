//! The four convolution-prior variants compared in the paper's Figure 3.
//!
//! All variants share the U-Net skeleton and differ only in the properties
//! the figure isolates:
//!
//! | variant | frequency neighbourhood | anchor | freq pooling | time dilation |
//! |---|---|---|---|---|
//! | `Conventional` | adjacent bins | –  | none | 1 |
//! | `HarmonicBaseline` (Zhang et al.) | harmonics | 2 (backward access) | max-pool ×2 | 1 |
//! | `SpectrallyAccurate` | harmonics | 1 | none | 1 |
//! | `SpacDilated` | harmonics | 1 | none | configurable (13–15) |

use crate::blocks::ConvKind;
use crate::config::NetConfig;

/// Prior variants of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorVariant {
    /// Conventional 3×3 convolutions.
    Conventional,
    /// Harmonic convolution as configured by Zhang et al. \[21\]: anchors
    /// larger than one (backward harmonic access) and max-pooling in
    /// frequency.
    HarmonicBaseline,
    /// The paper's spectrally accurate setting: anchor 1, no frequency
    /// pooling, unit time dilation.
    SpectrallyAccurate,
    /// Spectrally accurate plus the large time dilation that matches
    /// pattern-aligned (constant-frequency) sources.
    SpacDilated {
        /// Time dilation (13 or 15 in the paper).
        dil_t: usize,
    },
}

impl PriorVariant {
    /// All four variants in the order Figure 3 presents them.
    pub fn all(dil_t: usize) -> [PriorVariant; 4] {
        [
            PriorVariant::Conventional,
            PriorVariant::HarmonicBaseline,
            PriorVariant::SpectrallyAccurate,
            PriorVariant::SpacDilated { dil_t },
        ]
    }

    /// Human-readable label used in benches and reports.
    pub fn label(&self) -> String {
        match self {
            PriorVariant::Conventional => "conventional conv".into(),
            PriorVariant::HarmonicBaseline => "harmonic conv (anchor>1 + freq pool)".into(),
            PriorVariant::SpectrallyAccurate => "SpAc (anchor=1, no freq pool)".into(),
            PriorVariant::SpacDilated { dil_t } => format!("SpAc + time dilation {dil_t}"),
        }
    }

    /// Network configuration realizing this variant on top of `base`.
    ///
    /// Only the convolution kind and the frequency-pooling flag are
    /// touched; channel counts and depth come from `base` so the
    /// comparison isolates the prior structure, as in the paper.
    pub fn configure(&self, base: &NetConfig) -> NetConfig {
        let mut cfg = base.clone();
        match *self {
            PriorVariant::Conventional => {
                cfg.conv = ConvKind::Standard { kf: 3, kt: 3, dil_f: 1, dil_t: 1 };
                cfg.freq_pool = None;
            }
            PriorVariant::HarmonicBaseline => {
                cfg.conv = ConvKind::Harmonic { harmonics: 4, kt: 3, anchor: 2, dil_t: 1 };
                cfg.freq_pool = Some(2);
            }
            PriorVariant::SpectrallyAccurate => {
                cfg.conv = ConvKind::Harmonic { harmonics: 4, kt: 3, anchor: 1, dil_t: 1 };
                cfg.freq_pool = None;
            }
            PriorVariant::SpacDilated { dil_t } => {
                cfg.conv = ConvKind::Harmonic { harmonics: 4, kt: 3, anchor: 1, dil_t };
                cfg.freq_pool = None;
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FitParams;
    use crate::DeepPriorNet;
    use dhf_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> NetConfig {
        NetConfig { base_channels: 4, depth: 1, ..NetConfig::default() }
    }

    #[test]
    fn all_variants_build_networks() {
        for v in PriorVariant::all(5) {
            let cfg = v.configure(&base());
            let mut rng = StdRng::seed_from_u64(0);
            // 16 bins, 8 frames: divisible for both pooling schedules.
            let net = DeepPriorNet::<f32>::new(&cfg, 16, 8, &mut rng);
            assert!(net.is_ok(), "{} failed to build", v.label());
        }
    }

    #[test]
    fn baseline_uses_anchor_two_and_freq_pool() {
        let cfg = PriorVariant::HarmonicBaseline.configure(&base());
        assert_eq!(cfg.freq_pool, Some(2));
        match cfg.conv {
            ConvKind::Harmonic { anchor, .. } => assert_eq!(anchor, 2),
            _ => panic!("baseline must be harmonic"),
        }
    }

    #[test]
    fn spac_variants_do_not_pool_frequency() {
        for v in [PriorVariant::SpectrallyAccurate, PriorVariant::SpacDilated { dil_t: 13 }] {
            assert_eq!(v.configure(&base()).freq_pool, None);
        }
    }

    #[test]
    fn variants_can_fit_a_masked_ridge() {
        // Smoke check that each variant trains; quality ordering is
        // measured in the fig3 bench, not asserted here.
        let mut t = Tensor::filled(&[1, 16, 8], 0.1);
        for fr in 0..8 {
            t.data_mut()[3 * 8 + fr] = 0.9;
        }
        let mask = Tensor::filled(&[1, 16, 8], 1.0);
        for v in PriorVariant::all(3) {
            let cfg = v.configure(&base());
            let mut rng = StdRng::seed_from_u64(7);
            let mut net: DeepPriorNet = DeepPriorNet::new(&cfg, 16, 8, &mut rng).unwrap();
            let fit = FitParams::ABLATION_SMOKE;
            let rep = net.fit(&t, &mask, fit.iterations, fit.lr);
            assert!(rep.final_loss < rep.initial_loss, "{} did not reduce loss", v.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = PriorVariant::all(13).iter().map(|v| v.label()).collect();
        for i in 0..labels.len() {
            for j in i + 1..labels.len() {
                assert_ne!(labels[i], labels[j]);
            }
        }
    }
}
