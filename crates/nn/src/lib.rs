//! Neural layers and the **SpAc LU-Net** ("Spectrally Accurate Light
//! U-Net") deep-prior architecture of the DHF paper (§3.2, Fig. 2).
//!
//! The network is a small U-Net over `[1, F, T]` spectrogram magnitudes
//! whose convolutions are the paper's *dilated harmonic convolutions*:
//! frequency neighbourhoods are integer harmonic multiples, time
//! neighbourhoods are dilated taps at the same bin. Two design rules give
//! the "Spectrally Accurate" property:
//!
//! 1. **no pooling in frequency** — the frequency extent is preserved end
//!    to end, so harmonic rows never fold onto each other;
//! 2. **anchor = 1** — only forward integer multiples are neighbours, so
//!    every frequency is spectrally exact.
//!
//! [`ablation`] builds the Figure-3 comparison variants (conventional
//! convolution; Zhang-style harmonic convolution with anchor > 1 and
//! frequency max-pooling) from the same code path.
//!
//! # Example
//!
//! ```
//! use dhf_nn::{DeepPriorNet, NetConfig};
//! use dhf_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let cfg = NetConfig { base_channels: 4, depth: 1, ..NetConfig::default() };
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = DeepPriorNet::new(&cfg, 16, 8, &mut rng).unwrap();
//! let target = Tensor::filled(&[1, 16, 8], 0.5);
//! let mask = Tensor::filled(&[1, 16, 8], 1.0);
//! let report = net.fit(&target, &mask, 40, 0.01);
//! assert!(report.final_loss < report.initial_loss);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
mod blocks;
mod config;
mod net;

pub use blocks::ConvKind;
pub use config::{FitParams, NetConfig, OutputActivation, WarmFitParams};
pub use net::{DeepPriorNet, TrainReport, WeightState};

/// Errors from network construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A spatial extent is incompatible with the pooling schedule.
    BadExtent {
        /// Which axis ("time" or "freq").
        axis: &'static str,
        /// The offending extent.
        extent: usize,
        /// The required divisor.
        divisor: usize,
    },
    /// A configuration field was invalid.
    BadConfig(&'static str),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::BadExtent { axis, extent, divisor } => write!(
                f,
                "{axis} extent {extent} must be divisible by {divisor} for the pooling schedule"
            ),
            NnError::BadConfig(msg) => write!(f, "bad network configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}
