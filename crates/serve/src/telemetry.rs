//! Serving telemetry: per-shard counters and point-in-time snapshots.

use dhf_metrics::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Live per-shard counters, shared between the manager (writers on the
/// push path) and the worker thread (writers on the processing path).
/// Everything hot is an atomic; only the latency histogram takes a lock,
/// and only once per processed packet.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub(crate) samples_in: AtomicU64,
    pub(crate) samples_out: AtomicU64,
    pub(crate) blocks_emitted: AtomicU64,
    pub(crate) packets_processed: AtomicU64,
    pub(crate) batches_run: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) dropped_samples: AtomicU64,
    pub(crate) spo2_updates: AtomicU64,
    pub(crate) plans_built: AtomicU64,
    pub(crate) latency: Mutex<LatencyHistogram>,
    pub(crate) spo2: Mutex<Spo2Stats>,
}

impl ShardCounters {
    pub(crate) fn snapshot(
        &self,
        shard: usize,
        open_sessions: usize,
        queue_depth_samples: usize,
        elapsed: Duration,
    ) -> ShardSnapshot {
        let samples_out = self.samples_out.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        ShardSnapshot {
            shard,
            open_sessions,
            queue_depth_samples,
            samples_in: self.samples_in.load(Ordering::Relaxed),
            samples_out,
            blocks_emitted: self.blocks_emitted.load(Ordering::Relaxed),
            packets_processed: self.packets_processed.load(Ordering::Relaxed),
            batches_run: self.batches_run.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            dropped_samples: self.dropped_samples.load(Ordering::Relaxed),
            spo2_updates: self.spo2_updates.load(Ordering::Relaxed),
            plans_built: self.plans_built.load(Ordering::Relaxed),
            samples_per_sec: if secs > 0.0 { samples_out as f64 / secs } else { 0.0 },
            latency: self.latency.lock().unwrap().clone(),
            spo2: self.spo2.lock().unwrap().clone(),
        }
    }
}

/// Aggregate statistics over every SpO2 window a shard's oximetry
/// sessions emitted — the fleet-level trend view (count, range, mean)
/// without shipping every sample through telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct Spo2Stats {
    count: u64,
    sum: f64,
    /// Exact observed extremes (NaN until the first record).
    min_seen: f64,
    max_seen: f64,
}

impl Default for Spo2Stats {
    fn default() -> Self {
        Spo2Stats { count: 0, sum: 0.0, min_seen: f64::NAN, max_seen: f64::NAN }
    }
}

impl Spo2Stats {
    /// Adds one SpO2 window value. Non-finite values are ignored.
    pub(crate) fn record(&mut self, spo2: f64) {
        if !spo2.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += spo2;
        if self.min_seen.is_nan() || spo2 < self.min_seen {
            self.min_seen = spo2;
        }
        if self.max_seen.is_nan() || spo2 > self.max_seen {
            self.max_seen = spo2;
        }
    }

    /// Folds another shard's statistics into this one.
    pub(crate) fn merge(&mut self, other: &Spo2Stats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        if self.min_seen.is_nan() || other.min_seen < self.min_seen {
            self.min_seen = other.min_seen;
        }
        if self.max_seen.is_nan() || other.max_seen > self.max_seen {
            self.max_seen = other.max_seen;
        }
    }

    /// SpO2 windows recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded SpO2 (the fleet's deepest observed
    /// desaturation), or `None` before the first window.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min_seen)
        }
    }

    /// Largest recorded SpO2, or `None` before the first window.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max_seen)
        }
    }

    /// Mean recorded SpO2, or `None` before the first window.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Point-in-time view of one worker shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index in `[0, workers)`.
    pub shard: usize,
    /// Sessions currently owned by this shard.
    pub open_sessions: usize,
    /// Samples waiting in this shard's ingestion queues right now.
    pub queue_depth_samples: usize,
    /// Samples accepted into this shard's queues since start.
    pub samples_in: u64,
    /// Separated samples emitted by this shard since start.
    pub samples_out: u64,
    /// Output blocks delivered to mailboxes.
    pub blocks_emitted: u64,
    /// Ingest packets run through session engines.
    pub packets_processed: u64,
    /// Scheduling batches executed (one batch = one lock acquisition
    /// draining every ready queue; packets-per-batch is the measure of how
    /// well the scheduler amortizes wakeups).
    pub batches_run: u64,
    /// Pushes rejected by the `Busy` backpressure policy.
    pub busy_rejections: u64,
    /// Samples evicted by `DropOldest` or skipped after a session failure.
    pub dropped_samples: u64,
    /// SpO2 windows emitted by this shard's oximetry sessions.
    pub spo2_updates: u64,
    /// FFT plans built by this shard's session engines, booked
    /// incrementally: the delta after every scheduling batch a session
    /// ran in, plus a residual at close for anything the flush builds.
    /// A healthy fleet of same-shape sessions keeps this near a small
    /// constant per session: every steady-state chunk reuses the plans
    /// (and the SoA spectrogram workspace) built by its session's first
    /// chunk, so the gauge plateaus once sessions are warm.
    pub plans_built: u64,
    /// `samples_out` over the manager's lifetime — the shard's sustained
    /// separation throughput.
    pub samples_per_sec: f64,
    /// Ingestion latency distribution in seconds, one record per packet:
    /// enqueue (push accepted) until the worker finished processing the
    /// packet — at which point any output the packet completed is in the
    /// mailbox. Packets that only buffer (no chunk boundary crossed)
    /// record their queue+ingest time; the per-*sample* output latency is
    /// additionally bounded by the streaming config's one-chunk latency.
    pub latency: LatencyHistogram,
    /// Aggregate SpO2 trend statistics over this shard's oximetry
    /// sessions (empty if the shard serves none).
    pub spo2: Spo2Stats,
}

/// Snapshot of the whole runtime, taken by
/// [`SessionManager::telemetry`](crate::SessionManager::telemetry).
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// Time since the manager started.
    pub elapsed: Duration,
    /// One snapshot per worker shard, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl Telemetry {
    /// Total samples accepted across shards.
    pub fn samples_in(&self) -> u64 {
        self.shards.iter().map(|s| s.samples_in).sum()
    }

    /// Total separated samples emitted across shards.
    pub fn samples_out(&self) -> u64 {
        self.shards.iter().map(|s| s.samples_out).sum()
    }

    /// Total samples evicted or skipped across shards.
    pub fn dropped_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_samples).sum()
    }

    /// Total pushes rejected with `Busy` across shards.
    pub fn busy_rejections(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_rejections).sum()
    }

    /// Total SpO2 windows emitted across shards.
    pub fn spo2_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.spo2_updates).sum()
    }

    /// Total FFT plans built by session engines across shards — the
    /// fleet-wide plan-cache pressure gauge, live for open sessions
    /// (booked per scheduling batch, not deferred to session close).
    pub fn plans_built(&self) -> u64 {
        self.shards.iter().map(|s| s.plans_built).sum()
    }

    /// All shards' SpO2 trend statistics merged into one fleet-wide view.
    pub fn spo2_stats(&self) -> Spo2Stats {
        let mut merged = Spo2Stats::default();
        for s in &self.shards {
            merged.merge(&s.spo2);
        }
        merged
    }

    /// Aggregate separation throughput in samples per second.
    pub fn samples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.samples_out() as f64 / secs
        } else {
            0.0
        }
    }

    /// All shards' latency histograms merged into one fleet-wide view.
    pub fn latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::for_serving();
        for s in &self.shards {
            merged.merge(&s.latency);
        }
        merged
    }

    /// Fleet-wide enqueue→processed latency percentile in seconds
    /// (`None` before any packet completed).
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        self.latency().percentile(p)
    }
}

impl std::fmt::Display for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>8} {:>10} {:>12} {:>12} {:>9} {:>8} {:>8}",
            "shard", "sessions", "queue", "samples/s", "samples out", "packets", "busy", "dropped"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>5} {:>8} {:>10} {:>12.0} {:>12} {:>9} {:>8} {:>8}",
                s.shard,
                s.open_sessions,
                s.queue_depth_samples,
                s.samples_per_sec,
                s.samples_out,
                s.packets_processed,
                s.busy_rejections,
                s.dropped_samples,
            )?;
        }
        let fmt_ms = |p: Option<f64>| match p {
            Some(v) => format!("{:.3} ms", v * 1e3),
            None => "-".to_string(),
        };
        writeln!(
            f,
            "total: {:.0} samples/s over {:.2} s; {} plans; latency p50 {} / p95 {} / p99 {}",
            self.samples_per_sec(),
            self.elapsed.as_secs_f64(),
            self.plans_built(),
            fmt_ms(self.latency_percentile(50.0)),
            fmt_ms(self.latency_percentile(95.0)),
            fmt_ms(self.latency_percentile(99.0)),
        )?;
        let spo2 = self.spo2_stats();
        if let (Some(min), Some(mean), Some(max)) = (spo2.min(), spo2.mean(), spo2.max()) {
            writeln!(
                f,
                "spo2:  {} windows; min {:.3} / mean {:.3} / max {:.3}",
                spo2.count(),
                min,
                mean,
                max,
            )?;
        }
        Ok(())
    }
}
