//! Serving telemetry: per-shard counters and point-in-time snapshots.

use dhf_metrics::LatencyHistogram;
use dhf_obs::{HighWatermark, PromText, StageBreakdown};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Live per-shard counters, shared between the manager (writers on the
/// push path) and the worker thread (writers on the processing path).
/// Everything hot is an atomic; the latency histogram takes a lock once
/// per processed packet, and the stage breakdown once per worker wakeup
/// (the worker drains its thread-local span ring in bulk).
#[derive(Debug)]
pub(crate) struct ShardCounters {
    /// When the counters were created — the epoch `last_activity_nanos`
    /// is measured against.
    t0: Instant,
    pub(crate) samples_in: AtomicU64,
    pub(crate) samples_out: AtomicU64,
    pub(crate) blocks_emitted: AtomicU64,
    pub(crate) packets_processed: AtomicU64,
    pub(crate) batches_run: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) dropped_samples: AtomicU64,
    pub(crate) spo2_updates: AtomicU64,
    pub(crate) plans_built: AtomicU64,
    /// Deep-prior fits resumed from carried-over weights (warm starts).
    pub(crate) warm_hits: AtomicU64,
    /// Deep-prior fits trained from scratch.
    pub(crate) cold_fits: AtomicU64,
    /// Weight snapshots currently parked in this shard's warm pool,
    /// awaiting a compatible new session.
    pub(crate) warm_pool_size: AtomicU64,
    /// Nanoseconds since `t0` at which the worker last finished a packet
    /// (0 = never). Advanced with one relaxed `fetch_max` per packet;
    /// bounds the *active* window for throughput so idle tails (a
    /// snapshot long after `shutdown`) don't dilute samples/s.
    last_activity_nanos: AtomicU64,
    /// Worst per-session ingestion backlog any push left behind.
    pub(crate) queue_depth_hwm: HighWatermark,
    /// Largest packet count one worker wakeup drained.
    pub(crate) batch_packets_hwm: HighWatermark,
    /// Largest session count one worker wakeup drained.
    pub(crate) batch_sessions_hwm: HighWatermark,
    pub(crate) latency: Mutex<LatencyHistogram>,
    pub(crate) spo2: Mutex<Spo2Stats>,
    /// Per-stage span aggregation, fed by the worker's ring drain (empty
    /// unless `dhf_obs` tracing is enabled).
    pub(crate) stages: Mutex<StageBreakdown>,
}

impl ShardCounters {
    pub(crate) fn new() -> Self {
        ShardCounters {
            t0: Instant::now(),
            samples_in: AtomicU64::new(0),
            samples_out: AtomicU64::new(0),
            blocks_emitted: AtomicU64::new(0),
            packets_processed: AtomicU64::new(0),
            batches_run: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            dropped_samples: AtomicU64::new(0),
            spo2_updates: AtomicU64::new(0),
            plans_built: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            cold_fits: AtomicU64::new(0),
            warm_pool_size: AtomicU64::new(0),
            last_activity_nanos: AtomicU64::new(0),
            queue_depth_hwm: HighWatermark::new(),
            batch_packets_hwm: HighWatermark::new(),
            batch_sessions_hwm: HighWatermark::new(),
            latency: Mutex::new(LatencyHistogram::for_serving()),
            spo2: Mutex::new(Spo2Stats::default()),
            stages: Mutex::new(StageBreakdown::new()),
        }
    }

    /// Marks "work just finished now" for the quiesce-aware throughput
    /// window. Called by the worker after each processed packet.
    pub(crate) fn touch(&self) {
        self.last_activity_nanos.fetch_max(self.t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        shard: usize,
        open_sessions: usize,
        queue_depth_samples: usize,
        elapsed: Duration,
    ) -> ShardSnapshot {
        let samples_out = self.samples_out.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        // The active window ends at the last processed packet, clamped to
        // the manager's wall clock (the two epochs differ by thread-spawn
        // microseconds).
        let active_secs =
            (self.last_activity_nanos.load(Ordering::Relaxed) as f64 * 1e-9).min(secs);
        ShardSnapshot {
            shard,
            open_sessions,
            queue_depth_samples,
            samples_in: self.samples_in.load(Ordering::Relaxed),
            samples_out,
            blocks_emitted: self.blocks_emitted.load(Ordering::Relaxed),
            packets_processed: self.packets_processed.load(Ordering::Relaxed),
            batches_run: self.batches_run.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            dropped_samples: self.dropped_samples.load(Ordering::Relaxed),
            spo2_updates: self.spo2_updates.load(Ordering::Relaxed),
            plans_built: self.plans_built.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            cold_fits: self.cold_fits.load(Ordering::Relaxed),
            warm_pool_size: self.warm_pool_size.load(Ordering::Relaxed),
            active_secs,
            samples_per_sec: if active_secs > 0.0 { samples_out as f64 / active_secs } else { 0.0 },
            queue_depth_hwm: self.queue_depth_hwm.get(),
            batch_packets_hwm: self.batch_packets_hwm.get(),
            batch_sessions_hwm: self.batch_sessions_hwm.get(),
            latency: self.latency.lock().unwrap().clone(),
            spo2: self.spo2.lock().unwrap().clone(),
            stages: self.stages.lock().unwrap().clone(),
        }
    }
}

/// Aggregate statistics over every SpO2 window a shard's oximetry
/// sessions emitted — the fleet-level trend view (count, range, mean)
/// without shipping every sample through telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct Spo2Stats {
    count: u64,
    sum: f64,
    /// Exact observed extremes (NaN until the first record).
    min_seen: f64,
    max_seen: f64,
}

impl Default for Spo2Stats {
    fn default() -> Self {
        Spo2Stats { count: 0, sum: 0.0, min_seen: f64::NAN, max_seen: f64::NAN }
    }
}

impl Spo2Stats {
    /// Adds one SpO2 window value. Non-finite values are ignored.
    pub(crate) fn record(&mut self, spo2: f64) {
        if !spo2.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += spo2;
        if self.min_seen.is_nan() || spo2 < self.min_seen {
            self.min_seen = spo2;
        }
        if self.max_seen.is_nan() || spo2 > self.max_seen {
            self.max_seen = spo2;
        }
    }

    /// Folds another shard's statistics into this one.
    pub(crate) fn merge(&mut self, other: &Spo2Stats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        if self.min_seen.is_nan() || other.min_seen < self.min_seen {
            self.min_seen = other.min_seen;
        }
        if self.max_seen.is_nan() || other.max_seen > self.max_seen {
            self.max_seen = other.max_seen;
        }
    }

    /// SpO2 windows recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded SpO2 (the fleet's deepest observed
    /// desaturation), or `None` before the first window.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min_seen)
        }
    }

    /// Largest recorded SpO2, or `None` before the first window.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max_seen)
        }
    }

    /// Mean recorded SpO2, or `None` before the first window.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Point-in-time view of one worker shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index in `[0, workers)`.
    pub shard: usize,
    /// Sessions currently owned by this shard.
    pub open_sessions: usize,
    /// Samples waiting in this shard's ingestion queues right now.
    pub queue_depth_samples: usize,
    /// Samples accepted into this shard's queues since start.
    pub samples_in: u64,
    /// Separated samples emitted by this shard since start.
    pub samples_out: u64,
    /// Output blocks delivered to mailboxes.
    pub blocks_emitted: u64,
    /// Ingest packets run through session engines.
    pub packets_processed: u64,
    /// Scheduling batches executed (one batch = one lock acquisition
    /// draining every ready queue; packets-per-batch is the measure of how
    /// well the scheduler amortizes wakeups).
    pub batches_run: u64,
    /// Pushes rejected by the `Busy` backpressure policy.
    pub busy_rejections: u64,
    /// Samples evicted by `DropOldest` or skipped after a session failure.
    pub dropped_samples: u64,
    /// SpO2 windows emitted by this shard's oximetry sessions.
    pub spo2_updates: u64,
    /// FFT plans built by this shard's session engines, booked
    /// incrementally: the delta after every scheduling batch a session
    /// ran in, plus a residual at close for anything the flush builds.
    /// A healthy fleet of same-shape sessions keeps this near a small
    /// constant per session: every steady-state chunk reuses the plans
    /// (and the SoA spectrogram workspace) built by its session's first
    /// chunk, so the gauge plateaus once sessions are warm.
    pub plans_built: u64,
    /// Deep-prior fits this shard's engines resumed warm from a previous
    /// chunk's (or a pooled predecessor session's) weights. Zero unless
    /// sessions enable warm starting
    /// ([`dhf_stream::StreamingConfig::with_warm_start`]).
    pub warm_hits: u64,
    /// Deep-prior fits this shard's engines trained from scratch (every
    /// fit when warm starting is off; first chunks and discontinuity
    /// fallbacks when it is on).
    pub cold_fits: u64,
    /// Weight snapshots currently parked in the shard's warm pool:
    /// captured from closed warm sessions, waiting to seed the next
    /// session opened with the same shape (sample rate, source count,
    /// streaming configuration).
    pub warm_pool_size: u64,
    /// Length of the shard's *active* window in seconds: manager start
    /// until the worker last finished a packet (0 while nothing has been
    /// processed), clamped to the snapshot's wall clock.
    pub active_secs: f64,
    /// `samples_out` over the shard's active window (see
    /// [`active_secs`](ShardSnapshot::active_secs)) — the shard's
    /// sustained separation throughput, unaffected by how long after
    /// quiescing the snapshot is taken.
    pub samples_per_sec: f64,
    /// Worst per-session ingestion backlog (samples) any push left
    /// behind on this shard.
    pub queue_depth_hwm: u64,
    /// Largest packet count one worker wakeup drained in a single batch.
    pub batch_packets_hwm: u64,
    /// Largest session count one worker wakeup drained in a single
    /// batch.
    pub batch_sessions_hwm: u64,
    /// Ingestion latency distribution in seconds, one record per packet:
    /// enqueue (push accepted) until the worker finished processing the
    /// packet — at which point any output the packet completed is in the
    /// mailbox. Packets that only buffer (no chunk boundary crossed)
    /// record their queue+ingest time; the per-*sample* output latency is
    /// additionally bounded by the streaming config's one-chunk latency.
    pub latency: LatencyHistogram,
    /// Aggregate SpO2 trend statistics over this shard's oximetry
    /// sessions (empty if the shard serves none).
    pub spo2: Spo2Stats,
    /// Per-stage latency breakdown from `dhf_obs` spans drained by this
    /// shard's worker (empty unless tracing was enabled — see
    /// [`dhf_obs::set_enabled`]).
    pub stages: StageBreakdown,
}

/// Snapshot of the whole runtime, taken by
/// [`SessionManager::telemetry`](crate::SessionManager::telemetry).
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// Time since the manager started.
    pub elapsed: Duration,
    /// One snapshot per worker shard, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl Telemetry {
    /// Total samples accepted across shards.
    pub fn samples_in(&self) -> u64 {
        self.shards.iter().map(|s| s.samples_in).sum()
    }

    /// Total separated samples emitted across shards.
    pub fn samples_out(&self) -> u64 {
        self.shards.iter().map(|s| s.samples_out).sum()
    }

    /// Total samples evicted or skipped across shards.
    pub fn dropped_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_samples).sum()
    }

    /// Total pushes rejected with `Busy` across shards.
    pub fn busy_rejections(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_rejections).sum()
    }

    /// Total SpO2 windows emitted across shards.
    pub fn spo2_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.spo2_updates).sum()
    }

    /// Total FFT plans built by session engines across shards — the
    /// fleet-wide plan-cache pressure gauge, live for open sessions
    /// (booked per scheduling batch, not deferred to session close).
    pub fn plans_built(&self) -> u64 {
        self.shards.iter().map(|s| s.plans_built).sum()
    }

    /// Total deep-prior fits resumed warm across shards.
    pub fn warm_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.warm_hits).sum()
    }

    /// Total deep-prior fits trained from scratch across shards.
    pub fn cold_fits(&self) -> u64 {
        self.shards.iter().map(|s| s.cold_fits).sum()
    }

    /// Total weight snapshots parked in shard warm pools right now.
    pub fn warm_pool_size(&self) -> u64 {
        self.shards.iter().map(|s| s.warm_pool_size).sum()
    }

    /// All shards' SpO2 trend statistics merged into one fleet-wide view.
    pub fn spo2_stats(&self) -> Spo2Stats {
        let mut merged = Spo2Stats::default();
        for s in &self.shards {
            merged.merge(&s.spo2);
        }
        merged
    }

    /// Length of the fleet's active window in seconds: manager start
    /// until *any* worker last finished a packet. 0 while nothing has
    /// been processed.
    pub fn active_secs(&self) -> f64 {
        self.shards.iter().map(|s| s.active_secs).fold(0.0, f64::max)
    }

    /// Aggregate separation throughput in samples per second, measured
    /// over the **active window** ([`active_secs`](Telemetry::active_secs)):
    /// manager start until the last packet any worker finished. A
    /// snapshot taken after [`shutdown`](crate::SessionManager::shutdown)
    /// — or after any idle tail — therefore reports the rate the fleet
    /// actually sustained while working, not that rate diluted by wall
    /// time spent quiesced. 0.0 before the first processed packet.
    pub fn samples_per_sec(&self) -> f64 {
        let secs = self.active_secs();
        if secs > 0.0 {
            self.samples_out() as f64 / secs
        } else {
            0.0
        }
    }

    /// All shards' stage breakdowns merged into one fleet-wide view
    /// (empty unless `dhf_obs` tracing was enabled during the run).
    pub fn stage_breakdown(&self) -> StageBreakdown {
        let mut merged = StageBreakdown::new();
        for s in &self.shards {
            merged.merge(&s.stages);
        }
        merged
    }

    /// Worst per-session ingestion backlog (samples) across the fleet.
    pub fn queue_depth_hwm(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_depth_hwm).max().unwrap_or(0)
    }

    /// Largest packet batch any worker drained in one wakeup.
    pub fn batch_packets_hwm(&self) -> u64 {
        self.shards.iter().map(|s| s.batch_packets_hwm).max().unwrap_or(0)
    }

    /// Largest session batch any worker drained in one wakeup.
    pub fn batch_sessions_hwm(&self) -> u64 {
        self.shards.iter().map(|s| s.batch_sessions_hwm).max().unwrap_or(0)
    }

    /// All shards' latency histograms merged into one fleet-wide view.
    pub fn latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::for_serving();
        for s in &self.shards {
            merged.merge(&s.latency);
        }
        merged
    }

    /// Fleet-wide enqueue→processed latency percentile in seconds
    /// (`None` before any packet completed).
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        self.latency().percentile(p)
    }

    /// Renders the snapshot as a Prometheus text exposition (format
    /// 0.0.4): per-shard counters and gauges, the fleet ingestion-latency
    /// summary, and — when tracing was enabled — one `dhf_stage_seconds`
    /// summary per pipeline stage.
    pub fn prometheus(&self) -> String {
        let mut prom = PromText::new();
        struct Counter(&'static str, &'static str, fn(&ShardSnapshot) -> f64);
        let counters = [
            Counter("dhf_samples_in_total", "Samples accepted into ingestion queues", |s| {
                s.samples_in as f64
            }),
            Counter("dhf_samples_out_total", "Separated samples emitted", |s| s.samples_out as f64),
            Counter("dhf_packets_total", "Ingest packets run through session engines", |s| {
                s.packets_processed as f64
            }),
            Counter("dhf_batches_total", "Scheduling batches executed", |s| s.batches_run as f64),
            Counter("dhf_busy_rejections_total", "Pushes rejected by backpressure", |s| {
                s.busy_rejections as f64
            }),
            Counter("dhf_dropped_samples_total", "Samples evicted or skipped", |s| {
                s.dropped_samples as f64
            }),
            Counter("dhf_spo2_updates_total", "SpO2 windows emitted", |s| s.spo2_updates as f64),
            Counter("dhf_plans_built_total", "FFT plans built by session engines", |s| {
                s.plans_built as f64
            }),
            Counter("dhf_warm_fits_total", "Deep-prior fits resumed from warm weights", |s| {
                s.warm_hits as f64
            }),
            Counter("dhf_cold_fits_total", "Deep-prior fits trained from scratch", |s| {
                s.cold_fits as f64
            }),
        ];
        for Counter(name, help, get) in counters {
            prom.help(name, help, "counter");
            for s in &self.shards {
                let shard = s.shard.to_string();
                prom.sample(name, &[("shard", &shard)], get(s));
            }
        }
        struct Gauge(&'static str, &'static str, fn(&ShardSnapshot) -> f64);
        let gauges = [
            Gauge("dhf_open_sessions", "Sessions currently owned by the shard", |s| {
                s.open_sessions as f64
            }),
            Gauge("dhf_queue_depth_samples", "Samples waiting in ingestion queues", |s| {
                s.queue_depth_samples as f64
            }),
            Gauge(
                "dhf_queue_depth_hwm_samples",
                "Worst per-session ingestion backlog observed",
                |s| s.queue_depth_hwm as f64,
            ),
            Gauge("dhf_batch_packets_hwm", "Largest packet batch one wakeup drained", |s| {
                s.batch_packets_hwm as f64
            }),
            Gauge("dhf_batch_sessions_hwm", "Largest session batch one wakeup drained", |s| {
                s.batch_sessions_hwm as f64
            }),
            Gauge("dhf_warm_pool_size", "Weight snapshots parked in the shard warm pool", |s| {
                s.warm_pool_size as f64
            }),
        ];
        for Gauge(name, help, get) in gauges {
            prom.help(name, help, "gauge");
            for s in &self.shards {
                let shard = s.shard.to_string();
                prom.sample(name, &[("shard", &shard)], get(s));
            }
        }
        prom.help(
            "dhf_samples_per_sec",
            "Fleet separation throughput over the active window",
            "gauge",
        );
        prom.sample("dhf_samples_per_sec", &[], self.samples_per_sec());
        prom.help(
            "dhf_ingest_latency_seconds",
            "Enqueue-to-processed packet latency (fleet)",
            "summary",
        );
        prom.summary("dhf_ingest_latency_seconds", &[], &self.latency());
        let stages = self.stage_breakdown();
        if !stages.is_empty() {
            prom.help(
                "dhf_stage_seconds",
                "Per-stage pipeline latency from dhf_obs spans (fleet)",
                "summary",
            );
            prom.stage_summaries("dhf_stage_seconds", &[], &stages);
        }
        prom.render()
    }
}

impl std::fmt::Display for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>8} {:>10} {:>12} {:>12} {:>9} {:>8} {:>8} {:>7} {:>6} {:>6} {:>6} {:>7}",
            "shard",
            "sessions",
            "queue",
            "samples/s",
            "samples out",
            "packets",
            "busy",
            "dropped",
            "plans",
            "warm",
            "cold",
            "pool",
            "spo2",
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>5} {:>8} {:>10} {:>12.0} {:>12} {:>9} {:>8} {:>8} {:>7} {:>6} {:>6} {:>6} \
                 {:>7}",
                s.shard,
                s.open_sessions,
                s.queue_depth_samples,
                s.samples_per_sec,
                s.samples_out,
                s.packets_processed,
                s.busy_rejections,
                s.dropped_samples,
                s.plans_built,
                s.warm_hits,
                s.cold_fits,
                s.warm_pool_size,
                s.spo2_updates,
            )?;
        }
        let fmt_ms = |p: Option<f64>| match p {
            Some(v) => format!("{:.3} ms", v * 1e3),
            None => "-".to_string(),
        };
        writeln!(
            f,
            "total: {:.0} samples/s over {:.2} s active ({:.2} s wall); {} plans; \
             {} warm / {} cold fits ({} pooled); latency p50 {} / p95 {} / p99 {}",
            self.samples_per_sec(),
            self.active_secs(),
            self.elapsed.as_secs_f64(),
            self.plans_built(),
            self.warm_hits(),
            self.cold_fits(),
            self.warm_pool_size(),
            fmt_ms(self.latency_percentile(50.0)),
            fmt_ms(self.latency_percentile(95.0)),
            fmt_ms(self.latency_percentile(99.0)),
        )?;
        let spo2 = self.spo2_stats();
        if let (Some(min), Some(mean), Some(max)) = (spo2.min(), spo2.mean(), spo2.max()) {
            writeln!(
                f,
                "spo2:  {} windows; min {:.3} / mean {:.3} / max {:.3}",
                spo2.count(),
                min,
                mean,
                max,
            )?;
        }
        // Stage-level breakdown, right-aligned under the shard table
        // (only rendered when tracing captured something).
        let stages = self.stage_breakdown();
        if !stages.is_empty() {
            writeln!(f, "stages (fleet, dhf_obs tracing):")?;
            for line in stages.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}
