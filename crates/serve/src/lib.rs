//! **DHF serving runtime** — multiplexing many concurrent streaming
//! separation sessions over a fixed pool of worker threads.
//!
//! [`dhf_stream::StreamingSeparator`] gives one bounded-latency session;
//! a wearable fleet needs thousands of them, and naively spawning one
//! thread per stream wastes cores on idle sessions and cold caches. This
//! crate adds the missing layer:
//!
//! ```text
//! clients ──► SessionManager ──hash(id)──► shard 0 [worker thread]
//!   open        │ bounded per-session     ├─ session a: StreamingSeparator
//!   push        │ ingestion queues        └─ session b: StreamingSeparator
//!   poll        ├──────────────────────► shard 1 [worker thread]
//!   close       │  Busy / DropOldest      └─ session c: ...
//!   shutdown    ▼  backpressure
//!            Telemetry: per-shard samples/sec, queue depths, latency p50/p95/p99
//! ```
//!
//! * **Sharding** — each session is hash-assigned to one worker at open
//!   and pinned for life. A worker is the only thread that ever runs its
//!   sessions' separators, so cached FFT plans, window tables, and
//!   spectrogram buffers (plus the worker thread's thread-local planner
//!   behind `dhf_dsp`'s free-function API) stay hot across all of the
//!   shard's sessions with zero synchronization on the separation path.
//! * **Batched scheduling** — a worker drains every ready queue in one
//!   lock acquisition and then separates packet after packet, session by
//!   session, while clients keep enqueuing concurrently.
//! * **Backpressure** — per-session bounded ingestion queues either
//!   reject overflowing pushes ([`BackpressurePolicy::Busy`]) or evict
//!   the oldest queued packets ([`BackpressurePolicy::DropOldest`]).
//! * **Telemetry** — [`Telemetry`] snapshots per-shard throughput, queue
//!   depth, and per-packet enqueue→processed latency percentiles backed by
//!   [`dhf_metrics::LatencyHistogram`].
//! * **Session kinds** — a session either serves raw separation
//!   ([`SessionManager::open`]: one channel in, source blocks out) or the
//!   paper's end task, transabdominal fetal oximetry
//!   ([`SessionManager::open_oximetry`]: two sample-aligned wavelength
//!   channels in via [`SessionManager::push_oximetry`], windowed SpO2
//!   estimates out in [`SessionOutput::spo2`], fleet-wide trend
//!   statistics in [`Spo2Stats`]).
//!
//! The runtime is std-only (`std::thread` + mutex/condvar) and
//! deterministic per session: a session's output depends only on the
//! samples it accepted, never on scheduling — the serve-vs-serial
//! property test asserts bit-identical equality against a plain
//! [`dhf_stream::StreamingSeparator`] run.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod manager;
mod session;
mod shard;
mod telemetry;

pub use config::{BackpressurePolicy, ServeConfig};
pub use manager::{SessionManager, ShutdownReport};
pub use session::{CloseOutcome, PushReceipt, SessionId, SessionKind, SessionOutput};
pub use telemetry::{ShardSnapshot, Spo2Stats, Telemetry};

use dhf_oximetry::OximetryError;
use dhf_stream::StreamError;

/// Errors from the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A [`ServeConfig`] parameter was outside its valid domain.
    Config {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The session id was never opened or has been closed.
    UnknownSession(SessionId),
    /// The request used the wrong API for the session's kind (e.g.
    /// [`SessionManager::push`](crate::SessionManager::push) on an
    /// oximetry session). Nothing was buffered.
    KindMismatch {
        /// The addressed session.
        session: SessionId,
        /// The session's actual kind.
        kind: SessionKind,
    },
    /// Synchronous open/push validation failed; nothing was buffered.
    Session(StreamError),
    /// Oximetry-specific open/push validation failed (bad
    /// [`dhf_oximetry::OximetryConfig`], or misaligned wavelength
    /// channels); nothing was buffered.
    Oximetry(OximetryError),
    /// The push would overflow the session's bounded ingestion queue
    /// under [`BackpressurePolicy::Busy`] (or the packet alone exceeds
    /// the capacity). Retry after draining via
    /// [`SessionManager::poll`](crate::SessionManager::poll) or a pause.
    Busy {
        /// The backpressured session.
        session: SessionId,
        /// Samples already queued.
        queued_samples: usize,
        /// Samples the rejected push carried.
        incoming: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// A chunk separation failed earlier on the worker; the sticky error
    /// is attached. The session still answers `poll`/`close`.
    SessionFailed {
        /// The failed session.
        session: SessionId,
        /// The failure recorded by the worker.
        error: StreamError,
    },
    /// A shard's worker thread terminated unexpectedly (a panic in the
    /// separation engine). Sessions on other shards are unaffected.
    WorkerLost {
        /// Index of the dead shard.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { name, message } => {
                write!(f, "invalid serving parameter `{name}`: {message}")
            }
            ServeError::UnknownSession(id) => write!(f, "{id} is not open"),
            ServeError::KindMismatch { session, kind } => {
                write!(f, "{session} is a {kind} session; use the matching push API")
            }
            ServeError::Session(e) => write!(f, "session rejected the request: {e}"),
            ServeError::Oximetry(e) => write!(f, "oximetry session rejected the request: {e}"),
            ServeError::Busy { session, queued_samples, incoming, capacity } => write!(
                f,
                "{session} is busy: {queued_samples} samples queued, push of {incoming} \
                 exceeds capacity {capacity}"
            ),
            ServeError::SessionFailed { session, error } => {
                write!(f, "{session} failed: {error}")
            }
            ServeError::WorkerLost { shard } => write!(f, "worker for shard {shard} is gone"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session(e) | ServeError::SessionFailed { error: e, .. } => Some(e),
            ServeError::Oximetry(e) => Some(e),
            _ => None,
        }
    }
}
