//! Session identity, results, and the manager↔worker output mailbox.

use dhf_oximetry::Spo2Sample;
use dhf_stream::{StreamBlock, StreamError};
use std::sync::Mutex;

/// What a session computes: raw source separation, or the full oximetry
/// pipeline on top of it.
///
/// The kind is fixed at open time
/// ([`SessionManager::open`](crate::SessionManager::open) vs
/// [`open_oximetry`](crate::SessionManager::open_oximetry)) and selects
/// the matching push API; using the wrong one fails with
/// [`ServeError::KindMismatch`](crate::ServeError::KindMismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// One mixed channel in, per-source separated blocks out.
    Separation,
    /// Two sample-aligned wavelength channels in, windowed SpO2 samples
    /// out (paper §4.3 — the fetal-oximetry end task).
    Oximetry,
}

impl std::fmt::Display for SessionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionKind::Separation => write!(f, "separation"),
            SessionKind::Oximetry => write!(f, "oximetry"),
        }
    }
}

/// Opaque handle of one open streaming session.
///
/// Ids are unique over a [`SessionManager`](crate::SessionManager)'s
/// lifetime and never reused, so a stale handle fails with
/// [`ServeError::UnknownSession`](crate::ServeError::UnknownSession)
/// instead of addressing somebody else's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Accepted-push acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReceipt {
    /// Samples waiting in the session's ingestion queue after this push
    /// (including the pushed packet) — a live backpressure signal.
    pub queued_samples: usize,
    /// Samples this push evicted under
    /// [`BackpressurePolicy::DropOldest`](crate::BackpressurePolicy::DropOldest)
    /// (always 0 under `Busy`).
    pub dropped_samples: usize,
}

/// Output collected by [`SessionManager::poll`](crate::SessionManager::poll).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionOutput {
    /// Separated blocks emitted since the previous poll, contiguous and in
    /// stream order (always empty for oximetry sessions).
    pub blocks: Vec<StreamBlock>,
    /// Windowed SpO2 estimates emitted since the previous poll, in stream
    /// order (always empty for separation sessions).
    pub spo2: Vec<Spo2Sample>,
    /// Sticky failure: a chunk separation failed on the worker. The
    /// session stays addressable (so this can be observed and the session
    /// closed), but further pushes are rejected.
    pub error: Option<StreamError>,
}

/// Result of closing a session: everything the stream still owed.
#[derive(Debug, Clone, PartialEq)]
pub struct CloseOutcome {
    /// Blocks not yet polled, including the final flushed remainder
    /// (separation sessions only).
    pub blocks: Vec<StreamBlock>,
    /// SpO2 windows not yet polled, including those the final flush
    /// completed (oximetry sessions only).
    pub spo2: Vec<Spo2Sample>,
    /// Trailing samples the final flush could not cover (too short for one
    /// analysis window), plus any queued samples skipped because the
    /// session had already failed.
    pub dropped_samples: usize,
    /// The session's sticky failure, if it had one.
    pub error: Option<StreamError>,
}

impl CloseOutcome {
    /// Concatenates the outcome's blocks into one vector per source.
    pub fn into_sources(self) -> Vec<Vec<f64>> {
        let n_sources = self.blocks.first().map_or(0, |b| b.sources.len());
        let mut out = vec![Vec::new(); n_sources];
        for b in self.blocks {
            for (src, est) in b.sources.iter().enumerate() {
                out[src].extend_from_slice(est);
            }
        }
        out
    }
}

/// Worker→client mailbox, shared by `Arc`: the worker appends blocks as
/// chunks complete; `poll` drains them without touching the shard lock.
#[derive(Debug, Default)]
pub(crate) struct SessionShared {
    pub(crate) mailbox: Mutex<Mailbox>,
}

#[derive(Debug, Default)]
pub(crate) struct Mailbox {
    pub(crate) blocks: Vec<StreamBlock>,
    pub(crate) spo2: Vec<Spo2Sample>,
    pub(crate) error: Option<StreamError>,
}
