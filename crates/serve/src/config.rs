//! Serving-runtime configuration.

use crate::ServeError;

/// What a [`SessionManager`](crate::SessionManager) does when a push would
/// overflow a session's bounded ingestion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Reject the push with [`ServeError::Busy`]; the caller retries
    /// later. Lossless — nothing already queued is touched.
    #[default]
    Busy,
    /// Evict the oldest queued packets until the new one fits, then accept
    /// it. Lossy but wait-free — the freshest data always gets in, which
    /// is the right trade for live monitoring dashboards. Evicted samples
    /// are reported in the [`PushReceipt`](crate::PushReceipt) and counted
    /// in telemetry; the session's engine never sees them, so its output
    /// stream compacts over the gap.
    DropOldest,
}

/// Configuration of a [`SessionManager`](crate::SessionManager).
///
/// `workers` fixes the shard count: sessions are hash-sharded onto workers
/// at open and never migrate afterwards, so each worker thread's FFT plan
/// and window caches (both the per-session [`dhf_core::RoundContext`] and
/// the thread-local planner behind `dhf_dsp`'s free functions) stay hot
/// across all of its sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    workers: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
}

impl ServeConfig {
    /// Creates a configuration with `workers` shard threads, the default
    /// per-session queue capacity (30 000 samples — five minutes of a
    /// 100 Hz PPG stream), and [`BackpressurePolicy::Busy`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `workers` is zero.
    pub fn new(workers: usize) -> Result<Self, ServeError> {
        if workers == 0 {
            return Err(ServeError::Config {
                name: "workers",
                message: "need at least one worker shard".into(),
            });
        }
        Ok(ServeConfig { workers, queue_capacity: 30_000, backpressure: BackpressurePolicy::Busy })
    }

    /// Sets the per-session ingestion-queue capacity in samples.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `samples` is zero.
    pub fn with_queue_capacity(mut self, samples: usize) -> Result<Self, ServeError> {
        if samples == 0 {
            return Err(ServeError::Config {
                name: "queue_capacity",
                message: "must be positive".into(),
            });
        }
        self.queue_capacity = samples;
        Ok(self)
    }

    /// Sets the backpressure policy applied when a push overflows a
    /// session's queue.
    pub fn with_backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-session ingestion-queue capacity in samples.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The configured backpressure policy.
    pub fn backpressure(&self) -> BackpressurePolicy {
        self.backpressure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(matches!(ServeConfig::new(0), Err(ServeError::Config { name: "workers", .. })));
        let cfg = ServeConfig::new(4).unwrap();
        assert_eq!(cfg.workers(), 4);
        assert_eq!(cfg.backpressure(), BackpressurePolicy::Busy);
        assert!(cfg.clone().with_queue_capacity(0).is_err());
        let cfg = cfg.with_queue_capacity(1234).unwrap();
        assert_eq!(cfg.queue_capacity(), 1234);
        let cfg = cfg.with_backpressure(BackpressurePolicy::DropOldest);
        assert_eq!(cfg.backpressure(), BackpressurePolicy::DropOldest);
    }
}
