//! One worker shard: its manager↔worker shared state and run loop.
//!
//! A shard owns the [`StreamingSeparator`]s of every session hashed onto
//! it and is the only thread that ever runs them, so each separator's
//! cached FFT plans and spectrogram buffers — and the worker thread's
//! thread-local planner behind `dhf_dsp`'s free functions — are reused
//! across all of the shard's sessions without any synchronization on the
//! separation hot path.
//!
//! Scheduling is batched: the worker takes the shard lock once, drains
//! *every* ready ingestion queue into a local work list, releases the
//! lock, and then processes each session's packets back to back. Clients
//! enqueue concurrently while the worker separates; consecutive packets
//! of one session run against hot per-session buffers.

use crate::session::{SessionKind, SessionShared};
use crate::telemetry::ShardCounters;
use crate::CloseOutcome;
use dhf_nn::WeightState;
use dhf_oximetry::{OximetryError, Spo2Sample, StreamingOximeter};
use dhf_stream::{StreamError, StreamingConfig, StreamingSeparator};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One queued ingest packet. For oximetry sessions `samples` carries λ1
/// and `samples2` the sample-aligned λ2 channel; separation packets leave
/// `samples2` empty.
#[derive(Debug)]
pub(crate) struct IngestItem {
    pub(crate) samples: Vec<f64>,
    pub(crate) samples2: Option<Vec<f64>>,
    pub(crate) tracks: Vec<Vec<f64>>,
    pub(crate) enqueued_at: Instant,
}

impl IngestItem {
    /// Logical stream samples in the packet (per channel — an oximetry
    /// packet's two channels advance the stream position together).
    fn len(&self) -> usize {
        self.samples.len()
    }
}

/// The per-session engine a worker drives: a bare streaming separator, or
/// the dual-wavelength oximeter built from two of them.
#[derive(Debug)]
pub(crate) enum Engine {
    /// Raw separation: one channel in, source blocks out.
    Separation(Box<StreamingSeparator>),
    /// Fetal oximetry: two channels in, SpO2 windows out.
    Oximetry(Box<StreamingOximeter>),
}

impl Engine {
    pub(crate) fn kind(&self) -> SessionKind {
        match self {
            Engine::Separation(_) => SessionKind::Separation,
            Engine::Oximetry(_) => SessionKind::Oximetry,
        }
    }

    /// FFT plans built by the engine's separation context(s) over the
    /// session's lifetime — constant after the first chunk of a steady
    /// stream, since every later chunk reuses the cached plans and the
    /// session's SoA spectrogram workspace.
    fn fft_plans_built(&self) -> usize {
        match self {
            Engine::Separation(sep) => sep.fft_plans_built(),
            Engine::Oximetry(ox) => ox.fft_plans_built(),
        }
    }

    /// Deep-prior fits the engine resumed warm (monotone over the
    /// session's lifetime; zero unless its config enables warm starting).
    fn warm_hits(&self) -> u64 {
        match self {
            Engine::Separation(sep) => sep.warm_hits(),
            Engine::Oximetry(ox) => ox.warm_hits(),
        }
    }

    /// Deep-prior fits the engine trained from scratch (monotone).
    fn cold_fits(&self) -> u64 {
        match self {
            Engine::Separation(sep) => sep.cold_fits(),
            Engine::Oximetry(ox) => ox.cold_fits(),
        }
    }
}

/// Per-shard pool of warm deep-prior weights captured from closed
/// sessions, keyed by session shape. A new session of the same shape
/// adopts a parked snapshot set at open, so its *first* chunk already
/// fine-tunes instead of training from scratch — the cross-session
/// analogue of the within-session warm carry.
///
/// Snapshot adoption is architecture-guarded downstream (a mismatched
/// snapshot is ignored at fit time with a cold fallback), so pooling is a
/// pure hint: a wrong match costs nothing but the missed shortcut.
#[derive(Default)]
pub(crate) struct WarmPool {
    entries: Vec<WarmPoolEntry>,
}

/// Parked snapshot sets for one session shape. Keys are compared
/// structurally (the pool is short — linear scan).
struct WarmPoolEntry {
    fs_bits: u64,
    n_sources: usize,
    cfg: StreamingConfig,
    /// LIFO of captured per-source snapshot sets (most recently closed
    /// session first — its weights are the freshest).
    sets: Vec<Vec<(usize, WeightState)>>,
}

/// Parked snapshot sets per shape — bounds pool memory under session
/// churn; the oldest sets are evicted first.
const WARM_POOL_PER_SHAPE: usize = 4;

impl WarmPool {
    fn position(&self, fs: f64, n_sources: usize, cfg: &StreamingConfig) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.fs_bits == fs.to_bits() && e.n_sources == n_sources && &e.cfg == cfg)
    }

    /// Parks a closed session's snapshot set.
    fn put(&mut self, sep: &StreamingSeparator, set: Vec<(usize, WeightState)>) {
        let (fs, n) = (sep.sample_rate(), sep.n_sources());
        let entry = match self.position(fs, n, sep.config()) {
            Some(i) => &mut self.entries[i],
            None => {
                self.entries.push(WarmPoolEntry {
                    fs_bits: fs.to_bits(),
                    n_sources: n,
                    cfg: sep.config().clone(),
                    sets: Vec::new(),
                });
                self.entries.last_mut().expect("just pushed")
            }
        };
        if entry.sets.len() == WARM_POOL_PER_SHAPE {
            entry.sets.remove(0);
        }
        entry.sets.push(set);
    }

    /// Takes the freshest parked snapshot set matching the session shape.
    fn take(&mut self, sep: &StreamingSeparator) -> Option<Vec<(usize, WeightState)>> {
        let i = self.position(sep.sample_rate(), sep.n_sources(), sep.config())?;
        let set = self.entries[i].sets.pop();
        if self.entries[i].sets.is_empty() {
            self.entries.remove(i);
        }
        set
    }

    /// Total parked snapshots across shapes (the telemetry gauge).
    fn snapshots(&self) -> u64 {
        self.entries.iter().flat_map(|e| e.sets.iter()).map(|s| s.len() as u64).sum()
    }

    /// Publishes the pool-size gauge.
    fn publish(&self, counters: &ShardCounters) {
        counters.warm_pool_size.store(self.snapshots(), Ordering::Relaxed);
    }
}

/// Lowers a worker-side oximetry failure to the mailbox's sticky
/// [`StreamError`]. Runtime failures are always separator errors
/// (`OximetryError::Stream`); the catch-all covers validation variants
/// that cannot occur past the manager's synchronous checks.
fn oximetry_stream_error(e: OximetryError) -> StreamError {
    match e {
        OximetryError::Stream(se) => se,
        other => StreamError::InvalidConfig { name: "oximetry", message: other.to_string() },
    }
}

/// A session's bounded ingestion queue (bounds enforced by the manager on
/// the push path; the worker only drains).
#[derive(Debug, Default)]
pub(crate) struct SessionQueue {
    pub(crate) items: VecDeque<IngestItem>,
    /// Samples currently queued (cached sum of item lengths).
    pub(crate) queued_samples: usize,
    /// Samples ever accepted into this queue — the session's absolute
    /// stream position for push-time validation messages.
    pub(crate) enqueued_total: usize,
}

/// Manager→worker commands. Session *data* does not travel as commands —
/// it flows through [`SessionQueue`]s — so the command queue stays short
/// and a slow separation never delays another session's enqueue.
pub(crate) enum Command {
    /// Register a freshly opened session. The engine was built (and
    /// validated) on the caller's thread and migrates here — the reason
    /// `StreamingSeparator` (and the oximeter wrapping two of them)
    /// carries a compile-time `Send` assertion. The engine's separators
    /// are boxed so the command enum stays small.
    Open { id: u64, engine: Engine, shared: Arc<SessionShared> },
    /// Close a session: run `leftovers` (the queue's remaining packets,
    /// removed by the manager in the same critical section that removed
    /// the queue), flush, and hand everything still unpolled back through
    /// `ack`.
    Close { id: u64, leftovers: Vec<IngestItem>, ack: Sender<CloseOutcome> },
}

/// State shared between the manager and one worker thread.
#[derive(Default)]
pub(crate) struct ShardShared {
    pub(crate) state: Mutex<ShardState>,
    pub(crate) cv: Condvar,
}

#[derive(Default)]
pub(crate) struct ShardState {
    pub(crate) commands: VecDeque<Command>,
    /// Ingestion queues keyed by session id. Created/removed by the
    /// manager (open/close), drained by the worker.
    pub(crate) queues: HashMap<u64, SessionQueue>,
    pub(crate) stop: bool,
}

/// A session as the worker sees it.
struct WorkerSession {
    engine: Engine,
    shared: Arc<SessionShared>,
    /// Set once a chunk separation fails; later packets are skipped (and
    /// counted as dropped) instead of grinding a broken stream.
    failed: bool,
    /// Samples the engine accepted (buffered), including the packet whose
    /// chunk failed. With `emitted`, closes the telemetry books: whatever
    /// was accepted but never emitted is reported as dropped at close.
    accepted: usize,
    /// Samples delivered to the mailbox (or handed back at close).
    emitted: usize,
    /// Samples skipped because the session had already failed — they
    /// never reached the engine, and are reported as dropped at close.
    skipped: usize,
    /// FFT plans already booked into the shard's `plans_built` gauge.
    /// Deltas are booked after every scheduling batch that ran this
    /// session (and once more at close, for anything the flush builds),
    /// so the fleet gauge tracks live sessions instead of staying flat
    /// at zero until the first close.
    plans_booked: usize,
    /// Warm fits already booked into the shard's `warm_hits` counter
    /// (delta booking, same scheme as `plans_booked`).
    warm_booked: u64,
    /// Cold fits already booked into the shard's `cold_fits` counter.
    cold_booked: u64,
}

/// Books any FFT plans the engine built since the last booking into the
/// shard's `plans_built` gauge. The engine's count is monotone, so the
/// delta is what this batch (or the close-time flush) actually added.
fn book_plan_delta(ws: &mut WorkerSession, counters: &ShardCounters) {
    let built = ws.engine.fft_plans_built();
    let delta = built.saturating_sub(ws.plans_booked);
    if delta > 0 {
        counters.plans_built.fetch_add(delta as u64, Ordering::Relaxed);
        ws.plans_booked = built;
    }
    let warm = ws.engine.warm_hits();
    let delta = warm.saturating_sub(ws.warm_booked);
    if delta > 0 {
        counters.warm_hits.fetch_add(delta, Ordering::Relaxed);
        ws.warm_booked = warm;
    }
    let cold = ws.engine.cold_fits();
    let delta = cold.saturating_sub(ws.cold_booked);
    if delta > 0 {
        counters.cold_fits.fetch_add(delta, Ordering::Relaxed);
        ws.cold_booked = cold;
    }
}

/// The worker run loop. Exits when `stop` is set and no commands remain.
pub(crate) fn run_worker(shared: Arc<ShardShared>, counters: Arc<ShardCounters>) {
    let mut sessions: HashMap<u64, WorkerSession> = HashMap::new();
    let mut warm_pool = WarmPool::default();
    loop {
        let (commands, mut batches, stop) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                let ready = st.stop
                    || !st.commands.is_empty()
                    || st.queues.values().any(|q| !q.items.is_empty());
                if ready {
                    break;
                }
                st = shared.cv.wait(st).unwrap();
            }
            let commands: Vec<Command> = st.commands.drain(..).collect();
            let mut batches: Vec<(u64, Vec<IngestItem>)> = Vec::new();
            for (&id, q) in st.queues.iter_mut() {
                if !q.items.is_empty() {
                    q.queued_samples = 0;
                    batches.push((id, q.items.drain(..).collect()));
                }
            }
            (commands, batches, st.stop)
        };

        if stop && commands.is_empty() && batches.is_empty() {
            return;
        }

        // Commands in arrival order. An `Open` always precedes anything
        // else for its id; a `Close` carries its queue's leftovers
        // in-band, and a batch drained in the same critical section as a
        // `Close` is impossible (the close removed the queue first) — so
        // per-session ordering is preserved without cross-checks.
        for cmd in commands {
            match cmd {
                Command::Open { id, mut engine, shared } => {
                    // Seed a warm session from the pool: the freshest
                    // snapshot set a same-shape closed session left
                    // behind lets the first chunk fine-tune instead of
                    // training cold.
                    if let Engine::Separation(sep) = &mut engine {
                        if sep.config().warm_start().is_some() {
                            if let Some(set) = warm_pool.take(sep) {
                                sep.import_warm_state(set);
                                warm_pool.publish(&counters);
                            }
                        }
                    }
                    let ws = WorkerSession {
                        engine,
                        shared,
                        failed: false,
                        accepted: 0,
                        emitted: 0,
                        skipped: 0,
                        plans_booked: 0,
                        warm_booked: 0,
                        cold_booked: 0,
                    };
                    sessions.insert(id, ws);
                }
                Command::Close { id, leftovers, ack } => {
                    let outcome = match sessions.remove(&id) {
                        Some(mut ws) => {
                            let out = close_session(&mut ws, leftovers, &counters);
                            // Park the session's trained weights for the
                            // next same-shape session (healthy sessions
                            // only — a failed stream's weights may track
                            // a corrupt target).
                            if !ws.failed {
                                if let Engine::Separation(sep) = &ws.engine {
                                    let set = sep.export_warm_state();
                                    if !set.is_empty() {
                                        warm_pool.put(sep, set);
                                        warm_pool.publish(&counters);
                                    }
                                }
                            }
                            // Drain before acking: a telemetry snapshot
                            // taken right after close() returns must see
                            // the spans the close just produced.
                            drain_spans(&counters);
                            out
                        }
                        // Unreachable through the manager API (the entry
                        // existed until this command), but don't wedge the
                        // caller if it ever happens.
                        None => CloseOutcome {
                            blocks: Vec::new(),
                            spo2: Vec::new(),
                            dropped_samples: 0,
                            error: None,
                        },
                    };
                    // A vanished caller is not the worker's problem.
                    let _ = ack.send(outcome);
                }
            }
        }

        // The batch: every ready session's packets, back to back per
        // session. Id order keeps scheduling reproducible run to run.
        batches.sort_unstable_by_key(|(id, _)| *id);
        if !batches.is_empty() {
            counters.batches_run.fetch_add(1, Ordering::Relaxed);
            counters.batch_sessions_hwm.observe(batches.len() as u64);
            counters
                .batch_packets_hwm
                .observe(batches.iter().map(|(_, items)| items.len() as u64).sum());
            let batch_span = dhf_obs::span(dhf_obs::Stage::BatchRun);
            for (id, items) in batches {
                // A batch can outlive its session only by racing a close,
                // and close drains the queue first — but stay defensive.
                if let Some(ws) = sessions.get_mut(&id) {
                    for item in items {
                        process_item(ws, item, &counters);
                    }
                    book_plan_delta(ws, &counters);
                }
            }
            drop(batch_span);
        }
        drain_spans(&counters);
    }
}

/// Moves the worker thread's accumulated span events into the shard's
/// stage breakdown. Called once per wakeup, after commands and batches —
/// the pending check keeps the no-tracing path lock-free.
fn drain_spans(counters: &ShardCounters) {
    if dhf_obs::pending_events() > 0 {
        dhf_obs::drain_thread_into(&mut counters.stages.lock().unwrap());
    }
}

/// Runs one ingest packet through its session's engine, delivers any
/// completed blocks (or SpO2 windows) to the mailbox, and records
/// telemetry. A packet arriving after the session failed is skipped
/// (tallied in `WorkerSession::skipped` for the close-time books and in
/// the shard's dropped counter immediately).
fn process_item(ws: &mut WorkerSession, item: IngestItem, counters: &ShardCounters) {
    // Queue wait is scheduling cost, real whether or not the engine runs.
    dhf_obs::record(dhf_obs::Stage::QueueWait, item.enqueued_at.elapsed().as_secs_f64());
    if ws.failed {
        ws.skipped += item.len();
        counters.dropped_samples.fetch_add(item.len() as u64, Ordering::Relaxed);
        return;
    }
    let track_refs: Vec<&[f64]> = item.tracks.iter().map(Vec::as_slice).collect();
    // The manager validated the packet, so an error here is a chunk
    // separation failure — which happens *after* the engine buffered the
    // samples. Either way the engine accepted them.
    ws.accepted += item.len();
    let run_span = dhf_obs::span(dhf_obs::Stage::EngineRun);
    match &mut ws.engine {
        Engine::Separation(sep) => match sep.push(&item.samples, &track_refs) {
            Ok(blocks) => {
                if !blocks.is_empty() {
                    let emitted: usize = blocks.iter().map(|b| b.len()).sum();
                    ws.emitted += emitted;
                    counters.samples_out.fetch_add(emitted as u64, Ordering::Relaxed);
                    counters.blocks_emitted.fetch_add(blocks.len() as u64, Ordering::Relaxed);
                    ws.shared.mailbox.lock().unwrap().blocks.extend(blocks);
                }
            }
            Err(e) => {
                ws.failed = true;
                ws.shared.mailbox.lock().unwrap().error = Some(e);
            }
        },
        Engine::Oximetry(ox) => {
            let lambda2 = item.samples2.as_deref().expect("oximetry packet carries two channels");
            match ox.push([&item.samples, lambda2], &track_refs) {
                Ok(updates) => {
                    // "Emitted" for an oximetry session is the separated
                    // front both wavelengths have reached — SpO2 windows
                    // can only close behind it, and the close-time books
                    // (accepted − emitted = dropped) stay meaningful.
                    let separated = ox.samples_separated();
                    let delta = separated.saturating_sub(ws.emitted);
                    if delta > 0 {
                        ws.emitted = separated;
                        counters.samples_out.fetch_add(delta as u64, Ordering::Relaxed);
                    }
                    deliver_spo2(ws, updates, counters);
                }
                Err(e) => {
                    ws.failed = true;
                    ws.shared.mailbox.lock().unwrap().error = Some(oximetry_stream_error(e));
                }
            }
        }
    }
    drop(run_span);
    counters.packets_processed.fetch_add(1, Ordering::Relaxed);
    counters.latency.lock().unwrap().record(item.enqueued_at.elapsed().as_secs_f64());
    counters.touch();
}

/// Hands completed SpO2 windows to the mailbox and books their trend
/// statistics.
fn deliver_spo2(ws: &mut WorkerSession, updates: Vec<Spo2Sample>, counters: &ShardCounters) {
    if updates.is_empty() {
        return;
    }
    counters.spo2_updates.fetch_add(updates.len() as u64, Ordering::Relaxed);
    {
        let mut stats = counters.spo2.lock().unwrap();
        for s in &updates {
            stats.record(s.spo2);
        }
    }
    ws.shared.mailbox.lock().unwrap().spo2.extend(updates);
}

/// Drains a closing session: leftovers, flush, mailbox.
fn close_session(
    ws: &mut WorkerSession,
    leftovers: Vec<IngestItem>,
    counters: &ShardCounters,
) -> CloseOutcome {
    for item in leftovers {
        process_item(ws, item, counters);
    }
    let mut flush_block = None;
    let mut flush_spo2 = Vec::new();
    // For a healthy oximetry flush the engine reports its uncoverable
    // tail directly (its post-flush progress marker is not usable for the
    // books — see `StreamingOximeter::flush` on gap handling).
    let mut oximetry_flush_dropped = None;
    if !ws.failed {
        match &mut ws.engine {
            Engine::Separation(sep) => match sep.flush() {
                Ok(fin) => flush_block = fin.block,
                Err(e) => {
                    ws.failed = true;
                    ws.shared.mailbox.lock().unwrap().error = Some(e);
                }
            },
            Engine::Oximetry(ox) => match ox.flush() {
                Ok(fin) => {
                    flush_spo2 = fin.samples;
                    oximetry_flush_dropped = Some(fin.dropped_samples);
                }
                Err(e) => {
                    ws.failed = true;
                    ws.shared.mailbox.lock().unwrap().error = Some(oximetry_stream_error(e));
                }
            },
        }
    }
    if let Some(b) = &flush_block {
        ws.emitted += b.len();
        counters.samples_out.fetch_add(b.len() as u64, Ordering::Relaxed);
        counters.blocks_emitted.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(dropped) = oximetry_flush_dropped {
        // The flush separated everything the engines accepted except the
        // too-short tail; account the remainder as emitted.
        let final_emitted = ws.accepted.saturating_sub(dropped);
        let delta = final_emitted.saturating_sub(ws.emitted);
        ws.emitted = final_emitted;
        counters.samples_out.fetch_add(delta as u64, Ordering::Relaxed);
    }
    deliver_spo2(ws, flush_spo2, counters);
    let mut mailbox = ws.shared.mailbox.lock().unwrap();
    let mut blocks = std::mem::take(&mut mailbox.blocks);
    let spo2 = std::mem::take(&mut mailbox.spo2);
    let error = mailbox.error.take();
    drop(mailbox);
    if let Some(b) = flush_block {
        blocks.push(b);
    }
    // Close the books: whatever the engine accepted but never emitted is
    // gone now. For a healthy session this is exactly the flush's
    // too-short-to-cover tail; for a failed one it also covers everything
    // stranded in the engine's buffers. `skipped` adds the packets that
    // never reached the engine after the failure (mid-stream and
    // close-time alike).
    let unflushed = ws.accepted.saturating_sub(ws.emitted);
    counters.dropped_samples.fetch_add(unflushed as u64, Ordering::Relaxed);
    // Book the residual plan-cache footprint (leftover packets or the
    // flush may have built plans since the last batch booking).
    book_plan_delta(ws, counters);
    CloseOutcome { blocks, spo2, dropped_samples: ws.skipped + unflushed, error }
}
